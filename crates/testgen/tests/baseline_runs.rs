//! End-to-end check: the baseline initializer brings both emulators to the
//! same state, and a trivial test program halts cleanly on both.

use pokemu_hifi::{HiFi, RunExit as HiExit};
use pokemu_isa::state::{attrs, Seg};
use pokemu_lofi::{Fidelity, Lofi, RunExit as LoExit};
use pokemu_symx::Dom;
use pokemu_testgen::{boot_state, layout, TestProgram};

/// Applies the boot-loader state to the Hi-Fi emulator and loads the code.
fn boot_hifi(prog: &TestProgram) -> HiFi {
    let boot = boot_state();
    let mut emu = HiFi::new();
    {
        let (d, m) = emu.parts_mut();
        m.cr0 = d.constant(32, boot.cr0 as u64);
        m.eip = boot.eip;
        m.gpr[4] = d.constant(32, boot.esp as u64);
        for seg in Seg::ALL {
            let typ: u64 = if seg == Seg::Cs { 0xb } else { 0x3 };
            let a = typ
                | (1 << attrs::S as u64)
                | (1 << attrs::P as u64)
                | (1 << attrs::DB as u64)
                | (1 << attrs::G as u64);
            let s = &mut m.segs[seg as usize];
            s.selector = d.constant(16, 0x8);
            s.cache.base = d.constant(32, 0);
            s.cache.limit = d.constant(32, 0xffff_ffff);
            s.cache.attrs = d.constant(attrs::WIDTH, a);
        }
    }
    emu.load_image(layout::CODE_BASE, &prog.code);
    emu
}

/// Applies the boot-loader state to the Lo-Fi emulator and loads the code.
fn boot_lofi(prog: &TestProgram, fid: Fidelity) -> Lofi {
    let boot = boot_state();
    let mut emu = Lofi::new(fid);
    {
        let m = emu.machine_mut();
        m.cr0 = boot.cr0;
        m.eip = boot.eip;
        m.gpr[4] = boot.esp;
        for i in 0..6 {
            let typ: u16 = if i == 1 { 0xb } else { 0x3 };
            m.segs[i] = pokemu_lofi::state::LofiSeg {
                selector: 0x8,
                base: 0,
                limit: 0xffff_ffff,
                attrs: typ
                    | (1 << attrs::S as u16)
                    | (1 << attrs::P as u16)
                    | (1 << attrs::DB as u16)
                    | (1 << attrs::G as u16),
            };
        }
    }
    emu.load_image(layout::CODE_BASE, &prog.code);
    emu
}

#[test]
fn baseline_plus_nop_halts_on_both_emulators() {
    let prog = TestProgram::baseline_only("nop".into(), &[0x90]).unwrap();

    let mut hi = boot_hifi(&prog);
    let hi_exit = hi.run(20_000);
    assert_eq!(hi_exit, HiExit::Halted, "Hi-Fi must complete the baseline");

    let mut lo = boot_lofi(&prog, Fidelity::QEMU_LIKE);
    let lo_exit = lo.run(20_000);
    assert_eq!(lo_exit, LoExit::Halted, "Lo-Fi must complete the baseline");

    let hs = hi.snapshot(hi_exit);
    let ls = lo.snapshot(lo_exit);
    let diffs = hs.diff(&ls);
    assert!(
        diffs.is_empty(),
        "baseline must be identical:\n{}",
        diffs.join("\n")
    );

    // Paging is on and the environment is as §4.1 describes.
    assert_eq!(hs.cr0 & 0x8000_0001, 0x8000_0001, "PE and PG set");
    assert_eq!(hs.cr3 & 0xffff_f000, layout::PD_BASE);
    assert_eq!(hs.gdtr, (layout::GDT_BASE, layout::GDT_LIMIT));
    assert_eq!(
        hs.segs[Seg::Ss as usize].selector,
        10 << 3,
        "SS uses GDT entry 10"
    );
    assert_eq!(hs.gpr, [0, 0, 0, 0, layout::STACK_TOP, 0, 0, 0]);
    assert_eq!(hs.eflags, layout::BASE_EFLAGS);
}

#[test]
fn fig5_push_eax_test_runs_on_both() {
    use pokemu_isa::state::Gpr;
    use pokemu_testgen::{StateItem, TestState};
    let state = TestState {
        items: vec![
            StateItem::Gpr(Gpr::Esp, 0x002007dc),
            StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
            StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 6, 0xcf),
        ],
    };
    let prog = TestProgram::build("push_eax".into(), state, &[0x50]).unwrap();
    let mut hi = boot_hifi(&prog);
    let hi_exit = hi.run(20_000);
    // Byte 5 = 0x13 clears the present bit: the SS reload gadget itself
    // faults with #SS(sel). A test ending in an exception is still a valid
    // test (paper §4: "either halts normally or raises an exception").
    assert_eq!(
        hi_exit,
        HiExit::Exception(pokemu_isa::Exception::Ss(10 << 3)),
        "modified descriptor is not present"
    );

    let mut lo = boot_lofi(&prog, Fidelity::QEMU_LIKE);
    let lo_exit = lo.run(20_000);
    assert_eq!(
        lo_exit,
        LoExit::Exception(pokemu_isa::Exception::Ss(10 << 3))
    );

    // And the final states agree byte for byte.
    let d = hi.snapshot(hi_exit).diff(&lo.snapshot(lo_exit));
    assert!(d.is_empty(), "final states must agree:\n{}", d.join("\n"));
}
