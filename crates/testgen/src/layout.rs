//! The baseline execution environment (paper §4.1).
//!
//! A minimalist 32-bit protected-mode environment with paging: a flat GDT
//! (zero base, 4-GiB limit), a page table mapping the 4-GiB linear space
//! onto 4 MiB of physical memory (every 4-MiB region aliases the same
//! physical memory), and an IDT whose handlers halt. The baseline state is
//! established by *guest code* — the baseline initializer — so that every
//! execution target reaches it the same way, exactly as the paper's
//! bootable images do.

use pokemu_isa::asm::Asm;
use pokemu_isa::state::{selector, Gpr, RawDescriptor, Seg};

/// Physical address of the GDT.
pub const GDT_BASE: u32 = 0x0000_1000;
/// Physical address of the IDT.
pub const IDT_BASE: u32 = 0x0000_2000;
/// Address of the halting exception handler.
pub const HALT_HANDLER: u32 = 0x0000_3000;
/// Scratch area for `lgdt`/`lidt` operand blocks.
pub const SCRATCH_BASE: u32 = 0x0000_4000;
/// Page-directory base.
pub const PD_BASE: u32 = 0x0001_0000;
/// Page-table base (one table, aliased by every PDE).
pub const PT_BASE: u32 = 0x0001_1000;
/// Where test programs are loaded and entered.
pub const CODE_BASE: u32 = 0x0002_0000;
/// Baseline stack top (paper's Fig. 5 uses a nearby value).
pub const STACK_TOP: u32 = 0x0020_07e0;
/// Baseline EFLAGS (IF set, fixed bit 1).
pub const BASE_EFLAGS: u32 = 0x0000_0202;
/// GDT limit: 16 entries.
pub const GDT_LIMIT: u16 = 16 * 8 - 1;
/// IDT limit: 64 gates.
pub const IDT_LIMIT: u16 = 64 * 8 - 1;

/// GDT entry indexes for each baseline segment. SS deliberately uses entry
/// 10 so generated tests look like the paper's Fig. 5.
pub const fn gdt_index(seg: Seg) -> u16 {
    match seg {
        Seg::Cs => 1,
        Seg::Ds => 5,
        Seg::Es => 4,
        Seg::Fs => 6,
        Seg::Gs => 7,
        Seg::Ss => 10,
    }
}

/// The baseline selector for a segment.
pub fn baseline_selector(seg: Seg) -> u16 {
    selector::build(gdt_index(seg), false, 0)
}

/// The baseline raw descriptor for a segment (flat, ring 0, pre-accessed so
/// reloads never write the accessed bit back).
pub fn baseline_descriptor(seg: Seg) -> RawDescriptor {
    RawDescriptor::flat(if seg == Seg::Cs { 0xb } else { 0x3 })
}

/// Emits the baseline initializer (paper §4.1): GDT + segment reloads,
/// page tables + paging enable, IDT, and register normalization.
///
/// `code_base` is where this code will execute (needed for the CS-reload
/// far jump).
pub fn emit_baseline(a: &mut Asm, code_base: u32) {
    // --- GDT entries ---
    for seg in Seg::ALL {
        let idx = gdt_index(seg) as u32;
        let bytes = baseline_descriptor(seg).encode();
        let lo = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let hi = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        a.mov_m32_imm32(GDT_BASE + idx * 8, lo);
        a.mov_m32_imm32(GDT_BASE + idx * 8 + 4, hi);
    }
    // --- lgdt ---
    a.mov_m16_imm16(SCRATCH_BASE, GDT_LIMIT);
    a.mov_m32_imm32(SCRATCH_BASE + 2, GDT_BASE);
    a.lgdt(SCRATCH_BASE);
    // --- reload CS with a far jump to the next instruction ---
    let target = code_base + a.len() as u32 + 7; // jmp_far is 7 bytes
    a.jmp_far(baseline_selector(Seg::Cs), target);
    // --- reload data/stack segments ---
    for seg in [Seg::Es, Seg::Ss, Seg::Ds, Seg::Fs, Seg::Gs] {
        a.mov_ax_imm16(baseline_selector(seg));
        a.mov_sreg_ax(seg);
    }
    a.mov_r32_imm32(Gpr::Esp, STACK_TOP);

    // --- page directory: every PDE -> the single page table ---
    a.mov_r32_imm32(Gpr::Edi, PD_BASE);
    a.mov_r32_imm32(Gpr::Eax, PT_BASE | 0x7); // P | RW | US
    a.mov_r32_imm32(Gpr::Ecx, 1024);
    a.raw(&[0xfc]); // cld
    a.raw(&[0xf3, 0xab]); // rep stosd
                          // --- page table: identity map of the 4-MiB physical memory ---
    a.mov_r32_imm32(Gpr::Edi, PT_BASE);
    a.mov_r32_imm32(Gpr::Eax, 0x7);
    a.mov_r32_imm32(Gpr::Ecx, 1024);
    // L: mov [edi], eax; add eax, 0x1000; add edi, 4; loop L
    // Body is 10 bytes; `loop` itself is 2, so the displacement is -12.
    a.raw(&[0x89, 0x07]);
    a.raw(&[0x05, 0x00, 0x10, 0x00, 0x00]);
    a.raw(&[0x83, 0xc7, 0x04]);
    a.raw(&[0xe2, 0xf4]);

    // --- IDT: 64 interrupt gates to the halting handler ---
    // Gate: offset[15:0], selector, 0x8E00, offset[31:16].
    let cs = baseline_selector(Seg::Cs) as u32;
    let lo = (HALT_HANDLER & 0xffff) | (cs << 16);
    let hi = 0x0000_8e00 | (HALT_HANDLER & 0xffff_0000);
    a.mov_r32_imm32(Gpr::Edi, IDT_BASE);
    a.mov_r32_imm32(Gpr::Eax, lo);
    a.mov_r32_imm32(Gpr::Ebx, hi);
    a.mov_r32_imm32(Gpr::Ecx, 64);
    // L: mov [edi], eax; mov [edi+4], ebx; add edi, 8; loop L
    a.raw(&[0x89, 0x07]);
    a.raw(&[0x89, 0x5f, 0x04]);
    a.raw(&[0x83, 0xc7, 0x08]);
    a.raw(&[0xe2, 0xf6]);
    a.mov_m8_imm8(HALT_HANDLER, 0xf4); // the handler: hlt
    a.mov_m16_imm16(SCRATCH_BASE + 8, IDT_LIMIT);
    a.mov_m32_imm32(SCRATCH_BASE + 10, IDT_BASE);
    a.lidt(SCRATCH_BASE + 8);

    // --- enable paging ---
    a.mov_r32_imm32(Gpr::Eax, PD_BASE);
    a.mov_cr3_eax();
    a.mov_eax_cr0();
    a.raw(&[0x0d, 0x00, 0x00, 0x00, 0x80]); // or eax, 0x80000000
    a.mov_cr0_eax();

    // --- normalize registers and flags ---
    for r in [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ] {
        a.mov_r32_imm32(r, 0);
    }
    a.push_imm32(BASE_EFLAGS);
    a.popf();
}

/// A description of the *boot* state: what the off-the-shelf boot loader
/// established before the baseline initializer runs (§4.1 — "the boot
/// loader we use happens to already configure the machine in 32-bit
/// protected mode"). Execution targets apply this directly.
#[derive(Debug, Clone, Copy)]
pub struct BootState {
    /// Initial EIP (start of the loaded image).
    pub eip: u32,
    /// Initial ESP.
    pub esp: u32,
    /// CR0 (PE set, paging off).
    pub cr0: u32,
}

/// The boot state used by every target.
pub fn boot_state() -> BootState {
    BootState {
        eip: CODE_BASE,
        esp: STACK_TOP,
        cr0: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_assembles_and_every_insn_decodes() {
        let mut a = Asm::new();
        emit_baseline(&mut a, CODE_BASE);
        let bytes = a.bytes().to_vec();
        assert!(bytes.len() > 100);
        let mut d = pokemu_symx::Concrete::new();
        let mut off = 0usize;
        use pokemu_symx::Dom;
        while off < bytes.len() {
            let window = bytes[off..].to_vec();
            let inst = pokemu_isa::decode(&mut d, |d, i| {
                Ok(d.constant(8, *window.get(i as usize).unwrap_or(&0) as u64))
            })
            .unwrap_or_else(|e| panic!("undecodable baseline byte at {off}: {e:?}"));
            off += inst.len as usize;
        }
        assert_eq!(off, bytes.len());
    }

    #[test]
    fn layout_regions_do_not_overlap() {
        let regions = [
            (GDT_BASE, 16 * 8u32),
            (IDT_BASE, 64 * 8),
            (HALT_HANDLER, 1),
            (SCRATCH_BASE, 16),
            (PD_BASE, 4096),
            (PT_BASE, 4096),
            (CODE_BASE, 0x1000),
        ];
        for (i, &(a, al)) in regions.iter().enumerate() {
            for &(b, bl) in &regions[i + 1..] {
                assert!(a + al <= b || b + bl <= a, "overlap: {a:#x} and {b:#x}");
            }
        }
    }
}
