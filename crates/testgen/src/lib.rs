//! # pokemu-testgen
//!
//! Test-program generation for PokeEMU-rs (paper §4): the baseline state
//! initializer that brings any target to a known 32-bit protected-mode
//! environment with paging ([`layout`]), the gadget library that establishes
//! arbitrary test states on top of it with dependency-ordered sequencing
//! ([`gadgets`]), and the assembly of complete bootable test programs
//! ([`program`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gadgets;
pub mod layout;
pub mod program;

pub use gadgets::{GadgetError, GadgetPlan, StateItem, TestState};
pub use layout::{boot_state, BootState};
pub use program::{chain_path_id, fnv1a, ChainSegment, SegmentMeta, TestProgram};
