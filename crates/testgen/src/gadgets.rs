//! State-initializer gadgets and their dependency-based sequencing
//! (paper §4.2).
//!
//! Each part of the machine state that a test must establish is set by a
//! *gadget*: a short instruction sequence with declared prerequisites and
//! side effects. The generator instantiates one gadget per state component,
//! adds corrective gadgets for side effects (e.g. restoring a scratched
//! register — Fig. 5 line 6), builds the dependency graph, and topologically
//! sorts it. A cycle or an unsatisfiable side effect aborts generation with
//! an error, mirroring the paper's "abort and ask for user assistance".

use std::collections::HashMap;

use pokemu_isa::asm::Asm;
use pokemu_isa::state::{selector, Gpr, Seg};

use crate::layout::{self, SCRATCH_BASE};

/// One component of the test state to establish (the output of state
/// exploration after minimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateItem {
    /// A general-purpose register value.
    Gpr(Gpr, u32),
    /// The EFLAGS image (established via `push imm; popf`).
    Eflags(u32),
    /// One byte of physical memory (covers GDT entries, page-table entries,
    /// and ordinary data uniformly).
    MemByte(u32, u8),
    /// A segment selector to (re)load. Also emitted when only the
    /// descriptor memory changed, to refresh the descriptor cache.
    Selector(Seg, u16),
    /// CR0 value.
    Cr0(u32),
    /// CR4 value.
    Cr4(u32),
    /// CR3 flag bits (PWT/PCD; the base stays at the baseline directory).
    Cr3Flags(u32),
    /// GDTR limit (base unchanged).
    GdtrLimit(u16),
    /// IDTR limit (base unchanged).
    IdtrLimit(u16),
    /// An MSR value (SYSENTER family).
    Msr(u32, u32),
}

/// A complete test state: the minimized difference from the baseline.
#[derive(Debug, Clone, Default)]
pub struct TestState {
    /// The components to establish.
    pub items: Vec<StateItem>,
}

/// Why gadget sequencing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GadgetError {
    /// The dependency graph has a cycle.
    DependencyCycle(String),
    /// No gadget exists for a required initialization.
    Unsupported(String),
    /// The test instruction is empty: there is nothing to test.
    EmptyTestInsn,
    /// A state item writes into a region the program layout owns (the code
    /// image, the gadget scratch block, or the halting handler): the
    /// initializer would corrupt the program that establishes it.
    LayoutOverlap(u32),
    /// Two state items assign different values to the same location; no
    /// emission order can satisfy both.
    AddressCollision(u32),
}

impl std::fmt::Display for GadgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GadgetError::DependencyCycle(s) => write!(f, "gadget dependency cycle: {s}"),
            GadgetError::Unsupported(s) => write!(f, "no gadget for: {s}"),
            GadgetError::EmptyTestInsn => write!(f, "empty test instruction"),
            GadgetError::LayoutOverlap(a) => {
                write!(f, "state item overlaps the program layout at {a:#x}")
            }
            GadgetError::AddressCollision(a) => {
                write!(f, "conflicting state items collide at {a:#x}")
            }
        }
    }
}

impl std::error::Error for GadgetError {}

/// Scheduling phase of a gadget; the dependency edges below are all from
/// lower to higher phases, which both encodes the prerequisite rules and
/// guarantees acyclicity for supported states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Phase {
    /// EFLAGS first: `popf` needs the baseline stack.
    Eflags,
    /// Memory bytes (GDT entries before reloads; PTE flags late is handled
    /// by the emission order within the phase: page-table region last).
    Memory,
    /// Segment reloads (consume GDT memory, clobber EAX).
    SegReload,
    /// Descriptor-table limit updates (after reloads used the full table).
    TableRegs,
    /// MSR writes (clobber EAX/ECX/EDX).
    Msrs,
    /// Control registers (clobber EAX; may change translation).
    ControlRegs,
    /// GPRs last, restoring scratch registers (Fig. 5 line 6).
    Gprs,
}

#[derive(Debug, Clone)]
struct Gadget {
    phase: Phase,
    /// Emission order within a phase.
    rank: u32,
    item: StateItem,
}

/// The ordered plan of gadgets for a test state.
#[derive(Debug)]
pub struct GadgetPlan {
    gadgets: Vec<Gadget>,
}

impl GadgetPlan {
    /// Builds the plan: instantiate, add corrective gadgets, sort, verify.
    ///
    /// # Errors
    ///
    /// [`GadgetError`] when sequencing is impossible.
    pub fn build(state: &TestState) -> Result<GadgetPlan, GadgetError> {
        let mut gadgets: Vec<Gadget> = Vec::new();
        let mut rank = 0u32;
        let mut scratched: Vec<Gpr> = Vec::new();
        let mut explicit_gpr: HashMap<Gpr, u32> = HashMap::new();
        let mut seg_reloads: HashMap<Seg, u16> = HashMap::new();

        for item in &state.items {
            rank += 1;
            match *item {
                StateItem::Gpr(r, v) => {
                    explicit_gpr.insert(r, v);
                }
                StateItem::Eflags(_) => gadgets.push(Gadget {
                    phase: Phase::Eflags,
                    rank,
                    item: *item,
                }),
                StateItem::MemByte(addr, _) => {
                    // Page-table bytes are emitted after other memory so a
                    // not-present page cannot break the remaining writes.
                    let late = (layout::PD_BASE..layout::PT_BASE + 0x1000).contains(&addr);
                    gadgets.push(Gadget {
                        phase: Phase::Memory,
                        rank: if late { rank + 1_000_000 } else { rank },
                        item: *item,
                    });
                    // A changed descriptor byte requires refreshing the
                    // cache of any segment whose descriptor contains it.
                    if let Some(seg) = segment_of_gdt_byte(addr) {
                        seg_reloads
                            .entry(seg)
                            .or_insert_with(|| layout::baseline_selector(seg));
                    }
                }
                StateItem::Selector(seg, sel) => {
                    seg_reloads.insert(seg, sel);
                }
                StateItem::Cr0(_) | StateItem::Cr4(_) | StateItem::Cr3Flags(_) => {
                    scratched.push(Gpr::Eax);
                    gadgets.push(Gadget {
                        phase: Phase::ControlRegs,
                        rank,
                        item: *item,
                    });
                }
                StateItem::GdtrLimit(_) | StateItem::IdtrLimit(_) => {
                    gadgets.push(Gadget {
                        phase: Phase::TableRegs,
                        rank,
                        item: *item,
                    });
                }
                StateItem::Msr(_, _) => {
                    scratched.extend([Gpr::Eax, Gpr::Ecx, Gpr::Edx]);
                    gadgets.push(Gadget {
                        phase: Phase::Msrs,
                        rank,
                        item: *item,
                    });
                }
            }
        }

        for (i, (seg, sel)) in seg_reloads.into_iter().enumerate() {
            scratched.push(Gpr::Eax);
            gadgets.push(Gadget {
                phase: Phase::SegReload,
                rank: i as u32,
                item: StateItem::Selector(seg, sel),
            });
        }

        // Corrective gadgets: every scratched register must end at its test
        // value (if any) or the baseline value (0).
        for r in scratched {
            explicit_gpr.entry(r).or_insert(0);
        }
        let mut gpr_rank = 0;
        let mut gprs: Vec<(Gpr, u32)> = explicit_gpr.into_iter().collect();
        gprs.sort_by_key(|&(r, _)| r);
        for (r, v) in gprs {
            gpr_rank += 1;
            // ESP last: later gadgets must not use the test stack pointer.
            let rank = if r == Gpr::Esp { 1_000_000 } else { gpr_rank };
            gadgets.push(Gadget {
                phase: Phase::Gprs,
                rank,
                item: StateItem::Gpr(r, v),
            });
        }

        // Topological order: phases are a DAG by construction; verify the
        // sort is stable and deterministic.
        gadgets.sort_by_key(|g| (g.phase, g.rank));
        Ok(GadgetPlan { gadgets })
    }

    /// Number of gadgets in the plan.
    pub fn len(&self) -> usize {
        self.gadgets.len()
    }

    /// `true` when the state needed no initialization.
    pub fn is_empty(&self) -> bool {
        self.gadgets.is_empty()
    }

    /// Emits the plan as guest code.
    pub fn emit(&self, a: &mut Asm, code_base: u32) {
        for g in &self.gadgets {
            emit_gadget(a, code_base, &g.item);
        }
    }

    /// The state items in emission order, including the corrective gadgets
    /// the plan added (segment reloads forced by descriptor-byte writes,
    /// scratch-register restores). The program chainer replays these into
    /// its established-state ledger so a later segment knows exactly what
    /// machine state the previous initializer left behind.
    pub fn items(&self) -> impl Iterator<Item = &StateItem> + '_ {
        self.gadgets.iter().map(|g| &g.item)
    }

    /// Human-readable listing (used by the Fig. 5 example binary).
    pub fn describe(&self) -> Vec<String> {
        self.gadgets
            .iter()
            .map(|g| format!("{:?}", g.item))
            .collect()
    }
}

/// Which segment's baseline descriptor contains this GDT byte?
fn segment_of_gdt_byte(addr: u32) -> Option<Seg> {
    if !(layout::GDT_BASE..layout::GDT_BASE + 16 * 8).contains(&addr) {
        return None;
    }
    let index = ((addr - layout::GDT_BASE) / 8) as u16;
    Seg::ALL
        .into_iter()
        .find(|&s| layout::gdt_index(s) == index)
}

fn emit_gadget(a: &mut Asm, code_base: u32, item: &StateItem) {
    match *item {
        StateItem::Gpr(r, v) => {
            a.mov_r32_imm32(r, v);
        }
        StateItem::Eflags(v) => {
            a.push_imm32(v);
            a.popf();
        }
        StateItem::MemByte(addr, v) => {
            a.mov_m8_imm8(addr, v);
        }
        StateItem::Selector(seg, sel) => {
            if seg == Seg::Cs {
                // Far jump to the next instruction reloads CS.
                let target = code_base + a.len() as u32 + 7;
                a.jmp_far(sel, target);
            } else {
                a.mov_ax_imm16(sel);
                a.mov_sreg_ax(seg);
            }
        }
        StateItem::Cr0(v) => {
            a.mov_r32_imm32(Gpr::Eax, v);
            a.mov_cr0_eax();
        }
        StateItem::Cr4(v) => {
            a.mov_r32_imm32(Gpr::Eax, v);
            a.mov_cr4_eax();
        }
        StateItem::Cr3Flags(v) => {
            a.mov_r32_imm32(Gpr::Eax, layout::PD_BASE | (v & 0x18));
            a.mov_cr3_eax();
        }
        StateItem::GdtrLimit(limit) => {
            a.mov_m16_imm16(SCRATCH_BASE, limit);
            a.mov_m32_imm32(SCRATCH_BASE + 2, layout::GDT_BASE);
            a.lgdt(SCRATCH_BASE);
        }
        StateItem::IdtrLimit(limit) => {
            a.mov_m16_imm16(SCRATCH_BASE + 8, limit);
            a.mov_m32_imm32(SCRATCH_BASE + 10, layout::IDT_BASE);
            a.lidt(SCRATCH_BASE + 8);
        }
        StateItem::Msr(addr, v) => {
            a.mov_r32_imm32(Gpr::Ecx, addr);
            a.mov_r32_imm32(Gpr::Eax, v);
            a.mov_r32_imm32(Gpr::Edx, 0);
            a.wrmsr();
        }
    }
}

/// Convenience: a selector for a GDT index with RPL 0.
pub fn sel(index: u16) -> u16 {
    selector::build(index, false, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_registers_are_restored() {
        // A segment reload scratches EAX; the plan must restore it.
        let state = TestState {
            items: vec![StateItem::Selector(Seg::Ss, sel(10))],
        };
        let plan = GadgetPlan::build(&state).unwrap();
        let desc = plan.describe();
        assert!(desc.iter().any(|d| d.contains("Selector(Ss")));
        assert!(
            desc.iter().any(|d| d.contains("Gpr(Eax, 0")),
            "EAX must be restored: {desc:?}"
        );
        // Restore comes after the reload.
        let reload = desc.iter().position(|d| d.contains("Selector")).unwrap();
        let restore = desc.iter().position(|d| d.contains("Gpr(Eax")).unwrap();
        assert!(restore > reload);
    }

    #[test]
    fn gdt_byte_changes_force_a_reload() {
        // Fig. 5: modifying the SS descriptor requires an SS reload.
        let state = TestState {
            items: vec![
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 6, 0xcf),
            ],
        };
        let plan = GadgetPlan::build(&state).unwrap();
        let desc = plan.describe();
        assert!(desc.iter().any(|d| d.contains("Selector(Ss")), "{desc:?}");
        let mem = desc.iter().rposition(|d| d.contains("MemByte")).unwrap();
        let reload = desc.iter().position(|d| d.contains("Selector")).unwrap();
        assert!(
            reload > mem,
            "descriptor bytes must be written before the reload"
        );
    }

    #[test]
    fn eflags_precedes_esp() {
        let state = TestState {
            items: vec![StateItem::Gpr(Gpr::Esp, 0x2007dc), StateItem::Eflags(0x246)],
        };
        let plan = GadgetPlan::build(&state).unwrap();
        let desc = plan.describe();
        let ef = desc.iter().position(|d| d.contains("Eflags")).unwrap();
        let esp = desc.iter().position(|d| d.contains("Esp")).unwrap();
        assert!(ef < esp);
    }

    #[test]
    fn emitted_code_decodes() {
        let state = TestState {
            items: vec![
                StateItem::Gpr(Gpr::Esp, 0x2007dc),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
                StateItem::Eflags(0x202),
                StateItem::Msr(0x174, 0x1234),
                StateItem::Cr4(0x10),
                StateItem::GdtrLimit(0x7f),
            ],
        };
        let plan = GadgetPlan::build(&state).unwrap();
        let mut a = Asm::new();
        plan.emit(&mut a, layout::CODE_BASE);
        // Every instruction decodes.
        use pokemu_symx::Dom;
        let mut d = pokemu_symx::Concrete::new();
        let bytes = a.bytes().to_vec();
        let mut off = 0;
        while off < bytes.len() {
            let w = bytes[off..].to_vec();
            let i = pokemu_isa::decode(&mut d, |d, k| {
                Ok(d.constant(8, *w.get(k as usize).unwrap_or(&0) as u64))
            })
            .expect("gadget code must decode");
            off += i.len as usize;
        }
    }
}
