//! Complete test programs (paper §4, Fig. 4) and multi-instruction chains.
//!
//! A test program is the image a target boots: the fixed baseline
//! initializer, the per-test state initializers, the test instruction, and
//! `hlt`. Execution ends by halting or by an exception (whose baseline IDT
//! handler halts), at which point the harness snapshots the machine.
//!
//! [`TestProgram::chain`] stitches several explored paths into *one*
//! program sharing machine state: the final state of segment *i* (its
//! declared state, its gadget side effects, and the components its test
//! instruction clobbered) is threaded into the initializer of segment
//! *i+1*, so only the state that actually changed is re-established.
//! Memory is deliberately *never* restored between segments — accumulated
//! memory effects (descriptor accessed bits, stale tables, dirtied pages)
//! are exactly the sequence-dependent state the chained corpus exists to
//! expose.

use std::collections::HashMap;

use pokemu_isa::asm::Asm;
use pokemu_isa::state::{Gpr, Seg};

use crate::gadgets::{GadgetError, GadgetPlan, StateItem, TestState};
use crate::layout::{self, CODE_BASE};

/// One link of a chained test program: an explored path's minimized state,
/// the instruction that retriggers it, and the state components the
/// instruction writes (the exploration clobber export).
#[derive(Debug, Clone)]
pub struct ChainSegment {
    /// The contributing path's name (recorded in [`SegmentMeta`]).
    pub name: String,
    /// The segment's test-instruction bytes.
    pub insn: Vec<u8>,
    /// The minimized state difference that triggers the path.
    pub state: TestState,
    /// The contributing path's deterministic id.
    pub path_id: u64,
    /// Names of symbolic state components the test instruction wrote
    /// (`"eax"`, `"eflags"`, `"sel_ds"`, `"mem"`, ...): the chainer must
    /// treat them as unknown afterwards and re-establish them for the next
    /// segment.
    pub clobbers: Vec<String>,
}

/// Provenance of one segment inside a chained program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// The contributing path's name.
    pub name: String,
    /// The segment's test-instruction bytes.
    pub insn: Vec<u8>,
    /// The contributing path's id.
    pub path_id: u64,
    /// Offset of this segment's test instruction within the program code.
    pub insn_offset: u32,
}

/// A runnable test: code image plus metadata.
#[derive(Debug, Clone)]
pub struct TestProgram {
    /// Human-readable identity (instruction class + path id).
    pub name: String,
    /// The code blob, loaded at [`layout::CODE_BASE`].
    pub code: Vec<u8>,
    /// Offset of the test instruction within `code` (diagnostics; for a
    /// chained program, the *last* segment's instruction).
    pub test_insn_offset: u32,
    /// The raw test-instruction bytes (for a chained program, the last
    /// segment's — the instruction whose undefined-flag mask applies to the
    /// final EFLAGS).
    pub test_insn: Vec<u8>,
    /// The state items this test establishes (for a chained program, the
    /// union of every segment's emitted initializers).
    pub state: TestState,
    /// The symbolic-exploration path this test exercises (0 when the test
    /// did not come from state-space exploration, e.g. random baselines;
    /// for a chained program, [`chain_path_id`] over the segment ids).
    pub path_id: u64,
    /// Per-segment provenance; empty for single-instruction programs.
    pub segments: Vec<SegmentMeta>,
}

/// FNV-1a over a byte string (the same hash family the engine uses for
/// path ids), used to combine segment path ids into one chain id.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic id of a chain: FNV-1a over the little-endian segment
/// path ids, so any segment change, reorder, insertion, or removal changes
/// the chain id.
pub fn chain_path_id(ids: impl IntoIterator<Item = u64>) -> u64 {
    let mut bytes = Vec::new();
    for id in ids {
        bytes.extend_from_slice(&id.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// One component of machine state the chainer tracks across segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Gpr(Gpr),
    Eflags,
    Mem(u32),
    Selector(Seg),
    Cr0,
    Cr4,
    Cr3Flags,
    GdtrLimit,
    IdtrLimit,
    Msr(u32),
}

fn slot_of(item: &StateItem) -> (Slot, u64) {
    match *item {
        StateItem::Gpr(r, v) => (Slot::Gpr(r), v as u64),
        StateItem::Eflags(v) => (Slot::Eflags, v as u64),
        StateItem::MemByte(a, v) => (Slot::Mem(a), v as u64),
        StateItem::Selector(s, v) => (Slot::Selector(s), v as u64),
        StateItem::Cr0(v) => (Slot::Cr0, v as u64),
        StateItem::Cr4(v) => (Slot::Cr4, v as u64),
        StateItem::Cr3Flags(v) => (Slot::Cr3Flags, v as u64),
        StateItem::GdtrLimit(v) => (Slot::GdtrLimit, v as u64),
        StateItem::IdtrLimit(v) => (Slot::IdtrLimit, v as u64),
        StateItem::Msr(a, v) => (Slot::Msr(a), v as u64),
    }
}

fn item_of(slot: Slot, v: u64) -> StateItem {
    match slot {
        Slot::Gpr(r) => StateItem::Gpr(r, v as u32),
        Slot::Eflags => StateItem::Eflags(v as u32),
        Slot::Mem(a) => StateItem::MemByte(a, v as u8),
        Slot::Selector(s) => StateItem::Selector(s, v as u16),
        Slot::Cr0 => StateItem::Cr0(v as u32),
        Slot::Cr4 => StateItem::Cr4(v as u32),
        Slot::Cr3Flags => StateItem::Cr3Flags(v as u32),
        Slot::GdtrLimit => StateItem::GdtrLimit(v as u16),
        Slot::IdtrLimit => StateItem::IdtrLimit(v as u16),
        Slot::Msr(a) => StateItem::Msr(a, v as u32),
    }
}

/// The value the baseline initializer leaves in a register-family slot;
/// `None` for memory, which the chainer never restores.
fn baseline_slot_value(slot: Slot) -> Option<u64> {
    Some(match slot {
        Slot::Gpr(Gpr::Esp) => layout::STACK_TOP as u64,
        Slot::Gpr(_) => 0,
        Slot::Eflags => layout::BASE_EFLAGS as u64,
        Slot::Selector(seg) => layout::baseline_selector(seg) as u64,
        Slot::Cr0 => 0x8000_0001,
        Slot::Cr4 => 0,
        Slot::Cr3Flags => 0,
        Slot::GdtrLimit => layout::GDT_LIMIT as u64,
        Slot::IdtrLimit => layout::IDT_LIMIT as u64,
        Slot::Msr(_) => 0,
        Slot::Mem(_) => return None,
    })
}

/// Maps an exploration clobber name to the slot(s) it invalidates. `"mem"`
/// maps to nothing: memory effects accumulate across segments by design.
fn clobbered_slots(name: &str) -> Option<Slot> {
    if let Some(seg) = name.strip_prefix("sel_") {
        return Seg::ALL
            .into_iter()
            .find(|s| s.name() == seg)
            .map(Slot::Selector);
    }
    match name {
        "eax" | "ecx" | "edx" | "ebx" | "esp" | "ebp" | "esi" | "edi" => Gpr::ALL
            .into_iter()
            .find(|r| r.name() == name)
            .map(Slot::Gpr),
        "eflags" => Some(Slot::Eflags),
        "cr0" => Some(Slot::Cr0),
        "cr4" => Some(Slot::Cr4),
        "cr3_flags" => Some(Slot::Cr3Flags),
        "gdtr_limit" => Some(Slot::GdtrLimit),
        "idtr_limit" => Some(Slot::IdtrLimit),
        "msr_sysenter_cs" => Some(Slot::Msr(0x174)),
        "msr_sysenter_esp" => Some(Slot::Msr(0x175)),
        "msr_sysenter_eip" => Some(Slot::Msr(0x176)),
        _ => None, // "mem" and unknown names: nothing to restore
    }
}

/// Regions a state item must not write: the code image (the initializer
/// would overwrite the program being run), the `lgdt`/`lidt` scratch block,
/// and the halting exception handler.
fn reserved_region(addr: u32) -> bool {
    (CODE_BASE..CODE_BASE + 0x1000).contains(&addr)
        || (layout::SCRATCH_BASE..layout::SCRATCH_BASE + 16).contains(&addr)
        || addr == layout::HALT_HANDLER
}

/// Validates one (state, instruction) pair before assembly.
fn validate(state: &TestState, test_insn: &[u8]) -> Result<(), GadgetError> {
    if test_insn.is_empty() {
        return Err(GadgetError::EmptyTestInsn);
    }
    let mut mem: HashMap<u32, u8> = HashMap::new();
    for item in &state.items {
        if let StateItem::MemByte(addr, v) = *item {
            if reserved_region(addr) {
                return Err(GadgetError::LayoutOverlap(addr));
            }
            if let Some(&prev) = mem.get(&addr) {
                if prev != v {
                    return Err(GadgetError::AddressCollision(addr));
                }
            }
            mem.insert(addr, v);
        }
    }
    Ok(())
}

impl TestProgram {
    /// Builds a test program from a test state and instruction bytes.
    ///
    /// # Errors
    ///
    /// [`GadgetError::EmptyTestInsn`] for an empty instruction,
    /// [`GadgetError::LayoutOverlap`] / [`GadgetError::AddressCollision`]
    /// for states that write the program layout or contradict themselves,
    /// and any [`GadgetError`] from sequencing.
    pub fn build(
        name: String,
        state: TestState,
        test_insn: &[u8],
    ) -> Result<TestProgram, GadgetError> {
        validate(&state, test_insn)?;
        let plan = GadgetPlan::build(&state)?;
        let mut a = Asm::new();
        layout::emit_baseline(&mut a, CODE_BASE);
        plan.emit(&mut a, CODE_BASE);
        let test_insn_offset = a.len() as u32;
        a.raw(test_insn);
        a.hlt();
        pokemu_rt::metrics::counter("testgen.programs").inc();
        Ok(TestProgram {
            name,
            code: a.into_bytes(),
            test_insn_offset,
            test_insn: test_insn.to_vec(),
            state,
            path_id: 0,
            segments: Vec::new(),
        })
    }

    /// A test with the baseline state only (no initializers).
    ///
    /// # Errors
    ///
    /// [`GadgetError::EmptyTestInsn`] for an empty instruction; otherwise
    /// never fails in practice.
    pub fn baseline_only(name: String, test_insn: &[u8]) -> Result<TestProgram, GadgetError> {
        Self::build(name, TestState::default(), test_insn)
    }

    /// Stitches `k` explored paths into one test program with shared
    /// machine state (paper §4 extended to sequences; ROADMAP item 4).
    ///
    /// The baseline initializer runs once. Before each segment's test
    /// instruction, the chainer emits only the initializers that segment
    /// actually needs, threading the final state of segment *i* into the
    /// constraints of segment *i+1*:
    ///
    /// * a declared state item is skipped when the established-state ledger
    ///   already holds its exact value;
    /// * register-family components the previous test instruction clobbered
    ///   are restored to their declared value — or to the baseline value
    ///   when the next segment leaves them unconstrained — so each path
    ///   replays from the state it was explored against;
    /// * **memory is never restored**: descriptor accessed bits, stale
    ///   tables, and dirtied pages accumulate across segments. This is what
    ///   lets a chain expose deviations (accessed-bit write-back, stale
    ///   descriptor caches) that the same instructions run single-shot
    ///   cannot.
    ///
    /// A segment that faults jumps to the halting IDT handler, ending the
    /// program early: exceptions are intercepted, not resumed, so faulting
    /// paths belong in the final slot (see DESIGN.md §9).
    ///
    /// # Errors
    ///
    /// [`GadgetError::EmptyTestInsn`] when `segments` is empty or any
    /// segment's instruction is; layout/collision/sequencing errors as in
    /// [`TestProgram::build`]. [`GadgetError::LayoutOverlap`] also flags a
    /// chain whose code outgrows the 4-KiB code region.
    pub fn chain(name: String, segments: &[ChainSegment]) -> Result<TestProgram, GadgetError> {
        if segments.is_empty() {
            return Err(GadgetError::EmptyTestInsn);
        }
        for seg in segments {
            validate(&seg.state, &seg.insn)?;
        }

        let mut a = Asm::new();
        layout::emit_baseline(&mut a, CODE_BASE);

        // What the machine currently holds, by slot. Register-family slots
        // start at their post-baseline values; memory starts absent (the
        // baseline image is the implicit ledger for untouched bytes).
        let mut established: HashMap<Slot, u64> = HashMap::new();
        for slot in [
            Slot::Eflags,
            Slot::Cr0,
            Slot::Cr4,
            Slot::Cr3Flags,
            Slot::GdtrLimit,
            Slot::IdtrLimit,
            Slot::Msr(0x174),
            Slot::Msr(0x175),
            Slot::Msr(0x176),
        ]
        .into_iter()
        .chain(Gpr::ALL.into_iter().map(Slot::Gpr))
        .chain(Seg::ALL.into_iter().map(Slot::Selector))
        {
            if let Some(v) = baseline_slot_value(slot) {
                established.insert(slot, v);
            }
        }

        let mut pending_clobbers: Vec<Slot> = Vec::new();
        let mut metas = Vec::with_capacity(segments.len());
        let mut union_state = TestState::default();

        for seg in segments {
            let declared: HashMap<Slot, u64> = seg.state.items.iter().map(slot_of).collect();
            let mut items: Vec<StateItem> = Vec::new();
            // Restore what the previous test instruction clobbered and this
            // segment leaves unconstrained (memory slots have no baseline
            // here and accumulate instead).
            for &slot in &pending_clobbers {
                if declared.contains_key(&slot) {
                    continue;
                }
                if let Some(base) = baseline_slot_value(slot) {
                    items.push(item_of(slot, base));
                }
            }
            // Establish the declared state, minus what already holds.
            for item in &seg.state.items {
                let (slot, v) = slot_of(item);
                if established.get(&slot) != Some(&v) {
                    items.push(*item);
                }
            }
            let plan = GadgetPlan::build(&TestState { items })?;
            for item in plan.items() {
                let (slot, v) = slot_of(item);
                established.insert(slot, v);
                union_state.items.push(*item);
            }
            plan.emit(&mut a, CODE_BASE);
            metas.push(SegmentMeta {
                name: seg.name.clone(),
                insn: seg.insn.clone(),
                path_id: seg.path_id,
                insn_offset: a.len() as u32,
            });
            a.raw(&seg.insn);
            pending_clobbers.clear();
            for c in &seg.clobbers {
                if let Some(slot) = clobbered_slots(c) {
                    established.remove(&slot);
                    if !pending_clobbers.contains(&slot) {
                        pending_clobbers.push(slot);
                    }
                }
            }
        }
        a.hlt();
        if a.len() > 0x1000 {
            // The layout maps a single 4-KiB code region; a longer chain
            // would collide with whatever follows it.
            return Err(GadgetError::LayoutOverlap(CODE_BASE + 0x1000));
        }
        pokemu_rt::metrics::counter("testgen.programs").inc();
        pokemu_rt::metrics::counter("testgen.chained_programs").inc();

        let last = metas.last().expect("non-empty chain");
        let (test_insn_offset, test_insn) = (last.insn_offset, last.insn.clone());
        let path_id = chain_path_id(segments.iter().map(|s| s.path_id));
        Ok(TestProgram {
            name,
            code: a.into_bytes(),
            test_insn_offset,
            test_insn,
            state: union_state,
            path_id,
            segments: metas,
        })
    }

    /// The linear address of the test instruction.
    pub fn test_insn_address(&self) -> u32 {
        CODE_BASE + self.test_insn_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{sel, StateItem};
    use pokemu_isa::state::Gpr;

    #[test]
    fn builds_the_fig5_push_eax_test() {
        // The paper's Fig. 5 sample: push %eax with a modified SS descriptor.
        let state = TestState {
            items: vec![
                StateItem::Gpr(Gpr::Esp, 0x002007dc),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 6, 0xcf),
            ],
        };
        let prog = TestProgram::build("push_eax/fig5".into(), state, &[0x50]).unwrap();
        assert_eq!(prog.code[prog.test_insn_offset as usize], 0x50);
        assert_eq!(*prog.code.last().unwrap(), 0xf4);
        assert!(prog.code.len() > 150);
        assert!(prog.segments.is_empty(), "single-shot has no segment metas");
    }

    #[test]
    fn empty_test_instruction_is_rejected() {
        assert_eq!(
            TestProgram::build("empty".into(), TestState::default(), &[]).unwrap_err(),
            GadgetError::EmptyTestInsn
        );
        assert_eq!(
            TestProgram::baseline_only("empty".into(), &[]).unwrap_err(),
            GadgetError::EmptyTestInsn
        );
        assert_eq!(
            TestProgram::chain("empty".into(), &[]).unwrap_err(),
            GadgetError::EmptyTestInsn
        );
    }

    #[test]
    fn state_writing_the_code_region_is_a_layout_overlap() {
        for addr in [
            CODE_BASE,
            CODE_BASE + 0xfff,
            layout::SCRATCH_BASE,
            layout::SCRATCH_BASE + 15,
            layout::HALT_HANDLER,
        ] {
            let state = TestState {
                items: vec![StateItem::MemByte(addr, 0x90)],
            };
            assert_eq!(
                TestProgram::build("overlap".into(), state, &[0x90]).unwrap_err(),
                GadgetError::LayoutOverlap(addr),
                "{addr:#x} must be rejected"
            );
        }
        // One byte past the code region is ordinary memory again.
        let state = TestState {
            items: vec![StateItem::MemByte(CODE_BASE + 0x1000, 0x90)],
        };
        assert!(TestProgram::build("past".into(), state, &[0x90]).is_ok());
    }

    #[test]
    fn conflicting_memory_bytes_are_an_address_collision() {
        let addr = layout::GDT_BASE + 10 * 8 + 5;
        let state = TestState {
            items: vec![
                StateItem::MemByte(addr, 0x13),
                StateItem::MemByte(addr, 0x93),
            ],
        };
        assert_eq!(
            TestProgram::build("collide".into(), state, &[0x50]).unwrap_err(),
            GadgetError::AddressCollision(addr)
        );
        // The same byte twice with the same value is merely redundant.
        let state = TestState {
            items: vec![
                StateItem::MemByte(addr, 0x13),
                StateItem::MemByte(addr, 0x13),
            ],
        };
        assert!(TestProgram::build("dup".into(), state, &[0x50]).is_ok());
    }

    fn seg(name: &str, insn: &[u8], state: TestState, clobbers: &[&str]) -> ChainSegment {
        ChainSegment {
            name: name.into(),
            insn: insn.to_vec(),
            state,
            path_id: fnv1a(name.as_bytes()),
            clobbers: clobbers.iter().map(|c| (*c).to_owned()).collect(),
        }
    }

    #[test]
    fn chain_threads_state_and_skips_already_established_items() {
        // Segment 1 establishes EAX=5; segment 2 declares the same EAX=5
        // and nothing clobbered it, so no second initializer is emitted.
        let s1 = seg(
            "a",
            &[0x90],
            TestState {
                items: vec![StateItem::Gpr(Gpr::Eax, 5)],
            },
            &[],
        );
        let s2 = seg(
            "b",
            &[0x90],
            TestState {
                items: vec![StateItem::Gpr(Gpr::Eax, 5)],
            },
            &[],
        );
        let chained = TestProgram::chain("c".into(), &[s1.clone(), s2.clone()]).unwrap();
        assert_eq!(chained.segments.len(), 2);
        // Exactly one `mov eax, 5` (b8 05 00 00 00) in the whole program:
        // the baseline zeroes EAX, segment 1 sets it, segment 2 reuses it.
        let needle = [0xb8, 0x05, 0x00, 0x00, 0x00];
        let count = chained
            .code
            .windows(needle.len())
            .filter(|w| *w == needle)
            .count();
        assert_eq!(count, 1, "second segment must not re-establish EAX");

        // With a clobber reported between them, it must be re-established.
        let s1c = ChainSegment {
            clobbers: vec!["eax".into()],
            ..s1
        };
        let chained = TestProgram::chain("c2".into(), &[s1c, s2]).unwrap();
        let count = chained
            .code
            .windows(needle.len())
            .filter(|w| *w == needle)
            .count();
        assert_eq!(count, 2, "clobbered EAX must be re-established");
    }

    #[test]
    fn chain_restores_clobbered_unconstrained_state_to_baseline() {
        // Segment 1 clobbers EFLAGS; segment 2 declares nothing, so the
        // chainer restores the baseline EFLAGS image before it runs.
        let s1 = seg("flags", &[0xf8], TestState::default(), &["eflags"]);
        let s2 = seg("nop", &[0x90], TestState::default(), &[]);
        let chained = TestProgram::chain("r".into(), &[s1, s2]).unwrap();
        // push BASE_EFLAGS; popf appears once in the baseline and once as
        // the restore.
        let mut needle = vec![0x68];
        needle.extend_from_slice(&layout::BASE_EFLAGS.to_le_bytes());
        needle.push(0x9d);
        let count = chained
            .code
            .windows(needle.len())
            .filter(|w| *w == needle)
            .count();
        assert_eq!(count, 2, "baseline EFLAGS must be restored once");
    }

    #[test]
    fn chain_path_id_is_order_sensitive_and_deterministic() {
        let a = chain_path_id([1, 2, 3]);
        let b = chain_path_id([1, 2, 3]);
        let c = chain_path_id([3, 2, 1]);
        let d = chain_path_id([1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn chained_code_decodes_and_halts() {
        let s1 = seg(
            "fig5",
            &[0x50],
            TestState {
                items: vec![
                    StateItem::Gpr(Gpr::Esp, 0x002007dc),
                    StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
                ],
            },
            &["esp", "mem"],
        );
        let s2 = seg(
            "reload",
            &[0x8e, 0xd8],
            TestState {
                items: vec![StateItem::Gpr(Gpr::Eax, sel(5) as u32)],
            },
            &["sel_ds"],
        );
        let prog = TestProgram::chain("two".into(), &[s1, s2]).unwrap();
        assert_eq!(*prog.code.last().unwrap(), 0xf4);
        assert_eq!(prog.segments.len(), 2);
        assert!(prog.segments[0].insn_offset < prog.segments[1].insn_offset);
        assert_eq!(prog.test_insn, vec![0x8e, 0xd8]);
        // Every byte decodes.
        use pokemu_symx::Dom;
        let mut d = pokemu_symx::Concrete::new();
        let bytes = prog.code.clone();
        let mut off = 0;
        while off < bytes.len() {
            let w = bytes[off..].to_vec();
            let i = pokemu_isa::decode(&mut d, |d, k| {
                Ok(d.constant(8, *w.get(k as usize).unwrap_or(&0) as u64))
            })
            .expect("chained code must decode");
            off += i.len as usize;
        }
        assert_eq!(off, bytes.len());
    }
}
