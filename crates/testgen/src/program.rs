//! Complete test programs (paper §4, Fig. 4).
//!
//! A test program is the image a target boots: the fixed baseline
//! initializer, the per-test state initializers, the test instruction, and
//! `hlt`. Execution ends by halting or by an exception (whose baseline IDT
//! handler halts), at which point the harness snapshots the machine.

use pokemu_isa::asm::Asm;

use crate::gadgets::{GadgetError, GadgetPlan, TestState};
use crate::layout::{self, CODE_BASE};

/// A runnable test: code image plus metadata.
#[derive(Debug, Clone)]
pub struct TestProgram {
    /// Human-readable identity (instruction class + path id).
    pub name: String,
    /// The code blob, loaded at [`layout::CODE_BASE`].
    pub code: Vec<u8>,
    /// Offset of the test instruction within `code` (diagnostics).
    pub test_insn_offset: u32,
    /// The raw test-instruction bytes.
    pub test_insn: Vec<u8>,
    /// The state items this test establishes.
    pub state: TestState,
    /// The symbolic-exploration path this test exercises (0 when the test
    /// did not come from state-space exploration, e.g. random baselines).
    pub path_id: u64,
}

impl TestProgram {
    /// Builds a test program from a test state and instruction bytes.
    ///
    /// # Errors
    ///
    /// Propagates [`GadgetError`] if the state cannot be sequenced.
    pub fn build(
        name: String,
        state: TestState,
        test_insn: &[u8],
    ) -> Result<TestProgram, GadgetError> {
        let plan = GadgetPlan::build(&state)?;
        let mut a = Asm::new();
        layout::emit_baseline(&mut a, CODE_BASE);
        plan.emit(&mut a, CODE_BASE);
        let test_insn_offset = a.len() as u32;
        a.raw(test_insn);
        a.hlt();
        pokemu_rt::metrics::counter("testgen.programs").inc();
        Ok(TestProgram {
            name,
            code: a.into_bytes(),
            test_insn_offset,
            test_insn: test_insn.to_vec(),
            state,
            path_id: 0,
        })
    }

    /// A test with the baseline state only (no initializers).
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for interface uniformity.
    pub fn baseline_only(name: String, test_insn: &[u8]) -> Result<TestProgram, GadgetError> {
        Self::build(name, TestState::default(), test_insn)
    }

    /// The linear address of the test instruction.
    pub fn test_insn_address(&self) -> u32 {
        CODE_BASE + self.test_insn_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::StateItem;
    use pokemu_isa::state::Gpr;

    #[test]
    fn builds_the_fig5_push_eax_test() {
        // The paper's Fig. 5 sample: push %eax with a modified SS descriptor.
        let state = TestState {
            items: vec![
                StateItem::Gpr(Gpr::Esp, 0x002007dc),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 5, 0x13),
                StateItem::MemByte(layout::GDT_BASE + 10 * 8 + 6, 0xcf),
            ],
        };
        let prog = TestProgram::build("push_eax/fig5".into(), state, &[0x50]).unwrap();
        assert_eq!(prog.code[prog.test_insn_offset as usize], 0x50);
        assert_eq!(*prog.code.last().unwrap(), 0xf4);
        assert!(prog.code.len() > 150);
    }
}
