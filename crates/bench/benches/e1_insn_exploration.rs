//! E1 — instruction-set exploration (paper §6.1: 68,977 candidate byte
//! sequences collapse to 880 unique instructions). Prints the measured
//! counts for a deterministic opcode sweep and benchmarks the symbolic
//! decoder exploration itself.

use pokemu::explore::{explore_instruction_space, InsnSpaceConfig};
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    let mut candidates = 0usize;
    let mut unique = 0usize;
    let mut invalid = 0usize;
    for &b in pokemu_bench::SWEEP_BYTES {
        let r = explore_instruction_space(InsnSpaceConfig {
            first_byte: Some(b),
            second_byte: None,
            max_paths: 100_000,
        });
        candidates += r.candidates;
        unique += r.classes.len();
        invalid += r.invalid;
    }
    println!("[E1] sweep {:?}:", pokemu_bench::SWEEP_BYTES);
    println!("[E1] candidates={candidates} unique={unique} invalid_paths={invalid}");
    println!(
        "[E1] paper shape: candidates >> unique ({})",
        candidates > 2 * unique
    );
}

fn main() {
    report();
    let mut bench = Bench::new("e1");
    let mut g = bench.group("e1");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("explore_decoder_group_f7", |b| {
        b.iter(|| {
            explore_instruction_space(InsnSpaceConfig {
                first_byte: Some(0xf7),
                second_byte: None,
                max_paths: 100_000,
            })
        })
    });
    g.bench_function("explore_decoder_simple_push", |b| {
        b.iter(|| {
            explore_instruction_space(InsnSpaceConfig {
                first_byte: Some(0x50),
                second_byte: None,
                max_paths: 1000,
            })
        })
    });
    g.finish();
}
