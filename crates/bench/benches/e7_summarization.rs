//! E7 — summarizing common computations (paper §3.3.2: the descriptor-cache
//! update has ~23 paths; without summaries six cache loads would multiply
//! the space by 23^6 ≈ 1.48e8). Compares exploration of a segment-loading
//! instruction with and without the summary.

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::baseline_snapshot;
use pokemu::isa::translate::descriptor_checks;
use pokemu::symx::Executor;
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    // The summarized computation itself has the paper's ~23 path count.
    let mut exec = Executor::new();
    let summary = exec.summarize(
        &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
        |e, f| descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
    );
    println!(
        "[E7] descriptor-load computation: {} paths (paper: 23)",
        summary.cases()
    );

    let baseline = baseline_snapshot();
    for (label, use_summaries) in [("with summary", true), ("without summary", false)] {
        let t = std::time::Instant::now();
        let s = explore_state_space(
            &[0x8e, 0xd8],
            &baseline,
            StateSpaceConfig {
                max_paths: 384,
                use_summaries,
                ..Default::default()
            },
        );
        println!(
            "[E7] mov ds,ax {label:16}: {} paths complete={} queries={} in {:?}",
            s.paths.len(),
            s.complete,
            s.solver_queries,
            t.elapsed()
        );
    }
}

fn main() {
    report();
    let baseline = baseline_snapshot();
    let mut bench = Bench::new("e7");
    let mut g = bench.group("e7");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("seg_load_with_summary", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x8e, 0xd8],
                &baseline,
                StateSpaceConfig {
                    max_paths: 64,
                    use_summaries: true,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("seg_load_without_summary", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x8e, 0xd8],
                &baseline,
                StateSpaceConfig {
                    max_paths: 64,
                    use_summaries: false,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}
