//! E3 — three-way cross-validation (paper §6.2: of 610,516 tests, 60,770
//! differ on QEMU and 15,219 on Bochs, both vs hardware). Prints the
//! measured difference counts for the sweep (the shape: Lo-Fi >> Hi-Fi)
//! and benchmarks test execution on each target.

use pokemu::harness::{
    run_cross_validation, HardwareTarget, HiFiTarget, LofiTarget, PipelineConfig, Target,
};
use pokemu::lofi::Fidelity;
use pokemu::testgen::TestProgram;
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    let mut paths = 0usize;
    let (mut lofi, mut hifi) = (0usize, 0usize);
    for &b in pokemu_bench::SWEEP_BYTES {
        let r = run_cross_validation(PipelineConfig {
            first_byte: Some(b),
            max_paths_per_insn: 64,
            ..PipelineConfig::default()
        });
        paths += r.total_paths;
        lofi += r.lofi_differences;
        hifi += r.hifi_differences;
    }
    println!("[E3] tests={paths} lofi_diffs={lofi} hifi_diffs={hifi}");
    println!(
        "[E3] paper shape holds (lofi >> hifi): {} ({:.1}% vs {:.1}%)",
        lofi > hifi,
        100.0 * lofi as f64 / paths.max(1) as f64,
        100.0 * hifi as f64 / paths.max(1) as f64
    );
}

fn main() {
    report();
    let prog = TestProgram::baseline_only("bench".into(), &[0x90]).unwrap();
    let mut bench = Bench::new("e3_target_execution");
    let mut g = bench.group("e3_target_execution");
    g.sample_size(20);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("hifi_run_test_program", |b| {
        b.iter(|| HiFiTarget.run_program(&prog))
    });
    g.bench_function("lofi_run_test_program", |b| {
        b.iter(|| {
            LofiTarget {
                fidelity: Fidelity::QEMU_LIKE,
            }
            .run_program(&prog)
        })
    });
    g.bench_function("hardware_run_test_program", |b| {
        b.iter(|| HardwareTarget.run_program(&prog))
    });
    g.finish();
}
