//! E5 — random testing vs path-exploration lifting (paper §6.2/§8: random
//! testing cannot find the corner-case classes; PokeEMU found bugs prior
//! random-testing studies missed). Prints root-cause class counts for both
//! approaches at equal test budgets.

use pokemu::harness::{run_cross_validation, run_random_baseline, PipelineConfig, RandomConfig};
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    // Lifting on the finding-bearing opcodes.
    let mut lift_paths = 0;
    let mut lift_causes = std::collections::BTreeSet::new();
    for &b in &[0xc9u8, 0xa2, 0xd6] {
        let r = run_cross_validation(PipelineConfig {
            first_byte: Some(b),
            max_paths_per_insn: 64,
            ..PipelineConfig::default()
        });
        lift_paths += r.total_paths;
        for (cause, _, _) in r.lofi_clusters.iter() {
            lift_causes.insert(cause.to_string());
        }
    }
    // Random testing with the same budget.
    let r = run_random_baseline(RandomConfig {
        tests: lift_paths,
        ..Default::default()
    });
    let rand_causes: std::collections::BTreeSet<String> = r
        .lofi_clusters
        .iter()
        .map(|(c, _, _)| c.to_string())
        .collect();
    let identified = |set: &std::collections::BTreeSet<String>| -> Vec<String> {
        set.iter()
            .filter(|c| !c.starts_with("other"))
            .cloned()
            .collect()
    };
    let lift_named = identified(&lift_causes);
    let rand_named = identified(&rand_causes);
    println!("[E5] equal budget: {lift_paths} tests each");
    println!(
        "[E5] lifting identified {} named root causes: {:?}",
        lift_named.len(),
        lift_named
    );
    println!(
        "[E5] random  identified {} named root causes: {:?}",
        rand_named.len(),
        rand_named
    );
    let missed: Vec<_> = lift_named
        .iter()
        .filter(|c| !rand_named.contains(c))
        .collect();
    println!("[E5] named classes random testing missed: {missed:?} (paper: e.g. iret read order)");
}

fn main() {
    report();
    let mut bench = Bench::new("e5");
    let mut g = bench.group("e5");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("random_baseline_50_tests", |b| {
        b.iter(|| {
            run_random_baseline(RandomConfig {
                tests: 50,
                ..Default::default()
            })
        })
    });
    g.finish();
}
