//! A1 — fidelity ablation: each Lo-Fi fix eliminates exactly its root-cause
//! cluster, demonstrating the paper's claim that the generated tests "can
//! be used again in the future to validate the implementation" (§6.2).

use pokemu::harness::{run_cross_validation, PipelineConfig, RootCause};
use pokemu::lofi::Fidelity;
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn run(byte: u8, fid: Fidelity) -> (usize, Vec<String>) {
    let r = run_cross_validation(PipelineConfig {
        first_byte: Some(byte),
        max_paths_per_insn: 48,
        lofi_fidelity: fid,
        ..PipelineConfig::default()
    });
    let causes = r
        .lofi_clusters
        .iter()
        .map(|(c, n, _)| format!("{c} x{n}"))
        .collect();
    (r.lofi_filtered, causes)
}

fn report() {
    let rows: &[(&str, u8, Fidelity, RootCause)] = &[
        (
            "leave atomicity",
            0xc9,
            Fidelity {
                atomic_leave: true,
                ..Fidelity::QEMU_LIKE
            },
            RootCause::AtomicityViolation,
        ),
        (
            "segment checks",
            0xa2,
            Fidelity {
                enforce_segment_checks: true,
                ..Fidelity::QEMU_LIKE
            },
            RootCause::MissingSegmentChecks,
        ),
        (
            "encodings",
            0xd6,
            Fidelity {
                accept_undocumented: true,
                ..Fidelity::QEMU_LIKE
            },
            RootCause::EncodingRejected,
        ),
    ];
    for (label, byte, fixed, _cause) in rows {
        let (base_diffs, base_causes) = run(*byte, Fidelity::QEMU_LIKE);
        let (fixed_diffs, fixed_causes) = run(*byte, *fixed);
        println!("[A1] {label:18} opcode {byte:#04x}: {base_diffs} diffs {base_causes:?}");
        println!("[A1] {label:18}   after fix: {fixed_diffs} diffs {fixed_causes:?}");
    }
}

fn main() {
    report();
    let mut bench = Bench::new("a1");
    let mut g = bench.group("a1");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("pipeline_leave_qemu_like", |b| {
        b.iter(|| run(0xc9, Fidelity::QEMU_LIKE))
    });
    g.finish();
}
