//! E8 — state-difference minimization (paper §3.4: unconstrained bits
//! return to the baseline; none of the generated tests broke initializer
//! generation). Prints bits-before/after and generation success rates.

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::baseline_snapshot;
use pokemu::testgen::TestProgram;
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    let baseline = baseline_snapshot();
    let (mut before, mut after, mut ok, mut fail) = (0usize, 0usize, 0usize, 0usize);
    for insn in [
        vec![0xc9u8],
        vec![0x74, 2],
        vec![0xf7, 0xf1],
        vec![0x8e, 0xd8],
    ] {
        let s = explore_state_space(
            &insn,
            &baseline,
            StateSpaceConfig {
                max_paths: 128,
                ..Default::default()
            },
        );
        for p in &s.paths {
            before += p.minimize.bits_before;
            after += p.minimize.bits_after;
            match TestProgram::build("e8".into(), p.state.clone(), &insn) {
                Ok(_) => ok += 1,
                Err(_) => fail += 1,
            }
        }
    }
    println!(
        "[E8] bits differing from baseline: {before} -> {after} ({:.1}% kept)",
        100.0 * after as f64 / before.max(1) as f64
    );
    println!("[E8] initializer generation: {ok} ok / {fail} failures (paper: zero failures)");
}

fn main() {
    report();
    let baseline = baseline_snapshot();
    let mut bench = Bench::new("e8");
    let mut g = bench.group("e8");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("explore_with_minimization", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x74, 2],
                &baseline,
                StateSpaceConfig {
                    max_paths: 16,
                    minimize: true,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("explore_without_minimization", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x74, 2],
                &baseline,
                StateSpaceConfig {
                    max_paths: 16,
                    minimize: false,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}
