//! E6 — cost breakdown and parallel scaling (paper §6: generation cost
//! "lies in the invocations of the solver" and dominates; generation and
//! execution are both highly parallelizable — 3x8-core EC2).

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::{
    baseline_snapshot, run_cross_validation, run_on_all_targets, PipelineConfig,
};
use pokemu::lofi::Fidelity;
use pokemu_rt::bench::Bench;
use std::time::Duration;
use std::time::Instant;

fn report() {
    let baseline = baseline_snapshot();
    let t = Instant::now();
    let space = explore_state_space(
        &[0xf7, 0xf1],
        &baseline,
        StateSpaceConfig {
            max_paths: 64,
            ..Default::default()
        },
    );
    let gen = t.elapsed();
    let progs = pokemu::explore::to_test_programs(&space, "e6");
    let t = Instant::now();
    for p in &progs {
        let _ = run_on_all_targets(p, Fidelity::QEMU_LIKE);
    }
    let exec = t.elapsed();
    println!(
        "[E6] div ecx: gen {gen:?} for {} paths ({} solver queries); exec x3 {exec:?}",
        space.paths.len(),
        space.solver_queries
    );
    println!(
        "[E6] generation/execution ratio per test: {:.1} (paper: generation dominates)",
        gen.as_secs_f64() / exec.as_secs_f64().max(1e-9)
    );
    for threads in [1usize, 2] {
        let cv = run_cross_validation(PipelineConfig {
            first_byte: Some(0x80),
            max_paths_per_insn: 32,
            threads,
            ..PipelineConfig::default()
        });
        let s = &cv.stages;
        println!(
            "[E6] pipeline (opcode 0x80) with {threads} threads: total {:?} \
             (explore {:?}, generate {:?}, execute {:?}, analyze {:?}; \
             parallel wall {:?}; {} solver queries)",
            s.total_wall,
            s.explore_insns,
            s.generate,
            s.execute,
            s.analyze,
            s.parallel_wall,
            s.solver_queries
        );
        for w in &s.workers {
            println!(
                "[E6]   worker {}: {} insns, busy {:?}",
                w.worker, w.items, w.busy
            );
        }
    }
}

fn main() {
    report();
    let baseline = baseline_snapshot();
    let mut bench = Bench::new("e6");
    let mut g = bench.group("e6");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("generation_unit", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x74, 0x02],
                &baseline,
                StateSpaceConfig {
                    max_paths: 16,
                    ..Default::default()
                },
            )
        })
    });
    let prog = pokemu::testgen::TestProgram::baseline_only("e6".into(), &[0x90]).unwrap();
    g.bench_function("execution_unit", |b| {
        b.iter(|| run_on_all_targets(&prog, Fidelity::QEMU_LIKE))
    });
    g.finish();
}
