//! E2 — machine-state-space exploration (paper §6.1: 610,516 paths, >=95%
//! of instructions with complete path coverage, cap 8192). Prints per-
//! instruction path counts and coverage, and benchmarks exploration.

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::baseline_snapshot;
use pokemu_rt::bench::Bench;
use std::time::Duration;

fn report() {
    let baseline = baseline_snapshot();
    let insns: &[(&str, &[u8])] = &[
        ("clc", &[0xf8]),
        ("push eax", &[0x50]),
        ("jz rel8", &[0x74, 0x02]),
        ("add eax, imm", &[0x05, 0, 0, 0, 0]),
        ("div ecx", &[0xf7, 0xf1]),
        ("leave", &[0xc9]),
        ("mov ds, ax", &[0x8e, 0xd8]),
    ];
    println!("[E2] instruction | paths | complete coverage");
    let mut complete = 0;
    for (name, bytes) in insns {
        let s = explore_state_space(
            bytes,
            &baseline,
            StateSpaceConfig {
                max_paths: 256,
                ..Default::default()
            },
        );
        println!("[E2] {name:14} | {:5} | {}", s.paths.len(), s.complete);
        complete += s.complete as usize;
    }
    println!(
        "[E2] complete coverage: {complete}/{} = {:.0}% (paper: ~95%)",
        insns.len(),
        100.0 * complete as f64 / insns.len() as f64
    );
}

fn main() {
    report();
    let baseline = baseline_snapshot();
    let mut bench = Bench::new("e2");
    let mut g = bench.group("e2");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("explore_state_space_div", |b| {
        b.iter(|| {
            explore_state_space(
                &[0xf7, 0xf1],
                &baseline,
                StateSpaceConfig {
                    max_paths: 128,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("explore_state_space_leave", |b| {
        b.iter(|| {
            explore_state_space(
                &[0xc9],
                &baseline,
                StateSpaceConfig {
                    max_paths: 64,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}
