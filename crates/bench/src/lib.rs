//! Shared helpers for the PokeEMU-rs benchmark suite.
//!
//! Every bench regenerates one experiment of the paper's evaluation
//! (see DESIGN.md's experiment index and EXPERIMENTS.md for the results):
//! it prints the measured table rows and times the dominant computation
//! with the `pokemu_rt::bench` timer harness (JSON lines in `target/bench/`).

/// A tiny deterministic opcode set exercising all decode forms, used by
/// benches that sweep instructions.
pub const SWEEP_BYTES: &[u8] = &[0x50, 0x74, 0xc9, 0xf7];
