//! Offline reporting over the pipeline's run artifacts.
//!
//! ```text
//! pokemu-report [--run NAME] [--dir PATH] [--top N] [--check]
//! pokemu-report coverage [--manifest PATH]
//! pokemu-report diff --baseline PATH [--manifest PATH] [--check]
//! pokemu-report conformance [--roms DIR] [--threads N] [--write]
//! pokemu-report perf [--run NAME] [--dir PATH] [--top N] [--check]
//! pokemu-report bench [--baselines DIR] [--bench-dir PATH] [--check]
//! pokemu-report compare <run-a> <run-b> [--ledger PATH]
//! pokemu-report trend [--last N] [--ledger PATH] [--check]
//! pokemu-report history <gc|verify> [--cap N] [--ledger PATH]
//! ```
//!
//! Every mode also accepts `--json` for a single-line machine-readable
//! report on stdout (gate diagnostics stay on stderr, exit codes are
//! unchanged), so fleet tooling and CI consume reports without scraping
//! text.
//!
//! The default (no subcommand) mode reads the Chrome `trace_event` JSON and
//! metrics JSONL that `run_cross_validation` writes under `POKEMU_TRACE=1`
//! and prints where the time went; `--check` gates on the trace parsing,
//! all five Fig. 1 stage spans being present, and zero dropped events.
//!
//! `coverage` prints the coverage section of a run manifest (written under
//! `POKEMU_RUN_MANIFEST=1`). `diff` compares a run manifest against a
//! committed baseline manifest and, with `--check`, fails when coverage
//! bits present in the baseline are missing from the run or the root-cause
//! cluster set changed — the CI regression gate. Both subcommands also
//! accept a fleet merged manifest (`target/fleet/<run>/merged.json`,
//! DESIGN.md §13); `diff` additionally fails when shards are poisoned that
//! the baseline did not have, naming each one.
//!
//! `perf` is the performance-observatory view: the pipeline wall-time
//! attribution table (with `--check` requiring ≥95% of `pipeline.ns.total`
//! attributed to the four top-level stages), the lofi/hifi per-run
//! throughput ratio, the hottest lo-fi translation blocks, and solver time
//! split by query origin. `bench` gates the `pokemu-bench` workload
//! results against the committed baselines in `tests/baselines/bench/`:
//! counts must match exactly, ratios must stay inside their bands.
//!
//! `compare`, `trend`, and `history` operate over the run ledger
//! (`target/history/ledger.jsonl`, DESIGN.md §12): `compare` diffs two
//! records and decomposes the wall-time delta into stage → solver-origin →
//! hot-TB contributions covering ≥90% of it; `trend` applies the
//! integer-only median/MAD gate per `(kind, config-fingerprint)` group
//! (`--check` fails by metric name); `history gc`/`history verify` manage
//! retention and content-hash integrity.
//!
//! Exit codes (all modes): 0 OK, 1 gate violation (the violating metric /
//! map / cluster names are printed), 2 missing or unreadable input.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pokemu::harness::manifest as run_manifest;
use pokemu_rt::coverage::MapSnapshot;
use pokemu_rt::history::{self, RunRecord};
use pokemu_rt::json::{self, escape, Value};
use pokemu_rt::trace;

/// Exit code for a failed `--check` gate.
const EXIT_VIOLATION: u8 = 1;
/// Exit code for missing or unparseable input files.
const EXIT_MISSING_INPUT: u8 = 2;

/// The five pipeline stages of the paper's Fig. 1; `--check` requires a
/// span for each.
const STAGES: [&str; 5] = [
    "stage.explore_insns",
    "stage.explore_states",
    "stage.testgen",
    "stage.execute",
    "stage.analyze",
];

/// One complete (`"ph":"X"`) event pulled back out of the trace file.
struct Span {
    name: String,
    tid: u64,
    dur_us: f64,
    insn: Option<String>,
}

/// One histogram line from the metrics JSONL: (bucket lower bound, count).
struct Hist {
    count: u64,
    sum: u64,
    buckets: Vec<(u64, u64)>,
}

impl Hist {
    /// Quantile by bucket lower bound, mirroring
    /// `pokemu_rt::metrics::HistogramSnapshot::quantile`.
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen > rank {
                return lo;
            }
        }
        self.buckets.last().map(|&(lo, _)| lo).unwrap_or(0)
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

struct Report {
    spans: Vec<Span>,
    thread_names: BTreeMap<u64, String>,
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Hist>,
}

fn load(dir: &std::path::Path, run: &str) -> Result<Report, String> {
    let trace_path = dir.join(format!("{run}.trace.json"));
    let metrics_path = dir.join(format!("{run}.metrics.jsonl"));

    let text = std::fs::read_to_string(&trace_path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run with POKEMU_TRACE=1 first)",
            trace_path.display()
        )
    })?;
    let root = json::parse(&text).map_err(|e| format!("{}: {e}", trace_path.display()))?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{}: no traceEvents array", trace_path.display()))?;

    let mut spans = Vec::new();
    let mut thread_names = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if let Some(n) = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                    {
                        thread_names.insert(tid, n.to_owned());
                    }
                }
            }
            "X" => spans.push(Span {
                name: ev
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                tid,
                dur_us: ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0),
                insn: ev
                    .get("args")
                    .and_then(|a| a.get("insn"))
                    .and_then(Value::as_str)
                    .map(str::to_owned),
            }),
            _ => {}
        }
    }

    let mut counters = BTreeMap::new();
    let mut timers = BTreeMap::new();
    let mut histograms = BTreeMap::new();
    let mtext = std::fs::read_to_string(&metrics_path)
        .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))?;
    for line in mtext.lines().filter(|l| !l.trim().is_empty()) {
        let v = json::parse(line).map_err(|e| format!("{}: {e}", metrics_path.display()))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned();
        match v.get("kind").and_then(Value::as_str) {
            Some("counter") => {
                counters.insert(name, v.get("value").and_then(Value::as_u64).unwrap_or(0));
            }
            Some("histogram") => {
                let buckets = v
                    .get("buckets")
                    .and_then(Value::as_array)
                    .map(|bs| {
                        bs.iter()
                            .filter_map(|b| {
                                let pair = b.as_array()?;
                                Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                histograms.insert(
                    name,
                    Hist {
                        count: v.get("count").and_then(Value::as_u64).unwrap_or(0),
                        sum: v.get("sum").and_then(Value::as_u64).unwrap_or(0),
                        buckets,
                    },
                );
            }
            Some("timer") => {
                timers.insert(name, v.get("ns").and_then(Value::as_u64).unwrap_or(0));
            }
            _ => {}
        }
    }

    Ok(Report {
        spans,
        thread_names,
        counters,
        timers,
        histograms,
    })
}

fn ms(us: f64) -> String {
    format!("{:.3} ms", us / 1000.0)
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole <= 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

impl Report {
    fn stage_total(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum()
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn print(&self, top: usize) {
        // Stage breakdown: wall spans vs. the run span they tile.
        let run = self.stage_total("pipeline.run");
        println!("== stage breakdown");
        for name in [
            "pipeline.setup",
            "stage.explore_insns",
            "stage.parallel",
            "stage.analyze",
        ] {
            let d = self.stage_total(name);
            println!("  {name:<22} {:>12}  {:5.1}% of run", ms(d), pct(d, run));
        }
        let tiled = self.stage_total("pipeline.setup")
            + self.stage_total("stage.explore_insns")
            + self.stage_total("stage.parallel")
            + self.stage_total("stage.analyze");
        println!(
            "  {:<22} {:>12}  (spans cover {:.1}% of pipeline.run = {})",
            "sum",
            ms(tiled),
            pct(tiled, run),
            ms(run)
        );
        println!("== worker time inside stage.parallel");
        for name in ["stage.explore_states", "stage.testgen", "stage.execute"] {
            let d = self.stage_total(name);
            println!("  {name:<22} {:>12}", ms(d));
        }

        // Top-N slowest instructions.
        let mut insns: Vec<&Span> = self
            .spans
            .iter()
            .filter(|s| s.name == "pipeline.instruction")
            .collect();
        insns.sort_by(|a, b| b.dur_us.total_cmp(&a.dur_us));
        println!(
            "== top {} slowest instructions (of {})",
            top.min(insns.len()),
            insns.len()
        );
        for s in insns.iter().take(top) {
            println!(
                "  {:<20} {:>12}  on {}",
                s.insn.as_deref().unwrap_or("?"),
                ms(s.dur_us),
                self.thread_names
                    .get(&s.tid)
                    .map(String::as_str)
                    .unwrap_or("main"),
            );
        }

        // Solver work split.
        let queries = self.counter("solver.queries");
        let sat = self.counter("solver.sat");
        let unsat = self.counter("solver.unsat");
        let unknown = self.counter("solver.unknown");
        let summary_hits = self.counter("symx.summary_hits");
        let cache_hits = self.counter("symx.pick_cache_hits");
        println!("== solver");
        println!(
            "  queries {queries}  sat {sat} ({:.1}%)  unsat {unsat} ({:.1}%)  unknown {unknown}",
            pct(sat as f64, queries as f64),
            pct(unsat as f64, queries as f64)
        );
        println!("  summary hits {summary_hits}  pick-cache hits {cache_hits}");
        let quarantined = self.counter("pool.quarantined");
        let injected = self.counter("fault.injected");
        if quarantined > 0 || injected > 0 {
            println!("== robustness");
            println!("  pool.quarantined {quarantined}  fault.injected {injected}");
        }

        // Worker utilization: per-tid busy time inside the parallel stage.
        let parallel = self.stage_total("stage.parallel");
        let mut busy: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
        for s in self
            .spans
            .iter()
            .filter(|s| s.name == "pipeline.instruction")
        {
            let e = busy.entry(s.tid).or_insert((0.0, 0));
            e.0 += s.dur_us;
            e.1 += 1;
        }
        println!("== worker utilization ({} workers)", busy.len());
        for (tid, (us, items)) in &busy {
            println!(
                "  {:<12} {:>12} busy  {:5.1}%  {items} insns",
                self.thread_names
                    .get(tid)
                    .map(String::as_str)
                    .unwrap_or("main"),
                ms(*us),
                pct(*us, parallel),
            );
        }

        // Histogram summaries.
        println!("== histograms");
        for (name, h) in &self.histograms {
            println!(
                "  {name:<22} n={:<7} mean={:<12.1} p50>={:<10} p95>={}",
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95)
            );
        }
        println!("== trace health");
        let dropped = self.counter("trace.dropped_events");
        println!("  trace.dropped_events {dropped}");
        if dropped > 0 {
            println!(
                "  WARNING: the trace ring dropped {dropped} event(s) — spans are missing \
                 from this report; the stage breakdown above undercounts"
            );
        }
    }

    /// CI gate: all five Fig. 1 stages present, nothing dropped.
    fn check(&self) -> Result<(), String> {
        let mut missing: Vec<&str> = STAGES
            .iter()
            .filter(|&&st| !self.spans.iter().any(|s| s.name == st))
            .copied()
            .collect();
        missing.sort_unstable();
        if !missing.is_empty() {
            return Err(format!("missing stage spans: {}", missing.join(", ")));
        }
        let dropped = self.counter("trace.dropped_events");
        if dropped > 0 {
            return Err(format!("trace.dropped_events = {dropped} (want 0)"));
        }
        Ok(())
    }

    fn timer(&self, name: &str) -> u64 {
        self.timers.get(name).copied().unwrap_or(0)
    }

    /// The four top-level stage timers the attribution gate sums, as
    /// `(label, ns)` pairs.
    fn attribution(&self) -> [(&'static str, u64); 4] {
        [
            ("pipeline.ns.setup", self.timer("pipeline.ns.setup")),
            (
                "pipeline.ns.explore_insns",
                self.timer("pipeline.ns.explore_insns"),
            ),
            ("pipeline.ns.parallel", self.timer("pipeline.ns.parallel")),
            ("pipeline.ns.analyze", self.timer("pipeline.ns.analyze")),
        ]
    }

    /// Mean `target.<name>.ns / target.<name>.runs` in nanoseconds.
    fn target_mean_ns(&self, target: &str) -> f64 {
        let runs = self.counter(&format!("target.{target}.runs"));
        if runs == 0 {
            return 0.0;
        }
        self.timer(&format!("target.{target}.ns")) as f64 / runs as f64
    }

    /// The performance-observatory view over one exported run.
    fn print_perf(&self, hot: &[(u64, u64)], top: usize) {
        let total = self.timer("pipeline.ns.total");
        println!("== wall-time attribution (pipeline.ns.*)");
        let mut attributed = 0u64;
        for (name, ns) in self.attribution() {
            attributed += ns;
            println!(
                "  {name:<28} {:>12}  {:5.1}% of total",
                ms(ns as f64 / 1000.0),
                pct(ns as f64, total as f64)
            );
        }
        println!(
            "  {:<28} {:>12}  ({:.1}% of pipeline.ns.total = {})",
            "attributed",
            ms(attributed as f64 / 1000.0),
            pct(attributed as f64, total as f64),
            ms(total as f64 / 1000.0)
        );

        println!("== emulator throughput (mean per run_program)");
        let hifi = self.target_mean_ns("hifi");
        let lofi = self.target_mean_ns("lofi");
        let hw = self.target_mean_ns("hardware");
        println!(
            "  hifi {:>12}  lofi {:>12}  hardware {:>12}  ({} runs each side)",
            ms(hifi / 1000.0),
            ms(lofi / 1000.0),
            ms(hw / 1000.0),
            self.counter("target.lofi.runs")
        );
        if lofi > 0.0 {
            let r = hifi / lofi;
            if r < 1.0 {
                println!(
                    "  hifi/lofi ratio {r:.3}  (WARNING — e3 inversion: the lo-fi DBT is \
                     SLOWER than the hi-fi interpreter here)"
                );
            } else {
                println!(
                    "  hifi/lofi ratio {r:.3}  (lofi ≥ {r:.1}x hifi — chained execution \
                     layer healthy, no e3 inversion)"
                );
            }
        }

        // Dispatch-strategy health: how often execution stayed on the
        // chained fast path vs falling back to a lookup or a translation.
        let chain_hits = self.counter("lofi.chain.hits");
        let lookups = self.counter("lofi.tb_lookup.hits") + self.counter("lofi.tb_lookup.misses");
        let dispatches = chain_hits + lookups;
        if dispatches > 0 {
            println!(
                "  chain-hit rate {:5.1}%  ({chain_hits} of {dispatches} dispatches entered \
                 via a followed chain link)",
                pct(chain_hits as f64, dispatches as f64)
            );
        }
        let lc_hits = self.counter("lofi.chain.lookup_cache.hits");
        let lc_total = lc_hits + self.counter("lofi.chain.lookup_cache.misses");
        if lc_total > 0 {
            println!(
                "  lookup-cache hit rate {:5.1}%  ({lc_hits} of {lc_total} inline probes)",
                pct(lc_hits as f64, lc_total as f64)
            );
        }

        println!(
            "== top {} hot lo-fi translation blocks (of {})",
            top.min(hot.len()),
            hot.len()
        );
        for (eip, execs) in hot.iter().take(top) {
            println!("  eip {eip:#010x}  {execs} execs");
        }

        println!("== solver time by query origin");
        for o in pokemu::solver::origin::ORIGINS {
            let q = self.counter(&format!("solver.queries.{o}"));
            let ns = self.timer(&format!("solver.ns.{o}"));
            if q == 0 && ns == 0 {
                continue;
            }
            let mean_us = if q == 0 {
                0.0
            } else {
                ns as f64 / q as f64 / 1000.0
            };
            println!(
                "  {o:<12} {q:>7} queries  {:>12}  mean {mean_us:.1} µs",
                ms(ns as f64 / 1000.0)
            );
        }
        let dropped = self.counter("trace.dropped_events");
        if dropped > 0 {
            println!("  WARNING: trace ring dropped {dropped} event(s); timings undercount");
        }
    }

    /// `perf --check` gate: the four stage timers must cover ≥95% of the
    /// pipeline's total wall time — anything less means a stage is running
    /// outside the attribution (a new unattributed phase crept in).
    fn check_perf(&self) -> Result<(), String> {
        let total = self.timer("pipeline.ns.total");
        if total == 0 {
            return Err(
                "no pipeline.ns.total timer in the metrics dump (re-run the pipeline under \
                 POKEMU_TRACE=1 or POKEMU_PROF=1)"
                    .to_owned(),
            );
        }
        let attributed: u64 = self.attribution().iter().map(|&(_, ns)| ns).sum();
        let frac = attributed as f64 / total as f64;
        if frac < 0.95 {
            return Err(format!(
                "only {:.1}% of pipeline wall time attributed to stages (want ≥95%): \
                 attributed {} of {}",
                100.0 * frac,
                ms(attributed as f64 / 1000.0),
                ms(total as f64 / 1000.0)
            ));
        }
        Ok(())
    }
}

/// Parses `<run>.hot.jsonl` (the pipeline's hot-TB dump) into
/// `(eip, execs)` rows; an absent file is an empty table, not an error —
/// hot TBs are additive detail.
fn load_hot_tbs(dir: &Path, run: &str) -> Vec<(u64, u64)> {
    let Ok(text) = std::fs::read_to_string(dir.join(format!("{run}.hot.jsonl"))) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| {
            let v = json::parse(l).ok()?;
            if v.get("kind").and_then(Value::as_str) != Some("hot_tb") {
                return None;
            }
            Some((
                v.get("eip").and_then(Value::as_u64)?,
                v.get("execs").and_then(Value::as_u64)?,
            ))
        })
        .collect()
}

/// `pokemu-report perf`: wall-time attribution, throughput ratio, hot TBs,
/// and solver origin split for one exported run.
fn cmd_perf(args: &mut std::env::Args) -> ExitCode {
    let mut run = "cross_validation".to_owned();
    let mut dir = trace::trace_dir();
    let mut top = 10usize;
    let mut check = false;
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--run" => run = args.next().unwrap_or_default(),
            "--dir" => dir = args.next().unwrap_or_default().into(),
            "--top" => top = args.next().and_then(|v| v.parse().ok()).unwrap_or(top),
            "--check" => check = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report perf [--run NAME] [--dir PATH] [--top N] [--check] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    let report = match load(&dir, &run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[pokemu-report] {e}");
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    let hot = load_hot_tbs(&dir, &run);
    let check_result = if check {
        Some(report.check_perf())
    } else {
        None
    };
    if json_out {
        let attribution: Vec<String> = report
            .attribution()
            .iter()
            .map(|(name, ns)| format!("\"{}\":{ns}", escape(name)))
            .collect();
        let hot_rows: Vec<String> = hot
            .iter()
            .take(top)
            .map(|(eip, execs)| format!("[{eip},{execs}]"))
            .collect();
        let origins: Vec<String> = pokemu::solver::origin::ORIGINS
            .iter()
            .map(|o| {
                format!(
                    "\"{o}\":{{\"queries\":{},\"ns\":{}}}",
                    report.counter(&format!("solver.queries.{o}")),
                    report.timer(&format!("solver.ns.{o}"))
                )
            })
            .collect();
        println!(
            "{{\"mode\":\"perf\",\"run\":\"{}\",\"total_ns\":{},\"attribution\":{{{}}},\
             \"target_mean_ns\":{{\"hifi\":{},\"lofi\":{},\"hardware\":{}}},\
             \"hot_tbs\":[{}],\"solver\":{{{}}},\"check\":{}}}",
            escape(&run),
            report.timer("pipeline.ns.total"),
            attribution.join(","),
            jnum(report.target_mean_ns("hifi")),
            jnum(report.target_mean_ns("lofi")),
            jnum(report.target_mean_ns("hardware")),
            hot_rows.join(","),
            origins.join(","),
            match &check_result {
                None => "null".to_string(),
                Some(Ok(())) => "\"ok\"".to_string(),
                Some(Err(e)) => format!("\"{}\"", escape(e)),
            }
        );
    } else {
        report.print_perf(&hot, top);
    }
    if let Some(result) = check_result {
        if let Err(e) = result {
            eprintln!("[pokemu-report] perf check FAILED: {e}");
            return ExitCode::from(EXIT_VIOLATION);
        }
        if !json_out {
            println!("[pokemu-report] perf check OK: ≥95% of pipeline wall time attributed");
        }
    }
    ExitCode::SUCCESS
}

/// One committed bench baseline: exact counts plus `[min, max]` ratio
/// bands.
struct BenchBaseline {
    workload: String,
    counts: Vec<(String, u64)>,
    ratios: Vec<(String, f64, f64)>,
}

/// One `pokemu-bench` result file (`<workload>.perf.json`).
struct BenchRun {
    counts: BTreeMap<String, u64>,
    ratios: BTreeMap<String, f64>,
}

fn load_bench_baseline(path: &Path) -> Result<BenchBaseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let workload = v
        .get("workload")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{}: no workload name", path.display()))?
        .to_owned();
    let mut counts = Vec::new();
    if let Some(Value::Obj(cs)) = v.get("counts") {
        for (k, c) in cs {
            counts.push((
                k.clone(),
                c.as_u64()
                    .ok_or_else(|| format!("{}: count {k} not a number", path.display()))?,
            ));
        }
    }
    let mut ratios = Vec::new();
    if let Some(Value::Obj(rs)) = v.get("ratios") {
        for (k, band) in rs {
            let (min, max) = match (
                band.get("min").and_then(Value::as_f64),
                band.get("max").and_then(Value::as_f64),
            ) {
                (Some(min), Some(max)) => (min, max),
                _ => return Err(format!("{}: ratio {k} has no min/max band", path.display())),
            };
            ratios.push((k.clone(), min, max));
        }
    }
    Ok(BenchBaseline {
        workload,
        counts,
        ratios,
    })
}

fn load_bench_run(path: &Path) -> Result<BenchRun, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run scripts/bench.sh first)",
            path.display()
        )
    })?;
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let checked = v
        .get("checked")
        .ok_or_else(|| format!("{}: no checked section", path.display()))?;
    let mut counts = BTreeMap::new();
    if let Some(Value::Obj(cs)) = checked.get("counts") {
        for (k, c) in cs {
            counts.insert(k.clone(), c.as_u64().unwrap_or(0));
        }
    }
    let mut ratios = BTreeMap::new();
    if let Some(Value::Obj(rs)) = checked.get("ratios") {
        for (k, r) in rs {
            ratios.insert(k.clone(), r.as_f64().unwrap_or(0.0));
        }
    }
    Ok(BenchRun { counts, ratios })
}

/// The committed bench baselines: `<repo>/tests/baselines/bench`, located
/// relative to the target directory like the conformance ROMs.
fn default_bench_baselines_dir() -> PathBuf {
    pokemu_rt::bench::target_dir()
        .parent()
        .map(|p| p.join("tests/baselines/bench"))
        .unwrap_or_else(|| PathBuf::from("tests/baselines/bench"))
}

/// `pokemu-report bench`: gate `pokemu-bench` results against the
/// committed baselines. Counts compare exactly; ratios must stay inside
/// their baseline bands. Violations name the workload and field.
fn cmd_bench(args: &mut std::env::Args) -> ExitCode {
    let mut baselines = default_bench_baselines_dir();
    let mut bench_dir = pokemu_rt::bench::target_dir().join("bench");
    let mut check = false;
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baselines" => baselines = args.next().unwrap_or_default().into(),
            "--bench-dir" => bench_dir = args.next().unwrap_or_default().into(),
            "--check" => check = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report bench [--baselines DIR] [--bench-dir PATH] [--check] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }

    let mut names: Vec<PathBuf> = match std::fs::read_dir(&baselines) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("[pokemu-report] cannot read {}: {e}", baselines.display());
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!(
            "[pokemu-report] no baselines under {} (run pokemu-bench --write-baselines)",
            baselines.display()
        );
        return ExitCode::from(EXIT_MISSING_INPUT);
    }

    let mut violations: Vec<String> = Vec::new();
    let mut workload_names: Vec<String> = Vec::new();
    for bpath in &names {
        let base = match load_bench_baseline(bpath) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("[pokemu-report] {e}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        };
        let rpath = bench_dir.join(format!("{}.perf.json", base.workload));
        let run = match load_bench_run(&rpath) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[pokemu-report] {e}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        };
        workload_names.push(base.workload.clone());
        if !json_out {
            println!("== bench {}", base.workload);
        }
        for (k, want) in &base.counts {
            let got = run.counts.get(k).copied();
            let ok = got == Some(*want);
            if !json_out {
                println!(
                    "  count {k:<24} baseline {want:<10} run {:<10} {}",
                    got.map_or("<missing>".to_owned(), |g| g.to_string()),
                    if ok { "ok" } else { "MISMATCH" }
                );
            }
            if !ok {
                violations.push(format!(
                    "{}: count {k} = {} (baseline {want})",
                    base.workload,
                    got.map_or("<missing>".to_owned(), |g| g.to_string())
                ));
            }
        }
        for (k, min, max) in &base.ratios {
            let got = run.ratios.get(k).copied();
            let ok = got.is_some_and(|g| g.is_finite() && g >= *min && g <= *max);
            if !json_out {
                println!(
                    "  ratio {k:<24} band [{min:.4}, {max:.4}] run {:<12} {}",
                    got.map_or("<missing>".to_owned(), |g| format!("{g:.4}")),
                    if ok { "ok" } else { "OUT OF BAND" }
                );
            }
            if !ok {
                violations.push(format!(
                    "{}: ratio {k} = {} outside [{min:.4}, {max:.4}]",
                    base.workload,
                    got.map_or("<missing>".to_owned(), |g| format!("{g:.4}"))
                ));
            }
        }
    }

    if json_out {
        println!(
            "{{\"mode\":\"bench\",\"baselines\":\"{}\",\"workloads\":{},\"violations\":{},\
             \"ok\":{}}}",
            escape(&baselines.display().to_string()),
            jlist(&workload_names),
            jlist(&violations),
            violations.is_empty()
        );
    }
    if violations.is_empty() {
        if !json_out {
            println!(
                "[pokemu-report] bench OK: {} workload(s) within baselines",
                names.len()
            );
        }
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("[pokemu-report] bench violation: {v}");
    }
    if check {
        eprintln!(
            "[pokemu-report] bench FAILED: {} violation(s)",
            violations.len()
        );
        return ExitCode::from(EXIT_VIOLATION);
    }
    ExitCode::SUCCESS
}

/// The decoded pieces of one `manifest.json` the diff gate compares.
struct ManifestData {
    run_id: String,
    /// map name -> bitmap.
    coverage: BTreeMap<String, MapSnapshot>,
    /// target (`lofi`/`hifi`) -> sorted root-cause names.
    clusters: BTreeMap<String, Vec<String>>,
    deviations: usize,
    /// `"completed"` flag; manifests older than the robustness layer read
    /// as completed (they could only exist by finishing).
    completed: bool,
    /// `robustness.quarantined` count (0 for pre-robustness manifests).
    quarantined: u64,
    /// `robustness.unknown_queries` count (0 for pre-robustness manifests).
    unknown_queries: u64,
    /// `fleet.poisoned` shard names, sorted (empty for non-fleet
    /// manifests): shards whose worker exhausted its retry budget.
    poisoned: Vec<String>,
}

fn load_manifest(path: &Path) -> Result<ManifestData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {}: {e} (run with POKEMU_RUN_MANIFEST=1 first)",
            path.display()
        )
    })?;
    let root = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let run_id = root
        .get("run_id")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_owned();
    let mut coverage = BTreeMap::new();
    if let Some(Value::Obj(maps)) = root.get("coverage") {
        for (name, v) in maps {
            let m = MapSnapshot::from_value(v)
                .ok_or_else(|| format!("{}: bad coverage map {name}", path.display()))?;
            coverage.insert(name.clone(), m);
        }
    }
    let mut clusters = BTreeMap::new();
    if let Some(Value::Obj(targets)) = root.get("clusters") {
        for (target, list) in targets {
            let mut causes: Vec<String> = list
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|c| c.get("cause")?.as_str().map(str::to_owned))
                .collect();
            causes.sort();
            clusters.insert(target.clone(), causes);
        }
    }
    let deviations = root
        .get("deviations")
        .and_then(Value::as_array)
        .map(<[Value]>::len)
        .unwrap_or(0);
    let completed = root
        .get("completed")
        .and_then(Value::as_bool)
        .unwrap_or(true);
    let robustness = root.get("robustness");
    let rob_count = |key: &str| {
        robustness
            .and_then(|r| r.get(key))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    let quarantined = rob_count("quarantined");
    let unknown_queries = rob_count("unknown_queries");
    let mut poisoned: Vec<String> = root
        .get("fleet")
        .and_then(|f| f.get("poisoned"))
        .and_then(Value::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default();
    poisoned.sort();
    Ok(ManifestData {
        run_id,
        coverage,
        clusters,
        deviations,
        completed,
        quarantined,
        unknown_queries,
        poisoned,
    })
}

/// The default manifest to inspect: `target/run/<id>/manifest.json`, with
/// the id from `POKEMU_RUN_ID` (falling back to the CI run id, `smoke`).
fn default_manifest_path() -> PathBuf {
    let id = std::env::var(run_manifest::RUN_ID_ENV).unwrap_or_default();
    let id = if id.is_empty() {
        "smoke".to_owned()
    } else {
        id
    };
    run_manifest::run_dir(&id).join("manifest.json")
}

/// `pokemu-report coverage`: print the coverage ledger of one manifest.
fn cmd_coverage(args: &mut std::env::Args) -> ExitCode {
    let mut path = default_manifest_path();
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--manifest" => path = args.next().unwrap_or_default().into(),
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!("usage: pokemu-report coverage [--manifest PATH] [--json]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    let m = match load_manifest(&path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("[pokemu-report] {e}");
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    if json_out {
        let maps: Vec<String> = m
            .coverage
            .iter()
            .map(|(name, map)| {
                format!(
                    "\"{}\":{{\"set\":{},\"bits\":{}}}",
                    escape(name),
                    map.set_count(),
                    map.bits
                )
            })
            .collect();
        let clusters: Vec<String> = m
            .clusters
            .iter()
            .map(|(target, causes)| format!("\"{}\":{}", escape(target), jlist(causes)))
            .collect();
        println!(
            "{{\"mode\":\"coverage\",\"run_id\":\"{}\",\"maps\":{{{}}},\"clusters\":{{{}}},\
             \"deviations\":{},\"completed\":{},\"quarantined\":{},\"unknown_queries\":{}}}",
            escape(&m.run_id),
            maps.join(","),
            clusters.join(","),
            m.deviations,
            m.completed,
            m.quarantined,
            m.unknown_queries
        );
        return ExitCode::SUCCESS;
    }
    println!("== coverage ({} / run {})", path.display(), m.run_id);
    for (name, map) in &m.coverage {
        println!(
            "  {name:<22} {:>6} / {:<6} bits  ({:.2}%)",
            map.set_count(),
            map.bits,
            100.0 * map.fraction()
        );
    }
    for (target, causes) in &m.clusters {
        println!(
            "  clusters.{target:<14} {:>6} root cause(s){}",
            causes.len(),
            if causes.is_empty() {
                String::new()
            } else {
                format!(": {}", causes.join("; "))
            }
        );
    }
    println!("  deviations            {:>6}", m.deviations);
    println!(
        "  robustness            completed={} quarantined={} unknown_queries={}",
        m.completed, m.quarantined, m.unknown_queries
    );
    if !m.poisoned.is_empty() {
        println!("  fleet.poisoned        {}", m.poisoned.join(", "));
    }
    ExitCode::SUCCESS
}

/// `pokemu-report diff`: baseline-vs-run regression report. Violations are
/// coverage bits present in the baseline but missing from the run, any
/// change to a target's root-cause cluster set, and robustness regressions:
/// a run that did not complete, quarantine/unknown counts growing past the
/// baseline's, or (for fleet merges) shards newly poisoned vs the
/// baseline, named individually.
fn diff_violations(base: &ManifestData, cur: &ManifestData) -> Vec<String> {
    let mut violations = Vec::new();
    if !cur.completed {
        violations.push("run manifest says \"completed\": false (deadline cut the run)".to_owned());
    }
    let newly_poisoned: Vec<&str> = cur
        .poisoned
        .iter()
        .filter(|s| !base.poisoned.contains(s))
        .map(String::as_str)
        .collect();
    if !newly_poisoned.is_empty() {
        violations.push(format!(
            "fleet.poisoned grew: {} shard(s) poisoned vs baseline ({})",
            newly_poisoned.len(),
            newly_poisoned.join(", ")
        ));
    }
    if cur.quarantined > base.quarantined {
        violations.push(format!(
            "robustness.quarantined grew: baseline {} -> run {}",
            base.quarantined, cur.quarantined
        ));
    }
    if cur.unknown_queries > base.unknown_queries {
        violations.push(format!(
            "robustness.unknown_queries grew: baseline {} -> run {}",
            base.unknown_queries, cur.unknown_queries
        ));
    }
    for (name, bmap) in &base.coverage {
        match cur.coverage.get(name) {
            None => violations.push(format!("{name}: map missing from run manifest")),
            Some(cmap) => {
                let lost = bmap.missing_from(cmap);
                if !lost.is_empty() {
                    violations.push(format!(
                        "{name}: coverage dropped {} bit(s) vs baseline (e.g. index {})",
                        lost.len(),
                        lost[0]
                    ));
                }
            }
        }
    }
    for (target, bcauses) in &base.clusters {
        let ccauses = cur.clusters.get(target).cloned().unwrap_or_default();
        if &ccauses != bcauses {
            let gone: Vec<&str> = bcauses
                .iter()
                .filter(|c| !ccauses.contains(c))
                .map(String::as_str)
                .collect();
            let new: Vec<&str> = ccauses
                .iter()
                .filter(|c| !bcauses.contains(c))
                .map(String::as_str)
                .collect();
            violations.push(format!(
                "clusters.{target}: root-cause set changed (lost: [{}]; new: [{}])",
                gone.join("; "),
                new.join("; ")
            ));
        }
    }
    violations
}

fn cmd_diff(args: &mut std::env::Args) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut manifest = default_manifest_path();
    let mut check = false;
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--manifest" => manifest = args.next().unwrap_or_default().into(),
            "--check" => check = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report diff --baseline PATH [--manifest PATH] [--check] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    let Some(baseline) = baseline else {
        eprintln!("[pokemu-report] diff requires --baseline PATH");
        return ExitCode::from(EXIT_MISSING_INPUT);
    };
    let (base, cur) = match (load_manifest(&baseline), load_manifest(&manifest)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("[pokemu-report] {e}");
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    if json_out {
        let violations = diff_violations(&base, &cur);
        let maps: Vec<String> = base
            .coverage
            .iter()
            .map(|(name, bmap)| {
                format!(
                    "\"{}\":{{\"baseline_set\":{},\"run_set\":{}}}",
                    escape(name),
                    bmap.set_count(),
                    cur.coverage
                        .get(name)
                        .map_or("null".to_string(), |m| m.set_count().to_string())
                )
            })
            .collect();
        println!(
            "{{\"mode\":\"diff\",\"baseline\":\"{}\",\"manifest\":\"{}\",\"maps\":{{{}}},\
             \"violations\":{},\"ok\":{}}}",
            escape(&baseline.display().to_string()),
            escape(&manifest.display().to_string()),
            maps.join(","),
            jlist(&violations),
            violations.is_empty()
        );
        if !violations.is_empty() && check {
            return ExitCode::from(EXIT_VIOLATION);
        }
        return ExitCode::SUCCESS;
    }
    println!(
        "== diff baseline {} (run {}) vs {} (run {})",
        baseline.display(),
        base.run_id,
        manifest.display(),
        cur.run_id
    );
    for (name, bmap) in &base.coverage {
        let cur_set = cur.coverage.get(name).map(MapSnapshot::set_count);
        println!(
            "  {name:<22} baseline {:>5} bits, run {}",
            bmap.set_count(),
            cur_set.map_or("<missing>".to_owned(), |n| format!("{n:>5} bits")),
        );
    }
    let violations = diff_violations(&base, &cur);
    if violations.is_empty() {
        println!("[pokemu-report] diff OK: no coverage regressions, cluster sets unchanged");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("[pokemu-report] diff violation: {v}");
    }
    if check {
        eprintln!(
            "[pokemu-report] diff FAILED: {} violation(s) vs baseline",
            violations.len()
        );
        return ExitCode::from(EXIT_VIOLATION);
    }
    ExitCode::SUCCESS
}

/// `pokemu-report conformance`: run the chained-corpus conformance gate.
///
/// Builds the committed corpus, runs every program on all three targets,
/// and compares the results against the baselines in `tests/roms/`
/// (byte-identical documents). With `--write`, regenerates the baselines
/// instead of gating. Exit codes follow the other modes: 0 conformant,
/// 1 drift (the violating program names are printed), 2 missing input.
fn cmd_conformance(args: &mut std::env::Args) -> ExitCode {
    use pokemu::harness::conformance;

    let mut roms: Option<PathBuf> = None;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut write = false;
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--roms" => roms = args.next().map(PathBuf::from),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(threads),
            "--write" => write = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report conformance [--roms DIR] [--threads N] [--write] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    let roms = match roms.or_else(conformance::find_roms_dir) {
        Some(d) => d,
        None if write => PathBuf::from("tests/roms"),
        None => {
            eprintln!(
                "[pokemu-report] no tests/roms/ directory found (pass --roms DIR, \
                 or --write to create one)"
            );
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };

    let corpus = conformance::build_corpus();
    let run = conformance::run_conformance(&corpus, threads);
    let deviating = run
        .results
        .iter()
        .filter(|r| !r.deviations.is_empty())
        .count();
    let conformance_json = |quarantined: &[String], violations: &[String], ok: bool| {
        let vio: Vec<String> = violations.to_vec();
        format!(
            "{{\"mode\":\"conformance\",\"roms\":\"{}\",\"programs\":{},\"deviating\":{},\
             \"quarantined\":{},\"violations\":{},\"ok\":{ok}}}",
            escape(&roms.display().to_string()),
            run.results.len(),
            deviating,
            jlist(quarantined),
            jlist(&vio)
        )
    };
    if !json_out {
        println!(
            "== conformance: {} program(s), {} with deviations, {} quarantined",
            run.results.len(),
            deviating,
            run.quarantined.len(),
        );
    }
    if !run.quarantined.is_empty() {
        // A quarantined program has no result to compare; its absence must
        // not silently pass (or rewrite) the gate.
        let mut names = Vec::new();
        for q in &run.quarantined {
            let name = q
                .item
                .and_then(|i| corpus.get(i))
                .map_or("<unknown>", |p| p.name.as_str());
            names.push(name.to_string());
            eprintln!(
                "[pokemu-report] conformance quarantined: {name} ({})",
                q.message
            );
        }
        if json_out {
            println!("{}", conformance_json(&names, &[], false));
        }
        eprintln!("[pokemu-report] conformance FAILED: quarantined program(s)");
        return ExitCode::from(EXIT_VIOLATION);
    }

    if write {
        return match conformance::write_baselines(&roms, &run.results) {
            Ok(paths) => {
                if json_out {
                    println!(
                        "{{\"mode\":\"conformance\",\"roms\":\"{}\",\"wrote\":{}}}",
                        escape(&roms.display().to_string()),
                        paths.len()
                    );
                } else {
                    println!(
                        "[pokemu-report] wrote {} baseline(s) under {}",
                        paths.len(),
                        roms.display()
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[pokemu-report] cannot write {}: {e}", roms.display());
                ExitCode::from(EXIT_MISSING_INPUT)
            }
        };
    }

    let violations = match conformance::check_conformance(&roms, &run.results) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[pokemu-report] {e}");
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    if violations.is_empty() {
        if json_out {
            println!("{}", conformance_json(&[], &[], true));
        } else {
            println!(
                "[pokemu-report] conformance OK: {} program(s) match {}",
                run.results.len(),
                roms.display()
            );
        }
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!(
            "[pokemu-report] conformance violation: {}: {}",
            v.program, v.reason
        );
    }
    if json_out {
        let rendered: Vec<String> = violations
            .iter()
            .map(|v| format!("{}: {}", v.program, v.reason))
            .collect();
        println!("{}", conformance_json(&[], &rendered, false));
    }
    eprintln!(
        "[pokemu-report] conformance FAILED: {} violating program(s)",
        violations.len()
    );
    ExitCode::from(EXIT_VIOLATION)
}

/// A finite f64 rendered as a JSON number (non-finite degrades to 0, like
/// the ledger writer).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A JSON array of escaped strings.
fn jlist(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Resolves one `compare` operand against the ledger: an all-digit operand
/// is a record seq, anything else is a run id (latest record wins).
fn resolve_record<'a>(records: &'a [RunRecord], arg: &str) -> Option<&'a RunRecord> {
    if !arg.is_empty() && arg.bytes().all(|b| b.is_ascii_digit()) {
        let seq: u64 = arg.parse().ok()?;
        records.iter().rev().find(|r| r.seq == seq)
    } else {
        records.iter().rev().find(|r| r.run_id == arg)
    }
}

fn load_ledger_or_exit(path: &Path) -> Result<Vec<RunRecord>, ExitCode> {
    match history::load(path) {
        Ok(records) if records.is_empty() => {
            eprintln!(
                "[pokemu-report] empty ledger {} (run the pipeline with history on first)",
                path.display()
            );
            Err(ExitCode::from(EXIT_MISSING_INPUT))
        }
        Ok(records) => Ok(records),
        Err(e) => {
            eprintln!("[pokemu-report] {e}");
            Err(ExitCode::from(EXIT_MISSING_INPUT))
        }
    }
}

/// Rows shown per text table before eliding (the `--json` mode never
/// elides).
const TEXT_ROW_CAP: usize = 40;

/// `pokemu-report compare <run-a> <run-b>`: full telemetry diff between two
/// ledger records with causal attribution of the wall-time delta (stage →
/// solver origin → hot TB, covering ≥90% of the delta, printed by name).
fn cmd_compare(args: &mut std::env::Args) -> ExitCode {
    let mut ledger = history::ledger_path();
    let mut json_out = false;
    let mut operands: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ledger" => ledger = args.next().unwrap_or_default().into(),
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!("usage: pokemu-report compare <run-a> <run-b> [--ledger PATH] [--json]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => operands.push(other.to_string()),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    if operands.len() != 2 {
        eprintln!("[pokemu-report] compare needs exactly two run refs (seq or run id)");
        return ExitCode::from(EXIT_MISSING_INPUT);
    }
    let records = match load_ledger_or_exit(&ledger) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let (a, b) = match (
        resolve_record(&records, &operands[0]),
        resolve_record(&records, &operands[1]),
    ) {
        (Some(a), Some(b)) => (a, b),
        (a, b) => {
            for (found, name) in [(a, &operands[0]), (b, &operands[1])] {
                if found.is_none() {
                    eprintln!(
                        "[pokemu-report] no record for {name:?} in {}",
                        ledger.display()
                    );
                }
            }
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };

    // Deterministic + timing deltas over the union of field names.
    let mut det_changed: Vec<(String, u64, u64)> = {
        let mut names: std::collections::BTreeSet<&String> = a.det.keys().collect();
        names.extend(b.det.keys());
        names
            .into_iter()
            .map(|k| {
                (
                    k.clone(),
                    a.det.get(k).copied().unwrap_or(0),
                    b.det.get(k).copied().unwrap_or(0),
                )
            })
            .filter(|(_, va, vb)| va != vb)
            .collect()
    };
    det_changed.sort_by(|x, y| {
        (y.2.abs_diff(y.1))
            .cmp(&x.2.abs_diff(x.1))
            .then(x.0.cmp(&y.0))
    });
    let mut timing_changed: Vec<(String, f64, f64)> = {
        let mut names: std::collections::BTreeSet<&String> = a.timing.keys().collect();
        names.extend(b.timing.keys());
        names
            .into_iter()
            .map(|k| {
                (
                    k.clone(),
                    a.timing.get(k).copied().unwrap_or(0.0),
                    b.timing.get(k).copied().unwrap_or(0.0),
                )
            })
            .filter(|(_, va, vb)| va != vb)
            .collect()
    };
    timing_changed.sort_by(|x, y| {
        (y.2 - y.1)
            .abs()
            .total_cmp(&(x.2 - x.1).abs())
            .then(x.0.cmp(&y.0))
    });
    let attr = history::attribute(a, b);

    if json_out {
        let rec_json = |r: &RunRecord| {
            format!(
                "{{\"seq\":{},\"run_id\":\"{}\",\"kind\":\"{}\",\"config_fp\":\"{}\"}}",
                r.seq,
                escape(&r.run_id),
                escape(&r.kind),
                escape(&r.config_fp)
            )
        };
        let det: Vec<String> = det_changed
            .iter()
            .map(|(k, va, vb)| format!("\"{}\":{{\"a\":{va},\"b\":{vb}}}", escape(k)))
            .collect();
        let timing: Vec<String> = timing_changed
            .iter()
            .map(|(k, va, vb)| {
                format!(
                    "\"{}\":{{\"a\":{},\"b\":{}}}",
                    escape(k),
                    jnum(*va),
                    jnum(*vb)
                )
            })
            .collect();
        let entries: Vec<String> = attr
            .entries
            .iter()
            .map(|e| {
                let children: Vec<String> = e
                    .children
                    .iter()
                    .map(|(n, d)| format!("[\"{}\",{}]", escape(n), jnum(*d)))
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"delta_ns\":{},\"share\":{},\"children\":[{}]}}",
                    escape(&e.name),
                    jnum(e.delta_ns),
                    jnum(e.share),
                    children.join(",")
                )
            })
            .collect();
        let hot: Vec<String> = attr
            .hot_tbs
            .iter()
            .map(|(n, d)| format!("[\"{}\",{d}]", escape(n)))
            .collect();
        println!(
            "{{\"mode\":\"compare\",\"ledger\":\"{}\",\"a\":{},\"b\":{},\
             \"fingerprint_match\":{},\"det\":{{{}}},\"timing\":{{{}}},\
             \"attribution\":{{\"total_delta_ns\":{},\"covered_share\":{},\
             \"entries\":[{}],\"hot_tbs\":[{}]}}}}",
            escape(&ledger.display().to_string()),
            rec_json(a),
            rec_json(b),
            a.config_fp == b.config_fp,
            det.join(","),
            timing.join(","),
            jnum(attr.total_delta_ns),
            jnum(attr.covered_share),
            entries.join(","),
            hot.join(",")
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "== compare a: run {} (seq {}, {}, fp {}) vs b: run {} (seq {}, {}, fp {})",
        a.run_id, a.seq, a.kind, a.config_fp, b.run_id, b.seq, b.kind, b.config_fp
    );
    if a.config_fp != b.config_fp {
        println!(
            "  NOTE: config fingerprints differ — deterministic deltas below may reflect \
             the config change, not a regression"
        );
    }
    println!(
        "== deterministic deltas ({} field(s) changed)",
        det_changed.len()
    );
    if det_changed.is_empty() {
        println!("  none — deterministic sections are identical");
    }
    for (k, va, vb) in det_changed.iter().take(TEXT_ROW_CAP) {
        println!("  {k:<36} {va:>12} -> {vb:<12}");
    }
    if det_changed.len() > TEXT_ROW_CAP {
        println!(
            "  … and {} more (use --json for all)",
            det_changed.len() - TEXT_ROW_CAP
        );
    }
    println!(
        "== timing deltas ({} field(s) changed)",
        timing_changed.len()
    );
    for (k, va, vb) in timing_changed.iter().take(TEXT_ROW_CAP) {
        println!(
            "  {k:<36} {:>12} -> {:<12} ({:+.3} ms)",
            ms(va / 1000.0),
            ms(vb / 1000.0),
            (vb - va) / 1e6
        );
    }
    if timing_changed.len() > TEXT_ROW_CAP {
        println!(
            "  … and {} more (use --json for all)",
            timing_changed.len() - TEXT_ROW_CAP
        );
    }
    println!(
        "== attribution of wall.total delta ({:+.3} ms, threshold 90%)",
        attr.total_delta_ns / 1e6
    );
    for e in &attr.entries {
        println!(
            "  {:<30} {:+12.3} ms  {:5.1}%",
            e.name,
            e.delta_ns / 1e6,
            100.0 * e.share
        );
        for (n, d) in &e.children {
            println!("      {n:<28} {:+12.3} ms", d / 1e6);
        }
    }
    println!(
        "  attributed {:.1}% of the wall.total delta",
        100.0 * attr.covered_share
    );
    if !attr.hot_tbs.is_empty() {
        println!("== hot-TB exec deltas (deterministic)");
        for (n, d) in &attr.hot_tbs {
            println!("  {n:<30} {d:+12} execs");
        }
    }
    ExitCode::SUCCESS
}

/// `pokemu-report trend`: per-metric trajectory over the trend window of
/// every `(kind, config_fp)` group, with the integer median/MAD gate.
fn cmd_trend(args: &mut std::env::Args) -> ExitCode {
    let mut ledger = history::ledger_path();
    let mut window = history::DEFAULT_TREND_WINDOW;
    let mut check = false;
    let mut json_out = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ledger" => ledger = args.next().unwrap_or_default().into(),
            "--last" => window = args.next().and_then(|v| v.parse().ok()).unwrap_or(window),
            "--check" => check = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report trend [--last N] [--ledger PATH] [--check] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    let records = match load_ledger_or_exit(&ledger) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let mut groups: BTreeMap<String, Vec<&RunRecord>> = BTreeMap::new();
    for r in &records {
        groups.entry(history::group_key(r)).or_default().push(r);
    }

    let mut violations: Vec<String> = Vec::new();
    let mut group_jsons: Vec<String> = Vec::new();
    let mut gated_groups = 0usize;
    if !json_out {
        println!(
            "== trend over {} ({} record(s), {} group(s); window {})",
            ledger.display(),
            records.len(),
            groups.len(),
            window
        );
    }
    for (key, group) in &groups {
        let owned: Vec<RunRecord> = group.iter().map(|&r| r.clone()).collect();
        let stats = history::trend_stats(&owned, window);
        if stats.is_empty() {
            continue;
        }
        gated_groups += 1;
        let latest = owned.last().expect("non-empty group");
        for s in &stats {
            if let Some(v) = &s.violation {
                violations.push(format!("{key}: {v}"));
            }
        }
        if json_out {
            let metrics: Vec<String> = stats
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"deterministic\":{},\"n\":{},\"min\":{},\
                         \"median\":{},\"max\":{},\"mad\":{},\"latest\":{},\"violation\":{}}}",
                        escape(&s.name),
                        s.deterministic,
                        s.n,
                        s.min,
                        s.median,
                        s.max,
                        s.mad,
                        s.latest,
                        s.violation
                            .as_ref()
                            .map_or("null".to_string(), |v| format!("\"{}\"", escape(v)))
                    )
                })
                .collect();
            group_jsons.push(format!(
                "{{\"key\":\"{}\",\"records\":{},\"latest_seq\":{},\"latest_run_id\":\"{}\",\
                 \"metrics\":[{}]}}",
                escape(key),
                owned.len(),
                latest.seq,
                escape(&latest.run_id),
                metrics.join(",")
            ));
            continue;
        }
        println!(
            "-- group {key} ({} record(s); latest seq {} run {})",
            owned.len(),
            latest.seq,
            latest.run_id
        );
        // Show only metrics that move or violate; stable flat metrics are
        // noise in a terminal (the JSON mode carries everything).
        let interesting: Vec<&history::TrendStat> = stats
            .iter()
            .filter(|s| s.min != s.max || s.latest != s.median || s.violation.is_some())
            .collect();
        println!(
            "  {:<36} {:>3} {:>10} {:>10} {:>10} {:>10} {:>6}  flag",
            "metric", "n", "min", "median", "max", "latest", "MAD"
        );
        for s in interesting.iter().take(TEXT_ROW_CAP) {
            println!(
                "  {:<36} {:>3} {:>10} {:>10} {:>10} {:>10} {:>6}  {}",
                s.name,
                s.n,
                s.min,
                s.median,
                s.max,
                s.latest,
                s.mad,
                match &s.violation {
                    Some(_) if s.deterministic => "DRIFT",
                    Some(_) => "ANOMALY",
                    None => "",
                }
            );
        }
        if interesting.len() > TEXT_ROW_CAP {
            println!(
                "  … and {} more (use --json for all)",
                interesting.len() - TEXT_ROW_CAP
            );
        }
        if interesting.is_empty() {
            println!("  all {} metric(s) flat and clean", stats.len());
        }
    }

    if json_out {
        println!(
            "{{\"mode\":\"trend\",\"ledger\":\"{}\",\"window\":{window},\"groups\":[{}],\
             \"violations\":{},\"ok\":{}}}",
            escape(&ledger.display().to_string()),
            group_jsons.join(","),
            jlist(&violations),
            violations.is_empty()
        );
    } else if gated_groups == 0 {
        println!("  no group has ≥2 records yet — nothing to gate");
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("[pokemu-report] trend violation: {v}");
        }
        if check {
            eprintln!(
                "[pokemu-report] trend check FAILED: {} violation(s)",
                violations.len()
            );
            return ExitCode::from(EXIT_VIOLATION);
        }
    } else if check && !json_out {
        println!(
            "[pokemu-report] trend check OK: {gated_groups} group(s) within band, \
             no deterministic drift"
        );
    }
    ExitCode::SUCCESS
}

/// `pokemu-report history gc|verify`: retention and integrity over the run
/// ledger.
fn cmd_history(args: &mut std::env::Args) -> ExitCode {
    let mut ledger = history::ledger_path();
    let mut cap = history::DEFAULT_GC_CAP;
    let mut json_out = false;
    let mut action: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "gc" | "verify" if action.is_none() => action = Some(a),
            "--ledger" => ledger = args.next().unwrap_or_default().into(),
            "--cap" => cap = args.next().and_then(|v| v.parse().ok()).unwrap_or(cap),
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report history <gc|verify> [--cap N] [--ledger PATH] [--json]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }
    match action.as_deref() {
        Some("gc") => match history::gc(&ledger, cap) {
            Ok((kept, dropped)) => {
                if json_out {
                    println!(
                        "{{\"mode\":\"history.gc\",\"ledger\":\"{}\",\"cap\":{cap},\
                         \"kept\":{kept},\"dropped\":{dropped}}}",
                        escape(&ledger.display().to_string())
                    );
                } else {
                    println!(
                        "[pokemu-report] history gc: kept {kept}, dropped {dropped} ({})",
                        ledger.display()
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[pokemu-report] {e}");
                ExitCode::from(EXIT_MISSING_INPUT)
            }
        },
        Some("verify") => {
            let record_count = history::load(&ledger).map(|r| r.len()).unwrap_or(0);
            match history::verify(&ledger) {
                Ok(violations) => {
                    if json_out {
                        println!(
                            "{{\"mode\":\"history.verify\",\"ledger\":\"{}\",\"records\":{},\
                             \"violations\":{},\"ok\":{}}}",
                            escape(&ledger.display().to_string()),
                            record_count,
                            jlist(&violations),
                            violations.is_empty()
                        );
                    }
                    if violations.is_empty() {
                        if !json_out {
                            println!(
                                "[pokemu-report] history verify OK: {record_count} record(s), \
                                 all content hashes intact ({})",
                                ledger.display()
                            );
                        }
                        ExitCode::SUCCESS
                    } else {
                        for v in &violations {
                            eprintln!("[pokemu-report] history violation: {v}");
                        }
                        eprintln!(
                            "[pokemu-report] history verify FAILED: {} violation(s)",
                            violations.len()
                        );
                        ExitCode::from(EXIT_VIOLATION)
                    }
                }
                Err(e) => {
                    eprintln!("[pokemu-report] {e}");
                    ExitCode::from(EXIT_MISSING_INPUT)
                }
            }
        }
        _ => {
            eprintln!("[pokemu-report] history needs an action: gc or verify");
            ExitCode::from(EXIT_MISSING_INPUT)
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let first = args.next();
    match first.as_deref() {
        Some("coverage") => return cmd_coverage(&mut args),
        Some("diff") => return cmd_diff(&mut args),
        Some("conformance") => return cmd_conformance(&mut args),
        Some("perf") => return cmd_perf(&mut args),
        Some("bench") => return cmd_bench(&mut args),
        Some("compare") => return cmd_compare(&mut args),
        Some("trend") => return cmd_trend(&mut args),
        Some("history") => return cmd_history(&mut args),
        _ => {}
    }

    let mut run = "cross_validation".to_owned();
    let mut dir = trace::trace_dir();
    let mut top = 10usize;
    let mut check = false;
    let mut json_out = false;

    // Legacy trace-report mode: `first` (if any) is an ordinary flag.
    let mut pending = first;
    loop {
        let Some(a) = pending.take().or_else(|| args.next()) else {
            break;
        };
        match a.as_str() {
            "--run" => run = args.next().unwrap_or_default(),
            "--dir" => dir = args.next().unwrap_or_default().into(),
            "--top" => top = args.next().and_then(|v| v.parse().ok()).unwrap_or(top),
            "--check" => check = true,
            "--json" => json_out = true,
            "--help" | "-h" => {
                println!(
                    "usage: pokemu-report [--run NAME] [--dir PATH] [--top N] [--check]\n\
                     \x20      pokemu-report coverage [--manifest PATH]\n\
                     \x20      pokemu-report diff --baseline PATH [--manifest PATH] [--check]\n\
                     \x20      pokemu-report conformance [--roms DIR] [--threads N] [--write]\n\
                     \x20      pokemu-report perf [--run NAME] [--dir PATH] [--top N] [--check]\n\
                     \x20      pokemu-report bench [--baselines DIR] [--bench-dir PATH] [--check]\n\
                     \x20      pokemu-report compare <run-a> <run-b> [--ledger PATH]\n\
                     \x20      pokemu-report trend [--last N] [--ledger PATH] [--check]\n\
                     \x20      pokemu-report history <gc|verify> [--cap N] [--ledger PATH]\n\
                     (every mode also accepts --json for machine-readable output)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(EXIT_MISSING_INPUT);
            }
        }
    }

    let report = match load(&dir, &run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("[pokemu-report] {e}");
            return ExitCode::from(EXIT_MISSING_INPUT);
        }
    };
    let check_result = if check { Some(report.check()) } else { None };
    if json_out {
        let stages: Vec<String> = [
            "pipeline.run",
            "pipeline.setup",
            "stage.explore_insns",
            "stage.parallel",
            "stage.analyze",
            "stage.explore_states",
            "stage.testgen",
            "stage.execute",
        ]
        .iter()
        .map(|name| format!("\"{}\":{}", escape(name), jnum(report.stage_total(name))))
        .collect();
        let counters: Vec<String> = report
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        let hists: Vec<String> = report
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{}\":{{\"n\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    escape(k),
                    h.count,
                    jnum(h.mean()),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99)
                )
            })
            .collect();
        println!(
            "{{\"mode\":\"report\",\"run\":\"{}\",\"stage_us\":{{{}}},\"counters\":{{{}}},\
             \"histograms\":{{{}}},\"check\":{}}}",
            escape(&run),
            stages.join(","),
            counters.join(","),
            hists.join(","),
            match &check_result {
                None => "null".to_string(),
                Some(Ok(())) => "\"ok\"".to_string(),
                Some(Err(e)) => format!("\"{}\"", escape(e)),
            }
        );
    } else {
        report.print(top);
    }
    if let Some(result) = check_result {
        if let Err(e) = result {
            eprintln!("[pokemu-report] check FAILED: {e}");
            return ExitCode::from(EXIT_VIOLATION);
        }
        if !json_out {
            println!("[pokemu-report] check OK: all Fig.1 stage spans present, 0 dropped events");
        }
    }
    ExitCode::SUCCESS
}
