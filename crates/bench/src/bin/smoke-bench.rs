//! A fast end-to-end check of the bench harness, suitable for CI: runs one
//! tiny benchmark from each pipeline stage with millisecond budgets and
//! verifies the JSON output file appears and parses shallowly. Exits
//! non-zero on any failure, so `scripts/ci.sh` can gate on it.

use std::time::Duration;

use pokemu::explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu::harness::{
    baseline_snapshot, run_cross_validation, run_on_all_targets, PipelineConfig,
};
use pokemu::lofi::Fidelity;
use pokemu_rt::bench::Bench;

fn main() {
    // Stable run-ledger context: the pipeline run below appends a history
    // record, and its trend group must not depend on the binary's cargo
    // hash or working directory.
    pokemu_rt::history::set_context("smoke-bench");
    let baseline = baseline_snapshot();
    let mut bench = Bench::new("smoke");
    let mut g = bench.group("smoke");
    g.sample_size(3)
        .warm_up_time(Duration::from_millis(20))
        .measurement_time(Duration::from_millis(120));
    g.bench_function("insn_exploration", |b| {
        b.iter(|| {
            explore_instruction_space(InsnSpaceConfig {
                first_byte: Some(0x50),
                second_byte: None,
                max_paths: 1000,
            })
        })
    });
    g.bench_function("state_exploration", |b| {
        b.iter(|| {
            explore_state_space(
                &[0x74, 0x02],
                &baseline,
                StateSpaceConfig {
                    max_paths: 8,
                    ..Default::default()
                },
            )
        })
    });
    let prog = pokemu::testgen::TestProgram::baseline_only("smoke".into(), &[0x90])
        .expect("nop program builds");
    g.bench_function("execution", |b| {
        b.iter(|| run_on_all_targets(&prog, Fidelity::QEMU_LIKE))
    });
    g.finish();

    // A miniature end-to-end pipeline run. Under POKEMU_TRACE=1 this also
    // exports target/trace/cross_validation.{trace.json,metrics.jsonl},
    // which the `trace-smoke` CI step feeds to `pokemu-report --check`.
    let cv = run_cross_validation(PipelineConfig {
        first_byte: Some(0x80),
        max_instructions: 2,
        max_paths_per_insn: 16,
        threads: 2,
        ..Default::default()
    });
    // A deadline-cut run (POKEMU_RUN_DEADLINE_MS) may legitimately have
    // dispatched nothing; only a run claiming completion must show work.
    if cv.completed && cv.quarantined.is_empty() {
        assert!(cv.total_paths > 0, "pipeline explored no paths: {cv:?}");
    }
    println!(
        "[smoke-bench] pipeline: {} insns, {} paths, {} solver queries, {} workers",
        cv.unique_instructions,
        cv.total_paths,
        cv.stages.solver_queries,
        cv.stages.workers.len()
    );
    println!(
        "[smoke-bench] robustness: completed={} quarantined={} skipped={} unknown={} infeasible={}",
        cv.completed,
        cv.quarantined.len(),
        cv.skipped_instructions,
        cv.unknown_queries,
        cv.infeasible_paths
    );

    let path = bench.out_path().to_path_buf();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("bench JSON missing at {}: {e}", path.display()));
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON line per benchmark: {text}");
    for line in lines {
        for key in [
            "\"suite\":\"smoke\"",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"iters_per_sample\":",
        ] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }
    println!("[smoke-bench] OK: 3 benchmarks, JSON at {}", path.display());
}
