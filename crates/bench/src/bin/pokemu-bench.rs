//! The gated bench trajectory: fixed-seed performance workloads whose
//! results feed `pokemu-report bench --check`.
//!
//! ```text
//! pokemu-bench [--only NAME] [--write-baselines DIR]
//! ```
//!
//! Each workload runs a deterministic slice of the pipeline and writes
//! `target/bench/<name>.perf.json` with two strictly separated sections:
//!
//! * `checked.counts` — machine-independent work counts (paths, queries,
//!   executed guest instructions). These must match the committed baseline
//!   **exactly**: any drift means the workload itself changed, which is a
//!   bench-trajectory break, not noise.
//! * `checked.ratios` — machine-dependent but *self-normalizing* timing
//!   ratios (hifi/lofi throughput, with/without summaries, solver query
//!   latency vs. an in-process calibration spin). The baseline stores a
//!   `[min, max]` band wide enough for machine variance (×8 each way) and
//!   narrow enough to catch order-of-magnitude regressions such as an
//!   injected `solver.check` latency fault.
//! * `info` — absolute nanoseconds, recorded for humans and trend plots,
//!   never gated.
//!
//! The three workloads pin down the repo's two known inversions: the e3
//! throughput inversion (the lo-fi DBT is *slower* than the hi-fi
//! interpreter on short programs — `exec_throughput`), and the e7
//! summarization inversion (summaries cost more than they save on `mov
//! ds,ax` — `summary_crossover`); `pipeline_smoke` ties end-to-end wall
//! time and per-query solver latency to a CPU-speed calibration loop.
//!
//! `--write-baselines DIR` refreshes the committed baselines from this
//! machine's measurements (exact counts, ratio bands at measured/8 ..
//! measured*8); `scripts/refresh-baseline.sh` drives it.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::{
    baseline_snapshot, run_cross_validation, HiFiTarget, LofiTarget, PipelineConfig, Target,
};
use pokemu::lofi::Fidelity;
use pokemu::testgen::{TestProgram, TestState};
use pokemu_rt::{history, metrics, prof, rng};

/// Schema version stamped into every perf JSON and baseline.
const SCHEMA: u64 = 1;

/// Ratio baseline band half-width, as a multiplicative factor: a freshly
/// written baseline accepts measured/8 .. measured*8.
const RATIO_BAND: f64 = 8.0;

/// Hard ratio floors a baseline refresh may never relax. The
/// `exec_throughput.hifi_over_lofi ≥ 2` floor is the anti-e3-inversion
/// gate: the lo-fi DBT must stay at least 2× the hi-fi interpreter's
/// throughput on the hot-loop workload, so the inversion that ROADMAP
/// item 1 records can never silently return — not even through
/// `scripts/refresh-baseline.sh`.
fn ratio_floor(workload: &str, ratio: &str) -> Option<f64> {
    match (workload, ratio) {
        ("exec_throughput", "hifi_over_lofi") => Some(2.0),
        _ => None,
    }
}

/// One finished workload: its gated counts and ratios plus informational
/// absolute timings.
struct WorkloadResult {
    name: &'static str,
    counts: Vec<(&'static str, u64)>,
    ratios: Vec<(&'static str, f64)>,
    info: Vec<(&'static str, f64)>,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_owned()
    }
}

impl WorkloadResult {
    fn perf_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let ratios: Vec<String> = self
            .ratios
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", num(*v)))
            .collect();
        let info: Vec<String> = self
            .info
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", num(*v)))
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"schema\":{SCHEMA},\"checked\":{{\"counts\":{{{}}},\
             \"ratios\":{{{}}}}},\"info\":{{{}}}}}\n",
            self.name,
            counts.join(","),
            ratios.join(","),
            info.join(",")
        )
    }

    fn baseline_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let ratios: Vec<String> = self
            .ratios
            .iter()
            .map(|(k, v)| {
                let min = match ratio_floor(self.name, k) {
                    Some(floor) => floor,
                    None => v / RATIO_BAND,
                };
                format!(
                    "\"{k}\":{{\"min\":{},\"max\":{}}}",
                    num(min),
                    num(v * RATIO_BAND)
                )
            })
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"schema\":{SCHEMA},\"counts\":{{{}}},\"ratios\":{{{}}}}}\n",
            self.name,
            counts.join(","),
            ratios.join(",")
        )
    }
}

/// Calibration spin: `iters` SplitMix64 mixes, returning mean ns per mix.
/// Solver-query latency is gated *relative to this*, so the band tracks
/// the machine's single-thread speed instead of absolute nanoseconds.
fn calibrate(iters: u64) -> f64 {
    let t = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..iters {
        x = rng::mix64(x ^ i);
    }
    black_box(x);
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// e3 slice: the same fixed programs through the hi-fi interpreter and the
/// lo-fi DBT, interleaved. The `hifi_over_lofi` ratio is the throughput
/// observable: < 1 is the e3 inversion (DBT losing to the interpreter);
/// the committed baseline floors it at 2.0, which the chained execution
/// layer (block chaining + inline lookup + superblocks + IR-skip,
/// DESIGN.md §11) is what earns.
fn exec_throughput() -> WorkloadResult {
    // Hot-loop programs where TB reuse dominates — the workload a DBT
    // exists for, and the regime the 2× gate measures. These are raw
    // `TestProgram`s (no baseline-init prologue): the harness target boots
    // the machine itself, so the programs are pure steady-state execution;
    // translation-dominated shapes are covered by the other workloads.
    // Every loop stays under the harness step budget (50k instructions)
    // so both targets run to the terminating `hlt`.
    //
    // dec_loop: mov ecx, 22000; L: dec ecx; jnz L
    //   — one two-instruction TB re-entered 22k times (chain + IR-skip).
    // unrolled64: mov ecx, 660; L: 64 × inc eax; dec ecx; jnz L
    //   — a straight-line run spanning eight TBs that the superblock
    //     former stitches back together (jnz rel8 = -67).
    // alu_mix: mov ecx, 1300; L: 8 × (inc/xor/add/neg); dec ecx; jnz L
    //   — mixed ALU/flags traffic through the same superblock path.
    // imm_mix: mov ecx, 1700; L: 6 × (add/xor/or/sub eax, imm32); ...
    //   — five-byte immediate forms: decode-heavy for the interpreter,
    //     the same pre-decoded op count for the fast path.
    // nested: two loop levels, 40 inner iterations per outer — chains on
    //   both edges of both back-branches.
    let raw = |name: &str, body: Vec<u8>| {
        let mut code = body;
        code.push(0xf4); // hlt
        TestProgram {
            name: name.to_owned(),
            test_insn: code.clone(),
            test_insn_offset: 0,
            state: TestState::default(),
            path_id: 0,
            segments: Vec::new(),
            code,
        }
    };
    let unrolled = |opcode: u8| {
        let mut v = vec![0xb9, 0x94, 0x02, 0x00, 0x00]; // mov ecx, 660
        v.extend(std::iter::repeat(opcode).take(64));
        v.extend_from_slice(&[0x49, 0x75, 0xbd]);
        v
    };
    let mut alu_mix = vec![0xb9, 0x14, 0x05, 0x00, 0x00]; // mov ecx, 1300
    for _ in 0..8 {
        // inc eax; xor eax, edx; add eax, ebx; neg eax
        alu_mix.extend_from_slice(&[0x40, 0x31, 0xd0, 0x01, 0xd8, 0xf7, 0xd8]);
    }
    alu_mix.extend_from_slice(&[0x49, 0x75, 0xc5]);
    let mut imm_mix = vec![0xb9, 0xa4, 0x06, 0x00, 0x00]; // mov ecx, 1700
    for _ in 0..6 {
        imm_mix.extend_from_slice(&[
            0x05, 0x01, 0x00, 0x00, 0x00, // add eax, 1
            0x35, 0xff, 0x00, 0xff, 0x00, // xor eax, 0x00ff00ff
            0x0d, 0x0f, 0x00, 0x00, 0xf0, // or eax, 0xf000000f
            0x2d, 0x02, 0x00, 0x00, 0x00, // sub eax, 2
        ]);
    }
    imm_mix.extend_from_slice(&[0x49, 0x75, 0x85]);
    let nested = vec![
        0xb9, 0x04, 0x01, 0x00, 0x00, // mov ecx, 260
        0xba, 0x28, 0x00, 0x00, 0x00, // outer: mov edx, 40
        0x40, // inner: inc eax
        0x4a, // dec edx
        0x75, 0xfc, // jnz inner
        0x49, // dec ecx
        0x75, 0xf4, // jnz outer
    ];
    let progs: Vec<TestProgram> = vec![
        raw(
            "throughput_dec_loop",
            vec![0xb9, 0xf0, 0x55, 0x00, 0x00, 0x49, 0x75, 0xfd],
        ),
        raw("throughput_unrolled64", unrolled(0x40)), // inc eax
        raw("throughput_alu_mix", alu_mix),
        raw("throughput_imm_mix", imm_mix),
        raw("throughput_nested", nested),
    ];
    const REPS: usize = 5;

    let m0 = metrics::snapshot();
    let mut hifi = HiFiTarget;
    let mut lofi = LofiTarget {
        fidelity: Fidelity::QEMU_LIKE,
    };
    // Per-rep sums, reduced by median: one preempted rep (this runs on
    // shared CI machines) must not be able to sink or inflate the ratio.
    let mut hifi_reps = Vec::with_capacity(REPS);
    let mut lofi_reps = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let mut hifi_ns = 0u64;
        let mut lofi_ns = 0u64;
        for p in &progs {
            let t = Instant::now();
            black_box(hifi.run_program(p));
            hifi_ns += t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            black_box(lofi.run_program(p));
            lofi_ns += t.elapsed().as_nanos() as u64;
        }
        hifi_reps.push(hifi_ns);
        lofi_reps.push(lofi_ns);
    }
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let (hifi_ns, lofi_ns) = (median(hifi_reps), median(lofi_reps));
    let delta = metrics::snapshot().since(&m0);

    WorkloadResult {
        name: "exec_throughput",
        counts: vec![
            ("programs", (progs.len() * REPS * 2) as u64),
            ("lofi_insns", delta.counter("lofi.insns")),
            ("lofi_tb_hits", delta.counter("lofi.tb_lookup.hits")),
            ("lofi_tb_misses", delta.counter("lofi.tb_lookup.misses")),
            // Chained-layer counts: deterministic, and exactly zero when
            // POKEMU_LOFI_CHAIN=0 — forcing chaining off therefore fails
            // the count gate machine-independently (the CI self-test).
            ("lofi_chain_hits", delta.counter("lofi.chain.hits")),
            (
                "lofi_superblock_execs",
                delta.counter("lofi.chain.superblock_execs"),
            ),
            (
                "lofi_irskip_execs",
                delta.counter("lofi.chain.irskip_execs"),
            ),
        ],
        ratios: vec![("hifi_over_lofi", hifi_ns as f64 / lofi_ns as f64)],
        info: vec![("hifi_ns", hifi_ns as f64), ("lofi_ns", lofi_ns as f64)],
    }
}

/// e7 slice: state-space exploration of `mov ds, ax` (`8e d8`) with and
/// without summarization. `with_over_without` > 1 *is* the inversion the
/// paper's summaries were supposed to prevent; the baseline band pins it
/// so an accidental 10× further regression (or a fix!) is flagged.
fn summary_crossover() -> WorkloadResult {
    let baseline = baseline_snapshot();
    let insn: &[u8] = &[0x8e, 0xd8];
    let explore = |use_summaries: bool| {
        let m0 = metrics::snapshot();
        let t = Instant::now();
        let space = explore_state_space(
            insn,
            &baseline,
            StateSpaceConfig {
                max_paths: 64,
                use_summaries,
                ..StateSpaceConfig::default()
            },
        );
        let ns = t.elapsed().as_nanos() as u64;
        let queries = metrics::snapshot().since(&m0).counter("solver.queries");
        (space, ns, queries)
    };
    // Warm both paths once so solver/pool one-time setup is off the clock.
    let _ = explore(true);
    let (with, with_ns, with_queries) = explore(true);
    let (without, without_ns, without_queries) = explore(false);

    WorkloadResult {
        name: "summary_crossover",
        counts: vec![
            ("paths_with", with.paths.len() as u64),
            ("paths_without", without.paths.len() as u64),
            ("queries_with", with_queries),
            ("queries_without", without_queries),
        ],
        ratios: vec![("with_over_without", with_ns as f64 / without_ns as f64)],
        info: vec![
            ("with_ns", with_ns as f64),
            ("without_ns", without_ns as f64),
        ],
    }
}

/// End-to-end smoke pipeline (the CI cross-validation config) with solver
/// latency normalized by the calibration spin. An injected
/// `solver.check:latency=…` fault inflates `solver_query_over_calib` by
/// orders of magnitude — the bench gate's fault self-test keys on this.
fn pipeline_smoke() -> WorkloadResult {
    let calib_ns = calibrate(1 << 17);
    let m0 = metrics::snapshot();
    let t = Instant::now();
    let cv = run_cross_validation(PipelineConfig {
        first_byte: Some(0x80),
        max_instructions: 2,
        max_paths_per_insn: 16,
        threads: 2,
        ..PipelineConfig::default()
    });
    let total_ns = t.elapsed().as_nanos() as u64;
    let delta = metrics::snapshot().since(&m0);

    let queries = delta.counter("solver.queries").max(1);
    let solver_ns: u64 = pokemu::solver::origin::ORIGINS
        .iter()
        .map(|o| delta.timer_ns(&format!("solver.ns.{o}")))
        .sum();
    let query_ns = solver_ns as f64 / queries as f64;

    WorkloadResult {
        name: "pipeline_smoke",
        counts: vec![
            ("unique_instructions", cv.unique_instructions as u64),
            ("total_paths", cv.total_paths as u64),
            ("fully_explored", cv.fully_explored as u64),
            ("solver_queries", delta.counter("solver.queries")),
        ],
        ratios: vec![("solver_query_over_calib", query_ns / calib_ns)],
        info: vec![
            ("total_ns", total_ns as f64),
            ("solver_ns", solver_ns as f64),
            ("calib_ns_per_op", calib_ns),
        ],
    }
}

fn main() {
    let mut only: Option<String> = None;
    let mut write_baselines: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--only" => only = args.next(),
            "--write-baselines" => write_baselines = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: pokemu-bench [--only NAME] [--write-baselines DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Timing attribution on: the per-origin solver timers feed the
    // pipeline_smoke ratio. Counters stay deterministic regardless.
    prof::set_enabled(true);

    let bench_dir = pokemu_rt::bench::target_dir().join("bench");
    std::fs::create_dir_all(&bench_dir).expect("create target/bench");

    type Runner = fn() -> WorkloadResult;
    let workloads: [(&str, Runner); 3] = [
        ("exec_throughput", exec_throughput),
        ("summary_crossover", summary_crossover),
        ("pipeline_smoke", pipeline_smoke),
    ];

    // Run-ledger context: a full bench sweep and an `--only` rerun must
    // form separate trend groups (their process-cumulative warm-up state
    // differs), so the selected workload set is part of the fingerprint.
    let selected: Vec<&str> = workloads
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| only.as_deref().is_none_or(|o| o == *n))
        .collect();
    history::set_context(&format!("pokemu-bench:{}", selected.join("+")));

    let mut ran = 0usize;
    for (name, run) in workloads {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let w = run();
        if history::enabled() {
            let mut rec =
                history::RunRecord::new("bench", name, history::fingerprint(&[name.to_string()]));
            for (k, v) in &w.counts {
                rec.det(format!("count.{k}"), *v);
            }
            for (k, v) in &w.ratios {
                rec.timing(format!("ratio.{k}"), *v);
            }
            for (k, v) in &w.info {
                rec.timing(format!("info.{k}"), *v);
            }
            if let Err(e) = history::append(rec) {
                eprintln!("[history] append failed: {e}");
            }
        }
        let path = bench_dir.join(format!("{name}.perf.json"));
        std::fs::write(&path, w.perf_json()).expect("write perf json");
        let ratios: Vec<String> = w
            .ratios
            .iter()
            .map(|(k, v)| format!("{k}={v:.3}"))
            .collect();
        println!(
            "[pokemu-bench] {name}: {} -> {}",
            ratios.join(" "),
            path.display()
        );
        if let Some(dir) = &write_baselines {
            std::fs::create_dir_all(dir).expect("create baselines dir");
            let bpath = dir.join(format!("{name}.json"));
            std::fs::write(&bpath, w.baseline_json()).expect("write baseline");
            println!("[pokemu-bench] baseline {}", bpath.display());
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "[pokemu-bench] no workload matched {:?}",
            only.as_deref().unwrap_or("<none>")
        );
        std::process::exit(2);
    }
}
