//! The gated bench trajectory: fixed-seed performance workloads whose
//! results feed `pokemu-report bench --check`.
//!
//! ```text
//! pokemu-bench [--only NAME] [--write-baselines DIR]
//! ```
//!
//! Each workload runs a deterministic slice of the pipeline and writes
//! `target/bench/<name>.perf.json` with two strictly separated sections:
//!
//! * `checked.counts` — machine-independent work counts (paths, queries,
//!   executed guest instructions). These must match the committed baseline
//!   **exactly**: any drift means the workload itself changed, which is a
//!   bench-trajectory break, not noise.
//! * `checked.ratios` — machine-dependent but *self-normalizing* timing
//!   ratios (hifi/lofi throughput, with/without summaries, solver query
//!   latency vs. an in-process calibration spin). The baseline stores a
//!   `[min, max]` band wide enough for machine variance (×8 each way) and
//!   narrow enough to catch order-of-magnitude regressions such as an
//!   injected `solver.check` latency fault.
//! * `info` — absolute nanoseconds, recorded for humans and trend plots,
//!   never gated.
//!
//! The three workloads pin down the repo's two known inversions: the e3
//! throughput inversion (the lo-fi DBT is *slower* than the hi-fi
//! interpreter on short programs — `exec_throughput`), and the e7
//! summarization inversion (summaries cost more than they save on `mov
//! ds,ax` — `summary_crossover`); `pipeline_smoke` ties end-to-end wall
//! time and per-query solver latency to a CPU-speed calibration loop.
//!
//! `--write-baselines DIR` refreshes the committed baselines from this
//! machine's measurements (exact counts, ratio bands at measured/8 ..
//! measured*8); `scripts/refresh-baseline.sh` drives it.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use pokemu::explore::{explore_state_space, StateSpaceConfig};
use pokemu::harness::{
    baseline_snapshot, run_cross_validation, HiFiTarget, LofiTarget, PipelineConfig, Target,
};
use pokemu::lofi::Fidelity;
use pokemu::testgen::TestProgram;
use pokemu_rt::{metrics, prof, rng};

/// Schema version stamped into every perf JSON and baseline.
const SCHEMA: u64 = 1;

/// Ratio baseline band half-width, as a multiplicative factor: a freshly
/// written baseline accepts measured/8 .. measured*8.
const RATIO_BAND: f64 = 8.0;

/// One finished workload: its gated counts and ratios plus informational
/// absolute timings.
struct WorkloadResult {
    name: &'static str,
    counts: Vec<(&'static str, u64)>,
    ratios: Vec<(&'static str, f64)>,
    info: Vec<(&'static str, f64)>,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_owned()
    }
}

impl WorkloadResult {
    fn perf_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let ratios: Vec<String> = self
            .ratios
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", num(*v)))
            .collect();
        let info: Vec<String> = self
            .info
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", num(*v)))
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"schema\":{SCHEMA},\"checked\":{{\"counts\":{{{}}},\
             \"ratios\":{{{}}}}},\"info\":{{{}}}}}\n",
            self.name,
            counts.join(","),
            ratios.join(","),
            info.join(",")
        )
    }

    fn baseline_json(&self) -> String {
        let counts: Vec<String> = self
            .counts
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let ratios: Vec<String> = self
            .ratios
            .iter()
            .map(|(k, v)| {
                format!(
                    "\"{k}\":{{\"min\":{},\"max\":{}}}",
                    num(v / RATIO_BAND),
                    num(v * RATIO_BAND)
                )
            })
            .collect();
        format!(
            "{{\"workload\":\"{}\",\"schema\":{SCHEMA},\"counts\":{{{}}},\"ratios\":{{{}}}}}\n",
            self.name,
            counts.join(","),
            ratios.join(",")
        )
    }
}

/// Calibration spin: `iters` SplitMix64 mixes, returning mean ns per mix.
/// Solver-query latency is gated *relative to this*, so the band tracks
/// the machine's single-thread speed instead of absolute nanoseconds.
fn calibrate(iters: u64) -> f64 {
    let t = Instant::now();
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..iters {
        x = rng::mix64(x ^ i);
    }
    black_box(x);
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// e3 slice: the same fixed programs through the hi-fi interpreter and the
/// lo-fi DBT, interleaved. The `hifi_over_lofi` ratio is the throughput
/// inversion observable (< 1 means the DBT is losing to the interpreter).
fn exec_throughput() -> WorkloadResult {
    // Single-instruction programs on top of the ~3.4k-instruction baseline
    // initializer: enough work per run to dominate emulator setup.
    let insns: [&[u8]; 4] = [
        &[0x90],             // nop
        &[0x40],             // inc eax
        &[0x80, 0xc3, 0x01], // add bl, 1
        &[0xf7, 0xd8],       // neg eax
    ];
    let progs: Vec<TestProgram> = insns
        .iter()
        .enumerate()
        .map(|(i, bytes)| {
            TestProgram::baseline_only(format!("throughput_{i}"), bytes)
                .expect("fixed program builds")
        })
        .collect();
    const REPS: u64 = 3;

    let m0 = metrics::snapshot();
    let mut hifi = HiFiTarget;
    let mut lofi = LofiTarget {
        fidelity: Fidelity::QEMU_LIKE,
    };
    let mut hifi_ns = 0u64;
    let mut lofi_ns = 0u64;
    for _ in 0..REPS {
        for p in &progs {
            let t = Instant::now();
            black_box(hifi.run_program(p));
            hifi_ns += t.elapsed().as_nanos() as u64;
            let t = Instant::now();
            black_box(lofi.run_program(p));
            lofi_ns += t.elapsed().as_nanos() as u64;
        }
    }
    let delta = metrics::snapshot().since(&m0);

    WorkloadResult {
        name: "exec_throughput",
        counts: vec![
            ("programs", progs.len() as u64 * REPS * 2),
            ("lofi_insns", delta.counter("lofi.insns")),
            ("lofi_tb_hits", delta.counter("lofi.tb_lookup.hits")),
            ("lofi_tb_misses", delta.counter("lofi.tb_lookup.misses")),
        ],
        ratios: vec![("hifi_over_lofi", hifi_ns as f64 / lofi_ns as f64)],
        info: vec![("hifi_ns", hifi_ns as f64), ("lofi_ns", lofi_ns as f64)],
    }
}

/// e7 slice: state-space exploration of `mov ds, ax` (`8e d8`) with and
/// without summarization. `with_over_without` > 1 *is* the inversion the
/// paper's summaries were supposed to prevent; the baseline band pins it
/// so an accidental 10× further regression (or a fix!) is flagged.
fn summary_crossover() -> WorkloadResult {
    let baseline = baseline_snapshot();
    let insn: &[u8] = &[0x8e, 0xd8];
    let explore = |use_summaries: bool| {
        let m0 = metrics::snapshot();
        let t = Instant::now();
        let space = explore_state_space(
            insn,
            &baseline,
            StateSpaceConfig {
                max_paths: 64,
                use_summaries,
                ..StateSpaceConfig::default()
            },
        );
        let ns = t.elapsed().as_nanos() as u64;
        let queries = metrics::snapshot().since(&m0).counter("solver.queries");
        (space, ns, queries)
    };
    // Warm both paths once so solver/pool one-time setup is off the clock.
    let _ = explore(true);
    let (with, with_ns, with_queries) = explore(true);
    let (without, without_ns, without_queries) = explore(false);

    WorkloadResult {
        name: "summary_crossover",
        counts: vec![
            ("paths_with", with.paths.len() as u64),
            ("paths_without", without.paths.len() as u64),
            ("queries_with", with_queries),
            ("queries_without", without_queries),
        ],
        ratios: vec![("with_over_without", with_ns as f64 / without_ns as f64)],
        info: vec![
            ("with_ns", with_ns as f64),
            ("without_ns", without_ns as f64),
        ],
    }
}

/// End-to-end smoke pipeline (the CI cross-validation config) with solver
/// latency normalized by the calibration spin. An injected
/// `solver.check:latency=…` fault inflates `solver_query_over_calib` by
/// orders of magnitude — the bench gate's fault self-test keys on this.
fn pipeline_smoke() -> WorkloadResult {
    let calib_ns = calibrate(1 << 17);
    let m0 = metrics::snapshot();
    let t = Instant::now();
    let cv = run_cross_validation(PipelineConfig {
        first_byte: Some(0x80),
        max_instructions: 2,
        max_paths_per_insn: 16,
        threads: 2,
        ..PipelineConfig::default()
    });
    let total_ns = t.elapsed().as_nanos() as u64;
    let delta = metrics::snapshot().since(&m0);

    let queries = delta.counter("solver.queries").max(1);
    let solver_ns: u64 = pokemu::solver::origin::ORIGINS
        .iter()
        .map(|o| delta.timer_ns(&format!("solver.ns.{o}")))
        .sum();
    let query_ns = solver_ns as f64 / queries as f64;

    WorkloadResult {
        name: "pipeline_smoke",
        counts: vec![
            ("unique_instructions", cv.unique_instructions as u64),
            ("total_paths", cv.total_paths as u64),
            ("fully_explored", cv.fully_explored as u64),
            ("solver_queries", delta.counter("solver.queries")),
        ],
        ratios: vec![("solver_query_over_calib", query_ns / calib_ns)],
        info: vec![
            ("total_ns", total_ns as f64),
            ("solver_ns", solver_ns as f64),
            ("calib_ns_per_op", calib_ns),
        ],
    }
}

fn main() {
    let mut only: Option<String> = None;
    let mut write_baselines: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--only" => only = args.next(),
            "--write-baselines" => write_baselines = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: pokemu-bench [--only NAME] [--write-baselines DIR]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Timing attribution on: the per-origin solver timers feed the
    // pipeline_smoke ratio. Counters stay deterministic regardless.
    prof::set_enabled(true);

    let bench_dir = pokemu_rt::bench::target_dir().join("bench");
    std::fs::create_dir_all(&bench_dir).expect("create target/bench");

    type Runner = fn() -> WorkloadResult;
    let workloads: [(&str, Runner); 3] = [
        ("exec_throughput", exec_throughput),
        ("summary_crossover", summary_crossover),
        ("pipeline_smoke", pipeline_smoke),
    ];

    let mut ran = 0usize;
    for (name, run) in workloads {
        if only.as_deref().is_some_and(|o| o != name) {
            continue;
        }
        let w = run();
        let path = bench_dir.join(format!("{name}.perf.json"));
        std::fs::write(&path, w.perf_json()).expect("write perf json");
        let ratios: Vec<String> = w
            .ratios
            .iter()
            .map(|(k, v)| format!("{k}={v:.3}"))
            .collect();
        println!(
            "[pokemu-bench] {name}: {} -> {}",
            ratios.join(" "),
            path.display()
        );
        if let Some(dir) = &write_baselines {
            std::fs::create_dir_all(dir).expect("create baselines dir");
            let bpath = dir.join(format!("{name}.json"));
            std::fs::write(&bpath, w.baseline_json()).expect("write baseline");
            println!("[pokemu-bench] baseline {}", bpath.display());
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!(
            "[pokemu-bench] no workload matched {:?}",
            only.as_deref().unwrap_or("<none>")
        );
        std::process::exit(2);
    }
}
