//! `pokemu-fleet` — crash-safe sharded exploration fleet (DESIGN.md §13).
//!
//! ```text
//! pokemu-fleet run [--run-id ID] [--root DIR] [--shards N]
//!                  [--first-byte B] [--second-byte B] [--max-paths N]
//!                  [--max-attempts N] [--backoff-ms MS] [--seed N]
//!                  [--heartbeat-ms MS] [--stale-ms MS] [--no-incremental]
//!                  [--no-ledger]
//! pokemu-fleet worker --shard N --shards M --root DIR ...   (internal)
//! ```
//!
//! `run` partitions the instruction space into `--shards` worker processes
//! (re-invoking this binary with `worker`), watches their heartbeats,
//! retries failed shards with deterministic backoff, demotes shards that
//! exhaust their attempts to `poisoned`, and merges the per-shard manifests
//! into `<root>/merged.json`. Exit code 0 even with poisoned shards (they
//! are attributed, and the `pokemu-report diff` gate fails on growth),
//! 1 on coordinator I/O errors, 2 on bad arguments.

use std::process::ExitCode;
use std::time::Duration;

use pokemu::harness::fleet::{self, FleetConfig, ShardStatus};
use pokemu_rt::history;

/// CLI failure with its exit code carried explicitly, so `main` never has
/// to classify errors by sniffing the message text.
enum CliError {
    /// Bad arguments — exit 2.
    Usage(String),
    /// The fleet run itself failed — exit 1.
    Run(String),
}

fn parse_byte(s: &str) -> Result<u8, String> {
    let (digits, radix) = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => (hex, 16),
        None => (s, 10),
    };
    u8::from_str_radix(digits, radix).map_err(|e| format!("bad byte {s:?}: {e}"))
}

fn parse_run_args(args: &[String]) -> Result<FleetConfig, String> {
    let mut config = FleetConfig {
        run_id: "fleet".to_owned(),
        ..FleetConfig::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--run-id" => config.run_id = val("--run-id")?,
            "--root" => config.root = Some(val("--root")?.into()),
            "--shards" => {
                config.shards = val("--shards")?.parse().map_err(|e| format!("{e}"))?;
                if config.shards == 0 {
                    return Err("--shards must be >= 1".to_owned());
                }
            }
            "--first-byte" => config.first_byte = Some(parse_byte(&val("--first-byte")?)?),
            "--second-byte" => config.second_byte = Some(parse_byte(&val("--second-byte")?)?),
            "--max-paths" => {
                config.max_paths_per_insn =
                    val("--max-paths")?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-attempts" => {
                config.max_attempts = val("--max-attempts")?.parse().map_err(|e| format!("{e}"))?
            }
            "--backoff-ms" => {
                config.backoff_base =
                    Duration::from_millis(val("--backoff-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--seed" => config.backoff_seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--heartbeat-ms" => {
                config.heartbeat_interval = Duration::from_millis(
                    val("--heartbeat-ms")?.parse().map_err(|e| format!("{e}"))?,
                )
            }
            "--stale-ms" => {
                config.heartbeat_stale =
                    Duration::from_millis(val("--stale-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--no-incremental" => config.incremental = false,
            "--no-ledger" => config.ledger = false,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(config)
}

fn run(args: &[String]) -> Result<(), CliError> {
    let config = parse_run_args(args).map_err(CliError::Usage)?;
    let outcome =
        fleet::run_fleet(&config).map_err(|e| CliError::Run(format!("fleet run failed: {e}")))?;
    println!(
        "fleet run {} -> {}",
        outcome.run_id,
        outcome.merged_path.display()
    );
    for s in &outcome.shards {
        match &s.status {
            ShardStatus::Completed => {
                println!("  {}: completed (attempts {})", s.name, s.attempts)
            }
            ShardStatus::Reused => println!("  {}: reused (unchanged)", s.name),
            ShardStatus::Poisoned(reason) => {
                println!(
                    "  {}: POISONED after {} attempt(s): {reason}",
                    s.name, s.attempts
                )
            }
        }
    }
    println!(
        "  merged: {} instruction(s), {} path(s), {} deviation(s), {} reused, {} poisoned",
        outcome.unique_instructions,
        outcome.total_paths,
        outcome.deviations,
        outcome.reused,
        outcome.poisoned.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    history::set_context("pokemu-fleet");
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("worker") => ExitCode::from(fleet::worker_main(&args[1..]) as u8),
        Some("run") => match run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(CliError::Run(e)) => {
                eprintln!("pokemu-fleet: {e}");
                ExitCode::from(1)
            }
            Err(CliError::Usage(e)) => {
                eprintln!("pokemu-fleet: {e}");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: pokemu-fleet <run|worker> [flags] (see --help in source header)");
            ExitCode::from(2)
        }
    }
}
