//! Property tests for the decoder and assembler.

use pokemu_isa::asm::Asm;
use pokemu_isa::decode::decode;
use pokemu_isa::state::{Gpr, Seg};
use pokemu_symx::{Concrete, Dom};

fn decode_bytes(
    bytes: &[u8],
) -> Result<pokemu_isa::Inst<pokemu_symx::CVal>, pokemu_isa::Exception> {
    let mut d = Concrete::new();
    let owned = bytes.to_vec();
    decode(&mut d, move |d, i| {
        Ok(d.constant(8, *owned.get(i as usize).unwrap_or(&0) as u64))
    })
}

pokemu_rt::prop! {
    /// The decoder is total and bounded: any byte string either decodes to
    /// an instruction of length <= 15 or faults — it never panics or reads
    /// past the buffer guard.
    fn decoder_is_total_and_bounded(g, cases = 512) {
        let bytes = g.bytes(1, 20);
        match decode_bytes(&bytes) {
            Ok(inst) => {
                assert!(inst.len >= 1 && inst.len <= 15);
                // Decoding the same bytes again is deterministic.
                let again = decode_bytes(&bytes).unwrap();
                assert_eq!(inst.class, again.class);
                assert_eq!(inst.len, again.len);
            }
            Err(_) => {
                // Faults are deterministic too.
                assert!(decode_bytes(&bytes).is_err());
            }
        }
    }

    /// Assembler output always decodes, and to the instruction intended.
    fn assembler_roundtrips(g, cases = 256) {
        let reg = g.range(0..8u8);
        let imm: u32 = g.gen();
        let addr = g.range(0..0x40_0000u32);
        let v: u8 = g.gen();

        let r = Gpr::ALL[reg as usize];
        let mut a = Asm::new();
        a.mov_r32_imm32(r, imm);
        let i = decode_bytes(a.bytes()).unwrap();
        assert_eq!(i.class.opcode, 0xb8 + reg as u16);
        assert_eq!(i.len as usize, a.len());

        let mut a = Asm::new();
        a.mov_m8_imm8(addr, v);
        let i = decode_bytes(a.bytes()).unwrap();
        assert_eq!(i.class.opcode, 0xc6);
        assert_eq!(i.len as usize, a.len());
    }

    /// Segment-override prefixes never change the instruction class, only
    /// the memory operand's segment.
    fn segment_override_is_transparent(g, cases = 64) {
        let seg = g.range(0..6usize);
        let prefixes = [0x26u8, 0x2e, 0x36, 0x3e, 0x64, 0x65];
        let segs = [Seg::Es, Seg::Cs, Seg::Ss, Seg::Ds, Seg::Fs, Seg::Gs];
        // mov eax, [ebx]
        let base = decode_bytes(&[0x8b, 0x03]).unwrap();
        let over = decode_bytes(&[prefixes[seg], 0x8b, 0x03]).unwrap();
        assert_eq!(base.class, over.class);
        assert_eq!(over.modrm.unwrap().mem.unwrap().seg, segs[seg]);
    }
}

/// Exhaustive: every single-byte opcode either decodes (possibly consuming
/// operand bytes of zeros) or faults with #UD/#GP — and matches the opcode
/// table's validity.
#[test]
fn one_byte_opcode_space_matches_table() {
    for b in 0..=0xffu8 {
        let mut buf = vec![b];
        buf.extend_from_slice(&[0; 14]);
        let decoded = decode_bytes(&buf);
        let is_prefix = matches!(
            b,
            0x26 | 0x2e | 0x36 | 0x3e | 0x64 | 0x65 | 0x66 | 0xf0 | 0xf2 | 0xf3
        );
        if is_prefix {
            // Prefix followed by zeros: decodes as the prefixed 0x00 insn.
            continue;
        }
        if b == 0x0f {
            continue; // two-byte space, checked separately
        }
        match pokemu_isa::op_info(b as u16) {
            Some(info) => {
                // Groups can reject reg=0 sub-opcodes (e.g. 8F requires /0 —
                // which zero bytes satisfy); mem-only forms accept mod=00.
                if info.group && info.group_valid & 1 == 0 {
                    assert!(decoded.is_err(), "opcode {b:#04x} group /0 invalid");
                } else if matches!(b, 0xf0) {
                    // lock alone: handled as prefix above.
                } else {
                    assert!(
                        decoded.is_ok(),
                        "opcode {b:#04x} should decode with zero operands: {decoded:?}"
                    );
                }
            }
            None => assert!(decoded.is_err(), "opcode {b:#04x} must be #UD"),
        }
    }
}
