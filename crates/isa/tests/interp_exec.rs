//! Concrete end-to-end tests of the reference interpreter.
//!
//! These run real instruction sequences on a minimal flat machine and check
//! architectural results: register values, flags, memory effects, faults,
//! and the protection checks.

use pokemu_isa::asm::Asm;
use pokemu_isa::state::{attrs, cr0, flags as fl, selector, RawDescriptor, Seg};
use pokemu_isa::{interp, Exception, Gpr, Machine, Quirks, StepOutcome};
use pokemu_symx::{CVal, Concrete, Dom};

const CODE_BASE: u32 = 0x1000;
const GDT_BASE: u32 = 0x8000;
const STACK_TOP: u32 = 0x7000;

/// A minimal flat protected-mode machine (paging off) with code loaded at
/// CODE_BASE.
fn flat_machine(code: &[u8]) -> (Concrete, Machine<CVal>) {
    let mut d = Concrete::new();
    let mut m = Machine::zeroed(&mut d);
    // CR0: PE only.
    m.cr0 = d.constant(32, 1 << cr0::PE);
    // Flat descriptor caches for every segment.
    for (i, seg) in Seg::ALL.iter().enumerate() {
        let typ: u8 = if *seg == Seg::Cs { 0xb } else { 0x3 }; // code RX / data RW
        let a: u64 = (typ as u64)
            | (1 << attrs::S as u64)
            | (1 << attrs::P as u64)
            | (1 << attrs::DB as u64)
            | (1 << attrs::G as u64);
        let s = &mut m.segs[i];
        s.selector = d.constant(16, ((i as u64) + 1) << 3);
        s.cache.base = d.constant(32, 0);
        s.cache.limit = d.constant(32, 0xffff_ffff);
        s.cache.attrs = d.constant(attrs::WIDTH, a);
    }
    // GDT with flat entries 1..=6 mirroring the caches, plus room to 16.
    m.gdtr.base = GDT_BASE;
    m.gdtr.limit = d.constant(16, 16 * 8 - 1);
    for i in 1..=6u32 {
        let typ = if i == 2 { 0xb } else { 0x3 };
        let bytes = RawDescriptor::flat(typ).encode();
        m.mem.load_bytes(&mut d, GDT_BASE + i * 8, &bytes);
    }
    m.gpr[Gpr::Esp as usize] = d.constant(32, STACK_TOP as u64);
    m.eip = CODE_BASE;
    m.mem.load_bytes(&mut d, CODE_BASE, code);
    (d, m)
}

fn run(code: &[u8], max_steps: usize) -> (Concrete, Machine<CVal>, StepOutcome) {
    let (mut d, mut m) = flat_machine(code);
    let q = Quirks::HARDWARE;
    let mut last = StepOutcome::Normal;
    for _ in 0..max_steps {
        last = interp::step(&mut d, &mut m, &q);
        if last != StepOutcome::Normal {
            break;
        }
    }
    (d, m, last)
}

fn reg(d: &Concrete, m: &Machine<CVal>, r: Gpr) -> u32 {
    d.as_const(m.gpr[r as usize]).unwrap() as u32
}

fn eflags(d: &Concrete, m: &Machine<CVal>) -> u32 {
    d.as_const(m.eflags).unwrap() as u32
}

#[test]
fn mov_add_and_halt() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 41);
    a.raw(&[0x83, 0xc0, 0x01]); // add eax, 1
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 42);
    assert_eq!(eflags(&d, &m) & (1 << fl::ZF), 0);
}

#[test]
fn add_sets_carry_and_zero() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 0xffff_ffff);
    a.raw(&[0x83, 0xc0, 0x01]); // add eax, 1 -> 0, CF, ZF
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 0);
    let f = eflags(&d, &m);
    assert_ne!(f & (1 << fl::CF), 0, "carry expected");
    assert_ne!(f & (1 << fl::ZF), 0, "zero expected");
    assert_eq!(f & (1 << fl::OF), 0);
}

#[test]
fn push_pop_roundtrip() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 0xdead_beef);
    a.push_r32(Gpr::Eax);
    a.pop_r32(Gpr::Ebx);
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Ebx), 0xdead_beef);
    assert_eq!(reg(&d, &m, Gpr::Esp), STACK_TOP);
}

#[test]
fn call_and_ret() {
    // call +1 (skips a nop); ret lands back after the call... layout:
    //   0: call rel32 (+1)   ; pushes 5, jumps to 6
    //   5: hlt
    //   6: ret               ; pops 5 -> hlt
    let code = [0xe8, 0x01, 0x00, 0x00, 0x00, 0xf4, 0xc3];
    let (d, m, out) = run(&code, 10);
    assert_eq!(out, StepOutcome::Halt);
    // EIP points just past the hlt at CODE_BASE+5.
    assert_eq!(m.eip, CODE_BASE + 6);
    assert_eq!(reg(&d, &m, Gpr::Esp), STACK_TOP);
}

#[test]
fn conditional_jump_taken_and_not() {
    // xor eax,eax; jz +1 (skip hlt) ; hlt ; mov eax, 7; hlt
    let code = [0x31, 0xc0, 0x74, 0x01, 0xf4, 0xb8, 7, 0, 0, 0, 0xf4];
    let (d, m, out) = run(&code, 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 7, "jz must skip first hlt");
}

#[test]
fn div_by_zero_faults() {
    // xor ecx,ecx; div ecx
    let code = [0x31, 0xc9, 0xf7, 0xf1];
    let (_, m, out) = run(&code, 10);
    assert_eq!(out, StepOutcome::Exception(Exception::De));
    // EIP points at the faulting instruction.
    assert_eq!(m.eip, CODE_BASE + 2);
}

#[test]
fn div_computes_quotient_remainder() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 100);
    a.mov_r32_imm32(Gpr::Edx, 0);
    a.mov_r32_imm32(Gpr::Ecx, 7);
    a.raw(&[0xf7, 0xf1]); // div ecx
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 14);
    assert_eq!(reg(&d, &m, Gpr::Edx), 2);
}

#[test]
fn idiv_negative() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, (-100i32) as u32);
    a.mov_r32_imm32(Gpr::Edx, 0xffff_ffff); // sign extension
    a.mov_r32_imm32(Gpr::Ecx, 7);
    a.raw(&[0xf7, 0xf9]); // idiv ecx
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax) as i32, -14);
    assert_eq!(reg(&d, &m, Gpr::Edx) as i32, -2);
}

#[test]
fn mul_wide_result() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 0x1000_0000);
    a.mov_r32_imm32(Gpr::Ecx, 0x10);
    a.raw(&[0xf7, 0xe1]); // mul ecx
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 0);
    assert_eq!(reg(&d, &m, Gpr::Edx), 1);
    assert_ne!(
        eflags(&d, &m) & (1 << fl::CF),
        0,
        "CF set when high half non-zero"
    );
}

#[test]
fn shifts_and_rotates() {
    // mov eax, 0x80000001; rol eax, 1 -> 0x00000003, CF=1
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Eax, 0x8000_0001);
    a.raw(&[0xd1, 0xc0]); // rol eax, 1
    a.hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Eax), 3);
    assert_ne!(eflags(&d, &m) & 1, 0);

    // shr edx, 4
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Edx, 0xf0);
    a.raw(&[0xc1, 0xea, 0x04]);
    a.hlt();
    let (d, m, _) = run(a.bytes(), 10);
    assert_eq!(reg(&d, &m, Gpr::Edx), 0xf);
}

#[test]
fn string_move_with_rep() {
    // Copy 4 bytes from 0x3000 to 0x4000.
    let mut a = Asm::new();
    a.mov_m8_imm8(0x3000, 0x11)
        .mov_m8_imm8(0x3001, 0x22)
        .mov_m8_imm8(0x3002, 0x33)
        .mov_m8_imm8(0x3003, 0x44)
        .mov_r32_imm32(Gpr::Esi, 0x3000)
        .mov_r32_imm32(Gpr::Edi, 0x4000)
        .mov_r32_imm32(Gpr::Ecx, 4)
        .raw(&[0xfc]) // cld
        .raw(&[0xf3, 0xa4]) // rep movsb
        .hlt();
    let (mut d, mut m, out) = run(a.bytes(), 20);
    assert_eq!(out, StepOutcome::Halt);
    let v = m.mem.read(&mut d, 0x4000, 4);
    assert_eq!(d.as_const(v), Some(0x4433_2211));
    assert_eq!(reg(&d, &m, Gpr::Ecx), 0);
    assert_eq!(reg(&d, &m, Gpr::Esi), 0x3004);
}

#[test]
fn leave_restores_frame() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Ebp, 0x9999)
        .push_r32(Gpr::Ebp) // save
        .mov_r32_imm32(Gpr::Eax, 0) // filler
        .raw(&[0x89, 0xe5]) // mov ebp, esp
        .raw(&[0x83, 0xec, 0x10]) // sub esp, 16
        .raw(&[0xc9]) // leave
        .hlt();
    let (d, m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    assert_eq!(reg(&d, &m, Gpr::Ebp), 0x9999);
    assert_eq!(reg(&d, &m, Gpr::Esp), STACK_TOP);
}

#[test]
fn segment_limit_violation_is_gp() {
    // Load a descriptor with a small limit into ES, then write beyond it.
    let (mut d, mut m) = flat_machine(&[]);
    // GDT entry 8: byte-granular data segment, limit 0xff.
    let mut desc = RawDescriptor::flat(0x3);
    desc.g = false;
    desc.limit = 0xff;
    m.mem.load_bytes(&mut d, GDT_BASE + 8 * 8, &desc.encode());
    let mut a = Asm::new();
    a.mov_ax_imm16(selector::build(8, false, 0))
        .mov_sreg_ax(Seg::Es)
        // mov [es:0x100], al  => 26 88 05 imm32  (one past the limit)
        .raw(&[0x26, 0x88, 0x05, 0x00, 0x01, 0x00, 0x00])
        .hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    assert_eq!(out, StepOutcome::Exception(Exception::Gp(0)));
    // In-bounds write succeeds: offset 0xff.
    let (mut d, mut m) = flat_machine(&[]);
    m.mem.load_bytes(&mut d, GDT_BASE + 8 * 8, &desc.encode());
    let mut a = Asm::new();
    a.mov_ax_imm16(selector::build(8, false, 0))
        .mov_sreg_ax(Seg::Es)
        .raw(&[0x26, 0x88, 0x05, 0xff, 0x00, 0x00, 0x00])
        .hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    assert_eq!(out, StepOutcome::Halt);
}

#[test]
fn readonly_segment_write_is_gp() {
    let (mut d, mut m) = flat_machine(&[]);
    let desc = RawDescriptor::flat(0x1); // read-only data
    m.mem.load_bytes(&mut d, GDT_BASE + 8 * 8, &desc.encode());
    let mut a = Asm::new();
    a.mov_ax_imm16(selector::build(8, false, 0))
        .mov_sreg_ax(Seg::Es)
        .raw(&[0x26, 0x88, 0x05, 0x00, 0x01, 0x00, 0x00])
        .hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    assert_eq!(out, StepOutcome::Exception(Exception::Gp(0)));
}

#[test]
fn segment_load_sets_accessed_bit() {
    let (mut d, mut m) = flat_machine(&[]);
    let mut desc = RawDescriptor::flat(0x2); // writable data, NOT accessed
    desc.dpl = 0;
    m.mem.load_bytes(&mut d, GDT_BASE + 8 * 8, &desc.encode());
    let mut a = Asm::new();
    a.mov_ax_imm16(selector::build(8, false, 0))
        .mov_sreg_ax(Seg::Es)
        .hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    for _ in 0..10 {
        if interp::step(&mut d, &mut m, &q) != StepOutcome::Normal {
            break;
        }
    }
    // The accessed bit (type bit 0, byte 5 bit 0) must now be set in memory.
    let tmp = m.mem.read_u8(&mut d, GDT_BASE + 8 * 8 + 5);
    let b5 = d.as_const(tmp).unwrap();
    assert_ne!(b5 & 1, 0, "accessed bit must be written back");
}

#[test]
fn not_present_segment_load_is_np() {
    let (mut d, mut m) = flat_machine(&[]);
    let mut desc = RawDescriptor::flat(0x3);
    desc.present = false;
    m.mem.load_bytes(&mut d, GDT_BASE + 8 * 8, &desc.encode());
    let mut a = Asm::new();
    a.mov_ax_imm16(selector::build(8, false, 0))
        .mov_sreg_ax(Seg::Es)
        .hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    assert_eq!(out, StepOutcome::Exception(Exception::Np(8 << 3)));
}

#[test]
fn rdmsr_invalid_is_gp() {
    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Ecx, 0x1234); // invalid MSR
    a.raw(&[0x0f, 0x32]); // rdmsr
    a.hlt();
    let (_, _, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Exception(Exception::Gp(0)));

    let mut a = Asm::new();
    a.mov_r32_imm32(Gpr::Ecx, 0x174); // SYSENTER_CS: valid
    a.raw(&[0x0f, 0x32]);
    a.hlt();
    let (_, _, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
}

#[test]
fn int3_reports_breakpoint() {
    let code = [0xcc];
    let (_, _, out) = run(&code, 2);
    assert_eq!(out, StepOutcome::Exception(Exception::Bp));
}

#[test]
fn int_n_reports_vector() {
    let code = [0xcd, 0x80];
    let (_, _, out) = run(&code, 2);
    assert_eq!(out, StepOutcome::Exception(Exception::SoftInt(0x80)));
}

#[test]
fn invalid_opcode_is_ud() {
    let code = [0x0f, 0x0b]; // ud2
    let (_, _, out) = run(&code, 2);
    assert_eq!(out, StepOutcome::Exception(Exception::Ud));
}

#[test]
fn paging_fault_on_not_present_page() {
    let (mut d, mut m) = flat_machine(&[]);
    // Enable paging with an identity map where one PT entry is not present.
    // Page directory at 0x10000, page table at 0x11000.
    let pd = 0x10000u32;
    let pt = 0x11000u32;
    let pde = (pt) | 0x3; // present | rw
    m.mem.load_bytes(&mut d, pd, &pde.to_le_bytes());
    for i in 0..1024u32 {
        let pte: u32 = if i == 0x30 { 0 } else { (i << 12) | 0x3 };
        m.mem.load_bytes(&mut d, pt + i * 4, &pte.to_le_bytes());
    }
    m.cr3_base = pd;
    m.cr0 = d.constant(32, (1 << cr0::PE) | (1u64 << cr0::PG));
    let mut a = Asm::new();
    a.mov_m8_imm8(0x30123, 0x55).hlt(); // page 0x30 is unmapped
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    // Error code: write (bit 1), supervisor, not-present (bit 0 clear).
    assert_eq!(out, StepOutcome::Exception(Exception::Pf(0x2, 0x30123)));
    assert_eq!(m.cr2, 0x30123);
}

#[test]
fn paging_sets_accessed_and_dirty() {
    let (mut d, mut m) = flat_machine(&[]);
    let pd = 0x10000u32;
    let pt = 0x11000u32;
    m.mem.load_bytes(&mut d, pd, &(pt | 0x3).to_le_bytes());
    for i in 0..1024u32 {
        m.mem
            .load_bytes(&mut d, pt + i * 4, &((i << 12) | 0x3).to_le_bytes());
    }
    m.cr3_base = pd;
    m.cr0 = d.constant(32, (1 << cr0::PE) | (1u64 << cr0::PG));
    let mut a = Asm::new();
    a.mov_m8_imm8(0x30123, 0x55).hlt();
    m.mem.load_bytes(&mut d, CODE_BASE, a.bytes());
    let q = Quirks::HARDWARE;
    for _ in 0..10 {
        if interp::step(&mut d, &mut m, &q) != StepOutcome::Normal {
            break;
        }
    }
    let tmp = m.mem.read(&mut d, pt + 0x30 * 4, 4);
    let pte = d.as_const(tmp).unwrap() as u32;
    assert_ne!(pte & (1 << 5), 0, "accessed bit");
    assert_ne!(pte & (1 << 6), 0, "dirty bit");
    let tmp = m.mem.read_u8(&mut d, 0x30123);
    let stored = d.as_const(tmp).unwrap();
    assert_eq!(stored, 0x55);
}

#[test]
fn iret_pops_three_and_loads_flags() {
    let mut a = Asm::new();
    // Build an iret frame: push eflags-image, cs, eip.
    a.push_imm32(0x0000_0046 | 2) // eflags with ZF
        .push_imm32(2 << 3) // cs selector (GDT entry 2 = flat code)
        .push_imm32(CODE_BASE + 100) // eip
        .raw(&[0xcf]); // iret
                       // At CODE_BASE+100: hlt.
    let (mut d, mut m) = flat_machine(a.bytes());
    m.mem.load_bytes(&mut d, CODE_BASE + 100, &[0xf4]);
    let q = Quirks::HARDWARE;
    let mut out = StepOutcome::Normal;
    for _ in 0..10 {
        out = interp::step(&mut d, &mut m, &q);
        if out != StepOutcome::Normal {
            break;
        }
    }
    assert_eq!(out, StepOutcome::Halt);
    // EIP points just past the hlt that iret jumped to.
    assert_eq!(m.eip, CODE_BASE + 101);
    assert_ne!(eflags(&d, &m) & (1 << fl::ZF), 0);
    assert_eq!(reg(&d, &m, Gpr::Esp), STACK_TOP);
}

#[test]
fn cmpxchg_success_and_failure() {
    // Success: eax == [mem]
    let mut a = Asm::new();
    a.mov_m32_imm32(0x3000, 5)
        .mov_r32_imm32(Gpr::Eax, 5)
        .mov_r32_imm32(Gpr::Ebx, 9)
        .raw(&[0x0f, 0xb1, 0x1d, 0x00, 0x30, 0x00, 0x00]) // cmpxchg [0x3000], ebx
        .hlt();
    let (mut d, mut m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    let v = m.mem.read(&mut d, 0x3000, 4);
    assert_eq!(d.as_const(v), Some(9));
    assert_ne!(eflags(&d, &m) & (1 << fl::ZF), 0);

    // Failure: accumulator gets the memory value.
    let mut a = Asm::new();
    a.mov_m32_imm32(0x3000, 7)
        .mov_r32_imm32(Gpr::Eax, 5)
        .mov_r32_imm32(Gpr::Ebx, 9)
        .raw(&[0x0f, 0xb1, 0x1d, 0x00, 0x30, 0x00, 0x00])
        .hlt();
    let (mut d, mut m, out) = run(a.bytes(), 10);
    assert_eq!(out, StepOutcome::Halt);
    let v = m.mem.read(&mut d, 0x3000, 4);
    assert_eq!(d.as_const(v), Some(7));
    assert_eq!(reg(&d, &m, Gpr::Eax), 7);
    assert_eq!(eflags(&d, &m) & (1 << fl::ZF), 0);
}

#[test]
fn hlt_requires_cpl0_model() {
    // Our flat machine runs at CPL 0 (CS DPL = 0), so hlt halts.
    let (_, _, out) = run(&[0xf4], 2);
    assert_eq!(out, StepOutcome::Halt);
}

#[test]
fn undefined_flags_differ_between_quirks() {
    // mul leaves SF/ZF/AF/PF undefined: HW model vs Clear must diverge for
    // some input. Use eax=2, ecx=3 -> result 6 (SF=0,ZF=0,PF from 6=parity
    // even? 6 = 0b110 -> two bits -> PF=1 under HwModel; Clear gives PF=0).
    let mut prog = Asm::new();
    prog.mov_r32_imm32(Gpr::Eax, 2);
    prog.mov_r32_imm32(Gpr::Ecx, 3);
    prog.raw(&[0xf7, 0xe1]); // mul ecx
    prog.hlt();

    let run_q = |q: Quirks| {
        let (mut d, mut m) = flat_machine(prog.bytes());
        let mut out = StepOutcome::Normal;
        for _ in 0..10 {
            out = interp::step(&mut d, &mut m, &q);
            if out != StepOutcome::Normal {
                break;
            }
        }
        assert_eq!(out, StepOutcome::Halt);
        d.as_const(m.eflags).unwrap() as u32
    };
    let hw = run_q(Quirks::HARDWARE);
    let hifi = run_q(Quirks::HIFI);
    assert_eq!(
        hw & (1 << fl::CF),
        hifi & (1 << fl::CF),
        "defined flags agree"
    );
    assert_ne!(
        hw & (1 << fl::PF),
        hifi & (1 << fl::PF),
        "undefined PF differs"
    );
}
