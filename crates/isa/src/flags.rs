//! EFLAGS computation, including architecturally-undefined results.
//!
//! Undefined flags are a root-cause class in the paper's evaluation ("some
//! arithmetic and logical instructions differently update some status flags
//! (documented as undefined)", §6.2). We model them explicitly: every flag
//! writer reports a *defined* set and an *undefined* set, and an
//! [`UndefPolicy`] chooses the undefined bits' values. Hardware, the Hi-Fi
//! emulator, and the Lo-Fi emulator each use a different policy, so the
//! cross-validation sees exactly the kind of benign-but-fingerprintable
//! differences the paper describes, and the harness's undefined-behavior
//! filter can mask them (§6.2).

use pokemu_symx::Dom;

use crate::state::flags::*;

/// Values for architecturally-undefined flag results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UndefPolicy {
    /// Model of the physical CPU: undefined flags follow the internal ALU
    /// result (e.g. SF/PF track the low half after `mul`).
    #[default]
    HwModel,
    /// Bochs-like: undefined flags are cleared.
    Clear,
    /// QEMU-like lazy flags: undefined flags keep their previous value.
    Unchanged,
}

/// A computed set of status-flag values (each width 1).
#[derive(Debug, Clone, Copy)]
pub struct FlagSet<V> {
    /// Carry.
    pub cf: V,
    /// Parity (of the low result byte).
    pub pf: V,
    /// Auxiliary carry (bit 3 -> 4).
    pub af: V,
    /// Zero.
    pub zf: V,
    /// Sign.
    pub sf: V,
    /// Overflow.
    pub of: V,
}

/// Bitmask over EFLAGS of the six status flags, used in defined/undefined
/// masks below.
pub const ALL_STATUS: u32 = STATUS;

/// Parity flag: 1 when the low 8 bits of `r` have even population.
pub fn parity<D: Dom>(d: &mut D, r: D::V) -> D::V {
    let mut acc = d.extract(r, 0, 0);
    for i in 1..8 {
        let b = d.extract(r, i, i);
        acc = d.xor(acc, b);
    }
    d.not(acc)
}

/// Zero flag for a result of any width.
pub fn zero<D: Dom>(d: &mut D, r: D::V) -> D::V {
    let w = d.width(r);
    let z = d.constant(w, 0);
    d.eq(r, z)
}

/// Sign flag (MSB) for a result of any width.
pub fn sign<D: Dom>(d: &mut D, r: D::V) -> D::V {
    let w = d.width(r);
    d.extract(r, w - 1, w - 1)
}

fn common<D: Dom>(d: &mut D, r: D::V) -> (D::V, D::V, D::V) {
    (parity(d, r), zero(d, r), sign(d, r))
}

/// Flags for `r = a + b (+ carry_in)`.
pub fn add_flags<D: Dom>(
    d: &mut D,
    a: D::V,
    b: D::V,
    carry_in: Option<D::V>,
    r: D::V,
) -> FlagSet<D::V> {
    let w = d.width(a);
    // Carry: compute in w+1 bits.
    let aw = d.zext(a, w + 1);
    let bw = d.zext(b, w + 1);
    let mut sum = d.add(aw, bw);
    if let Some(c) = carry_in {
        let cw = d.zext(c, w + 1);
        sum = d.add(sum, cw);
    }
    let cf = d.extract(sum, w, w);
    // Overflow: both operands same sign, result different.
    let ax = d.xor(a, r);
    let bx = d.xor(b, r);
    let both = d.and(ax, bx);
    let of = d.extract(both, w - 1, w - 1);
    // Aux carry: carry from bit 3 to 4.
    let t = d.xor(a, b);
    let t = d.xor(t, r);
    let af = d.extract(t, 4, 4);
    let (pf, zf, sf) = common(d, r);
    FlagSet {
        cf,
        pf,
        af,
        zf,
        sf,
        of,
    }
}

/// Flags for `r = a - b (- borrow_in)`.
pub fn sub_flags<D: Dom>(
    d: &mut D,
    a: D::V,
    b: D::V,
    borrow_in: Option<D::V>,
    r: D::V,
) -> FlagSet<D::V> {
    let w = d.width(a);
    let aw = d.zext(a, w + 1);
    let bw = d.zext(b, w + 1);
    let mut diff = d.sub(aw, bw);
    if let Some(c) = borrow_in {
        let cw = d.zext(c, w + 1);
        diff = d.sub(diff, cw);
    }
    let cf = d.extract(diff, w, w); // borrow out
    let ab = d.xor(a, b);
    let ar = d.xor(a, r);
    let both = d.and(ab, ar);
    let of = d.extract(both, w - 1, w - 1);
    let t = d.xor(a, b);
    let t = d.xor(t, r);
    let af = d.extract(t, 4, 4);
    let (pf, zf, sf) = common(d, r);
    FlagSet {
        cf,
        pf,
        af,
        zf,
        sf,
        of,
    }
}

/// Flags for logical operations (`and`/`or`/`xor`/`test`): CF = OF = 0,
/// AF architecturally undefined.
pub fn logic_flags<D: Dom>(d: &mut D, r: D::V) -> FlagSet<D::V> {
    let zero1 = d.ff();
    let (pf, zf, sf) = common(d, r);
    FlagSet {
        cf: zero1,
        pf,
        af: zero1,
        zf,
        sf,
        of: zero1,
    }
}

/// Inserts the width-1 value `bit` at position `pos` of the 32-bit `word`.
pub fn insert_bit<D: Dom>(d: &mut D, word: D::V, pos: u8, bit: D::V) -> D::V {
    let mask = d.constant(32, !(1u64 << pos) & 0xffff_ffff);
    let cleared = d.and(word, mask);
    let ext = d.zext(bit, 32);
    let pos_c = d.constant(32, pos as u64);
    let shifted = d.shl(ext, pos_c);
    d.or(cleared, shifted)
}

/// Reads bit `pos` of `word` as a width-1 value.
pub fn get_bit<D: Dom>(d: &mut D, word: D::V, pos: u8) -> D::V {
    d.extract(word, pos, pos)
}

/// Applies a [`FlagSet`] to EFLAGS.
///
/// `defined` and `undefined` are bitmasks over the six status flags; bits in
/// `defined` take their [`FlagSet`] value, bits in `undefined` follow
/// `policy`, and all remaining flag bits are preserved.
pub fn apply_flags<D: Dom>(
    d: &mut D,
    eflags: D::V,
    set: &FlagSet<D::V>,
    defined: u32,
    undefined: u32,
    policy: UndefPolicy,
) -> D::V {
    let mut out = eflags;
    let pairs: [(u8, D::V); 6] = [
        (CF, set.cf),
        (PF, set.pf),
        (AF, set.af),
        (ZF, set.zf),
        (SF, set.sf),
        (OF, set.of),
    ];
    for (pos, val) in pairs {
        let bit = 1u32 << pos;
        if defined & bit != 0 {
            out = insert_bit(d, out, pos, val);
        } else if undefined & bit != 0 {
            match policy {
                UndefPolicy::HwModel => out = insert_bit(d, out, pos, val),
                UndefPolicy::Clear => {
                    let z = d.ff();
                    out = insert_bit(d, out, pos, z);
                }
                UndefPolicy::Unchanged => {}
            }
        }
    }
    out
}

/// Evaluates the x86 condition code `cc` (0..=15) against EFLAGS.
pub fn condition<D: Dom>(d: &mut D, eflags: D::V, cc: u8) -> D::V {
    let cf = get_bit(d, eflags, CF);
    let zf = get_bit(d, eflags, ZF);
    let sf = get_bit(d, eflags, SF);
    let of = get_bit(d, eflags, OF);
    let pf = get_bit(d, eflags, PF);
    let base = match cc >> 1 {
        0 => of,            // O
        1 => cf,            // B
        2 => zf,            // E
        3 => d.or(cf, zf),  // BE
        4 => sf,            // S
        5 => pf,            // P
        6 => d.xor(sf, of), // L
        _ => {
            let l = d.xor(sf, of);
            d.or(zf, l) // LE
        }
    };
    if cc & 1 == 1 {
        d.not(base)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pokemu_symx::{Concrete, Dom};

    fn c(v: u64, w: u8) -> (Concrete, pokemu_symx::CVal) {
        let mut d = Concrete::new();
        let x = d.constant(w, v);
        (d, x)
    }

    fn run_add(a: u64, b: u64, w: u8) -> (u64, FlagSet<pokemu_symx::CVal>) {
        let mut d = Concrete::new();
        let av = d.constant(w, a);
        let bv = d.constant(w, b);
        let r = d.add(av, bv);
        let f = add_flags(&mut d, av, bv, None, r);
        (d.as_const(r).unwrap(), f)
    }

    #[test]
    fn add_carry_and_overflow() {
        let (r, f) = run_add(0xff, 1, 8);
        assert_eq!(r, 0);
        assert_eq!(f.cf.v, 1);
        assert_eq!(f.zf.v, 1);
        assert_eq!(f.of.v, 0);
        let (_, f) = run_add(0x7f, 1, 8);
        assert_eq!(f.of.v, 1, "0x7f + 1 overflows signed");
        assert_eq!(f.cf.v, 0);
        assert_eq!(f.sf.v, 1);
        assert_eq!(f.af.v, 1);
    }

    #[test]
    fn sub_borrow() {
        let mut d = Concrete::new();
        let a = d.constant(32, 1);
        let b = d.constant(32, 2);
        let r = d.sub(a, b);
        let f = sub_flags(&mut d, a, b, None, r);
        assert_eq!(f.cf.v, 1, "1 - 2 borrows");
        assert_eq!(f.sf.v, 1);
        assert_eq!(f.of.v, 0);
    }

    #[test]
    fn parity_of_low_byte_only() {
        let (mut d, x) = c(0x1_03, 16); // low byte 0x03: two bits set -> PF=1
        assert_eq!(parity(&mut d, x).v, 1);
        let (mut d, x) = c(0x1_07, 16); // three bits -> PF=0
        assert_eq!(parity(&mut d, x).v, 0);
    }

    #[test]
    fn condition_codes() {
        let mut d = Concrete::new();
        // ZF=1
        let fl = d.constant(32, 1 << ZF as u64);
        assert_eq!(condition(&mut d, fl, 0x4).v, 1); // JE
        assert_eq!(condition(&mut d, fl, 0x5).v, 0); // JNE
                                                     // SF=1, OF=0 -> less
        let fl = d.constant(32, 1 << SF as u64);
        assert_eq!(condition(&mut d, fl, 0xc).v, 1); // JL
        assert_eq!(condition(&mut d, fl, 0xd).v, 0); // JGE
    }

    #[test]
    fn undef_policies_differ() {
        let mut d = Concrete::new();
        let ef = d.constant(32, STATUS as u64); // all status set
        let z = d.ff();
        let set = FlagSet {
            cf: z,
            pf: z,
            af: z,
            zf: z,
            sf: z,
            of: z,
        };
        // AF undefined: HwModel writes set.af (0), Clear writes 0, Unchanged keeps 1.
        let hw = apply_flags(&mut d, ef, &set, 0, 1 << AF as u32, UndefPolicy::HwModel);
        let cl = apply_flags(&mut d, ef, &set, 0, 1 << AF as u32, UndefPolicy::Clear);
        let un = apply_flags(&mut d, ef, &set, 0, 1 << AF as u32, UndefPolicy::Unchanged);
        assert_eq!(d.as_const(hw).unwrap() & (1 << AF as u32 as u64), 0);
        assert_eq!(d.as_const(cl).unwrap() & (1 << AF as u32 as u64), 0);
        assert_ne!(d.as_const(un).unwrap() & (1 << AF as u32 as u64), 0);
    }

    #[test]
    fn insert_and_get_bit_roundtrip() {
        let mut d = Concrete::new();
        let w = d.constant(32, 0);
        let one = d.tt();
        let w = insert_bit(&mut d, w, OF, one);
        assert_eq!(d.as_const(w), Some(1 << OF as u64));
        assert_eq!(get_bit(&mut d, w, OF).v, 1);
        let zero1 = d.ff();
        let w = insert_bit(&mut d, w, OF, zero1);
        assert_eq!(d.as_const(w), Some(0));
    }
}
