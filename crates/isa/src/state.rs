//! Guest machine state: registers, flags, segments, control registers.
//!
//! The state is generic over the value type `V` so the same structures hold
//! concrete words (emulator execution) or symbolic terms (exploration). The
//! symbolic/concrete split of Figure 3 is *not* encoded here — it is a
//! property of how exploration initializes the state (see `pokemu-explore`).

use pokemu_symx::Dom;

use crate::mem::Memory;

/// Physical memory size: 4 MiB, as in the paper's baseline configuration
/// ("map the 4-GByte virtual address space linearly to a 4-MByte physical
/// memory", §4.1).
pub const PHYS_MEM_SIZE: u32 = 4 << 20;

/// General-purpose register indexes in x86 encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Gpr {
    Eax = 0,
    Ecx = 1,
    Edx = 2,
    Ebx = 3,
    Esp = 4,
    Ebp = 5,
    Esi = 6,
    Edi = 7,
}

impl Gpr {
    /// All registers in encoding order.
    pub const ALL: [Gpr; 8] = [
        Gpr::Eax,
        Gpr::Ecx,
        Gpr::Edx,
        Gpr::Ebx,
        Gpr::Esp,
        Gpr::Ebp,
        Gpr::Esi,
        Gpr::Edi,
    ];

    /// Builds from a 3-bit encoding.
    ///
    /// # Panics
    ///
    /// Panics if `n > 7`.
    pub fn from_bits(n: u8) -> Gpr {
        Self::ALL[n as usize]
    }

    /// The conventional name, e.g. `"eax"`.
    pub fn name(self) -> &'static str {
        ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"][self as usize]
    }
}

/// Segment register indexes in x86 encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Seg {
    Es = 0,
    Cs = 1,
    Ss = 2,
    Ds = 3,
    Fs = 4,
    Gs = 5,
}

impl Seg {
    /// All segment registers in encoding order.
    pub const ALL: [Seg; 6] = [Seg::Es, Seg::Cs, Seg::Ss, Seg::Ds, Seg::Fs, Seg::Gs];

    /// Builds from a 3-bit encoding.
    ///
    /// Returns `None` for encodings 6 and 7 (reserved; loading them is #UD).
    pub fn from_bits(n: u8) -> Option<Seg> {
        Self::ALL.get(n as usize).copied()
    }

    /// The conventional name, e.g. `"ss"`.
    pub fn name(self) -> &'static str {
        ["es", "cs", "ss", "ds", "fs", "gs"][self as usize]
    }
}

/// EFLAGS bit positions (x86 layout).
pub mod flags {
    /// Carry.
    pub const CF: u8 = 0;
    /// Parity.
    pub const PF: u8 = 2;
    /// Auxiliary carry.
    pub const AF: u8 = 4;
    /// Zero.
    pub const ZF: u8 = 6;
    /// Sign.
    pub const SF: u8 = 7;
    /// Trap.
    pub const TF: u8 = 8;
    /// Interrupt enable.
    pub const IF: u8 = 9;
    /// Direction.
    pub const DF: u8 = 10;
    /// Overflow.
    pub const OF: u8 = 11;
    /// I/O privilege level (2 bits).
    pub const IOPL: u8 = 12;
    /// Nested task.
    pub const NT: u8 = 14;
    /// Resume.
    pub const RF: u8 = 16;
    /// Virtual-8086 mode.
    pub const VM: u8 = 17;
    /// Alignment check.
    pub const AC: u8 = 18;
    /// Virtual interrupt flag.
    pub const VIF: u8 = 19;
    /// Virtual interrupt pending.
    pub const VIP: u8 = 20;
    /// CPUID availability.
    pub const ID: u8 = 21;

    /// Bits that always read as fixed values: bit 1 reads 1; bits 3, 5, 15
    /// and 22..31 read 0.
    pub const FIXED_ONE: u32 = 0x0000_0002;
    /// Mask of bits that are architecturally writable in our subset.
    pub const WRITABLE: u32 = 0x003f_7fd5;
    /// Mask of the arithmetic status flags.
    pub const STATUS: u32 = (1 << CF as u32)
        | (1 << PF as u32)
        | (1 << AF as u32)
        | (1 << ZF as u32)
        | (1 << SF as u32)
        | (1 << OF as u32);
}

/// CR0 bit positions.
pub mod cr0 {
    /// Protection enable.
    pub const PE: u8 = 0;
    /// Monitor coprocessor.
    pub const MP: u8 = 1;
    /// FPU emulation.
    pub const EM: u8 = 2;
    /// Task switched.
    pub const TS: u8 = 3;
    /// Extension type (reads 1).
    pub const ET: u8 = 4;
    /// Numeric error.
    pub const NE: u8 = 5;
    /// Write protect (supervisor writes honor page R/W).
    pub const WP: u8 = 16;
    /// Alignment mask.
    pub const AM: u8 = 18;
    /// Not write-through.
    pub const NW: u8 = 29;
    /// Cache disable.
    pub const CD: u8 = 30;
    /// Paging enable.
    pub const PG: u8 = 31;
}

/// CR4 bit positions.
pub mod cr4 {
    /// Virtual-8086 mode extensions.
    pub const VME: u8 = 0;
    /// Protected-mode virtual interrupts.
    pub const PVI: u8 = 1;
    /// Time-stamp disable (RDTSC requires CPL 0 when set).
    pub const TSD: u8 = 2;
    /// Debugging extensions.
    pub const DE: u8 = 3;
    /// Page-size extensions.
    pub const PSE: u8 = 4;
    /// Physical address extension (unsupported: must be 0).
    pub const PAE: u8 = 5;
    /// Machine-check enable.
    pub const MCE: u8 = 6;
    /// Global pages.
    pub const PGE: u8 = 7;
    /// Performance counter enable.
    pub const PCE: u8 = 8;
}

/// Exception vectors with their error information.
///
/// Vector numbers follow the x86 architecture. `Gp`, `Ss`, `Np`, `Ts` carry a
/// selector error code; `Pf` carries the page-fault error code and the
/// faulting linear address (CR2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// #DE — divide error (vector 0).
    De,
    /// #DB — debug (vector 1).
    Db,
    /// #BP — breakpoint (vector 3, from `int3`).
    Bp,
    /// #OF — overflow (vector 4, from `into`).
    Of,
    /// #BR — bound range (vector 5).
    Br,
    /// #UD — invalid opcode (vector 6).
    Ud,
    /// #NM — device not available (vector 7).
    Nm,
    /// #DF — double fault (vector 8).
    Df,
    /// #TS — invalid TSS (vector 10).
    Ts(u16),
    /// #NP — segment not present (vector 11).
    Np(u16),
    /// #SS — stack fault (vector 12).
    Ss(u16),
    /// #GP — general protection (vector 13).
    Gp(u16),
    /// #PF — page fault (vector 14): error code and faulting linear address.
    Pf(u16, u32),
    /// Software interrupt `int n` (delivered like an exception by the
    /// baseline IDT, which halts).
    SoftInt(u8),
}

impl Exception {
    /// The x86 vector number.
    pub fn vector(self) -> u8 {
        match self {
            Exception::De => 0,
            Exception::Db => 1,
            Exception::Bp => 3,
            Exception::Of => 4,
            Exception::Br => 5,
            Exception::Ud => 6,
            Exception::Nm => 7,
            Exception::Df => 8,
            Exception::Ts(_) => 10,
            Exception::Np(_) => 11,
            Exception::Ss(_) => 12,
            Exception::Gp(_) => 13,
            Exception::Pf(..) => 14,
            Exception::SoftInt(n) => n,
        }
    }

    /// The error code pushed by the exception, if any.
    pub fn error_code(self) -> Option<u16> {
        match self {
            Exception::Ts(e) | Exception::Np(e) | Exception::Ss(e) | Exception::Gp(e) => Some(e),
            Exception::Pf(e, _) => Some(e),
            _ => None,
        }
    }
}

/// A cached segment descriptor (the "hidden part" of a segment register).
///
/// `limit` is stored pre-scaled (byte granular): when the descriptor's G bit
/// is set the limit is `(raw_limit << 12) | 0xfff`.
#[derive(Debug, Clone, Copy)]
pub struct DescCache<V> {
    /// Segment base linear address.
    pub base: V,
    /// Byte-granular limit (inclusive).
    pub limit: V,
    /// Attribute bits, laid out as in [`attrs`].
    pub attrs: V,
}

/// Layout of [`DescCache::attrs`] (12 bits used).
pub mod attrs {
    /// Type field (4 bits, includes the accessed bit at bit 0).
    pub const TYPE_LO: u8 = 0;
    /// S bit: 1 = code/data, 0 = system.
    pub const S: u8 = 4;
    /// DPL (2 bits).
    pub const DPL_LO: u8 = 5;
    /// Present.
    pub const P: u8 = 7;
    /// AVL (ignored).
    pub const AVL: u8 = 8;
    /// L (64-bit; must be 0 in our subset).
    pub const L: u8 = 9;
    /// D/B default operation size.
    pub const DB: u8 = 10;
    /// Granularity (already folded into the cached limit; kept for fidelity).
    pub const G: u8 = 11;
    /// Width of the attrs word.
    pub const WIDTH: u8 = 12;
}

/// A segment register: the visible selector plus the descriptor cache.
#[derive(Debug, Clone, Copy)]
pub struct SegReg<V> {
    /// Visible 16-bit selector (index | TI | RPL).
    pub selector: V,
    /// The cached descriptor used for every access.
    pub cache: DescCache<V>,
}

/// A descriptor-table register (GDTR/IDTR).
#[derive(Debug, Clone, Copy)]
pub struct TableReg<V> {
    /// Linear base address. Kept concrete in exploration (Fig. 3: pointers
    /// to tables are concrete).
    pub base: u32,
    /// 16-bit table limit.
    pub limit: V,
}

/// Model-specific registers supported by the subset.
#[derive(Debug, Clone, Copy)]
pub struct Msrs<V> {
    /// IA32_SYSENTER_CS (0x174).
    pub sysenter_cs: V,
    /// IA32_SYSENTER_ESP (0x175).
    pub sysenter_esp: V,
    /// IA32_SYSENTER_EIP (0x176).
    pub sysenter_eip: V,
    /// Time-stamp counter (0x10); advanced by `rdtsc`.
    pub tsc: u64,
}

/// MSR addresses implemented by the subset.
pub const VALID_MSRS: [u32; 4] = [0x10, 0x174, 0x175, 0x176];

/// The complete guest machine state.
///
/// Everything that can influence a future instruction, per the paper's
/// definition of machine state (§2): registers, flags, segment state,
/// control registers, descriptor-table registers, MSRs, and physical memory.
#[derive(Debug, Clone)]
pub struct Machine<V> {
    /// General-purpose registers, indexed by [`Gpr`].
    pub gpr: [V; 8],
    /// Instruction pointer. Concrete: tests always place the test
    /// instruction at a fixed address (Fig. 3).
    pub eip: u32,
    /// EFLAGS register.
    pub eflags: V,
    /// Segment registers, indexed by [`Seg`].
    pub segs: [SegReg<V>; 6],
    /// CR0.
    pub cr0: V,
    /// CR2 (page-fault linear address). Concrete: written on #PF.
    pub cr2: u32,
    /// CR3: page-directory base is kept concrete; PWT/PCD flag bits live in
    /// `cr3_flags`.
    pub cr3_base: u32,
    /// CR3 flag bits (PWT, PCD) as a 32-bit word with only bits 3..4 used.
    pub cr3_flags: V,
    /// CR4.
    pub cr4: V,
    /// GDTR.
    pub gdtr: TableReg<V>,
    /// IDTR.
    pub idtr: TableReg<V>,
    /// MSRs.
    pub msrs: Msrs<V>,
    /// Physical memory.
    pub mem: Memory<V>,
}

impl<V: Copy> Machine<V> {
    /// Builds a machine with every register zeroed and empty memory.
    ///
    /// Use `pokemu_testgen::baseline` for a runnable configuration; this
    /// constructor only allocates the structure.
    pub fn zeroed<D: Dom<V = V>>(d: &mut D) -> Self {
        let z32 = d.constant(32, 0);
        let z16 = d.constant(16, 0);
        let za = d.constant(attrs::WIDTH, 0);
        let seg = SegReg {
            selector: z16,
            cache: DescCache {
                base: z32,
                limit: z32,
                attrs: za,
            },
        };
        Machine {
            gpr: [z32; 8],
            eip: 0,
            eflags: d.constant(32, flags::FIXED_ONE as u64),
            segs: [seg; 6],
            cr0: z32,
            cr2: 0,
            cr3_base: 0,
            cr3_flags: z32,
            cr4: z32,
            gdtr: TableReg {
                base: 0,
                limit: z16,
            },
            idtr: TableReg {
                base: 0,
                limit: z16,
            },
            msrs: Msrs {
                sysenter_cs: z32,
                sysenter_esp: z32,
                sysenter_eip: z32,
                tsc: 0,
            },
            mem: Memory::new(),
        }
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Gpr) -> V {
        self.gpr[r as usize]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Gpr, v: V) {
        self.gpr[r as usize] = v;
    }

    /// The current privilege level, read from the CS descriptor-cache DPL.
    pub fn cpl<D: Dom<V = V>>(&self, d: &mut D) -> V {
        let a = self.segs[Seg::Cs as usize].cache.attrs;
        d.extract(a, attrs::DPL_LO + 1, attrs::DPL_LO)
    }
}

/// Packs raw GDT descriptor halves.
///
/// These helpers are the single source of truth for the on-disk descriptor
/// layout, shared by the baseline initializer, the gadget generator, and
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawDescriptor {
    /// Segment base.
    pub base: u32,
    /// Raw 20-bit limit (before granularity scaling).
    pub limit: u32,
    /// Type (4 bits).
    pub typ: u8,
    /// S bit.
    pub s: bool,
    /// DPL.
    pub dpl: u8,
    /// Present.
    pub present: bool,
    /// AVL.
    pub avl: bool,
    /// L bit.
    pub l: bool,
    /// D/B bit.
    pub db: bool,
    /// Granularity.
    pub g: bool,
}

impl RawDescriptor {
    /// A flat 4-GiB ring-0 segment of the given type (paper §4.1 baseline).
    pub fn flat(typ: u8) -> RawDescriptor {
        RawDescriptor {
            base: 0,
            limit: 0xfffff,
            typ,
            s: true,
            dpl: 0,
            present: true,
            avl: false,
            l: false,
            db: true,
            g: true,
        }
    }

    /// Encodes to the 8-byte GDT entry format.
    pub fn encode(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = (self.limit & 0xff) as u8;
        b[1] = ((self.limit >> 8) & 0xff) as u8;
        b[2] = (self.base & 0xff) as u8;
        b[3] = ((self.base >> 8) & 0xff) as u8;
        b[4] = ((self.base >> 16) & 0xff) as u8;
        b[5] = (self.typ & 0xf)
            | ((self.s as u8) << 4)
            | ((self.dpl & 3) << 5)
            | ((self.present as u8) << 7);
        b[6] = (((self.limit >> 16) & 0xf) as u8)
            | ((self.avl as u8) << 4)
            | ((self.l as u8) << 5)
            | ((self.db as u8) << 6)
            | ((self.g as u8) << 7);
        b[7] = ((self.base >> 24) & 0xff) as u8;
        b
    }

    /// Decodes from the 8-byte GDT entry format.
    pub fn decode(b: [u8; 8]) -> RawDescriptor {
        RawDescriptor {
            base: (b[2] as u32)
                | ((b[3] as u32) << 8)
                | ((b[4] as u32) << 16)
                | ((b[7] as u32) << 24),
            limit: (b[0] as u32) | ((b[1] as u32) << 8) | (((b[6] & 0xf) as u32) << 16),
            typ: b[5] & 0xf,
            s: b[5] & 0x10 != 0,
            dpl: (b[5] >> 5) & 3,
            present: b[5] & 0x80 != 0,
            avl: b[6] & 0x10 != 0,
            l: b[6] & 0x20 != 0,
            db: b[6] & 0x40 != 0,
            g: b[6] & 0x80 != 0,
        }
    }

    /// The byte-granular limit after applying the G bit.
    pub fn scaled_limit(self) -> u32 {
        if self.g {
            (self.limit << 12) | 0xfff
        } else {
            self.limit
        }
    }
}

/// Segment selector helpers.
pub mod selector {
    /// Builds a selector from table index, TI and RPL.
    pub fn build(index: u16, ti_ldt: bool, rpl: u8) -> u16 {
        (index << 3) | ((ti_ldt as u16) << 2) | (rpl as u16 & 3)
    }

    /// The table index of a selector.
    pub fn index(sel: u16) -> u16 {
        sel >> 3
    }

    /// The RPL of a selector.
    pub fn rpl(sel: u16) -> u8 {
        (sel & 3) as u8
    }

    /// The TI bit (1 = LDT).
    pub fn ti(sel: u16) -> bool {
        sel & 4 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = RawDescriptor {
            base: 0x0012_3456,
            limit: 0xabcde,
            typ: 0xb,
            s: true,
            dpl: 3,
            present: true,
            avl: true,
            l: false,
            db: true,
            g: true,
        };
        assert_eq!(RawDescriptor::decode(d.encode()), d);
    }

    #[test]
    fn flat_descriptor_covers_4g() {
        let d = RawDescriptor::flat(0x3);
        assert_eq!(d.scaled_limit(), 0xffff_ffff);
    }

    #[test]
    fn selector_fields() {
        let s = selector::build(10, false, 0);
        assert_eq!(s, 0x50);
        assert_eq!(selector::index(s), 10);
        assert_eq!(selector::rpl(s), 0);
        assert!(!selector::ti(s));
    }

    #[test]
    fn exception_vectors_match_x86() {
        assert_eq!(Exception::Ud.vector(), 6);
        assert_eq!(Exception::Gp(0).vector(), 13);
        assert_eq!(Exception::Pf(2, 0xdead).vector(), 14);
        assert_eq!(Exception::Pf(2, 0xdead).error_code(), Some(2));
        assert_eq!(Exception::SoftInt(0x80).vector(), 0x80);
    }

    #[test]
    fn cpl_reads_cs_dpl() {
        use pokemu_symx::{Concrete, Dom};
        let mut d = Concrete::new();
        let mut m = Machine::zeroed(&mut d);
        m.segs[Seg::Cs as usize].cache.attrs = d.constant(attrs::WIDTH, 0x3 << attrs::DPL_LO);
        let cpl = m.cpl(&mut d);
        assert_eq!(d.as_const(cpl), Some(3));
    }
}
