//! Guest physical memory.
//!
//! Memory is a sparse two-level structure ("similar to a page table",
//! §3.1.2) of 4-KiB pages whose bytes are domain values. A byte that has
//! never been written is materialized on first read according to the
//! [`MissingPolicy`]: concrete executions read zero (the baseline image
//! zero-fills), symbolic explorations create an on-demand symbolic variable
//! per byte ("we modify FuzzBALL to create those variables on demand only
//! when a location is accessed", §3.3.2).

use std::collections::HashMap;

use pokemu_symx::Dom;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// What an unwritten byte reads as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissingPolicy {
    /// Read as zero (concrete emulator execution over a zero-filled image).
    #[default]
    Zero,
    /// Materialize a fresh named symbolic input `mem_XXXXXXXX` (exploration:
    /// "all of the unused bytes in physical memory" are symbolic, §3.3.1).
    Symbolic,
}

#[derive(Debug, Clone)]
struct Page<V> {
    bytes: Vec<Option<V>>,
}

impl<V: Copy> Page<V> {
    fn new() -> Self {
        Page {
            bytes: vec![None; PAGE_SIZE],
        }
    }
}

/// Sparse physical memory over domain values.
#[derive(Debug, Clone)]
pub struct Memory<V> {
    pages: HashMap<u32, Page<V>>,
    policy: MissingPolicy,
    size: u32,
}

impl<V: Copy> Default for Memory<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy> Memory<V> {
    /// Creates an empty memory of [`crate::state::PHYS_MEM_SIZE`] bytes with
    /// the zero policy.
    pub fn new() -> Self {
        Memory {
            pages: HashMap::new(),
            policy: MissingPolicy::Zero,
            size: crate::state::PHYS_MEM_SIZE,
        }
    }

    /// Sets the policy for unwritten bytes.
    pub fn set_policy(&mut self, policy: MissingPolicy) {
        self.policy = policy;
    }

    /// The current missing-byte policy.
    pub fn policy(&self) -> MissingPolicy {
        self.policy
    }

    /// Physical memory size in bytes. Addresses wrap modulo this size, so
    /// the 4-GiB linear space aliases onto physical memory exactly as the
    /// baseline page tables do (§4.1).
    pub fn size(&self) -> u32 {
        self.size
    }

    fn wrap(&self, addr: u32) -> u32 {
        addr % self.size
    }

    /// Reads one byte of physical memory.
    ///
    /// Unwritten bytes are materialized per the policy; a symbolic
    /// materialization is stored so later reads see the same variable.
    pub fn read_u8<D: Dom<V = V>>(&mut self, d: &mut D, addr: u32) -> V {
        let addr = self.wrap(addr);
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(Page::new);
        let slot = &mut page.bytes[(addr as usize) & (PAGE_SIZE - 1)];
        match *slot {
            Some(v) => v,
            None => {
                let v = match self.policy {
                    MissingPolicy::Zero => d.constant(8, 0),
                    MissingPolicy::Symbolic => d.fresh_input(8, &format!("mem_{addr:08x}")),
                };
                *slot = Some(v);
                v
            }
        }
    }

    /// Writes one byte of physical memory.
    pub fn write_u8(&mut self, addr: u32, v: V) {
        let addr = self.wrap(addr);
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(Page::new);
        page.bytes[(addr as usize) & (PAGE_SIZE - 1)] = Some(v);
    }

    /// Reads `n` bytes (1, 2 or 4) little-endian as one value of width `8n`.
    pub fn read<D: Dom<V = V>>(&mut self, d: &mut D, addr: u32, n: u8) -> V {
        debug_assert!(matches!(n, 1 | 2 | 4 | 8));
        let mut v = self.read_u8(d, addr);
        for i in 1..n {
            let b = self.read_u8(d, addr.wrapping_add(i as u32));
            v = d.concat(b, v);
        }
        v
    }

    /// Writes a value of width `8n` little-endian.
    pub fn write<D: Dom<V = V>>(&mut self, d: &mut D, addr: u32, v: V, n: u8) {
        debug_assert_eq!(d.width(v), n * 8);
        for i in 0..n {
            let byte = d.extract(v, i * 8 + 7, i * 8);
            self.write_u8(addr.wrapping_add(i as u32), byte);
        }
    }

    /// Copies a concrete byte slice into memory (image loading).
    pub fn load_bytes<D: Dom<V = V>>(&mut self, d: &mut D, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let v = d.constant(8, b as u64);
            self.write_u8(addr.wrapping_add(i as u32), v);
        }
    }

    /// Reads a concrete byte, if the stored value is (or defaults to) a
    /// constant. Used by snapshot comparison.
    pub fn read_concrete<D: Dom<V = V>>(&mut self, d: &mut D, addr: u32) -> Option<u64> {
        let v = self.read_u8(d, addr);
        d.as_const(v)
    }

    /// Iterates over all initialized bytes as `(address, value)` pairs in
    /// address order.
    pub fn iter_initialized(&self) -> impl Iterator<Item = (u32, V)> + '_ {
        let mut pages: Vec<(&u32, &Page<V>)> = self.pages.iter().collect();
        pages.sort_by_key(|(p, _)| **p);
        pages.into_iter().flat_map(|(pno, page)| {
            let base = pno << PAGE_SHIFT;
            page.bytes
                .iter()
                .enumerate()
                .filter_map(move |(i, b)| b.map(|v| (base + i as u32, v)))
        })
    }

    /// Number of initialized bytes (for diagnostics).
    pub fn initialized_len(&self) -> usize {
        self.pages
            .values()
            .map(|p| p.bytes.iter().filter(|b| b.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pokemu_symx::{Concrete, Dom};

    #[test]
    fn zero_policy_reads_zero() {
        let mut d = Concrete::new();
        let mut m: Memory<_> = Memory::new();
        let v = m.read(&mut d, 0x1234, 4);
        assert_eq!(d.as_const(v), Some(0));
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut d = Concrete::new();
        let mut m: Memory<_> = Memory::new();
        let v = d.constant(32, 0xdead_beef);
        m.write(&mut d, 0x2000, v, 4);
        let r = m.read(&mut d, 0x2000, 4);
        assert_eq!(d.as_const(r), Some(0xdead_beef));
        let b0 = m.read(&mut d, 0x2000, 1);
        assert_eq!(d.as_const(b0), Some(0xef));
        let b3 = m.read(&mut d, 0x2003, 1);
        assert_eq!(d.as_const(b3), Some(0xde));
    }

    #[test]
    fn addresses_wrap_at_phys_size() {
        let mut d = Concrete::new();
        let mut m: Memory<_> = Memory::new();
        let v = d.constant(8, 0x5a);
        m.write_u8(0x100, v);
        let aliased = m.read_u8(&mut d, 0x100 + crate::state::PHYS_MEM_SIZE);
        assert_eq!(d.as_const(aliased), Some(0x5a));
    }

    #[test]
    fn symbolic_policy_materializes_stable_vars() {
        use pokemu_symx::Executor;
        let mut e = Executor::new();
        let mut m: Memory<_> = Memory::new();
        m.set_policy(MissingPolicy::Symbolic);
        let a = m.read_u8(&mut e, 0x3000);
        let b = m.read_u8(&mut e, 0x3000);
        assert_eq!(a, b, "same location must be the same variable");
        let c = m.read_u8(&mut e, 0x3001);
        assert_ne!(a, c);
        assert!(e.pool().as_const(a).is_none());
    }

    #[test]
    fn load_bytes_then_iter() {
        let mut d = Concrete::new();
        let mut m: Memory<_> = Memory::new();
        m.load_bytes(&mut d, 0x7c00, &[1, 2, 3]);
        let init: Vec<(u32, u64)> = m
            .iter_initialized()
            .map(|(a, v)| (a, d.as_const(v).unwrap()))
            .collect();
        assert_eq!(init, vec![(0x7c00, 1), (0x7c01, 2), (0x7c02, 3)]);
    }
}
