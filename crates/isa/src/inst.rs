//! Decoded instruction representation.
//!
//! A decoded instruction separates the parts the decoder *dispatches on*
//! (prefixes, opcode, ModRM fields — always concrete, forced by
//! [`pokemu_symx::Dom::concretize`] during decoding) from the parts that flow
//! as *data* (displacements and immediates — domain values, possibly
//! symbolic). This mirrors how real emulators structure decoding: tables
//! switch on opcode bytes while immediates are copied into the decoded form.

use crate::state::{Gpr, Seg};

/// Repeat prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rep {
    /// `F3` — REP / REPE.
    RepE,
    /// `F2` — REPNE.
    RepNe,
}

/// The identity of an instruction's *per-instruction code* (paper §3.2).
///
/// Byte sequences with equal `InstClass` run the same emulator
/// implementation; the exploration selects one representative per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstClass {
    /// Opcode: `0x00..=0xFF` for one-byte, `0x0F00 | b` for two-byte.
    pub opcode: u16,
    /// ModRM `reg` field for group opcodes (sub-opcode selection).
    pub group_reg: Option<u8>,
    /// Whether the ModRM operand is memory (`Some(true)`), a register
    /// (`Some(false)`), or absent (`None`). Register vs. memory forms have
    /// distinct per-instruction code in both emulators.
    pub mem_operand: Option<bool>,
    /// Whether the 0x66 operand-size prefix is active (16-bit form).
    pub opsize16: bool,
}

impl std::fmt::Display for InstClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.opcode > 0xff {
            write!(f, "0F{:02X}", self.opcode & 0xff)?;
        } else {
            write!(f, "{:02X}", self.opcode)?;
        }
        if let Some(g) = self.group_reg {
            write!(f, "/{g}")?;
        }
        match self.mem_operand {
            Some(true) => write!(f, " m")?,
            Some(false) => write!(f, " r")?,
            None => {}
        }
        if self.opsize16 {
            write!(f, " o16")?;
        }
        Ok(())
    }
}

/// A decoded memory operand (effective address ingredients).
#[derive(Debug, Clone, Copy)]
pub struct MemOperand<V> {
    /// Segment used for the access (after overrides and EBP/ESP defaults).
    pub seg: Seg,
    /// Base register, if any.
    pub base: Option<Gpr>,
    /// Index register and scale shift (0..=3), if any.
    pub index: Option<(Gpr, u8)>,
    /// 32-bit displacement (sign-extended already); may be symbolic.
    pub disp: V,
}

/// Decoded ModRM information.
#[derive(Debug, Clone, Copy)]
pub struct ModRm<V> {
    /// The `mod` field (0..=3).
    pub mode: u8,
    /// The `reg` field (0..=7): register operand or group sub-opcode.
    pub reg: u8,
    /// The `rm` field (0..=7).
    pub rm: u8,
    /// Decoded memory operand when `mode != 3`.
    pub mem: Option<MemOperand<V>>,
}

/// A fully decoded instruction.
#[derive(Debug, Clone, Copy)]
pub struct Inst<V> {
    /// Equivalence class for per-instruction code selection.
    pub class: InstClass,
    /// Total encoded length in bytes.
    pub len: u8,
    /// Segment-override prefix, if present.
    pub seg_override: Option<Seg>,
    /// LOCK prefix present.
    pub lock: bool,
    /// REP/REPNE prefix, if present.
    pub rep: Option<Rep>,
    /// 16-bit operand size (0x66 prefix).
    pub opsize16: bool,
    /// ModRM, when the opcode takes one.
    pub modrm: Option<ModRm<V>>,
    /// Primary immediate (width 8, 16 or 32 depending on the form).
    pub imm: Option<V>,
    /// Secondary immediate: far-pointer selector (16) or `enter`'s level (8).
    pub imm2: Option<V>,
}

impl<V> Inst<V> {
    /// Operand size in bytes for "z"-sized operations (4, or 2 with 0x66).
    pub fn opsize(&self) -> u8 {
        if self.opsize16 {
            2
        } else {
            4
        }
    }

    /// Operand width in bits for "z"-sized operations.
    pub fn opwidth(&self) -> u8 {
        self.opsize() * 8
    }
}
