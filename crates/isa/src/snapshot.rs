//! Machine-state snapshots: the comparison format of the test harness.
//!
//! After a test program halts or raises an exception, every execution target
//! (Hi-Fi emulator, Lo-Fi emulator, hardware oracle) dumps its CPU state and
//! physical memory into this common format — the paper implements "our own
//! file format to simplify comparison" for the same reason (§5.1).
//! Uninitialized/zero memory is omitted: all targets zero-fill, so only
//! non-zero bytes are significant.

use std::collections::BTreeMap;

use pokemu_symx::{Concrete, Dom};

use crate::state::{Machine, Seg};

/// How a test-program execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The CPU executed `hlt`.
    Halted,
    /// An exception or software interrupt was raised.
    Exception {
        /// Vector number.
        vector: u8,
        /// Error code, if the vector pushes one.
        error: Option<u16>,
    },
    /// The step budget expired without halt or exception.
    Timeout,
}

/// Snapshot of one segment register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SegSnapshot {
    /// Visible selector.
    pub selector: u16,
    /// Cached base.
    pub base: u32,
    /// Cached byte-granular limit.
    pub limit: u32,
    /// Cached attribute word.
    pub attrs: u16,
}

/// A complete final machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// General-purpose registers.
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// EFLAGS.
    pub eflags: u32,
    /// Segment registers in [`Seg`] order.
    pub segs: [SegSnapshot; 6],
    /// CR0.
    pub cr0: u32,
    /// CR2.
    pub cr2: u32,
    /// CR3 (base | flags).
    pub cr3: u32,
    /// CR4.
    pub cr4: u32,
    /// GDTR (base, limit).
    pub gdtr: (u32, u16),
    /// IDTR (base, limit).
    pub idtr: (u32, u16),
    /// Non-zero physical memory bytes.
    pub mem: BTreeMap<u32, u8>,
    /// How execution ended.
    pub outcome: Outcome,
}

impl Snapshot {
    /// Captures a snapshot from a concrete [`Machine`].
    pub fn capture(d: &mut Concrete, m: &Machine<pokemu_symx::CVal>, outcome: Outcome) -> Snapshot {
        let g = |d: &Concrete, v| d.as_const(v).expect("concrete machine") as u32;
        let mut segs = [SegSnapshot {
            selector: 0,
            base: 0,
            limit: 0,
            attrs: 0,
        }; 6];
        for s in Seg::ALL {
            let sr = &m.segs[s as usize];
            segs[s as usize] = SegSnapshot {
                selector: g(d, sr.selector) as u16,
                base: g(d, sr.cache.base),
                limit: g(d, sr.cache.limit),
                attrs: g(d, sr.cache.attrs) as u16,
            };
        }
        let mut mem = BTreeMap::new();
        for (addr, v) in m.mem.iter_initialized() {
            let b = d.as_const(v).expect("concrete memory") as u8;
            if b != 0 {
                mem.insert(addr, b);
            }
        }
        Snapshot {
            gpr: std::array::from_fn(|i| g(d, m.gpr[i])),
            eip: m.eip,
            eflags: g(d, m.eflags),
            segs,
            cr0: g(d, m.cr0),
            cr2: m.cr2,
            cr3: m.cr3_base | g(d, m.cr3_flags),
            cr4: g(d, m.cr4),
            gdtr: (m.gdtr.base, g(d, m.gdtr.limit) as u16),
            idtr: (m.idtr.base, g(d, m.idtr.limit) as u16),
            mem,
            outcome,
        }
    }

    /// Names of the state components in which `self` and `other` differ —
    /// the difference signature used for clustering (paper §6.2).
    pub fn diff(&self, other: &Snapshot) -> Vec<String> {
        let mut out = Vec::new();
        if self.outcome != other.outcome {
            out.push(format!(
                "outcome: {:?} vs {:?}",
                self.outcome, other.outcome
            ));
        }
        for (i, r) in crate::state::Gpr::ALL.iter().enumerate() {
            if self.gpr[i] != other.gpr[i] {
                out.push(format!(
                    "{}: {:#x} vs {:#x}",
                    r.name(),
                    self.gpr[i],
                    other.gpr[i]
                ));
            }
        }
        if self.eip != other.eip {
            out.push(format!("eip: {:#x} vs {:#x}", self.eip, other.eip));
        }
        if self.eflags != other.eflags {
            out.push(format!("eflags: {:#x} vs {:#x}", self.eflags, other.eflags));
        }
        for s in Seg::ALL {
            let (a, b) = (self.segs[s as usize], other.segs[s as usize]);
            if a != b {
                out.push(format!("{}: {:?} vs {:?}", s.name(), a, b));
            }
        }
        for (name, a, b) in [
            ("cr0", self.cr0, other.cr0),
            ("cr2", self.cr2, other.cr2),
            ("cr3", self.cr3, other.cr3),
            ("cr4", self.cr4, other.cr4),
        ] {
            if a != b {
                out.push(format!("{name}: {a:#x} vs {b:#x}"));
            }
        }
        if self.gdtr != other.gdtr {
            out.push(format!("gdtr: {:?} vs {:?}", self.gdtr, other.gdtr));
        }
        if self.idtr != other.idtr {
            out.push(format!("idtr: {:?} vs {:?}", self.idtr, other.idtr));
        }
        // Memory: union of keys, zero default.
        let keys: std::collections::BTreeSet<u32> =
            self.mem.keys().chain(other.mem.keys()).copied().collect();
        let mut mem_diffs = 0;
        for k in keys {
            let a = self.mem.get(&k).copied().unwrap_or(0);
            let b = other.mem.get(&k).copied().unwrap_or(0);
            if a != b {
                if mem_diffs < 8 {
                    out.push(format!("mem[{k:#x}]: {a:#x} vs {b:#x}"));
                }
                mem_diffs += 1;
            }
        }
        if mem_diffs >= 8 {
            out.push(format!("... {mem_diffs} memory bytes differ in total"));
        }
        out
    }

    /// `true` when the snapshots are behaviorally identical.
    pub fn same_behavior(&self, other: &Snapshot) -> bool {
        self.diff(other).is_empty()
    }
}
