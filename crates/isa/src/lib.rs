//! # pokemu-isa
//!
//! **VX86**: the guest instruction-set architecture of the PokeEMU-rs
//! reproduction — a 32-bit protected-mode x86 subset with variable-length
//! encodings (prefixes, one/two-byte opcodes, ModRM + SIB), full
//! segmentation (GDT, descriptor caches, limit/type/privilege checks),
//! two-level paging with accessed/dirty maintenance, EFLAGS semantics
//! including architecturally-undefined results, and the x86 exception model.
//!
//! Everything is generic over a value domain ([`pokemu_symx::Dom`]), so a
//! single reference implementation serves as:
//!
//! * the semantics executed concretely by the emulators under test, and
//! * the program explored symbolically by PokeEMU's machine-state
//!   exploration (paper §3.3).
//!
//! The crate deliberately mirrors the structure of a real emulator:
//! [`decode`] is the instruction parser that instruction-space exploration
//! walks (§3.2), [`interp`] is the per-instruction code, [`translate`]
//! contains the protection machinery whose emulation fidelity the paper's
//! findings concern, and [`asm`] builds the test programs of §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod flags;
pub mod inst;
pub mod interp;
pub mod mem;
pub mod snapshot;
pub mod state;
pub mod translate;

pub use decode::{decode, op_info, OpInfo};
pub use inst::{Inst, InstClass};
pub use interp::{execute_decoded, step, Quirks, StepOutcome};
pub use mem::{Memory, MissingPolicy};
pub use snapshot::{Outcome, SegSnapshot, Snapshot};
pub use state::{Exception, Gpr, Machine, Seg};
