//! The instruction decoder, generic over the value domain.
//!
//! Decoding *dispatches* on prefix, opcode and ModRM bytes, so those are
//! concretized through the domain: under symbolic execution each examined
//! byte forks over its feasible values, which is precisely how PokeEMU
//! enumerates candidate instructions from an emulator's parser (paper §3.2).
//! The SIB byte does not select per-instruction code, so it is resolved with
//! a single representative value ([`pokemu_symx::Dom::pick`]) — the paper's
//! observation that "every implementation has a unique representative based
//! on the first three bytes". Displacements and immediates are never
//! concretized; they flow through decoded instructions as data.

use pokemu_symx::Dom;

use crate::inst::{Inst, InstClass, MemOperand, ModRm, Rep};
use crate::state::{Exception, Gpr, Seg};

/// How an opcode's operand bytes are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Form {
    /// No ModRM, no immediate.
    Bare,
    /// ModRM only.
    M,
    /// ModRM + 8-bit immediate.
    Mi8,
    /// ModRM + z-sized (16/32) immediate.
    Miz,
    /// 8-bit immediate.
    I8,
    /// z-sized immediate.
    Iz,
    /// 16-bit immediate.
    I16,
    /// 8-bit relative branch displacement.
    Rel8,
    /// z-sized relative branch displacement.
    RelZ,
    /// Direct far pointer: z-sized offset + 16-bit selector.
    FarImm,
    /// 32-bit absolute memory offset (`mov al, [moffs]` family).
    Offs,
    /// `enter`: 16-bit immediate + 8-bit immediate.
    Enter,
    /// `f6`/`f7` group: immediate present only for sub-opcodes 0 and 1.
    GroupF6,
    /// `0f 20`/`0f 22`: ModRM where `mod` is ignored (always registers).
    MovCr,
}

/// Static decode properties of one opcode.
#[derive(Debug, Clone, Copy)]
pub struct OpInfo {
    /// Operand layout.
    pub form: Form,
    /// 8-bit operand size (separate opcodes in x86).
    pub byteop: bool,
    /// The ModRM `reg` field selects a sub-opcode.
    pub group: bool,
    /// Bitmask of valid `reg` values for groups (bit n = reg n valid).
    pub group_valid: u8,
    /// Memory-only ModRM (`mod == 3` is #UD), e.g. `lea`, `les`, `lgdt`.
    pub mem_only: bool,
}

impl OpInfo {
    const fn new(form: Form) -> OpInfo {
        OpInfo {
            form,
            byteop: false,
            group: false,
            group_valid: 0xff,
            mem_only: false,
        }
    }
    const fn byte(mut self) -> OpInfo {
        self.byteop = true;
        self
    }
    const fn grp(mut self, valid: u8) -> OpInfo {
        self.group = true;
        self.group_valid = valid;
        self
    }
    const fn memonly(mut self) -> OpInfo {
        self.mem_only = true;
        self
    }
}

/// Looks up decode metadata for `opcode` (`0x0F00 | b` for two-byte).
///
/// Returns `None` for encodings that are invalid (#UD) in the VX86 subset,
/// including floating point (`D8..DF`), I/O (`6C..6F`, `E4..E7`, `EC..EF`),
/// and the address-size prefix `67`.
pub fn op_info(opcode: u16) -> Option<OpInfo> {
    use Form::*;
    let i = OpInfo::new;
    Some(match opcode {
        // ALU families: op r/m,r | r,r/m | AL,imm8 | eAX,immz
        0x00 | 0x08 | 0x10 | 0x18 | 0x20 | 0x28 | 0x30 | 0x38 => i(M).byte(),
        0x01 | 0x09 | 0x11 | 0x19 | 0x21 | 0x29 | 0x31 | 0x39 => i(M),
        0x02 | 0x0a | 0x12 | 0x1a | 0x22 | 0x2a | 0x32 | 0x3a => i(M).byte(),
        0x03 | 0x0b | 0x13 | 0x1b | 0x23 | 0x2b | 0x33 | 0x3b => i(M),
        0x04 | 0x0c | 0x14 | 0x1c | 0x24 | 0x2c | 0x34 | 0x3c => i(I8).byte(),
        0x05 | 0x0d | 0x15 | 0x1d | 0x25 | 0x2d | 0x35 | 0x3d => i(Iz),
        // push/pop segment registers
        0x06 | 0x07 | 0x0e | 0x16 | 0x17 | 0x1e | 0x1f => i(Bare),
        // BCD adjust
        0x27 | 0x2f | 0x37 | 0x3f => i(Bare),
        // inc/dec/push/pop r32
        0x40..=0x5f => i(Bare),
        0x60 | 0x61 => i(Bare), // pusha/popa
        0x62 => i(M).memonly(), // bound
        0x63 => i(M),           // arpl (operates on r/m16)
        0x68 => i(Iz),          // push imm
        0x69 => i(Miz),         // imul r, r/m, immz
        0x6a => i(I8),          // push imm8
        0x6b => i(Mi8),         // imul r, r/m, imm8
        0x70..=0x7f => i(Rel8), // jcc
        0x80 => i(Mi8).byte().grp(0xff),
        0x81 => i(Miz).grp(0xff),
        0x82 => i(Mi8).byte().grp(0xff), // alias of 0x80 (valid on real CPUs)
        0x83 => i(Mi8).grp(0xff),        // sign-extended imm8
        0x84 => i(M).byte(),             // test
        0x85 => i(M),
        0x86 => i(M).byte(), // xchg
        0x87 => i(M),
        0x88 => i(M).byte(), // mov
        0x89 => i(M),
        0x8a => i(M).byte(),
        0x8b => i(M),
        0x8c => i(M),           // mov r/m16, sreg
        0x8d => i(M).memonly(), // lea
        0x8e => i(M),           // mov sreg, r/m16
        0x8f => i(M).grp(0x01), // pop r/m
        0x90..=0x97 => i(Bare), // xchg eax, r
        0x98 | 0x99 => i(Bare), // cbw/cwd
        0x9a => i(FarImm),      // call far
        0x9c..=0x9f => i(Bare), // pushf/popf/sahf/lahf
        0xa0..=0xa3 => i(Offs), // mov moffs forms
        0xa4..=0xa7 => i(Bare), // movs/cmps
        0xa8 => i(I8).byte(),   // test al, imm8
        0xa9 => i(Iz),
        0xaa..=0xaf => i(Bare),          // stos/lods/scas
        0xb0..=0xb7 => i(I8).byte(),     // mov r8, imm8
        0xb8..=0xbf => i(Iz),            // mov r, immz
        0xc0 => i(Mi8).byte().grp(0xff), // shift group
        0xc1 => i(Mi8).grp(0xff),
        0xc2 => i(I16), // ret imm16
        0xc3 => i(Bare),
        0xc4 | 0xc5 => i(M).memonly(),   // les/lds
        0xc6 => i(Mi8).byte().grp(0x01), // mov r/m8, imm8
        0xc7 => i(Miz).grp(0x01),
        0xc8 => i(Enter),
        0xc9 => i(Bare), // leave
        0xca => i(I16),  // retf imm16
        0xcb => i(Bare), // retf
        0xcc => i(Bare), // int3
        0xcd => i(I8),   // int imm8
        0xce => i(Bare), // into
        0xcf => i(Bare), // iret
        0xd0 => i(M).byte().grp(0xff),
        0xd1 => i(M).grp(0xff),
        0xd2 => i(M).byte().grp(0xff),
        0xd3 => i(M).grp(0xff),
        0xd4 | 0xd5 => i(I8),   // aam/aad
        0xd6 => i(Bare),        // salc (undocumented but implemented by CPUs)
        0xd7 => i(Bare),        // xlat
        0xe0..=0xe3 => i(Rel8), // loopne/loope/loop/jecxz
        0xe8 => i(RelZ),        // call rel
        0xe9 => i(RelZ),        // jmp rel
        0xea => i(FarImm),      // jmp far
        0xeb => i(Rel8),
        0xf1 => i(Bare), // int1/icebp (undocumented)
        0xf4 => i(Bare), // hlt
        0xf5 => i(Bare), // cmc
        0xf6 => i(GroupF6).byte().grp(0xff),
        0xf7 => i(GroupF6).grp(0xff),
        0xf8..=0xfd => i(Bare),        // clc/stc/cli/sti/cld/std
        0xfe => i(M).byte().grp(0x03), // inc/dec r/m8
        0xff => i(M).grp(0x7f),        // inc/dec/call/callf/jmp/jmpf/push
        // ---- two-byte opcodes ----
        0x0f00 => i(M).grp(0x3f),            // sldt/str/lldt/ltr/verr/verw
        0x0f01 => i(M).grp(0xdf),            // sgdt/sidt/lgdt/lidt/smsw/lmsw/invlpg
        0x0f02 | 0x0f03 => i(M),             // lar/lsl
        0x0f06 => i(Bare),                   // clts
        0x0f08 | 0x0f09 => i(Bare),          // invd/wbinvd
        0x0f20 | 0x0f22 => i(MovCr),         // mov r32<->cr
        0x0f30 | 0x0f31 | 0x0f32 => i(Bare), // wrmsr/rdtsc/rdmsr
        0x0f40..=0x0f4f => i(M),             // cmovcc
        0x0f80..=0x0f8f => i(RelZ),          // jcc rel32
        0x0f90..=0x0f9f => i(M).byte().grp(0x01), // setcc (reg must be 0)
        0x0fa0 | 0x0fa1 => i(Bare),          // push/pop fs
        0x0fa2 => i(Bare),                   // cpuid
        0x0fa3 => i(M),                      // bt
        0x0fa4 => i(Mi8),                    // shld imm8
        0x0fa5 => i(M),                      // shld cl
        0x0fa8 | 0x0fa9 => i(Bare),          // push/pop gs
        0x0fab => i(M),                      // bts
        0x0fac => i(Mi8),                    // shrd imm8
        0x0fad => i(M),                      // shrd cl
        0x0faf => i(M),                      // imul r, r/m
        0x0fb0 => i(M).byte(),               // cmpxchg r/m8
        0x0fb1 => i(M),                      // cmpxchg
        0x0fb2 => i(M).memonly(),            // lss
        0x0fb3 => i(M),                      // btr
        0x0fb4 | 0x0fb5 => i(M).memonly(),   // lfs/lgs
        0x0fb6 | 0x0fb7 => i(M),             // movzx
        0x0fba => i(Mi8).grp(0xf0),          // bt group (reg 4..7)
        0x0fbb => i(M),                      // btc
        0x0fbc | 0x0fbd => i(M),             // bsf/bsr
        0x0fbe | 0x0fbf => i(M),             // movsx
        0x0fc0 => i(M).byte(),               // xadd r/m8
        0x0fc1 => i(M),                      // xadd
        0x0fc8..=0x0fcf => i(Bare),          // bswap
        _ => return None,
    })
}

/// Whether a LOCK prefix is architecturally allowed for this instruction
/// (requires a memory destination and a read-modify-write opcode).
pub fn lock_allowed(opcode: u16, group_reg: Option<u8>, is_mem: bool) -> bool {
    if !is_mem {
        return false;
    }
    match opcode {
        0x00 | 0x01 | 0x08 | 0x09 | 0x10 | 0x11 | 0x18 | 0x19 | 0x20 | 0x21 | 0x28 | 0x29
        | 0x30 | 0x31 => true, // alu m, r forms
        0x80 | 0x81 | 0x82 | 0x83 => group_reg != Some(7), // not cmp
        0x86 | 0x87 => true,                               // xchg
        0xf6 | 0xf7 => matches!(group_reg, Some(2) | Some(3)), // not/neg
        0xfe | 0xff => matches!(group_reg, Some(0) | Some(1)), // inc/dec
        0x0fab | 0x0fb3 | 0x0fbb => true,                  // bts/btr/btc
        0x0fba => matches!(group_reg, Some(5) | Some(6) | Some(7)),
        0x0fb0 | 0x0fb1 => true, // cmpxchg
        0x0fc0 | 0x0fc1 => true, // xadd
        _ => false,
    }
}

const MAX_PREFIXES: usize = 4;

/// Decodes one instruction.
///
/// `fetch(d, idx)` supplies the byte at offset `idx` from the instruction
/// start; it may fault (e.g. a page fault on the fetch path).
///
/// # Errors
///
/// Returns the exception the *decode stage* raises: [`Exception::Ud`] for
/// invalid encodings, or any fault propagated from `fetch`.
pub fn decode<D, F>(d: &mut D, mut fetch: F) -> Result<Inst<D::V>, Exception>
where
    D: Dom,
    F: FnMut(&mut D, u8) -> Result<D::V, Exception>,
{
    let mut idx: u8 = 0;
    let mut next = |d: &mut D, idx: &mut u8| -> Result<D::V, Exception> {
        if *idx >= 15 {
            return Err(Exception::Gp(0)); // >15 bytes: general protection
        }
        let b = fetch(d, *idx)?;
        *idx += 1;
        Ok(b)
    };

    // ---- prefixes ----
    let mut seg_override: Option<Seg> = None;
    let mut lock = false;
    let mut rep: Option<Rep> = None;
    let mut opsize16 = false;
    let mut first: u64;
    let mut prefix_count = 0;
    loop {
        let raw = next(d, &mut idx)?;
        first = d.concretize(raw, "prefix/opcode byte");
        let seg = match first {
            0x26 => Some(Seg::Es),
            0x2e => Some(Seg::Cs),
            0x36 => Some(Seg::Ss),
            0x3e => Some(Seg::Ds),
            0x64 => Some(Seg::Fs),
            0x65 => Some(Seg::Gs),
            _ => None,
        };
        let is_prefix = seg.is_some() || matches!(first, 0x66 | 0xf0 | 0xf2 | 0xf3);
        if !is_prefix {
            break;
        }
        prefix_count += 1;
        if prefix_count > MAX_PREFIXES {
            return Err(Exception::Ud);
        }
        match first {
            0x66 => opsize16 = true,
            0xf0 => lock = true,
            0xf2 => rep = Some(Rep::RepNe),
            0xf3 => rep = Some(Rep::RepE),
            _ => seg_override = seg,
        }
    }

    // ---- opcode ----
    let opcode: u16 = if first == 0x0f {
        let b2 = next(d, &mut idx)?;
        0x0f00 | d.concretize(b2, "second opcode byte") as u16
    } else {
        first as u16
    };
    let info = op_info(opcode).ok_or(Exception::Ud)?;

    // ---- ModRM ----
    let has_modrm = matches!(
        info.form,
        Form::M | Form::Mi8 | Form::Miz | Form::GroupF6 | Form::MovCr
    );
    let mut modrm: Option<ModRm<D::V>> = None;
    if has_modrm {
        let raw = next(d, &mut idx)?;
        let mode_bits = d.extract(raw, 7, 6);
        let mode = d.concretize(mode_bits, "modrm.mod") as u8;
        let reg_bits = d.extract(raw, 5, 3);
        let reg = d.concretize(reg_bits, "modrm.reg") as u8;
        let rm_bits = d.extract(raw, 2, 0);
        let rm = d.concretize(rm_bits, "modrm.rm") as u8;
        if info.group && info.group_valid & (1 << reg) == 0 {
            return Err(Exception::Ud);
        }
        let mode = if info.form == Form::MovCr { 3 } else { mode };
        if info.mem_only && mode == 3 {
            return Err(Exception::Ud);
        }
        let mem = if mode == 3 {
            None
        } else {
            Some(decode_mem(d, &mut next, &mut idx, mode, rm, seg_override)?)
        };
        modrm = Some(ModRm { mode, reg, rm, mem });
    }

    // ---- immediates ----
    let opsize: u8 = if opsize16 { 2 } else { 4 };
    let mut imm: Option<D::V> = None;
    let mut imm2: Option<D::V> = None;
    match info.form {
        Form::I8 | Form::Mi8 | Form::Rel8 => imm = Some(read_imm(d, &mut next, &mut idx, 1)?),
        Form::Iz | Form::Miz | Form::RelZ => imm = Some(read_imm(d, &mut next, &mut idx, opsize)?),
        Form::I16 => imm = Some(read_imm(d, &mut next, &mut idx, 2)?),
        Form::Offs => imm = Some(read_imm(d, &mut next, &mut idx, 4)?),
        Form::FarImm => {
            imm = Some(read_imm(d, &mut next, &mut idx, opsize)?);
            imm2 = Some(read_imm(d, &mut next, &mut idx, 2)?);
        }
        Form::Enter => {
            imm = Some(read_imm(d, &mut next, &mut idx, 2)?);
            imm2 = Some(read_imm(d, &mut next, &mut idx, 1)?);
        }
        Form::GroupF6 => {
            let g = modrm.as_ref().expect("groupf6 has modrm").reg;
            if g <= 1 {
                // test r/m, imm (reg 1 is the undocumented alias)
                let n = if info.byteop { 1 } else { opsize };
                imm = Some(read_imm(d, &mut next, &mut idx, n)?);
            }
        }
        Form::Bare | Form::M | Form::MovCr => {}
    }

    let (group_reg, mem_operand) = match &modrm {
        Some(m) => (
            if info.group { Some(m.reg) } else { None },
            Some(m.mem.is_some()),
        ),
        None => (None, None),
    };

    // LOCK prefix legality.
    if lock && !lock_allowed(opcode, group_reg, mem_operand == Some(true)) {
        return Err(Exception::Ud);
    }

    Ok(Inst {
        class: InstClass {
            opcode,
            group_reg,
            mem_operand,
            opsize16: opsize16 && opcode_sized(opcode, info),
        },
        len: idx,
        seg_override,
        lock,
        rep,
        opsize16,
        modrm,
        imm,
        imm2,
    })
}

/// Whether operand size affects this opcode's per-instruction code (byte ops
/// and control ops ignore 0x66 for class purposes).
fn opcode_sized(opcode: u16, info: OpInfo) -> bool {
    !info.byteop && !matches!(opcode, 0x70..=0x7f | 0xe0..=0xe3 | 0xeb | 0x0f80..=0x0f8f)
}

fn read_imm<D, F>(d: &mut D, next: &mut F, idx: &mut u8, nbytes: u8) -> Result<D::V, Exception>
where
    D: Dom,
    F: FnMut(&mut D, &mut u8) -> Result<D::V, Exception>,
{
    let mut v = next(d, idx)?;
    for _ in 1..nbytes {
        let b = next(d, idx)?;
        v = d.concat(b, v);
    }
    Ok(v)
}

fn decode_mem<D, F>(
    d: &mut D,
    next: &mut F,
    idx: &mut u8,
    mode: u8,
    rm: u8,
    seg_override: Option<Seg>,
) -> Result<MemOperand<D::V>, Exception>
where
    D: Dom,
    F: FnMut(&mut D, &mut u8) -> Result<D::V, Exception>,
{
    let mut base: Option<Gpr> = None;
    let mut index: Option<(Gpr, u8)> = None;
    let mut disp: Option<D::V> = None;
    let mut force_disp32 = false;

    if rm == 4 {
        // SIB byte: does not select per-instruction code, so a single
        // representative value suffices (paper §3.2).
        let raw = next(d, idx)?;
        let sib = d.pick(raw, "sib byte") as u8;
        let scale = sib >> 6;
        let idx_bits = (sib >> 3) & 7;
        let base_bits = sib & 7;
        if idx_bits != 4 {
            index = Some((Gpr::from_bits(idx_bits), scale));
        }
        if base_bits == 5 && mode == 0 {
            force_disp32 = true;
        } else {
            base = Some(Gpr::from_bits(base_bits));
        }
    } else if rm == 5 && mode == 0 {
        force_disp32 = true;
    } else {
        base = Some(Gpr::from_bits(rm));
    }

    match mode {
        0 if force_disp32 => disp = Some(read_imm(d, next, idx, 4)?),
        0 => {}
        1 => {
            let d8 = read_imm(d, next, idx, 1)?;
            disp = Some(d.sext(d8, 32));
        }
        2 => disp = Some(read_imm(d, next, idx, 4)?),
        _ => unreachable!("mode 3 handled by caller"),
    }
    let disp = disp.unwrap_or_else(|| d.constant(32, 0));

    // Default segment: SS for EBP/ESP-based addressing, DS otherwise.
    let default_seg = match base {
        Some(Gpr::Ebp) | Some(Gpr::Esp) => Seg::Ss,
        _ => Seg::Ds,
    };
    Ok(MemOperand {
        seg: seg_override.unwrap_or(default_seg),
        base,
        index,
        disp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pokemu_symx::{Concrete, Dom};

    fn decode_bytes(bytes: &[u8]) -> Result<Inst<pokemu_symx::CVal>, Exception> {
        let mut d = Concrete::new();
        let owned: Vec<u8> = bytes.to_vec();
        decode(&mut d, move |d, i| {
            Ok(d.constant(8, *owned.get(i as usize).unwrap_or(&0) as u64))
        })
    }

    #[test]
    fn decodes_push_eax() {
        let i = decode_bytes(&[0x50]).unwrap();
        assert_eq!(i.class.opcode, 0x50);
        assert_eq!(i.len, 1);
        assert!(i.modrm.is_none());
    }

    #[test]
    fn decodes_add_rm32_r32_with_disp8() {
        // add [ebx+0x10], ecx
        let i = decode_bytes(&[0x01, 0x4b, 0x10]).unwrap();
        assert_eq!(i.class.opcode, 0x01);
        assert_eq!(i.class.mem_operand, Some(true));
        let m = i.modrm.unwrap();
        assert_eq!(m.reg, 1); // ecx
        let mem = m.mem.unwrap();
        assert_eq!(mem.base, Some(Gpr::Ebx));
        assert_eq!(mem.seg, Seg::Ds);
        let mut d = Concrete::new();
        assert_eq!(d.as_const(mem.disp), Some(0x10));
        assert_eq!(i.len, 3);
    }

    #[test]
    fn disp8_sign_extends() {
        // add [ebx-1], ecx
        let i = decode_bytes(&[0x01, 0x4b, 0xff]).unwrap();
        let mem = i.modrm.unwrap().mem.unwrap();
        let mut d = Concrete::new();
        assert_eq!(d.as_const(mem.disp), Some(0xffff_ffff));
    }

    #[test]
    fn ebp_based_defaults_to_ss() {
        // mov eax, [ebp+0]
        let i = decode_bytes(&[0x8b, 0x45, 0x00]).unwrap();
        assert_eq!(i.modrm.unwrap().mem.unwrap().seg, Seg::Ss);
        // with DS override
        let i = decode_bytes(&[0x3e, 0x8b, 0x45, 0x00]).unwrap();
        assert_eq!(i.modrm.unwrap().mem.unwrap().seg, Seg::Ds);
    }

    #[test]
    fn mod0_rm5_is_disp32() {
        // mov eax, [0x12345678]
        let i = decode_bytes(&[0x8b, 0x05, 0x78, 0x56, 0x34, 0x12]).unwrap();
        let mem = i.modrm.unwrap().mem.unwrap();
        assert_eq!(mem.base, None);
        let mut d = Concrete::new();
        assert_eq!(d.as_const(mem.disp), Some(0x1234_5678));
        assert_eq!(i.len, 6);
    }

    #[test]
    fn two_byte_opcode_and_group() {
        // bts [eax], 3  =>  0f ba /5 imm8
        let i = decode_bytes(&[0x0f, 0xba, 0x28, 0x03]).unwrap();
        assert_eq!(i.class.opcode, 0x0fba);
        assert_eq!(i.class.group_reg, Some(5));
        let mut d = Concrete::new();
        assert_eq!(d.as_const(i.imm.unwrap()), Some(3));
    }

    #[test]
    fn invalid_opcodes_are_ud() {
        assert_eq!(decode_bytes(&[0xd8]).err(), Some(Exception::Ud)); // FPU
        assert_eq!(decode_bytes(&[0x67, 0x90]).err(), Some(Exception::Ud)); // addr-size
        assert_eq!(decode_bytes(&[0x0f, 0x0b]).err(), Some(Exception::Ud)); // ud2
        assert_eq!(decode_bytes(&[0xfe, 0xf8]).err(), Some(Exception::Ud)); // fe /7
        assert_eq!(decode_bytes(&[0xff, 0xf8]).err(), Some(Exception::Ud)); // ff /7
    }

    #[test]
    fn undocumented_aliases_are_valid_in_spec() {
        // 0x82 is an alias of 0x80 on real hardware.
        let i = decode_bytes(&[0x82, 0xc0, 0x01]).unwrap();
        assert_eq!(i.class.opcode, 0x82);
        // salc
        assert!(decode_bytes(&[0xd6]).is_ok());
        // f6 /1 test alias
        let i = decode_bytes(&[0xf6, 0xc8, 0x55]).unwrap();
        assert_eq!(i.class.group_reg, Some(1));
        assert!(i.imm.is_some());
    }

    #[test]
    fn lock_prefix_legality() {
        // lock add [eax], ecx — allowed
        assert!(decode_bytes(&[0xf0, 0x01, 0x08]).is_ok());
        // lock add ecx, eax (register dest) — #UD
        assert_eq!(decode_bytes(&[0xf0, 0x01, 0xc1]).err(), Some(Exception::Ud));
        // lock mov — #UD
        assert_eq!(decode_bytes(&[0xf0, 0x89, 0x08]).err(), Some(Exception::Ud));
    }

    #[test]
    fn far_pointer_immediates() {
        // jmp 0x0008:0x00001000
        let i = decode_bytes(&[0xea, 0x00, 0x10, 0x00, 0x00, 0x08, 0x00]).unwrap();
        let mut d = Concrete::new();
        assert_eq!(d.as_const(i.imm.unwrap()), Some(0x1000));
        assert_eq!(d.as_const(i.imm2.unwrap()), Some(8));
        assert_eq!(i.len, 7);
    }

    #[test]
    fn opsize_prefix_switches_to_16bit() {
        let i = decode_bytes(&[0x66, 0xb8, 0x34, 0x12]).unwrap();
        assert_eq!(i.opsize(), 2);
        let mut d = Concrete::new();
        assert_eq!(d.as_const(i.imm.unwrap()), Some(0x1234));
        assert_eq!(i.len, 4);
    }

    #[test]
    fn sib_with_scaled_index() {
        // mov eax, [ebx + esi*4]
        let i = decode_bytes(&[0x8b, 0x04, 0xb3]).unwrap();
        let mem = i.modrm.unwrap().mem.unwrap();
        assert_eq!(mem.base, Some(Gpr::Ebx));
        assert_eq!(mem.index, Some((Gpr::Esi, 2)));
    }

    #[test]
    fn too_many_prefixes_fault() {
        assert_eq!(
            decode_bytes(&[0x26, 0x26, 0x26, 0x26, 0x26, 0x90]).err(),
            Some(Exception::Ud)
        );
    }

    #[test]
    fn class_display_is_readable() {
        let i = decode_bytes(&[0x0f, 0xba, 0x28, 0x03]).unwrap();
        assert_eq!(i.class.to_string(), "0FBA/5 m");
        let i = decode_bytes(&[0x50]).unwrap();
        assert_eq!(i.class.to_string(), "50");
    }
}
