//! Arithmetic, logic, shift, and bit-manipulation instructions.

use pokemu_symx::Dom;

use crate::flags::{self, add_flags, logic_flags, sub_flags, FlagSet};
use crate::inst::Inst;
use crate::state::flags::{AF, CF, OF, PF, SF, ZF};
use crate::state::{Exception, Gpr};

use super::{Exec, ExecResult, Flow};

const F_CF: u32 = 1 << CF;
const F_PF: u32 = 1 << PF;
const F_AF: u32 = 1 << AF;
const F_ZF: u32 = 1 << ZF;
const F_SF: u32 = 1 << SF;
const F_OF: u32 = 1 << OF;
const F_ALL: u32 = F_CF | F_PF | F_AF | F_ZF | F_SF | F_OF;

fn apply<D: Dom>(x: &mut Exec<'_, D>, set: &FlagSet<D::V>, defined: u32, undefined: u32) {
    x.m.eflags = flags::apply_flags(x.d, x.m.eflags, set, defined, undefined, x.q.undef_policy);
}

/// Computes one ALU family operation. Returns the result (to write back
/// unless the op is `cmp`), its flag set, and the defined/undefined masks.
fn alu_compute<D: Dom>(
    x: &mut Exec<'_, D>,
    op: u8,
    a: D::V,
    b: D::V,
) -> (D::V, FlagSet<D::V>, u32, u32, bool) {
    let d = &mut *x.d;
    match op {
        0 => {
            let r = d.add(a, b);
            let f = add_flags(d, a, b, None, r);
            (r, f, F_ALL, 0, true)
        }
        1 => {
            let r = d.or(a, b);
            let f = logic_flags(d, r);
            (r, f, F_ALL & !F_AF, F_AF, true)
        }
        2 => {
            let c = flags::get_bit(d, x.m.eflags, CF);
            let cw = d.zext(c, d.width(a));
            let ab = d.add(a, b);
            let r = d.add(ab, cw);
            let f = add_flags(d, a, b, Some(c), r);
            (r, f, F_ALL, 0, true)
        }
        3 => {
            let c = flags::get_bit(d, x.m.eflags, CF);
            let cw = d.zext(c, d.width(a));
            let ab = d.sub(a, b);
            let r = d.sub(ab, cw);
            let f = sub_flags(d, a, b, Some(c), r);
            (r, f, F_ALL, 0, true)
        }
        4 => {
            let r = d.and(a, b);
            let f = logic_flags(d, r);
            (r, f, F_ALL & !F_AF, F_AF, true)
        }
        5 => {
            let r = d.sub(a, b);
            let f = sub_flags(d, a, b, None, r);
            (r, f, F_ALL, 0, true)
        }
        6 => {
            let r = d.xor(a, b);
            let f = logic_flags(d, r);
            (r, f, F_ALL & !F_AF, F_AF, true)
        }
        _ => {
            let r = d.sub(a, b);
            let f = sub_flags(d, a, b, None, r);
            (r, f, F_ALL, 0, false) // cmp: no writeback
        }
    }
}

/// Opcodes `00..3D`: the eight ALU families in their six encodings.
pub(super) fn alu_family<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = ((inst.class.opcode >> 3) & 7) as u8;
    let enc = (inst.class.opcode & 7) as u8;
    let size = match enc {
        0 | 2 | 4 => 1,
        _ => inst.opsize(),
    };
    match enc {
        0 | 1 => {
            // r/m OP= r
            let mr = inst.modrm.as_ref().expect("modrm");
            let a = x.read_rm(inst, size)?;
            let b = x.read_reg(mr.reg, size);
            let (r, f, def, undef, wb) = alu_compute(x, op, a, b);
            if wb {
                x.write_rm(inst, size, r)?;
            }
            apply(x, &f, def, undef);
        }
        2 | 3 => {
            // r OP= r/m
            let mr = inst.modrm.as_ref().expect("modrm");
            let b = x.read_rm(inst, size)?;
            let a = x.read_reg(mr.reg, size);
            let (r, f, def, undef, wb) = alu_compute(x, op, a, b);
            if wb {
                x.write_reg(mr.reg, size, r);
            }
            apply(x, &f, def, undef);
        }
        _ => {
            // AL/eAX OP= imm
            let a = x.read_reg(Gpr::Eax as u8, size);
            let b = inst.imm.expect("imm form");
            let (r, f, def, undef, wb) = alu_compute(x, op, a, b);
            if wb {
                x.write_reg(Gpr::Eax as u8, size, r);
            }
            apply(x, &f, def, undef);
        }
    }
    Ok(Flow::Next)
}

/// Opcodes `80/81/82/83`: ALU group with immediate.
pub(super) fn alu_group<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.group_reg.expect("group");
    let size = if matches!(inst.class.opcode, 0x80 | 0x82) {
        1
    } else {
        inst.opsize()
    };
    let a = x.read_rm(inst, size)?;
    let imm = inst.imm.expect("imm");
    let b = if inst.class.opcode == 0x83 {
        x.d.sext(imm, size * 8)
    } else {
        imm
    };
    let (r, f, def, undef, wb) = alu_compute(x, op, a, b);
    if wb {
        x.write_rm(inst, size, r)?;
    }
    apply(x, &f, def, undef);
    Ok(Flow::Next)
}

/// `test` in its four encodings (84/85/A8/A9).
pub(super) fn test_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = if matches!(inst.class.opcode, 0x84 | 0xa8) {
        1
    } else {
        inst.opsize()
    };
    let (a, b) = match inst.class.opcode {
        0x84 | 0x85 => {
            let mr = inst.modrm.as_ref().expect("modrm");
            (x.read_rm(inst, size)?, x.read_reg(mr.reg, size))
        }
        _ => (x.read_reg(Gpr::Eax as u8, size), inst.imm.expect("imm")),
    };
    let r = x.d.and(a, b);
    let f = logic_flags(x.d, r);
    apply(x, &f, F_ALL & !F_AF, F_AF);
    Ok(Flow::Next)
}

/// Group `F6`/`F7`: test/not/neg/mul/imul/div/idiv.
pub(super) fn group_f6<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = if inst.class.opcode == 0xf6 {
        1
    } else {
        inst.opsize()
    };
    let w = size * 8;
    let g = inst.class.group_reg.expect("group");
    match g {
        0 | 1 => {
            // test r/m, imm (1 is the undocumented alias)
            let a = x.read_rm(inst, size)?;
            let b = inst.imm.expect("imm");
            let r = x.d.and(a, b);
            let f = logic_flags(x.d, r);
            apply(x, &f, F_ALL & !F_AF, F_AF);
        }
        2 => {
            // not
            let a = x.read_rm(inst, size)?;
            let r = x.d.not(a);
            x.write_rm(inst, size, r)?;
        }
        3 => {
            // neg
            let a = x.read_rm(inst, size)?;
            let zero = x.d.constant(w, 0);
            let r = x.d.neg(a);
            let mut f = sub_flags(x.d, zero, a, None, r);
            // CF = (src != 0)
            f.cf = x.d.ne(a, zero);
            x.write_rm(inst, size, r)?;
            apply(x, &f, F_ALL, 0);
        }
        4 | 5 => mul_imul(x, inst, size, g == 5)?,
        _ => div_idiv(x, inst, size, g == 7)?,
    }
    Ok(Flow::Next)
}

fn mul_imul<D: Dom>(
    x: &mut Exec<'_, D>,
    inst: &Inst<D::V>,
    size: u8,
    signed: bool,
) -> Result<(), Exception> {
    let w = size * 8;
    let src = x.read_rm(inst, size)?;
    let acc = x.read_reg(Gpr::Eax as u8, size);
    let (aw, bw) = if signed {
        (x.d.sext(acc, w * 2), x.d.sext(src, w * 2))
    } else {
        (x.d.zext(acc, w * 2), x.d.zext(src, w * 2))
    };
    let full = x.d.mul(aw, bw);
    let lo = x.d.extract(full, w - 1, 0);
    let hi = x.d.extract(full, 2 * w - 1, w);
    // CF = OF = the upper half carries information.
    let over = if signed {
        let resext = x.d.sext(lo, 2 * w);
        x.d.ne(full, resext)
    } else {
        let z = x.d.constant(w, 0);
        x.d.ne(hi, z)
    };
    // Write results: AX for byte ops, DX:AX / EDX:EAX otherwise.
    if size == 1 {
        let full16 = x.d.extract(full, 15, 0);
        x.write_reg(Gpr::Eax as u8, 2, full16);
    } else {
        x.write_reg(Gpr::Eax as u8, size, lo);
        x.write_reg(Gpr::Edx as u8, size, hi);
    }
    let pf = flags::parity(x.d, lo);
    let zf = flags::zero(x.d, lo);
    let sf = flags::sign(x.d, lo);
    let f = FlagSet {
        cf: over,
        pf,
        af: x.d.ff(),
        zf,
        sf,
        of: over,
    };
    apply(x, &f, F_CF | F_OF, F_PF | F_AF | F_ZF | F_SF);
    Ok(())
}

fn div_idiv<D: Dom>(
    x: &mut Exec<'_, D>,
    inst: &Inst<D::V>,
    size: u8,
    signed: bool,
) -> Result<(), Exception> {
    let w = size * 8;
    let divisor = x.read_rm(inst, size)?;
    let zero = x.d.constant(w, 0);
    let div_zero = x.d.eq(divisor, zero);
    if x.d.branch(div_zero, "divide by zero") {
        return Err(Exception::De);
    }
    // Dividend: AX for byte ops, DX:AX / EDX:EAX otherwise.
    let dividend = if size == 1 {
        x.read_reg(Gpr::Eax as u8, 2)
    } else {
        let lo = x.read_reg(Gpr::Eax as u8, size);
        let hi = x.read_reg(Gpr::Edx as u8, size);
        x.d.concat(hi, lo)
    };
    let (q_full, r_full) = if signed {
        // Signed division via magnitudes.
        let w2 = w * 2;
        let dsx = x.d.sext(divisor, w2);
        let sign_a = flags::sign(x.d, dividend);
        let sign_b = flags::sign(x.d, dsx);
        let neg_a = x.d.neg(dividend);
        let neg_b = x.d.neg(dsx);
        let abs_a = x.d.ite(sign_a, neg_a, dividend);
        let abs_b = x.d.ite(sign_b, neg_b, dsx);
        let uq = x.d.udiv(abs_a, abs_b);
        let ur = x.d.urem(abs_a, abs_b);
        let q_neg = x.d.xor(sign_a, sign_b);
        let nq = x.d.neg(uq);
        let nr = x.d.neg(ur);
        let q = x.d.ite(q_neg, nq, uq);
        let r = x.d.ite(sign_a, nr, ur);
        // Overflow: quotient must fit in signed w bits.
        let q_lo = x.d.extract(q, w - 1, 0);
        let q_ext = x.d.sext(q_lo, w2);
        let over = x.d.ne(q_ext, q);
        if x.d.branch(over, "idiv overflow") {
            return Err(Exception::De);
        }
        (q, r)
    } else {
        let w2 = w * 2;
        let dzx = x.d.zext(divisor, w2);
        let q = x.d.udiv(dividend, dzx);
        let r = x.d.urem(dividend, dzx);
        let max = x.d.constant(w2, (1u64 << w) - 1);
        let over = x.d.ult(max, q);
        if x.d.branch(over, "div overflow") {
            return Err(Exception::De);
        }
        (q, r)
    };
    let q = x.d.extract(q_full, w - 1, 0);
    let r = x.d.extract(r_full, w - 1, 0);
    if size == 1 {
        // AL = quotient, AH = remainder.
        let packed = x.d.concat(r, q);
        x.write_reg(Gpr::Eax as u8, 2, packed);
    } else {
        x.write_reg(Gpr::Eax as u8, size, q);
        x.write_reg(Gpr::Edx as u8, size, r);
    }
    // All six status flags are undefined after division.
    let z = x.d.ff();
    let f = FlagSet {
        cf: z,
        pf: z,
        af: z,
        zf: z,
        sf: z,
        of: z,
    };
    apply(x, &f, 0, F_ALL);
    Ok(())
}

/// Group `FE`/`FF` reg 0/1 (`inc`/`dec` on r/m); the control-flow members of
/// `FF` are dispatched in `exec_control`.
pub(super) fn group_fe_ff<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let g = inst.class.group_reg.expect("group");
    match g {
        0 | 1 => {
            let size = if inst.class.opcode == 0xfe {
                1
            } else {
                inst.opsize()
            };
            let a = x.read_rm(inst, size)?;
            let one = x.d.constant(size * 8, 1);
            let (r, f) = if g == 0 {
                let r = x.d.add(a, one);
                (r, add_flags(x.d, a, one, None, r))
            } else {
                let r = x.d.sub(a, one);
                (r, sub_flags(x.d, a, one, None, r))
            };
            x.write_rm(inst, size, r)?;
            apply(x, &f, F_ALL & !F_CF, 0); // CF preserved
            Ok(Flow::Next)
        }
        2 | 3 | 4 | 5 => super::exec_control::indirect_ff(x, inst),
        6 => {
            // push r/m
            let size = inst.opsize();
            let v = x.read_rm(inst, size)?;
            x.push(v, size)?;
            Ok(Flow::Next)
        }
        _ => Err(Exception::Ud),
    }
}

/// Opcodes `40..4F`: `inc`/`dec` on a register encoded in the opcode.
pub(super) fn inc_dec_reg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode as u8;
    let reg = op & 7;
    let size = inst.opsize();
    let a = x.read_reg(reg, size);
    let one = x.d.constant(size * 8, 1);
    let (r, f) = if op < 0x48 {
        let r = x.d.add(a, one);
        (r, add_flags(x.d, a, one, None, r))
    } else {
        let r = x.d.sub(a, one);
        (r, sub_flags(x.d, a, one, None, r))
    };
    x.write_reg(reg, size, r);
    apply(x, &f, F_ALL & !F_CF, 0);
    Ok(Flow::Next)
}

/// Shift/rotate group (`C0`/`C1`/`D0`..`D3`).
pub(super) fn shift_group<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    let size = if matches!(op, 0xc0 | 0xd0 | 0xd2) {
        1
    } else {
        inst.opsize()
    };
    let w = size * 8;
    let g = inst.class.group_reg.expect("group");

    // Count source: imm8, the constant 1, or CL; masked to 5 bits.
    let raw_count = match op {
        0xc0 | 0xc1 => inst.imm.expect("imm8"),
        0xd0 | 0xd1 => x.d.constant(8, 1),
        _ => x.read_reg(Gpr::Ecx as u8, 1),
    };
    let mask5 = x.d.constant(8, 0x1f);
    let count8 = x.d.and(raw_count, mask5);
    let count = if w > 8 { x.d.zext(count8, w) } else { count8 };

    let v = x.read_rm(inst, size)?;
    let zero_cnt = {
        let z = x.d.constant(w, 0);
        x.d.eq(count, z)
    };
    if x.d.branch(zero_cnt, "shift count zero") {
        // Still performs the write (fault behavior preserved), flags kept.
        x.write_rm(inst, size, v)?;
        return Ok(Flow::Next);
    }

    let one = x.d.constant(w, 1);
    let cm1 = x.d.sub(count, one);
    let wv = x.d.constant(w, w as u64);
    let is_one = x.d.eq(count, one);

    let (res, cf, of_when_one) = match g {
        4 | 6 => {
            // shl / sal
            let res = x.d.shl(v, count);
            let pre = x.d.shl(v, cm1);
            let cf = x.d.extract(pre, w - 1, w - 1);
            let msb = flags::sign(x.d, res);
            let of = x.d.xor(msb, cf);
            (res, cf, of)
        }
        5 => {
            // shr
            let res = x.d.lshr(v, count);
            let pre = x.d.lshr(v, cm1);
            let cf = x.d.extract(pre, 0, 0);
            let of = flags::sign(x.d, v);
            (res, cf, of)
        }
        7 => {
            // sar
            let res = x.d.ashr(v, count);
            let pre = x.d.ashr(v, cm1);
            let cf = x.d.extract(pre, 0, 0);
            let of = x.d.ff();
            (res, cf, of)
        }
        0 => {
            // rol
            let k = x.d.urem(count, wv);
            let wk = x.d.sub(wv, k);
            let l = x.d.shl(v, k);
            let r = x.d.lshr(v, wk);
            let res = x.d.or(l, r);
            let cf = x.d.extract(res, 0, 0);
            let msb = flags::sign(x.d, res);
            let of = x.d.xor(msb, cf);
            (res, cf, of)
        }
        1 => {
            // ror
            let k = x.d.urem(count, wv);
            let wk = x.d.sub(wv, k);
            let r = x.d.lshr(v, k);
            let l = x.d.shl(v, wk);
            let res = x.d.or(l, r);
            let cf = flags::sign(x.d, res);
            let next = x.d.extract(res, w - 2, w - 2);
            let of = x.d.xor(cf, next);
            (res, cf, of)
        }
        _ => {
            // rcl / rcr: rotate through carry, modulo w+1.
            let carry = flags::get_bit(x.d, x.m.eflags, CF);
            let t = x.d.concat(carry, v); // bit w = CF
            let w1 = w + 1;
            let cnt1 = x.d.zext(count, w1);
            let wv1 = x.d.constant(w1, w1 as u64);
            let k = x.d.urem(cnt1, wv1);
            let wk = x.d.sub(wv1, k);
            let rotated = if g == 2 {
                let l = x.d.shl(t, k);
                let r = x.d.lshr(t, wk);
                x.d.or(l, r)
            } else {
                let r = x.d.lshr(t, k);
                let l = x.d.shl(t, wk);
                x.d.or(l, r)
            };
            let res = x.d.extract(rotated, w - 1, 0);
            let cf = x.d.extract(rotated, w, w);
            let of = if g == 2 {
                let msb = flags::sign(x.d, res);
                x.d.xor(msb, cf)
            } else {
                let msb = flags::sign(x.d, res);
                let next = x.d.extract(res, w - 2, w - 2);
                x.d.xor(msb, next)
            };
            (res, cf, of)
        }
    };

    x.write_rm(inst, size, res)?;

    let is_rotate = g <= 3;
    let pf = flags::parity(x.d, res);
    let zf = flags::zero(x.d, res);
    let sf = flags::sign(x.d, res);
    let f = FlagSet {
        cf,
        pf,
        af: x.d.ff(),
        zf,
        sf,
        of: of_when_one,
    };
    if x.d.branch(is_one, "shift count is one") {
        let defined = if is_rotate {
            F_CF | F_OF
        } else {
            F_CF | F_PF | F_ZF | F_SF | F_OF
        };
        let undefined = if is_rotate { 0 } else { F_AF };
        apply(x, &f, defined, undefined);
    } else {
        let defined = if is_rotate {
            F_CF
        } else {
            F_CF | F_PF | F_ZF | F_SF
        };
        let undefined = if is_rotate { F_OF } else { F_AF | F_OF };
        apply(x, &f, defined, undefined);
    }
    Ok(Flow::Next)
}

/// Two-operand `imul` (69 / 6B / 0F AF).
pub(super) fn imul_2op<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let w = size * 8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let a = x.read_rm(inst, size)?;
    let b = match inst.class.opcode {
        0x69 => inst.imm.expect("imm"),
        0x6b => {
            let i = inst.imm.expect("imm8");
            x.d.sext(i, w)
        }
        _ => x.read_reg(mr.reg, size),
    };
    let (b, a) = (a, b); // imul r, r/m, imm: operands commute anyway
    let ax = x.d.sext(a, w * 2);
    let bx = x.d.sext(b, w * 2);
    let full = x.d.mul(ax, bx);
    let lo = x.d.extract(full, w - 1, 0);
    let ext = x.d.sext(lo, w * 2);
    let over = x.d.ne(full, ext);
    x.write_reg(mr.reg, size, lo);
    let pf = flags::parity(x.d, lo);
    let zf = flags::zero(x.d, lo);
    let sf = flags::sign(x.d, lo);
    let f = FlagSet {
        cf: over,
        pf,
        af: x.d.ff(),
        zf,
        sf,
        of: over,
    };
    apply(x, &f, F_CF | F_OF, F_PF | F_AF | F_ZF | F_SF);
    Ok(Flow::Next)
}

/// `shld` / `shrd`.
pub(super) fn shld_shrd<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let w = size * 8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let left = matches!(inst.class.opcode, 0x0fa4 | 0x0fa5);
    let raw_count = match inst.class.opcode {
        0x0fa4 | 0x0fac => inst.imm.expect("imm8"),
        _ => x.read_reg(Gpr::Ecx as u8, 1),
    };
    let m5 = x.d.constant(8, 0x1f);
    let count8 = x.d.and(raw_count, m5);
    let dst = x.read_rm(inst, size)?;
    let src = x.read_reg(mr.reg, size);
    let zero_cnt = {
        let z = x.d.constant(8, 0);
        x.d.eq(count8, z)
    };
    if x.d.branch(zero_cnt, "shxd count zero") {
        x.write_rm(inst, size, dst)?;
        return Ok(Flow::Next);
    }
    let w2 = w * 2;
    let count = x.d.zext(count8, w2);
    let one = x.d.constant(w2, 1);
    let cm1 = x.d.sub(count, one);
    let (res, cf) = if left {
        let t = x.d.concat(dst, src); // dst in high half
        let sh = x.d.shl(t, count);
        let res = x.d.extract(sh, w2 - 1, w);
        let pre = x.d.shl(t, cm1);
        let cf = x.d.extract(pre, w2 - 1, w2 - 1);
        (res, cf)
    } else {
        let t = x.d.concat(src, dst); // dst in low half
        let sh = x.d.lshr(t, count);
        let res = x.d.extract(sh, w - 1, 0);
        let pre = x.d.lshr(t, cm1);
        let cf = x.d.extract(pre, 0, 0);
        (res, cf)
    };
    x.write_rm(inst, size, res)?;
    let msb_r = flags::sign(x.d, res);
    let msb_d = flags::sign(x.d, dst);
    let of = x.d.xor(msb_r, msb_d);
    let pf = flags::parity(x.d, res);
    let zf = flags::zero(x.d, res);
    let f = FlagSet {
        cf,
        pf,
        af: x.d.ff(),
        zf,
        sf: msb_r,
        of,
    };
    let is_one = {
        let o = x.d.constant(8, 1);
        x.d.eq(count8, o)
    };
    if x.d.branch(is_one, "shxd count one") {
        apply(x, &f, F_CF | F_PF | F_ZF | F_SF | F_OF, F_AF);
    } else {
        apply(x, &f, F_CF | F_PF | F_ZF | F_SF, F_AF | F_OF);
    }
    Ok(Flow::Next)
}

/// `bt`/`bts`/`btr`/`btc` with register or immediate bit offsets.
pub(super) fn bit_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let w = size * 8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let (action, offset_is_reg): (u8, bool) = match inst.class.opcode {
        0x0fa3 => (0, true),
        0x0fab => (1, true),
        0x0fb3 => (2, true),
        0x0fbb => (3, true),
        _ => (inst.class.group_reg.expect("0fba group") - 4, false),
    };
    let bitoff_full = if offset_is_reg {
        x.read_reg(mr.reg, size)
    } else {
        let i = inst.imm.expect("imm8");
        x.d.zext(i, w)
    };
    let wm1 = x.d.constant(w, (w - 1) as u64);
    let bit_in_word = x.d.and(bitoff_full, wm1);

    let (val, write_back): (
        D::V,
        Box<dyn FnOnce(&mut Exec<'_, D>, D::V) -> Result<(), Exception>>,
    ) = match (&mr.mem, offset_is_reg) {
        (Some(mem), true) => {
            // Bit-string addressing: the word index extends the EA,
            // sign-extended (negative offsets reach below the base).
            let ea = x.effective_address(mem);
            let shift = x.d.constant(w, if w == 16 { 4 } else { 5 });
            let word_idx = x.d.ashr(bitoff_full, shift);
            let word_idx32 = x.d.sext(word_idx, 32);
            let bytes = x.d.constant(32, if w == 16 { 1 } else { 2 });
            let byte_off = x.d.shl(word_idx32, bytes);
            let addr = x.d.add(ea, byte_off);
            let seg = mem.seg;
            let v = crate::translate::mem_read(x.d, x.m, seg, addr, size)?;
            (
                v,
                Box::new(move |x, nv| crate::translate::mem_write(x.d, x.m, seg, addr, nv, size)),
            )
        }
        (Some(mem), false) => {
            let ea = x.effective_address(mem);
            let seg = mem.seg;
            let v = crate::translate::mem_read(x.d, x.m, seg, ea, size)?;
            (
                v,
                Box::new(move |x, nv| crate::translate::mem_write(x.d, x.m, seg, ea, nv, size)),
            )
        }
        (None, _) => {
            let rm = mr.rm;
            let v = x.read_reg(rm, size);
            (
                v,
                Box::new(move |x, nv| {
                    x.write_reg(rm, size, nv);
                    Ok(())
                }),
            )
        }
    };

    let shifted = x.d.lshr(val, bit_in_word);
    let cf = x.d.extract(shifted, 0, 0);
    let onew = x.d.constant(w, 1);
    let mask = x.d.shl(onew, bit_in_word);
    match action {
        0 => {}
        1 => {
            let nv = x.d.or(val, mask);
            write_back(x, nv)?;
        }
        2 => {
            let nm = x.d.not(mask);
            let nv = x.d.and(val, nm);
            write_back(x, nv)?;
        }
        _ => {
            let nv = x.d.xor(val, mask);
            write_back(x, nv)?;
        }
    }
    let z = x.d.ff();
    let f = FlagSet {
        cf,
        pf: z,
        af: z,
        zf: z,
        sf: z,
        of: z,
    };
    apply(x, &f, F_CF, F_PF | F_AF | F_ZF | F_SF | F_OF);
    Ok(Flow::Next)
}

/// `bsf` / `bsr`.
pub(super) fn bsf_bsr<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let w = size * 8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let src = x.read_rm(inst, size)?;
    let zf = flags::zero(x.d, src);
    let forward = inst.class.opcode == 0x0fbc;
    if !x.d.branch(zf, "bsf/bsr source zero") {
        // Scan: build an ITE cascade so no extra paths are created.
        let mut res = x.d.constant(w, 0);
        let order: Box<dyn Iterator<Item = u8>> = if forward {
            Box::new((0..w).rev())
        } else {
            Box::new(0..w)
        };
        for i in order {
            let bit = x.d.extract(src, i, i);
            let iv = x.d.constant(w, i as u64);
            res = x.d.ite(bit, iv, res);
        }
        x.write_reg(mr.reg, size, res);
    }
    // ZF defined; everything else undefined. Destination is unchanged when
    // the source is zero (hardware-observed behavior).
    let z = x.d.ff();
    let f = FlagSet {
        cf: z,
        pf: z,
        af: z,
        zf,
        sf: z,
        of: z,
    };
    apply(x, &f, F_ZF, F_CF | F_PF | F_AF | F_SF | F_OF);
    Ok(Flow::Next)
}

/// `cmpxchg`: always writes the destination; accumulator update is
/// fault-ordered *after* the write check (the atomicity property QEMU
/// violates, §6.2).
pub(super) fn cmpxchg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = if inst.class.opcode == 0x0fb0 {
        1
    } else {
        inst.opsize()
    };
    let mr = inst.modrm.as_ref().expect("modrm");
    let dest = x.read_rm(inst, size)?;
    let acc = x.read_reg(Gpr::Eax as u8, size);
    let src = x.read_reg(mr.reg, size);
    let equal = x.d.eq(acc, dest);
    let diff = x.d.sub(acc, dest);
    let f = sub_flags(x.d, acc, dest, None, diff);
    // The destination is written unconditionally (old value when not equal);
    // the write permission check therefore happens before any commit.
    let new_dest = x.d.ite(equal, src, dest);
    x.write_rm(inst, size, new_dest)?;
    let new_acc = x.d.ite(equal, acc, dest);
    x.write_reg(Gpr::Eax as u8, size, new_acc);
    apply(x, &f, F_ALL, 0);
    Ok(Flow::Next)
}

/// `xadd`.
pub(super) fn xadd<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = if inst.class.opcode == 0x0fc0 {
        1
    } else {
        inst.opsize()
    };
    let mr = inst.modrm.as_ref().expect("modrm");
    let dest = x.read_rm(inst, size)?;
    let src = x.read_reg(mr.reg, size);
    let sum = x.d.add(dest, src);
    let f = add_flags(x.d, dest, src, None, sum);
    x.write_rm(inst, size, sum)?;
    x.write_reg(mr.reg, size, dest);
    apply(x, &f, F_ALL, 0);
    Ok(Flow::Next)
}

/// `bswap r32`.
pub(super) fn bswap<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let reg = (inst.class.opcode & 7) as u8;
    let v = x.read_reg(reg, 4);
    let b0 = x.d.extract(v, 7, 0);
    let b1 = x.d.extract(v, 15, 8);
    let b2 = x.d.extract(v, 23, 16);
    let b3 = x.d.extract(v, 31, 24);
    let lo = x.d.concat(b1, b2);
    let hi = x.d.concat(b0, lo);
    let res = x.d.concat(hi, b3);
    x.write_reg(reg, 4, res);
    Ok(Flow::Next)
}

/// BCD adjustments: `daa`/`das`/`aaa`/`aas`/`aam`/`aad`.
pub(super) fn bcd<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let al = x.read_reg(Gpr::Eax as u8, 1);
    let ah = {
        let ax = x.read_reg(Gpr::Eax as u8, 2);
        x.d.extract(ax, 15, 8)
    };
    let cf_in = flags::get_bit(x.d, x.m.eflags, CF);
    let af_in = flags::get_bit(x.d, x.m.eflags, AF);
    let nine = x.d.constant(8, 9);
    let lo_nib = {
        let m = x.d.constant(8, 0xf);
        x.d.and(al, m)
    };
    let lo_gt9 = x.d.ult(nine, lo_nib);
    let adjust_lo = x.d.or(lo_gt9, af_in);
    match inst.class.opcode {
        0x27 | 0x2f => {
            // daa / das
            let is_add = inst.class.opcode == 0x27;
            let ninety9 = x.d.constant(8, 0x99);
            let hi_gt = x.d.ult(ninety9, al);
            let adjust_hi = x.d.or(hi_gt, cf_in);
            let six = x.d.constant(8, 6);
            let step1 = if is_add {
                x.d.add(al, six)
            } else {
                x.d.sub(al, six)
            };
            let al1 = x.d.ite(adjust_lo, step1, al);
            let sixty = x.d.constant(8, 0x60);
            let step2 = if is_add {
                x.d.add(al1, sixty)
            } else {
                x.d.sub(al1, sixty)
            };
            let al2 = x.d.ite(adjust_hi, step2, al1);
            x.write_reg(Gpr::Eax as u8, 1, al2);
            let pf = flags::parity(x.d, al2);
            let zf = flags::zero(x.d, al2);
            let sf = flags::sign(x.d, al2);
            let f = FlagSet {
                cf: adjust_hi,
                pf,
                af: adjust_lo,
                zf,
                sf,
                of: x.d.ff(),
            };
            apply(x, &f, F_CF | F_AF | F_PF | F_ZF | F_SF, F_OF);
        }
        0x37 | 0x3f => {
            // aaa / aas
            let is_add = inst.class.opcode == 0x37;
            let six = x.d.constant(8, 6);
            let one = x.d.constant(8, 1);
            let al_adj = if is_add {
                x.d.add(al, six)
            } else {
                x.d.sub(al, six)
            };
            let ah_adj = if is_add {
                x.d.add(ah, one)
            } else {
                x.d.sub(ah, one)
            };
            let new_al = x.d.ite(adjust_lo, al_adj, al);
            let m = x.d.constant(8, 0xf);
            let new_al = x.d.and(new_al, m);
            let new_ah = x.d.ite(adjust_lo, ah_adj, ah);
            let ax = x.d.concat(new_ah, new_al);
            x.write_reg(Gpr::Eax as u8, 2, ax);
            let z = x.d.ff();
            let f = FlagSet {
                cf: adjust_lo,
                pf: z,
                af: adjust_lo,
                zf: z,
                sf: z,
                of: z,
            };
            apply(x, &f, F_CF | F_AF, F_PF | F_ZF | F_SF | F_OF);
        }
        0xd4 => {
            // aam imm8: divides AL — #DE on zero.
            let imm = inst.imm.expect("imm8");
            let z8 = x.d.constant(8, 0);
            let is_zero = x.d.eq(imm, z8);
            if x.d.branch(is_zero, "aam divisor zero") {
                return Err(Exception::De);
            }
            let q = x.d.udiv(al, imm);
            let r = x.d.urem(al, imm);
            let ax = x.d.concat(q, r);
            x.write_reg(Gpr::Eax as u8, 2, ax);
            let pf = flags::parity(x.d, r);
            let zf = flags::zero(x.d, r);
            let sf = flags::sign(x.d, r);
            let zb = x.d.ff();
            let f = FlagSet {
                cf: zb,
                pf,
                af: zb,
                zf,
                sf,
                of: zb,
            };
            apply(x, &f, F_PF | F_ZF | F_SF, F_CF | F_AF | F_OF);
        }
        _ => {
            // aad imm8
            let imm = inst.imm.expect("imm8");
            let prod = x.d.mul(ah, imm);
            let new_al = x.d.add(al, prod);
            let z8 = x.d.constant(8, 0);
            let ax = x.d.concat(z8, new_al);
            x.write_reg(Gpr::Eax as u8, 2, ax);
            let pf = flags::parity(x.d, new_al);
            let zf = flags::zero(x.d, new_al);
            let sf = flags::sign(x.d, new_al);
            let zb = x.d.ff();
            let f = FlagSet {
                cf: zb,
                pf,
                af: zb,
                zf,
                sf,
                of: zb,
            };
            apply(x, &f, F_PF | F_ZF | F_SF, F_CF | F_AF | F_OF);
        }
    }
    Ok(Flow::Next)
}

/// `salc` (undocumented): AL = CF ? 0xFF : 0.
pub(super) fn salc<D: Dom>(x: &mut Exec<'_, D>) -> ExecResult {
    let cf = flags::get_bit(x.d, x.m.eflags, CF);
    let ff = x.d.constant(8, 0xff);
    let z = x.d.constant(8, 0);
    let al = x.d.ite(cf, ff, z);
    x.write_reg(Gpr::Eax as u8, 1, al);
    Ok(Flow::Next)
}

/// `cbw`/`cwde` (98) and `cwd`/`cdq` (99).
pub(super) fn sign_extensions<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    if inst.class.opcode == 0x98 {
        let half = x.read_reg(Gpr::Eax as u8, size / 2);
        let ext = x.d.sext(half, size * 8);
        x.write_reg(Gpr::Eax as u8, size, ext);
    } else {
        let acc = x.read_reg(Gpr::Eax as u8, size);
        let sign = flags::sign(x.d, acc);
        let ones = x.d.constant(size * 8, u64::MAX);
        let zero = x.d.constant(size * 8, 0);
        let hi = x.d.ite(sign, ones, zero);
        x.write_reg(Gpr::Edx as u8, size, hi);
    }
    Ok(Flow::Next)
}

/// `movzx` / `movsx`.
pub(super) fn movzx_movsx<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let mr = inst.modrm.as_ref().expect("modrm");
    let src_size = if matches!(inst.class.opcode, 0x0fb6 | 0x0fbe) {
        1
    } else {
        2
    };
    let dst_size = inst.opsize();
    let v = x.read_rm(inst, src_size)?;
    let out = if matches!(inst.class.opcode, 0x0fb6 | 0x0fb7) {
        x.d.zext(v, dst_size * 8)
    } else {
        x.d.sext(v, dst_size * 8)
    };
    // movzx r16, r/m16 (and movsx alike) truncates to the destination size.
    let out = if src_size * 8 >= dst_size * 8 {
        x.d.extract(v, dst_size * 8 - 1, 0)
    } else {
        out
    };
    x.write_reg(mr.reg, dst_size, out);
    Ok(Flow::Next)
}

/// `setcc`.
pub(super) fn setcc<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let cc = (inst.class.opcode & 0xf) as u8;
    let cond = flags::condition(x.d, x.m.eflags, cc);
    let v = x.d.zext(cond, 8);
    x.write_rm(inst, 1, v)?;
    Ok(Flow::Next)
}

/// `cmovcc`: the memory read happens regardless of the condition.
pub(super) fn cmovcc<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let cc = (inst.class.opcode & 0xf) as u8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let src = x.read_rm(inst, size)?;
    let cond = flags::condition(x.d, x.m.eflags, cc);
    let old = x.read_reg(mr.reg, size);
    let v = x.d.ite(cond, src, old);
    x.write_reg(mr.reg, size, v);
    Ok(Flow::Next)
}
