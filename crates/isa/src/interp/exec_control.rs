//! Control-flow instructions: branches, calls, returns, interrupts.

use pokemu_symx::Dom;

use crate::flags::{self, sub_flags};
use crate::inst::Inst;
use crate::state::flags::{OF, ZF};
use crate::state::{Exception, Gpr, Seg};
use crate::translate::desc_kind;

use super::{Exec, ExecResult, Flow};

fn rel_target<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> D::V {
    let rel = inst.imm.expect("relative displacement");
    let rel32 = x.d.sext(rel, 32);
    let next = x.d.constant(32, x.m.eip as u64);
    x.d.add(next, rel32)
}

/// Conditional jumps (`70-7F`, `0F 80-8F`).
pub(super) fn jcc<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let cc = (inst.class.opcode & 0xf) as u8;
    let cond = flags::condition(x.d, x.m.eflags, cc);
    if x.d.branch(cond, "jcc condition") {
        let t = rel_target(x, inst);
        x.set_eip(t);
    }
    Ok(Flow::Next)
}

/// `loopne`/`loope`/`loop`/`jecxz` (E0-E3).
pub(super) fn loops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    let taken = if op == 0xe3 {
        let ecx = x.read_reg(Gpr::Ecx as u8, 4);
        let z = x.d.constant(32, 0);
        let c = x.d.eq(ecx, z);
        x.d.branch(c, "jecxz")
    } else {
        let ecx = x.read_reg(Gpr::Ecx as u8, 4);
        let one = x.d.constant(32, 1);
        let dec = x.d.sub(ecx, one);
        x.write_reg(Gpr::Ecx as u8, 4, dec);
        let z = x.d.constant(32, 0);
        let nz = x.d.ne(dec, z);
        let zf = flags::get_bit(x.d, x.m.eflags, ZF);
        let cond = match op {
            0xe0 => {
                let nzf = x.d.not(zf);
                x.d.and(nz, nzf)
            }
            0xe1 => x.d.and(nz, zf),
            _ => nz,
        };
        x.d.branch(cond, "loop condition")
    };
    if taken {
        let t = rel_target(x, inst);
        x.set_eip(t);
    }
    Ok(Flow::Next)
}

/// `call rel` (E8), `jmp rel` (E9/EB).
pub(super) fn call_jmp_rel<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    if inst.class.opcode == 0xe8 {
        let ret = x.d.constant(32, x.m.eip as u64);
        x.push(ret, inst.opsize())?;
    }
    let t = rel_target(x, inst);
    x.set_eip(t);
    Ok(Flow::Next)
}

/// Indirect `call`/`jmp` through `FF /2..5`.
pub(super) fn indirect_ff<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let g = inst.class.group_reg.expect("group");
    match g {
        2 => {
            // call r/m
            let target = x.read_rm(inst, size)?;
            let ret = x.d.constant(32, x.m.eip as u64);
            x.push(ret, size)?;
            let t32 = x.d.zext(target, 32);
            x.set_eip(t32);
        }
        4 => {
            let target = x.read_rm(inst, size)?;
            let t32 = x.d.zext(target, 32);
            x.set_eip(t32);
        }
        3 | 5 => {
            // far call/jmp through memory: m16:z
            let mr = inst.modrm.as_ref().expect("modrm");
            let mem = *mr.mem.as_ref().ok_or(Exception::Ud)?;
            let off = x.effective_address(&mem);
            let (offset, sel) = x.read_far_pointer(mem.seg, off, size)?;
            if g == 3 {
                far_call(x, sel, offset, size)?;
            } else {
                far_jump(x, sel, offset, size)?;
            }
        }
        _ => return Err(Exception::Ud),
    }
    Ok(Flow::Next)
}

fn far_jump<D: Dom>(
    x: &mut Exec<'_, D>,
    sel: D::V,
    offset: D::V,
    size: u8,
) -> Result<(), Exception> {
    x.load_segment(Seg::Cs, sel, desc_kind::CODE)?;
    let off32 = x.d.zext(offset, 32);
    let _ = size;
    x.set_eip(off32);
    Ok(())
}

fn far_call<D: Dom>(
    x: &mut Exec<'_, D>,
    sel: D::V,
    offset: D::V,
    size: u8,
) -> Result<(), Exception> {
    let old_cs = x.m.segs[Seg::Cs as usize].selector;
    let old_eip = x.d.constant(32, x.m.eip as u64);
    // Validate the new CS before pushing (hardware order).
    x.load_segment(Seg::Cs, sel, desc_kind::CODE)?;
    let cs_z = x.d.zext(old_cs, size * 8);
    x.push(cs_z, size)?;
    let ret = if size == 2 {
        x.d.extract(old_eip, 15, 0)
    } else {
        old_eip
    };
    x.push(ret, size)?;
    let off32 = x.d.zext(offset, 32);
    x.set_eip(off32);
    Ok(())
}

/// Direct far `call`/`jmp` with an immediate pointer (9A / EA).
pub(super) fn far_direct<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let offset = inst.imm.expect("far offset");
    let sel = inst.imm2.expect("far selector");
    if inst.class.opcode == 0x9a {
        far_call(x, sel, offset, size)?;
    } else {
        far_jump(x, sel, offset, size)?;
    }
    Ok(Flow::Next)
}

/// Near returns (C3, C2 imm16).
pub(super) fn ret_near<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let ret = x.pop(size)?;
    if inst.class.opcode == 0xc2 {
        let imm = inst.imm.expect("imm16");
        let imm32 = x.d.zext(imm, 32);
        let esp = x.read_reg(Gpr::Esp as u8, 4);
        let nesp = x.d.add(esp, imm32);
        x.write_reg(Gpr::Esp as u8, 4, nesp);
    }
    let r32 = x.d.zext(ret, 32);
    x.set_eip(r32);
    Ok(Flow::Next)
}

/// Far returns (CB, CA imm16): validate everything before committing.
pub(super) fn ret_far<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    // Read both slots without committing ESP (reference order: offset first).
    let eip_v = x.peek_stack(0, size)?;
    let cs_v = x.peek_stack(size as u32, size)?;
    x.load_segment(Seg::Cs, cs_v, desc_kind::CODE)?;
    x.bump_esp(2 * size as i32);
    if inst.class.opcode == 0xca {
        let imm = inst.imm.expect("imm16");
        let imm32 = x.d.zext(imm, 32);
        let esp = x.read_reg(Gpr::Esp as u8, 4);
        let nesp = x.d.add(esp, imm32);
        x.write_reg(Gpr::Esp as u8, 4, nesp);
    }
    let r32 = x.d.zext(eip_v, 32);
    x.set_eip(r32);
    Ok(Flow::Next)
}

/// `iret`: pops EIP, CS, EFLAGS — *innermost first* on hardware and Bochs;
/// QEMU's reversed read order is one of the paper's findings (§6.2). The
/// reference implementation reads in ascending stack order.
pub(super) fn iret<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let eip_v = x.peek_stack(0, size)?;
    let cs_v = x.peek_stack(size as u32, size)?;
    let fl_v = x.peek_stack(2 * size as u32, size)?;
    x.load_segment(Seg::Cs, cs_v, desc_kind::CODE)?;
    x.bump_esp(3 * size as i32);
    super::exec_data::write_eflags(x, fl_v, size);
    let r32 = x.d.zext(eip_v, 32);
    x.set_eip(r32);
    Ok(Flow::Next)
}

/// Software interrupts: `int3`, `int imm8`, `into`, `int1`.
///
/// The baseline IDT routes all vectors to halting handlers (§4.1), so the
/// reference semantics surface these as exception outcomes.
pub(super) fn int_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    match inst.class.opcode {
        0xcc => Err(Exception::Bp),
        0xcd => {
            let v = inst.imm.expect("vector");
            let vec = x.d.concretize(v, "int vector") as u8;
            Err(Exception::SoftInt(vec))
        }
        0xce => {
            let of = flags::get_bit(x.d, x.m.eflags, OF);
            if x.d.branch(of, "into overflow set") {
                Err(Exception::Of)
            } else {
                Ok(Flow::Next)
            }
        }
        _ => Err(Exception::Db), // int1/icebp
    }
}

/// `enter imm16, imm8`.
pub(super) fn enter<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let alloc = inst.imm.expect("imm16");
    let level_v = inst.imm2.expect("imm8");
    let level = (x.d.concretize(level_v, "enter nesting level") & 0x1f) as u32;
    let ebp = x.read_reg(Gpr::Ebp as u8, size);
    x.push(ebp, size)?;
    let frame_temp = x.read_reg(Gpr::Esp as u8, 4);
    if level > 0 {
        // Copy level-1 frame pointers, then push the new frame pointer.
        for i in 1..level {
            let ebp_cur = x.read_reg(Gpr::Ebp as u8, 4);
            let off = x.d.constant(32, (i * size as u32) as u64);
            let addr = x.d.sub(ebp_cur, off);
            let v = crate::translate::mem_read(x.d, x.m, Seg::Ss, addr, size)?;
            x.push(v, size)?;
        }
        let ft = if size == 2 {
            x.d.extract(frame_temp, 15, 0)
        } else {
            frame_temp
        };
        x.push(ft, size)?;
    }
    let ft_sz = if size == 2 {
        x.d.extract(frame_temp, 15, 0)
    } else {
        frame_temp
    };
    x.write_reg(Gpr::Ebp as u8, size, ft_sz);
    let alloc32 = x.d.zext(alloc, 32);
    let esp = x.read_reg(Gpr::Esp as u8, 4);
    let nesp = x.d.sub(esp, alloc32);
    x.write_reg(Gpr::Esp as u8, 4, nesp);
    Ok(Flow::Next)
}

/// `leave`: the stack read is checked *before* ESP/EBP are modified — the
/// atomicity property QEMU violates by updating ESP first (§6.2).
pub(super) fn leave<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let ebp = x.read_reg(Gpr::Ebp as u8, 4);
    let v = crate::translate::mem_read(x.d, x.m, Seg::Ss, ebp, size)?;
    // Only after the read is known good: ESP = EBP + size; EBP = popped.
    let inc = x.d.constant(32, size as u64);
    let nesp = x.d.add(ebp, inc);
    x.write_reg(Gpr::Esp as u8, 4, nesp);
    x.write_reg(Gpr::Ebp as u8, size, v);
    Ok(Flow::Next)
}

/// `bound r, m`.
pub(super) fn bound<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let w = size * 8;
    let mr = inst.modrm.as_ref().expect("modrm");
    let mem = *mr.mem.as_ref().expect("bound is memory-only");
    let idx = x.read_reg(mr.reg, size);
    let off = x.effective_address(&mem);
    let lower = crate::translate::mem_read(x.d, x.m, mem.seg, off, size)?;
    let sz = x.d.constant(32, size as u64);
    let off2 = x.d.add(off, sz);
    let upper = crate::translate::mem_read(x.d, x.m, mem.seg, off2, size)?;
    let below = x.d.slt(idx, lower);
    let above = x.d.slt(upper, idx);
    let out = x.d.or(below, above);
    let _ = w;
    if x.d.branch(out, "bound range exceeded") {
        return Err(Exception::Br);
    }
    Ok(Flow::Next)
}

/// `arpl r/m16, r16`.
pub(super) fn arpl<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let mr = inst.modrm.as_ref().expect("modrm");
    let dst = x.read_rm(inst, 2)?;
    let src = x.read_reg(mr.reg, 2);
    let dst_rpl = x.d.extract(dst, 1, 0);
    let src_rpl = x.d.extract(src, 1, 0);
    let lower = x.d.ult(dst_rpl, src_rpl);
    let hi = x.d.extract(dst, 15, 2);
    let adjusted = x.d.concat(hi, src_rpl);
    let new = x.d.ite(lower, adjusted, dst);
    // ZF = adjustment happened. Write-back occurs regardless (RMW).
    x.write_rm(inst, 2, new)?;
    x.m.eflags = flags::insert_bit(x.d, x.m.eflags, ZF, lower);
    // Keep sub_flags linked for the doc-comment cross-reference.
    let _ = sub_flags::<D>;
    Ok(Flow::Next)
}
