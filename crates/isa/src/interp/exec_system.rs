//! System instructions: control registers, descriptor tables, MSRs, CPUID.

use pokemu_symx::Dom;

use crate::flags;
use crate::inst::Inst;
use crate::state::flags::ZF;
use crate::state::{cr0, Exception, Gpr, VALID_MSRS};
use crate::translate;

use super::{Exec, ExecResult, Flow};

fn require_cpl0<D: Dom>(x: &mut Exec<'_, D>) -> Result<(), Exception> {
    if x.at_cpl0() {
        Ok(())
    } else {
        Err(Exception::Gp(0))
    }
}

/// `hlt` — privileged.
pub(super) fn hlt<D: Dom>(x: &mut Exec<'_, D>) -> ExecResult {
    require_cpl0(x)?;
    Ok(Flow::Halt)
}

/// `mov r32, crN` / `mov crN, r32`.
pub(super) fn mov_cr<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    require_cpl0(x)?;
    let mr = inst.modrm.as_ref().expect("modrm");
    let crn = mr.reg;
    if inst.class.opcode == 0x0f20 {
        // read CR
        let v = match crn {
            0 => {
                // ET reads as 1.
                let et = x.d.constant(32, 1 << cr0::ET);
                x.d.or(x.m.cr0, et)
            }
            2 => x.d.constant(32, x.m.cr2 as u64),
            3 => {
                let base = x.d.constant(32, x.m.cr3_base as u64);
                x.d.or(base, x.m.cr3_flags)
            }
            4 => x.m.cr4,
            _ => return Err(Exception::Ud),
        };
        x.write_reg(mr.rm, 4, v);
    } else {
        let v = x.read_reg(mr.rm, 4);
        match crn {
            0 => {
                // PG=1 requires PE=1.
                let pg = x.d.extract(v, cr0::PG, cr0::PG);
                let pe = x.d.extract(v, cr0::PE, cr0::PE);
                let npe = x.d.not(pe);
                let bad = x.d.and(pg, npe);
                if x.d.branch(bad, "CR0.PG without PE") {
                    return Err(Exception::Gp(0));
                }
                x.m.cr0 = v;
            }
            2 => x.m.cr2 = x.d.pick(v, "CR2 value") as u32,
            3 => {
                let all = x.d.pick(v, "CR3 value") as u32;
                x.m.cr3_base = all & 0xffff_f000;
                x.m.cr3_flags = x.d.constant(32, (all & 0x18) as u64);
            }
            4 => {
                // PAE is unsupported in the subset.
                let pae =
                    x.d.extract(v, crate::state::cr4::PAE, crate::state::cr4::PAE);
                if x.d.branch(pae, "CR4.PAE unsupported") {
                    return Err(Exception::Gp(0));
                }
                x.m.cr4 = v;
            }
            _ => return Err(Exception::Ud),
        }
    }
    Ok(Flow::Next)
}

/// Group `0F 00`: `sldt`/`str`/`lldt`/`ltr`/`verr`/`verw`.
pub(super) fn group_0f00<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let g = inst.class.group_reg.expect("group");
    match g {
        0 | 1 => {
            // sldt/str: no LDT/TR in the baseline environment — store 0.
            let z = x.d.constant(16, 0);
            x.write_rm(inst, 2, z)?;
        }
        2 | 3 => {
            // lldt/ltr — privileged; only the null selector is accepted
            // (the subset has no LDT or TSS descriptors).
            require_cpl0(x)?;
            let sel = x.read_rm(inst, 2)?;
            let upper = x.d.extract(sel, 15, 2);
            let z = x.d.constant(14, 0);
            let is_null = x.d.eq(upper, z);
            if !x.d.branch(is_null, "lldt/ltr non-null") {
                let pinned = x.d.pick(sel, "lldt selector") as u16;
                return Err(Exception::Gp(translate::selector_error(pinned)));
            }
        }
        4 | 5 => {
            // verr/verw: sets ZF if the selector is readable/writable.
            let sel = x.read_rm(inst, 2)?;
            let ok = verify_selector(x, sel, g == 5)?;
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, ZF, ok);
        }
        _ => return Err(Exception::Ud),
    }
    Ok(Flow::Next)
}

/// Reads a descriptor for `verr`/`verw`/`lar`/`lsl`; returns width-1
/// "accessible" plus the raw halves.
fn read_descriptor_for_query<D: Dom>(
    x: &mut Exec<'_, D>,
    sel: D::V,
) -> Result<Option<(D::V, D::V)>, Exception> {
    let upper = x.d.extract(sel, 15, 2);
    let z = x.d.constant(14, 0);
    let is_null = x.d.eq(upper, z);
    if x.d.branch(is_null, "query null selector") {
        return Ok(None);
    }
    let idx_ti = x.d.pick(upper, "query selector index") as u16;
    if idx_ti & 1 != 0 {
        return Ok(None); // LDT: nothing there
    }
    let in_table = translate::selector_in_table(x.d, sel, x.m.gdtr.limit);
    if !x.d.branch(in_table, "query selector in GDT") {
        return Ok(None);
    }
    let lin = x.m.gdtr.base.wrapping_add(((idx_ti >> 1) as u32) << 3);
    let lo = translate::lin_read(x.d, x.m, lin, 4)?;
    let hi = translate::lin_read(x.d, x.m, lin.wrapping_add(4), 4)?;
    Ok(Some((lo, hi)))
}

fn verify_selector<D: Dom>(
    x: &mut Exec<'_, D>,
    sel: D::V,
    want_write: bool,
) -> Result<D::V, Exception> {
    let Some((_lo, hi)) = read_descriptor_for_query(x, sel)? else {
        return Ok(x.d.ff());
    };
    let s = x.d.extract(hi, 12, 12);
    let p = x.d.extract(hi, 15, 15);
    let is_code = x.d.extract(hi, 11, 11);
    let bit1 = x.d.extract(hi, 9, 9);
    let dpl = x.d.extract(hi, 14, 13);
    let cpl = x.m.cpl(x.d);
    let rpl = x.d.extract(sel, 1, 0);
    let conforming = x.d.extract(hi, 10, 10);
    // Privilege: DPL >= max(RPL, CPL) unless conforming code.
    let r_gt = x.d.ult(cpl, rpl);
    let eff = x.d.ite(r_gt, rpl, cpl);
    let priv_ok = x.d.ule(eff, dpl);
    let conf_code = x.d.and(is_code, conforming);
    let priv_ok = x.d.or(priv_ok, conf_code);
    let ok = if want_write {
        // Writable data segment.
        let ncode = x.d.not(is_code);
        let w = x.d.and(ncode, bit1);
        x.d.and(w, priv_ok)
    } else {
        // Data, or readable code.
        let ncode = x.d.not(is_code);
        let readable_code = x.d.and(is_code, bit1);
        let r = x.d.or(ncode, readable_code);
        x.d.and(r, priv_ok)
    };
    let ok = x.d.and(ok, s);
    Ok(x.d.and(ok, p))
}

/// Group `0F 01`: `sgdt`/`sidt`/`lgdt`/`lidt`/`smsw`/`lmsw`/`invlpg`.
pub(super) fn group_0f01<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let g = inst.class.group_reg.expect("group");
    let mr = inst.modrm.as_ref().expect("modrm");
    // Memory-only sub-opcodes.
    if matches!(g, 0 | 1 | 2 | 3 | 7) && mr.mem.is_none() {
        return Err(Exception::Ud);
    }
    match g {
        0 | 1 => {
            // sgdt/sidt: store limit (2) then base (4).
            let mem = *mr.mem.as_ref().expect("memory");
            let off = x.effective_address(&mem);
            let (base, limit) = if g == 0 {
                (x.m.gdtr.base, x.m.gdtr.limit)
            } else {
                (x.m.idtr.base, x.m.idtr.limit)
            };
            translate::mem_write(x.d, x.m, mem.seg, off, limit, 2)?;
            let two = x.d.constant(32, 2);
            let off2 = x.d.add(off, two);
            let base_v = x.d.constant(32, base as u64);
            translate::mem_write(x.d, x.m, mem.seg, off2, base_v, 4)?;
        }
        2 | 3 => {
            // lgdt/lidt — privileged.
            require_cpl0(x)?;
            let mem = *mr.mem.as_ref().expect("memory");
            let off = x.effective_address(&mem);
            let limit = translate::mem_read(x.d, x.m, mem.seg, off, 2)?;
            let two = x.d.constant(32, 2);
            let off2 = x.d.add(off, two);
            let base = translate::mem_read(x.d, x.m, mem.seg, off2, 4)?;
            let base = x.d.pick(base, "descriptor table base") as u32;
            if g == 2 {
                x.m.gdtr.base = base;
                x.m.gdtr.limit = limit;
            } else {
                x.m.idtr.base = base;
                x.m.idtr.limit = limit;
            }
        }
        4 => {
            // smsw: CR0 low 16 bits; not privileged (legacy).
            let low = x.d.extract(x.m.cr0, 15, 0);
            let et = x.d.constant(16, 1 << cr0::ET);
            let low = x.d.or(low, et);
            if mr.mem.is_none() {
                let size = inst.opsize();
                let v = if size == 4 { x.d.zext(low, 32) } else { low };
                x.write_reg(mr.rm, size, v);
            } else {
                x.write_rm(inst, 2, low)?;
            }
        }
        6 => {
            // lmsw — privileged; sets PE/MP/EM/TS, cannot clear PE.
            require_cpl0(x)?;
            let v = x.read_rm(inst, 2)?;
            let low4 = x.d.extract(v, 3, 0);
            let pe_old = x.d.extract(x.m.cr0, cr0::PE, cr0::PE);
            let pe_new = x.d.extract(low4, 0, 0);
            let pe = x.d.or(pe_old, pe_new); // PE is sticky via lmsw
            let rest = x.d.extract(low4, 3, 1);
            let low4 = x.d.concat(rest, pe);
            let hi = x.d.extract(x.m.cr0, 31, 4);
            x.m.cr0 = x.d.concat(hi, low4);
        }
        7 => {
            // invlpg — privileged; no TLB model, so a checked no-op.
            require_cpl0(x)?;
        }
        _ => return Err(Exception::Ud),
    }
    Ok(Flow::Next)
}

/// `lar` / `lsl`.
pub(super) fn lar_lsl<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let mr = inst.modrm.as_ref().expect("modrm");
    let sel = x.read_rm(inst, 2)?;
    let desc = read_descriptor_for_query(x, sel)?;
    let Some((lo, hi)) = desc else {
        let z = x.d.ff();
        x.m.eflags = flags::insert_bit(x.d, x.m.eflags, ZF, z);
        return Ok(Flow::Next);
    };
    // Accessibility mirrors verr without the readable/writable refinement.
    let s = x.d.extract(hi, 12, 12);
    let p = x.d.extract(hi, 15, 15);
    let dpl = x.d.extract(hi, 14, 13);
    let cpl = x.m.cpl(x.d);
    let rpl = x.d.extract(sel, 1, 0);
    let is_code = x.d.extract(hi, 11, 11);
    let conforming = x.d.extract(hi, 10, 10);
    let r_gt = x.d.ult(cpl, rpl);
    let eff = x.d.ite(r_gt, rpl, cpl);
    let priv_ok = x.d.ule(eff, dpl);
    let conf = x.d.and(is_code, conforming);
    let priv_ok = x.d.or(priv_ok, conf);
    let ok0 = x.d.and(s, p);
    let ok = x.d.and(ok0, priv_ok);
    if x.d.branch(ok, "lar/lsl accessible") {
        let v = if inst.class.opcode == 0x0f02 {
            // lar: attribute bytes, masked.
            let m = x.d.constant(32, 0x00f0_ff00);
            x.d.and(hi, m)
        } else {
            // lsl: scaled limit.
            let limit_low = x.d.extract(lo, 15, 0);
            let limit_hi = x.d.extract(hi, 19, 16);
            let raw20 = x.d.concat(limit_hi, limit_low);
            let raw = x.d.zext(raw20, 32);
            let g = x.d.extract(hi, 23, 23);
            let twelve = x.d.constant(32, 12);
            let sh = x.d.shl(raw, twelve);
            let fff = x.d.constant(32, 0xfff);
            let sc = x.d.or(sh, fff);
            x.d.ite(g, sc, raw)
        };
        let v = if size == 2 { x.d.extract(v, 15, 0) } else { v };
        x.write_reg(mr.reg, size, v);
        let o = x.d.tt();
        x.m.eflags = flags::insert_bit(x.d, x.m.eflags, ZF, o);
    } else {
        let z = x.d.ff();
        x.m.eflags = flags::insert_bit(x.d, x.m.eflags, ZF, z);
    }
    Ok(Flow::Next)
}

/// `clts` — privileged.
pub(super) fn clts<D: Dom>(x: &mut Exec<'_, D>) -> ExecResult {
    require_cpl0(x)?;
    let m = x.d.constant(32, !(1u64 << cr0::TS) & 0xffff_ffff);
    x.m.cr0 = x.d.and(x.m.cr0, m);
    Ok(Flow::Next)
}

/// `invd` / `wbinvd` — privileged cache no-ops.
pub(super) fn cache_ops<D: Dom>(x: &mut Exec<'_, D>) -> ExecResult {
    require_cpl0(x)?;
    Ok(Flow::Next)
}

/// `wrmsr` (0F30), `rdtsc` (0F31), `rdmsr` (0F32).
///
/// `rdmsr` of an invalid MSR must raise #GP — the check QEMU misses (§6.2).
pub(super) fn msr_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    match inst.class.opcode {
        0x0f31 => {
            // rdtsc: allowed at CPL > 0 unless CR4.TSD.
            let tsd =
                x.d.extract(x.m.cr4, crate::state::cr4::TSD, crate::state::cr4::TSD);
            if x.d.branch(tsd, "CR4.TSD set") && !x.at_cpl0() {
                return Err(Exception::Gp(0));
            }
            let tsc = x.m.msrs.tsc;
            x.m.msrs.tsc = tsc.wrapping_add(1);
            let lo = x.d.constant(32, tsc & 0xffff_ffff);
            let hi = x.d.constant(32, tsc >> 32);
            x.write_reg(Gpr::Eax as u8, 4, lo);
            x.write_reg(Gpr::Edx as u8, 4, hi);
        }
        _ => {
            require_cpl0(x)?;
            let ecx = x.read_reg(Gpr::Ecx as u8, 4);
            let addr = x.d.pick(ecx, "MSR address") as u32;
            if !VALID_MSRS.contains(&addr) {
                return Err(Exception::Gp(0));
            }
            if inst.class.opcode == 0x0f32 {
                let v = match addr {
                    0x10 => {
                        let t = x.m.msrs.tsc;
                        let lo = x.d.constant(32, t & 0xffff_ffff);
                        let hi = x.d.constant(32, t >> 32);
                        (lo, hi)
                    }
                    0x174 => (x.m.msrs.sysenter_cs, x.d.constant(32, 0)),
                    0x175 => (x.m.msrs.sysenter_esp, x.d.constant(32, 0)),
                    _ => (x.m.msrs.sysenter_eip, x.d.constant(32, 0)),
                };
                x.write_reg(Gpr::Eax as u8, 4, v.0);
                x.write_reg(Gpr::Edx as u8, 4, v.1);
            } else {
                let eax = x.read_reg(Gpr::Eax as u8, 4);
                let edx = x.read_reg(Gpr::Edx as u8, 4);
                match addr {
                    0x10 => {
                        let lo = x.d.pick(eax, "wrmsr tsc lo") as u64;
                        let hi = x.d.pick(edx, "wrmsr tsc hi") as u64;
                        x.m.msrs.tsc = (hi << 32) | lo;
                    }
                    0x174 => x.m.msrs.sysenter_cs = eax,
                    0x175 => x.m.msrs.sysenter_esp = eax,
                    _ => x.m.msrs.sysenter_eip = eax,
                }
            }
        }
    }
    Ok(Flow::Next)
}

/// `cpuid`: deterministic fixed values per leaf.
pub(super) fn cpuid<D: Dom>(x: &mut Exec<'_, D>) -> ExecResult {
    let eax = x.read_reg(Gpr::Eax as u8, 4);
    let zero = x.d.constant(32, 0);
    let leaf_is_zero = x.d.eq(eax, zero);
    if x.d.branch(leaf_is_zero, "cpuid leaf 0") {
        // Max leaf = 1; vendor string "VX86PokeEMUrs" style.
        let max = x.d.constant(32, 1);
        let b = x.d.constant(32, u32::from_le_bytes(*b"VX86") as u64);
        let dd = x.d.constant(32, u32::from_le_bytes(*b"Poke") as u64);
        let c = x.d.constant(32, u32::from_le_bytes(*b"EMUr") as u64);
        x.write_reg(Gpr::Eax as u8, 4, max);
        x.write_reg(Gpr::Ebx as u8, 4, b);
        x.write_reg(Gpr::Edx as u8, 4, dd);
        x.write_reg(Gpr::Ecx as u8, 4, c);
    } else {
        // Leaf 1 (and everything else): family/model + feature bits (PSE,
        // MSR, TSC, CMOV).
        let sig = x.d.constant(32, 0x0000_0611);
        let feat = x.d.constant(32, (1 << 3) | (1 << 4) | (1 << 5) | (1 << 15));
        x.write_reg(Gpr::Eax as u8, 4, sig);
        x.write_reg(Gpr::Ebx as u8, 4, zero);
        x.write_reg(Gpr::Ecx as u8, 4, zero);
        x.write_reg(Gpr::Edx as u8, 4, feat);
    }
    Ok(Flow::Next)
}
