//! Data movement, stack, flag-register, and string instructions.

use pokemu_symx::Dom;

use crate::flags::{self, sub_flags};
use crate::inst::{Inst, Rep};
use crate::state::flags::{AF, CF, DF, FIXED_ONE, IF, IOPL, OF, PF, SF, WRITABLE, ZF};
use crate::state::{Exception, Gpr, Seg};
use crate::translate::{self, desc_kind};

use super::{Exec, ExecResult, Flow};

const F_ALL: u32 = (1 << CF) | (1 << PF) | (1 << AF) | (1 << ZF) | (1 << SF) | (1 << OF);

/// `mov` in its register/memory/immediate/moffs encodings.
pub(super) fn mov_family<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    match op {
        0x88 | 0x89 => {
            let size = if op == 0x88 { 1 } else { inst.opsize() };
            let mr = inst.modrm.as_ref().expect("modrm");
            let v = x.read_reg(mr.reg, size);
            x.write_rm(inst, size, v)?;
        }
        0x8a | 0x8b => {
            let size = if op == 0x8a { 1 } else { inst.opsize() };
            let mr = inst.modrm.as_ref().expect("modrm");
            let v = x.read_rm(inst, size)?;
            x.write_reg(mr.reg, size, v);
        }
        0xa0 | 0xa1 => {
            // mov AL/eAX, [moffs]
            let size = if op == 0xa0 { 1 } else { inst.opsize() };
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            let off = inst.imm.expect("moffs");
            let v = translate::mem_read(x.d, x.m, seg, off, size)?;
            x.write_reg(Gpr::Eax as u8, size, v);
        }
        0xa2 | 0xa3 => {
            let size = if op == 0xa2 { 1 } else { inst.opsize() };
            let seg = inst.seg_override.unwrap_or(Seg::Ds);
            let off = inst.imm.expect("moffs");
            let v = x.read_reg(Gpr::Eax as u8, size);
            translate::mem_write(x.d, x.m, seg, off, v, size)?;
        }
        0xb0..=0xb7 => {
            let reg = (op & 7) as u8;
            x.write_reg(reg, 1, inst.imm.expect("imm8"));
        }
        0xb8..=0xbf => {
            let reg = (op & 7) as u8;
            x.write_reg(reg, inst.opsize(), inst.imm.expect("imm"));
        }
        0xc6 | 0xc7 => {
            let size = if op == 0xc6 { 1 } else { inst.opsize() };
            x.write_rm(inst, size, inst.imm.expect("imm"))?;
        }
        _ => return Err(Exception::Ud),
    }
    Ok(Flow::Next)
}

/// `mov r/m16, sreg` (8C) and `mov sreg, r/m16` (8E).
pub(super) fn mov_sreg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let mr = inst.modrm.as_ref().expect("modrm");
    let seg = Seg::from_bits(mr.reg).ok_or(Exception::Ud)?;
    if inst.class.opcode == 0x8c {
        let sel = x.m.segs[seg as usize].selector;
        // To a register: zero-extended to the operand size; to memory: 16-bit.
        if mr.mem.is_none() {
            let size = inst.opsize();
            let v = x.d.zext(sel, size * 8);
            x.write_reg(mr.rm, size, v);
        } else {
            x.write_rm(inst, 2, sel)?;
        }
    } else {
        if seg == Seg::Cs {
            return Err(Exception::Ud);
        }
        let sel = x.read_rm(inst, 2)?;
        let kind = if seg == Seg::Ss {
            desc_kind::STACK
        } else {
            desc_kind::DATA
        };
        x.load_segment(seg, sel, kind)?;
    }
    Ok(Flow::Next)
}

/// `lea`.
pub(super) fn lea<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let mr = inst.modrm.as_ref().expect("modrm");
    let mem = mr.mem.as_ref().expect("lea is memory-only");
    let mem = *mem;
    let ea = x.effective_address(&mem);
    let size = inst.opsize();
    let v = if size == 2 {
        x.d.extract(ea, 15, 0)
    } else {
        ea
    };
    x.write_reg(mr.reg, size, v);
    Ok(Flow::Next)
}

/// `xchg` (86/87 and the 90-97 accumulator forms).
pub(super) fn xchg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    if (0x90..=0x97).contains(&op) {
        let reg = (op & 7) as u8;
        let size = inst.opsize();
        let a = x.read_reg(Gpr::Eax as u8, size);
        let b = x.read_reg(reg, size);
        x.write_reg(Gpr::Eax as u8, size, b);
        x.write_reg(reg, size, a);
        return Ok(Flow::Next);
    }
    let size = if op == 0x86 { 1 } else { inst.opsize() };
    let mr = inst.modrm.as_ref().expect("modrm");
    let mem_val = x.read_rm(inst, size)?;
    let reg_val = x.read_reg(mr.reg, size);
    // The r/m write is checked before the register commit (atomicity).
    x.write_rm(inst, size, reg_val)?;
    x.write_reg(mr.reg, size, mem_val);
    Ok(Flow::Next)
}

/// `push r`/`pop r`/`push imm` (50-5F, 68, 6A).
pub(super) fn push_pop_reg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    let size = inst.opsize();
    match op {
        0x50..=0x57 => {
            let v = x.read_reg((op & 7) as u8, size);
            x.push(v, size)?;
        }
        0x58..=0x5f => {
            let v = x.pop(size)?;
            x.write_reg((op & 7) as u8, size, v);
        }
        0x68 => x.push(inst.imm.expect("imm"), size)?,
        _ => {
            // push imm8, sign-extended to the operand size
            let i = inst.imm.expect("imm8");
            let v = x.d.sext(i, size * 8);
            x.push(v, size)?;
        }
    }
    Ok(Flow::Next)
}

/// `pop r/m` (8F /0).
pub(super) fn pop_rm<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    // x86 quirk: ESP is incremented before the store's effective address is
    // computed, but rolled back if the store faults.
    let v = x.pop(size)?;
    if let Err(e) = x.write_rm(inst, size, v) {
        x.bump_esp(-(size as i32));
        return Err(e);
    }
    Ok(Flow::Next)
}

/// `push`/`pop` of segment registers.
pub(super) fn push_pop_sreg<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let (seg, is_push) = match inst.class.opcode {
        0x06 => (Seg::Es, true),
        0x07 => (Seg::Es, false),
        0x0e => (Seg::Cs, true),
        0x16 => (Seg::Ss, true),
        0x17 => (Seg::Ss, false),
        0x1e => (Seg::Ds, true),
        0x1f => (Seg::Ds, false),
        0x0fa0 => (Seg::Fs, true),
        0x0fa1 => (Seg::Fs, false),
        0x0fa8 => (Seg::Gs, true),
        _ => (Seg::Gs, false),
    };
    if is_push {
        let sel = x.m.segs[seg as usize].selector;
        let v = x.d.zext(sel, size * 8);
        x.push(v, size)?;
    } else {
        let v = x.pop(size)?;
        let kind = if seg == Seg::Ss {
            desc_kind::STACK
        } else {
            desc_kind::DATA
        };
        if let Err(e) = x.load_segment(seg, v, kind) {
            x.bump_esp(-(size as i32));
            return Err(e);
        }
    }
    Ok(Flow::Next)
}

/// `pusha` / `popa`: eight sequential stack accesses.
pub(super) fn pusha_popa<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    if inst.class.opcode == 0x60 {
        let orig_esp = x.read_reg(Gpr::Esp as u8, size);
        for r in [Gpr::Eax, Gpr::Ecx, Gpr::Edx, Gpr::Ebx] {
            let v = x.read_reg(r as u8, size);
            x.push(v, size)?;
        }
        x.push(orig_esp, size)?;
        for r in [Gpr::Ebp, Gpr::Esi, Gpr::Edi] {
            let v = x.read_reg(r as u8, size);
            x.push(v, size)?;
        }
    } else {
        for r in [Gpr::Edi, Gpr::Esi, Gpr::Ebp] {
            let v = x.pop(size)?;
            x.write_reg(r as u8, size, v);
        }
        x.bump_esp(size as i32); // skip the saved ESP
        for r in [Gpr::Ebx, Gpr::Edx, Gpr::Ecx, Gpr::Eax] {
            let v = x.pop(size)?;
            x.write_reg(r as u8, size, v);
        }
    }
    Ok(Flow::Next)
}

/// Applies the protected-mode EFLAGS write rules: IF writable only when
/// CPL <= IOPL; IOPL writable only at CPL 0; VM/RF never via popf.
pub(super) fn write_eflags<D: Dom>(x: &mut Exec<'_, D>, new: D::V, size: u8) {
    let old = x.m.eflags;
    let new32 = if size == 2 {
        // 16-bit writes leave the upper half untouched.
        let hi = x.d.extract(old, 31, 16);
        let lo = x.d.extract(new, 15, 0);
        x.d.concat(hi, lo)
    } else {
        new
    };
    let cpl = x.m.cpl(x.d);
    let iopl = x.d.extract(old, IOPL + 1, IOPL);
    let cpl0 = {
        let z = x.d.constant(2, 0);
        x.d.eq(cpl, z)
    };
    let if_ok = x.d.ule(cpl, iopl);

    let mut mask = WRITABLE & !(1 << IF) & !(3 << IOPL);
    if size == 2 {
        mask |= 0xffff_0000; // carried over from old anyway
    }
    let keep = x.d.constant(
        32,
        (!mask & !(1 << IF) & !(3 << IOPL)) as u64 | FIXED_ONE as u64,
    );
    let _ = keep;
    // Base: writable bits from new, everything else from old.
    let m_new = x.d.constant(32, mask as u64);
    let m_old = x.d.constant(32, !mask as u64 & 0xffff_ffff);
    let a = x.d.and(new32, m_new);
    let b = x.d.and(old, m_old);
    let mut out = x.d.or(a, b);
    // IF: from new when CPL <= IOPL, else preserved.
    let if_new = flags::get_bit(x.d, new32, IF);
    let if_old = flags::get_bit(x.d, old, IF);
    let if_v = x.d.ite(if_ok, if_new, if_old);
    out = flags::insert_bit(x.d, out, IF, if_v);
    // IOPL: from new only at CPL 0.
    let iopl_new = x.d.extract(new32, IOPL + 1, IOPL);
    let iopl_v = x.d.ite(cpl0, iopl_new, iopl);
    let lo = x.d.extract(out, IOPL - 1, 0);
    let hi = x.d.extract(out, 31, IOPL + 2);
    let hi_io = x.d.concat(hi, iopl_v);
    out = x.d.concat(hi_io, lo);
    // Fixed bits.
    let fixed = x.d.constant(32, FIXED_ONE as u64);
    out = x.d.or(out, fixed);
    x.m.eflags = out;
}

/// `pushf` / `popf`.
pub(super) fn pushf_popf<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    if inst.class.opcode == 0x9c {
        let v = if size == 2 {
            x.d.extract(x.m.eflags, 15, 0)
        } else {
            // VM and RF read as 0 on pushf.
            let m =
                x.d.constant(32, !((1u64 << 16) | (1u64 << 17)) & 0xffff_ffff);
            x.d.and(x.m.eflags, m)
        };
        x.push(v, size)?;
    } else {
        let v = x.pop(size)?;
        write_eflags(x, v, size);
    }
    Ok(Flow::Next)
}

/// `lahf` / `sahf`.
pub(super) fn lahf_sahf<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    if inst.class.opcode == 0x9f {
        let low = x.d.extract(x.m.eflags, 7, 0);
        let fixed = x.d.constant(8, FIXED_ONE as u64);
        let v = x.d.or(low, fixed);
        let ax = x.read_reg(Gpr::Eax as u8, 2);
        let al = x.d.extract(ax, 7, 0);
        let new_ax = x.d.concat(v, al);
        x.write_reg(Gpr::Eax as u8, 2, new_ax);
    } else {
        let ax = x.read_reg(Gpr::Eax as u8, 2);
        let ah = x.d.extract(ax, 15, 8);
        // SAHF writes SF ZF AF PF CF.
        const MASK: u32 = (1 << SF) | (1 << ZF) | (1 << AF) | (1 << PF) | (1 << CF);
        let m_new = x.d.constant(8, MASK as u64);
        let a = x.d.and(ah, m_new);
        let a32 = x.d.zext(a, 32);
        let m_old = x.d.constant(32, !(MASK as u64) & 0xffff_ffff);
        let b = x.d.and(x.m.eflags, m_old);
        let out = x.d.or(a32, b);
        let fixed = x.d.constant(32, FIXED_ONE as u64);
        x.m.eflags = x.d.or(out, fixed);
    }
    Ok(Flow::Next)
}

/// Single-flag instructions: `cmc`/`clc`/`stc`/`cli`/`sti`/`cld`/`std`.
pub(super) fn flag_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    match inst.class.opcode {
        0xf5 => {
            let c = flags::get_bit(x.d, x.m.eflags, CF);
            let nc = x.d.not(c);
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, CF, nc);
        }
        0xf8 => {
            let z = x.d.ff();
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, CF, z);
        }
        0xf9 => {
            let o = x.d.tt();
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, CF, o);
        }
        0xfa | 0xfb => {
            // cli/sti: require CPL <= IOPL.
            let cpl = x.m.cpl(x.d);
            let iopl = x.d.extract(x.m.eflags, IOPL + 1, IOPL);
            let ok = x.d.ule(cpl, iopl);
            if !x.d.branch(ok, "cli/sti IOPL check") {
                return Err(Exception::Gp(0));
            }
            let v = if inst.class.opcode == 0xfb {
                x.d.tt()
            } else {
                x.d.ff()
            };
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, IF, v);
        }
        0xfc => {
            let z = x.d.ff();
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, DF, z);
        }
        _ => {
            let o = x.d.tt();
            x.m.eflags = flags::insert_bit(x.d, x.m.eflags, DF, o);
        }
    }
    Ok(Flow::Next)
}

/// `xlat`.
pub(super) fn xlat<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let seg = inst.seg_override.unwrap_or(Seg::Ds);
    let ebx = x.read_reg(Gpr::Ebx as u8, 4);
    let al = x.read_reg(Gpr::Eax as u8, 1);
    let al32 = x.d.zext(al, 32);
    let off = x.d.add(ebx, al32);
    let v = translate::mem_read(x.d, x.m, seg, off, 1)?;
    x.write_reg(Gpr::Eax as u8, 1, v);
    Ok(Flow::Next)
}

/// String instructions (`movs`/`cmps`/`stos`/`lods`/`scas`) with REP
/// prefixes. Each iteration commits its side effects (x86 string operations
/// are interruptible), so a fault mid-string leaves a partial result — the
/// architecturally correct behavior.
pub(super) fn string_ops<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let op = inst.class.opcode;
    let size: u8 = match op {
        0xa4 | 0xa6 | 0xaa | 0xac | 0xae => 1,
        _ => inst.opsize(),
    };
    let src_seg = inst.seg_override.unwrap_or(Seg::Ds);
    // A hard iteration bound keeps symbolic ECX loops finite; real REP loops
    // in generated tests use small counts.
    const MAX_ITER: u32 = 4096;
    let mut iter = 0u32;
    loop {
        if let Some(_rep) = inst.rep {
            let ecx = x.read_reg(Gpr::Ecx as u8, 4);
            let z = x.d.constant(32, 0);
            let done = x.d.eq(ecx, z);
            if x.d.branch(done, "rep ecx zero") {
                break;
            }
        }
        string_one(x, op, size, src_seg)?;
        if inst.rep.is_none() {
            break;
        }
        // Decrement ECX.
        let ecx = x.read_reg(Gpr::Ecx as u8, 4);
        let one = x.d.constant(32, 1);
        let dec = x.d.sub(ecx, one);
        x.write_reg(Gpr::Ecx as u8, 4, dec);
        // scas/cmps: the repeat condition also checks ZF.
        if matches!(op, 0xa6 | 0xa7 | 0xae | 0xaf) {
            let zf = flags::get_bit(x.d, x.m.eflags, ZF);
            let stop = match inst.rep {
                Some(Rep::RepE) => !x.d.branch(zf, "repe ZF"),
                Some(Rep::RepNe) => x.d.branch(zf, "repne ZF"),
                None => unreachable!(),
            };
            if stop {
                break;
            }
        }
        iter += 1;
        if iter >= MAX_ITER {
            break;
        }
    }
    Ok(Flow::Next)
}

fn advance<D: Dom>(x: &mut Exec<'_, D>, reg: Gpr, size: u8) {
    let df = flags::get_bit(x.d, x.m.eflags, DF);
    let v = x.read_reg(reg as u8, 4);
    let n = x.d.constant(32, size as u64);
    let up = x.d.add(v, n);
    let down = x.d.sub(v, n);
    let nv = x.d.ite(df, down, up);
    x.write_reg(reg as u8, 4, nv);
}

fn string_one<D: Dom>(
    x: &mut Exec<'_, D>,
    op: u16,
    size: u8,
    src_seg: Seg,
) -> Result<(), Exception> {
    let esi = x.read_reg(Gpr::Esi as u8, 4);
    let edi = x.read_reg(Gpr::Edi as u8, 4);
    match op {
        0xa4 | 0xa5 => {
            // movs: read [src_seg:esi], write [es:edi]
            let v = translate::mem_read(x.d, x.m, src_seg, esi, size)?;
            translate::mem_write(x.d, x.m, Seg::Es, edi, v, size)?;
            advance(x, Gpr::Esi, size);
            advance(x, Gpr::Edi, size);
        }
        0xa6 | 0xa7 => {
            // cmps
            let a = translate::mem_read(x.d, x.m, src_seg, esi, size)?;
            let b = translate::mem_read(x.d, x.m, Seg::Es, edi, size)?;
            let r = x.d.sub(a, b);
            let f = sub_flags(x.d, a, b, None, r);
            x.m.eflags = flags::apply_flags(x.d, x.m.eflags, &f, F_ALL, 0, x.q.undef_policy);
            advance(x, Gpr::Esi, size);
            advance(x, Gpr::Edi, size);
        }
        0xaa | 0xab => {
            // stos
            let v = x.read_reg(Gpr::Eax as u8, size);
            translate::mem_write(x.d, x.m, Seg::Es, edi, v, size)?;
            advance(x, Gpr::Edi, size);
        }
        0xac | 0xad => {
            // lods
            let v = translate::mem_read(x.d, x.m, src_seg, esi, size)?;
            x.write_reg(Gpr::Eax as u8, size, v);
            advance(x, Gpr::Esi, size);
        }
        _ => {
            // scas
            let a = x.read_reg(Gpr::Eax as u8, size);
            let b = translate::mem_read(x.d, x.m, Seg::Es, edi, size)?;
            let r = x.d.sub(a, b);
            let f = sub_flags(x.d, a, b, None, r);
            x.m.eflags = flags::apply_flags(x.d, x.m.eflags, &f, F_ALL, 0, x.q.undef_policy);
            advance(x, Gpr::Edi, size);
        }
    }
    Ok(())
}

/// `lds`/`les`/`lss`/`lfs`/`lgs`: far-pointer loads whose operand fetch
/// order is a quirk (§6.2, the `lfs` finding).
pub(super) fn load_far_pointer<D: Dom>(x: &mut Exec<'_, D>, inst: &Inst<D::V>) -> ExecResult {
    let size = inst.opsize();
    let (seg, kind) = match inst.class.opcode {
        0xc4 => (Seg::Es, desc_kind::DATA),
        0xc5 => (Seg::Ds, desc_kind::DATA),
        0x0fb2 => (Seg::Ss, desc_kind::STACK),
        0x0fb4 => (Seg::Fs, desc_kind::DATA),
        _ => (Seg::Gs, desc_kind::DATA),
    };
    let mr = inst.modrm.as_ref().expect("modrm");
    let mem = *mr.mem.as_ref().expect("far pointer is memory-only");
    let off = x.effective_address(&mem);
    let (offset, sel) = x.read_far_pointer(mem.seg, off, size)?;
    x.load_segment(seg, sel, kind)?;
    x.write_reg(mr.reg, size, offset);
    Ok(Flow::Next)
}
