//! Address translation: segmentation checks, paging, and descriptor loads.
//!
//! This module is the reference ("hardware") behavior for the two protection
//! mechanisms whose emulation fidelity the paper's evaluation revolves
//! around: segment limit/rights enforcement (missing from QEMU for most
//! instructions, §6.2) and page-level checks with A/D-bit maintenance.
//!
//! The descriptor-validation routine [`descriptor_checks`] is deliberately a
//! pure, branchy function of its inputs: it is the computation the paper
//! summarizes to avoid a 23-paths-per-segment blowup (§3.3.2), and the
//! Hi-Fi emulator routes it through [`pokemu_symx::Dom::summary_hook`] under
//! the key [`DESC_SUMMARY_KEY`].

use pokemu_symx::Dom;

use crate::state::{attrs, cr0, Exception, Machine, Seg};

/// The kind of memory access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

/// Summary-hook key for [`descriptor_checks`].
pub const DESC_SUMMARY_KEY: &str = "descriptor_load";

/// Segment-load kinds for [`descriptor_checks`].
pub mod desc_kind {
    /// Loading a data segment register (ES/DS/FS/GS).
    pub const DATA: u64 = 0;
    /// Loading SS.
    pub const STACK: u64 = 1;
    /// Loading CS via a far control transfer.
    pub const CODE: u64 = 2;
}

/// Checks segment rights and limits for an access of `n` bytes at `off`,
/// returning the linear address (base + offset).
///
/// # Errors
///
/// #SS(0) for stack-segment violations, #GP(0) otherwise — the checks that
/// QEMU skips for most instructions (§6.2).
pub fn seg_linear<D: Dom>(
    d: &mut D,
    m: &Machine<D::V>,
    seg: Seg,
    off: D::V,
    n: u8,
    kind: AccessKind,
) -> Result<D::V, Exception> {
    let cache = m.segs[seg as usize].cache;
    let fault = || {
        if seg == Seg::Ss {
            Exception::Ss(0)
        } else {
            Exception::Gp(0)
        }
    };

    let a = cache.attrs;
    // Present?
    let p = d.extract(a, attrs::P, attrs::P);
    if !d.branch(p, "segment present") {
        return Err(fault());
    }
    // Must be a code/data descriptor.
    let s = d.extract(a, attrs::S, attrs::S);
    if !d.branch(s, "segment S bit") {
        return Err(fault());
    }
    let is_code = d.extract(a, attrs::TYPE_LO + 3, attrs::TYPE_LO + 3);
    let bit1 = d.extract(a, attrs::TYPE_LO + 1, attrs::TYPE_LO + 1); // W (data) / R (code)
    let is_code_b = d.branch(is_code, "segment is code");
    match kind {
        AccessKind::Write => {
            // Writable data segment required.
            if is_code_b || !d.branch(bit1, "segment writable") {
                return Err(fault());
            }
        }
        AccessKind::Read => {
            // Data always readable; code only if the R bit is set.
            if is_code_b && !d.branch(bit1, "code segment readable") {
                return Err(fault());
            }
        }
        AccessKind::Execute => {
            if !is_code_b {
                return Err(fault());
            }
        }
    }

    // Limit check. Expand-down data segments invert the valid range.
    let off_ext = d.zext(off, 33);
    let span = d.constant(33, (n - 1) as u64);
    let end = d.add(off_ext, span);
    let limit_ext = d.zext(cache.limit, 33);
    let expand_down = d.extract(a, attrs::TYPE_LO + 2, attrs::TYPE_LO + 2);
    let is_expand_down = !is_code_b && d.branch_nonzero(expand_down, "expand-down segment");
    if is_expand_down {
        // Valid range is (limit, 0xffffffff].
        let le = d.ule(off_ext, limit_ext);
        if d.branch(le, "expand-down lower bound") {
            return Err(fault());
        }
        let max = d.constant(33, 0xffff_ffff);
        let over = d.ult(max, end);
        if d.branch(over, "expand-down wraps") {
            return Err(fault());
        }
    } else {
        let over = d.ult(limit_ext, end);
        if d.branch(over, "segment limit exceeded") {
            return Err(fault());
        }
    }

    Ok(d.add(cache.base, off))
}

/// Whether the machine is currently executing at user privilege (CPL 3).
pub fn at_user_privilege<D: Dom>(d: &mut D, m: &Machine<D::V>) -> bool {
    let cpl = m.cpl(d);
    let three = d.constant(2, 3);
    let eq = d.eq(cpl, three);
    d.branch(eq, "CPL == 3")
}

fn pf_error(kind: AccessKind, user: bool, present: bool) -> u16 {
    (present as u16) | (((kind == AccessKind::Write) as u16) << 1) | ((user as u16) << 2)
}

/// Walks the page tables for the (concrete) linear address `lin`, enforcing
/// present/rw/us bits and maintaining accessed/dirty bits, and returns the
/// physical address.
///
/// # Errors
///
/// #PF with the standard error code; CR2 is updated by the caller.
pub fn page_translate<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    kind: AccessKind,
    user: bool,
) -> Result<u32, Exception> {
    let pg = d.extract(m.cr0, cr0::PG, cr0::PG);
    if !d.branch(pg, "paging enabled") {
        return Ok(lin);
    }
    let wp = d.extract(m.cr0, cr0::WP, cr0::WP);

    // --- PDE ---
    let pde_addr = m.cr3_base.wrapping_add((lin >> 22) << 2);
    let pde = m.mem.read(d, pde_addr, 4);
    let pde_p = d.extract(pde, 0, 0);
    if !d.branch(pde_p, "PDE present") {
        return Err(Exception::Pf(pf_error(kind, user, false), lin));
    }
    let pde_rw = d.extract(pde, 1, 1);
    let pde_us = d.extract(pde, 2, 2);

    // 4-MiB page when PSE is enabled and the PDE's PS bit is set.
    let ps = d.extract(pde, 7, 7);
    let pse = d.extract(m.cr4, crate::state::cr4::PSE, crate::state::cr4::PSE);
    let big = d.and(ps, pse);
    if d.branch(big, "4MiB page") {
        check_page_perms(d, kind, user, pde_rw, pde_us, wp, lin)?;
        let mut new_pde = set_bit32(d, pde, 5); // accessed
        if kind == AccessKind::Write {
            new_pde = set_bit32(d, new_pde, 6); // dirty
        }
        m.mem.write(d, pde_addr, new_pde, 4);
        let frame = d.extract(pde, 31, 22);
        let frame = d.pick(frame, "4MiB frame") as u32;
        return Ok((frame << 22) | (lin & 0x3f_ffff));
    }

    // --- PTE ---
    let pt_base = d.extract(pde, 31, 12);
    let pt_base = d.pick(pt_base, "page-table base") as u32;
    let pte_addr = (pt_base << 12).wrapping_add(((lin >> 12) & 0x3ff) << 2);
    let pte = m.mem.read(d, pte_addr, 4);
    let pte_p = d.extract(pte, 0, 0);
    if !d.branch(pte_p, "PTE present") {
        return Err(Exception::Pf(pf_error(kind, user, false), lin));
    }
    let pte_rw = d.extract(pte, 1, 1);
    let pte_us = d.extract(pte, 2, 2);
    let rw = d.and(pde_rw, pte_rw);
    let us = d.and(pde_us, pte_us);
    check_page_perms(d, kind, user, rw, us, wp, lin)?;

    // Set accessed (and dirty) bits.
    let new_pde = set_bit32(d, pde, 5);
    m.mem.write(d, pde_addr, new_pde, 4);
    let mut new_pte = set_bit32(d, pte, 5);
    if kind == AccessKind::Write {
        new_pte = set_bit32(d, new_pte, 6);
    }
    m.mem.write(d, pte_addr, new_pte, 4);

    let frame = d.extract(pte, 31, 12);
    let frame = d.pick(frame, "page frame") as u32;
    Ok((frame << 12) | (lin & 0xfff))
}

fn check_page_perms<D: Dom>(
    d: &mut D,
    kind: AccessKind,
    user: bool,
    rw: D::V,
    us: D::V,
    wp: D::V,
    lin: u32,
) -> Result<(), Exception> {
    if user && !d.branch(us, "page user-accessible") {
        return Err(Exception::Pf(pf_error(kind, user, true), lin));
    }
    if kind == AccessKind::Write {
        let writable = d.branch(rw, "page writable");
        if user && !writable {
            return Err(Exception::Pf(pf_error(kind, user, true), lin));
        }
        if !user && !writable && d.branch(wp, "CR0.WP") {
            return Err(Exception::Pf(pf_error(kind, user, true), lin));
        }
    }
    Ok(())
}

fn set_bit32<D: Dom>(d: &mut D, v: D::V, pos: u8) -> D::V {
    let m = d.constant(32, 1 << pos);
    d.or(v, m)
}

/// Translates every page covered by `[lin, lin + n)` *before* returning, so a
/// multi-byte access is atomic with respect to faults (no partial writes).
///
/// Returns the physical address of the first byte and, if the access crosses
/// a page boundary, of the first byte on the second page.
///
/// # Errors
///
/// Propagates #PF from the page walk, checking pages in ascending address
/// order (the reference read order).
pub fn translate_range<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    n: u8,
    kind: AccessKind,
    user: bool,
) -> Result<(u32, Option<u32>), Exception> {
    let first = page_translate(d, m, lin, kind, user)?;
    let last_lin = lin.wrapping_add(n as u32 - 1);
    if (lin >> 12) == (last_lin >> 12) {
        return Ok((first, None));
    }
    let second_page_lin = (last_lin >> 12) << 12;
    let second = page_translate(d, m, second_page_lin, kind, user)?;
    Ok((first, Some(second)))
}

/// Reads `n` bytes through segmentation and paging.
///
/// The linear address is pinned to a single representative value with
/// [`Dom::pick`] (paper §3.3.2: all memory locations are equivalent).
///
/// # Errors
///
/// Any segmentation or paging fault; CR2 is set on #PF.
pub fn mem_read<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    seg: Seg,
    off: D::V,
    n: u8,
) -> Result<D::V, Exception> {
    let lin = seg_linear(d, m, seg, off, n, AccessKind::Read)?;
    let lin = d.pick(lin, "read linear") as u32;
    let user = at_user_privilege(d, m);
    let r = translate_range(d, m, lin, n, AccessKind::Read, user);
    let (p0, p1) = set_cr2(m, r)?;
    Ok(read_phys(d, m, lin, p0, p1, n))
}

/// Writes `n` bytes through segmentation and paging; all checks complete
/// before any byte is stored (atomic with respect to faults).
///
/// # Errors
///
/// Any segmentation or paging fault; CR2 is set on #PF.
pub fn mem_write<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    seg: Seg,
    off: D::V,
    val: D::V,
    n: u8,
) -> Result<(), Exception> {
    let lin = seg_linear(d, m, seg, off, n, AccessKind::Write)?;
    let lin = d.pick(lin, "write linear") as u32;
    let user = at_user_privilege(d, m);
    let r = translate_range(d, m, lin, n, AccessKind::Write, user);
    let (p0, p1) = set_cr2(m, r)?;
    write_phys(d, m, lin, p0, p1, val, n);
    Ok(())
}

/// Reads `n` bytes at a *linear* address bypassing segmentation (descriptor
/// table accesses are implicit supervisor accesses).
///
/// # Errors
///
/// #PF from the page walk; CR2 is set.
pub fn lin_read<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    n: u8,
) -> Result<D::V, Exception> {
    let r = translate_range(d, m, lin, n, AccessKind::Read, false);
    let (p0, p1) = set_cr2(m, r)?;
    Ok(read_phys(d, m, lin, p0, p1, n))
}

/// Writes `n` bytes at a linear address bypassing segmentation.
///
/// # Errors
///
/// #PF from the page walk; CR2 is set.
pub fn lin_write<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    val: D::V,
    n: u8,
) -> Result<(), Exception> {
    let r = translate_range(d, m, lin, n, AccessKind::Write, false);
    let (p0, p1) = set_cr2(m, r)?;
    write_phys(d, m, lin, p0, p1, val, n);
    Ok(())
}

fn set_cr2<V>(
    m: &mut Machine<V>,
    r: Result<(u32, Option<u32>), Exception>,
) -> Result<(u32, Option<u32>), Exception> {
    if let Err(Exception::Pf(_, addr)) = r {
        m.cr2 = addr;
    }
    r
}

fn phys_of(lin: u32, i: u8, p0: u32, p1: Option<u32>) -> u32 {
    let b = lin.wrapping_add(i as u32);
    if (b >> 12) == (lin >> 12) {
        p0 + (b & 0xfff) - (lin & 0xfff)
    } else {
        p1.expect("crossing access translated both pages") + (b & 0xfff)
    }
}

fn read_phys<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    p0: u32,
    p1: Option<u32>,
    n: u8,
) -> D::V {
    let mut v = m.mem.read_u8(d, phys_of(lin, 0, p0, p1));
    for i in 1..n {
        let b = m.mem.read_u8(d, phys_of(lin, i, p0, p1));
        v = d.concat(b, v);
    }
    v
}

fn write_phys<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    lin: u32,
    p0: u32,
    p1: Option<u32>,
    val: D::V,
    n: u8,
) {
    for i in 0..n {
        let b = d.extract(val, i * 8 + 7, i * 8);
        m.mem.write_u8(phys_of(lin, i, p0, p1), b);
    }
}

/// Validates a raw descriptor for loading into a segment register.
///
/// Inputs: the descriptor's two 32-bit halves, the 16-bit selector, the
/// 2-bit CPL and the load kind ([`desc_kind`]). Outputs, in order:
///
/// 1. fault vector as an 8-bit value (0 = success, 13 = #GP, 11 = #NP,
///    12 = #SS),
/// 2. the 32-bit segment base,
/// 3. the 32-bit byte-granular limit,
/// 4. the 12-bit attribute word ([`crate::state::attrs`] layout).
///
/// This function is pure and branch-heavy — roughly two dozen execution paths
/// — which makes it the summarization target of §3.3.2.
pub fn descriptor_checks<D: Dom>(
    d: &mut D,
    lo: D::V,
    hi: D::V,
    sel: D::V,
    cpl: D::V,
    kind: D::V,
) -> [D::V; 4] {
    let zero8 = d.constant(8, 0);
    let gp = d.constant(8, 13);
    let np = d.constant(8, 11);
    let ssf = d.constant(8, 12);

    // Decompose the descriptor.
    let base_low = d.extract(lo, 31, 16); // base[15:0]
    let base_mid = d.extract(hi, 7, 0); // base[23:16]
    let base_hi = d.extract(hi, 31, 24); // base[31:24]
    let base_hi16 = d.concat(base_hi, base_mid);
    let base = d.concat(base_hi16, base_low);
    let limit_low = d.extract(lo, 15, 0);
    let limit_hi = d.extract(hi, 19, 16);
    let raw_limit20 = d.concat(limit_hi, limit_low);
    let raw_limit = d.zext(raw_limit20, 32);
    let g = d.extract(hi, 23, 23);
    let twelve = d.constant(32, 12);
    let shifted = d.shl(raw_limit, twelve);
    let fff = d.constant(32, 0xfff);
    let scaled = d.or(shifted, fff);
    let limit = d.ite(g, scaled, raw_limit);

    let typ = d.extract(hi, 11, 8);
    let s = d.extract(hi, 12, 12);
    let dpl = d.extract(hi, 14, 13);
    let p = d.extract(hi, 15, 15);
    let attrs_word = d.extract(hi, 23, 8); // type..G, 16 bits; take low 12
    let attrs_out = d.extract(attrs_word, attrs::WIDTH - 1, 0);

    let zero32 = d.constant(32, 0);
    let zero_attrs = d.constant(attrs::WIDTH, 0);
    let fail = |_d: &mut D, code: D::V| [code, zero32, zero32, zero_attrs];

    let rpl = d.extract(sel, 1, 0);

    // System descriptors cannot be loaded into segment registers here.
    if !d.branch(s, "descriptor S bit") {
        return fail(d, gp);
    }
    let is_code = d.extract(typ, 3, 3);
    let bit1 = d.extract(typ, 1, 1); // W for data, R for code
    let conforming = d.extract(typ, 2, 2);

    let k_stack = {
        let k = d.constant(2, desc_kind::STACK);
        let kk = d.extract(kind, 1, 0);
        d.eq(kk, k)
    };
    let k_code = {
        let k = d.constant(2, desc_kind::CODE);
        let kk = d.extract(kind, 1, 0);
        d.eq(kk, k)
    };

    if d.branch(k_stack, "loading SS") {
        // SS: writable data, RPL == CPL, DPL == CPL, present.
        if d.branch(is_code, "SS must be data") {
            return fail(d, gp);
        }
        if !d.branch(bit1, "SS must be writable") {
            return fail(d, gp);
        }
        let rpl_ok = d.eq(rpl, cpl);
        if !d.branch(rpl_ok, "SS RPL == CPL") {
            return fail(d, gp);
        }
        let dpl_ok = d.eq(dpl, cpl);
        if !d.branch(dpl_ok, "SS DPL == CPL") {
            return fail(d, gp);
        }
        if !d.branch(p, "SS present") {
            return fail(d, ssf);
        }
    } else if d.branch(k_code, "loading CS") {
        // Far control transfer: must be code; conforming needs DPL <= CPL,
        // nonconforming needs DPL == CPL (with RPL folded into CPL checks).
        if !d.branch(is_code, "CS must be code") {
            return fail(d, gp);
        }
        if d.branch(conforming, "conforming code") {
            let ok = d.ule(dpl, cpl);
            if !d.branch(ok, "conforming DPL <= CPL") {
                return fail(d, gp);
            }
        } else {
            let ok = d.eq(dpl, cpl);
            if !d.branch(ok, "nonconforming DPL == CPL") {
                return fail(d, gp);
            }
        }
        if !d.branch(p, "CS present") {
            return fail(d, np);
        }
    } else {
        // Data segment register: data or readable code; privilege check
        // unless conforming code.
        let code_b = d.branch(is_code, "descriptor is code");
        if code_b && !d.branch(bit1, "code must be readable for data load") {
            return fail(d, gp);
        }
        let skip_priv = code_b && d.branch(conforming, "conforming code (no DPL check)");
        if !skip_priv {
            // DPL >= max(RPL, CPL)
            let r_gt = d.ult(cpl, rpl);
            let eff = d.ite(r_gt, rpl, cpl);
            let ok = d.ule(eff, dpl);
            if !d.branch(ok, "DPL >= max(RPL,CPL)") {
                return fail(d, gp);
            }
        }
        if !d.branch(p, "segment present") {
            return fail(d, np);
        }
    }

    [zero8, base, limit, attrs_out]
}

/// Runs [`descriptor_checks`] through the registered summary when available
/// (symbolic execution), or directly (concrete execution).
pub fn descriptor_checks_hooked<D: Dom>(
    d: &mut D,
    lo: D::V,
    hi: D::V,
    sel: D::V,
    cpl: D::V,
    kind: D::V,
) -> [D::V; 4] {
    if let Some(out) = d.summary_hook(DESC_SUMMARY_KEY, &[lo, hi, sel, cpl, kind]) {
        debug_assert_eq!(out.len(), 4);
        let mut it = out.into_iter();
        let a = it.next().expect("fault");
        let b = it.next().expect("base");
        let c = it.next().expect("limit");
        let e = it.next().expect("attrs");
        return [a, b, c, e];
    }
    descriptor_checks(d, lo, hi, sel, cpl, kind)
}

/// Selector error code for #GP/#NP/#SS raised on a descriptor load.
pub fn selector_error(sel: u16) -> u16 {
    sel & 0xfffc
}

/// Convenience: selector index check against a table limit (8-byte entries).
pub fn selector_in_table<D: Dom>(d: &mut D, sel: D::V, table_limit: D::V) -> D::V {
    // (index * 8) + 7 <= limit
    let idx = d.extract(sel, 15, 3);
    let idx32 = d.zext(idx, 32);
    let three = d.constant(32, 3);
    let byte_off = d.shl(idx32, three);
    let seven = d.constant(32, 7);
    let end = d.add(byte_off, seven);
    let lim = d.zext(table_limit, 32);
    d.ule(end, lim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{selector as selbuild, RawDescriptor};
    use pokemu_symx::{CVal, Concrete};

    fn run_checks(desc: RawDescriptor, sel: u16, cpl: u64, kind: u64) -> (u64, u64, u64, u64) {
        let mut d = Concrete::new();
        let b = desc.encode();
        let lo = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        let hi = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        let lo = d.constant(32, lo as u64);
        let hi = d.constant(32, hi as u64);
        let sel = d.constant(16, sel as u64);
        let cpl = d.constant(2, cpl);
        let kind = d.constant(2, kind);
        let [f, base, limit, attrs] = descriptor_checks(&mut d, lo, hi, sel, cpl, kind);
        let g = |v: CVal| d.as_const(v).unwrap();
        (g(f), g(base), g(limit), g(attrs))
    }

    #[test]
    fn flat_data_descriptor_loads_cleanly() {
        let desc = RawDescriptor::flat(0x3); // accessed writable data
        let (f, base, limit, _) =
            run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::DATA);
        assert_eq!(f, 0);
        assert_eq!(base, 0);
        assert_eq!(limit, 0xffff_ffff);
    }

    #[test]
    fn not_present_data_segment_is_np() {
        let mut desc = RawDescriptor::flat(0x3);
        desc.present = false;
        let (f, ..) = run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::DATA);
        assert_eq!(f, 11);
    }

    #[test]
    fn ss_requires_writable_data() {
        let desc = RawDescriptor::flat(0x1); // read-only data
        let (f, ..) = run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::STACK);
        assert_eq!(f, 13);
        let desc = RawDescriptor::flat(0x3);
        let (f, ..) = run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::STACK);
        assert_eq!(f, 0);
        // Not-present stack segment raises #SS, not #NP.
        let mut desc = RawDescriptor::flat(0x3);
        desc.present = false;
        let (f, ..) = run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::STACK);
        assert_eq!(f, 12);
    }

    #[test]
    fn privilege_violations_are_gp() {
        let mut desc = RawDescriptor::flat(0x3);
        desc.dpl = 0;
        // RPL 3 with DPL 0: #GP for data load.
        let (f, ..) = run_checks(desc, selbuild::build(2, false, 3), 0, desc_kind::DATA);
        assert_eq!(f, 13);
    }

    #[test]
    fn limit_scaling_respects_g_bit() {
        let mut desc = RawDescriptor::flat(0x3);
        desc.g = false;
        desc.limit = 0x100;
        let (f, _, limit, _) = run_checks(desc, selbuild::build(2, false, 0), 0, desc_kind::DATA);
        assert_eq!(f, 0);
        assert_eq!(limit, 0x100);
    }

    #[test]
    fn descriptor_summary_matches_direct_execution() {
        use pokemu_symx::Executor;
        let mut exec = Executor::new();
        let summary = exec.summarize(
            &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
            |e, f| descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
        );
        // The summarized function should have on the order of 20+ paths —
        // the §3.3.2 "23 paths" observation for Bochs.
        assert!(
            summary.cases() >= 15,
            "expected many paths, got {}",
            summary.cases()
        );

        // Spot-check the folded formula against direct concrete execution.
        let samples = [
            (RawDescriptor::flat(0x3), 0x10u16, 0u64, desc_kind::DATA),
            (RawDescriptor::flat(0xb), 0x10, 0, desc_kind::CODE),
            (RawDescriptor::flat(0x3), 0x13, 3, desc_kind::STACK),
            (
                RawDescriptor {
                    present: false,
                    ..RawDescriptor::flat(0x3)
                },
                0x10,
                0,
                desc_kind::DATA,
            ),
        ];
        for (desc, sel, cpl, kind) in samples {
            let b = desc.encode();
            let lo_c = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64;
            let hi_c = u32::from_le_bytes([b[4], b[5], b[6], b[7]]) as u64;
            let lo = exec.pool_mut().constant(32, lo_c);
            let hi = exec.pool_mut().constant(32, hi_c);
            let sel_t = exec.pool_mut().constant(16, sel as u64);
            let cpl_t = exec.pool_mut().constant(2, cpl);
            let kind_t = exec.pool_mut().constant(2, kind);
            let out = summary.apply(exec.pool_mut(), &[lo, hi, sel_t, cpl_t, kind_t]);
            let direct = run_checks(desc, sel, cpl, kind);
            assert_eq!(exec.pool().as_const(out[0]), Some(direct.0), "fault code");
            if direct.0 == 0 {
                assert_eq!(exec.pool().as_const(out[1]), Some(direct.1), "base");
                assert_eq!(exec.pool().as_const(out[2]), Some(direct.2), "limit");
                assert_eq!(exec.pool().as_const(out[3]), Some(direct.3), "attrs");
            }
        }
    }

    #[test]
    fn selector_table_bounds() {
        let mut d = Concrete::new();
        let lim = d.constant(16, 0x17); // three entries
        let sel = d.constant(16, selbuild::build(2, false, 0) as u64);
        let ok = selector_in_table(&mut d, sel, lim);
        assert_eq!(d.as_const(ok), Some(1));
        let sel = d.constant(16, selbuild::build(3, false, 0) as u64);
        let ok = selector_in_table(&mut d, sel, lim);
        assert_eq!(d.as_const(ok), Some(0));
    }
}
