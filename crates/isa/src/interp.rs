//! The reference interpreter: one instruction step over any value domain.
//!
//! This is the single source of truth for VX86 semantics. Instantiated at
//! [`pokemu_symx::Concrete`] it is the execution core of the hardware oracle
//! and the Hi-Fi emulator; instantiated at [`pokemu_symx::Executor`] it is
//! the program that machine-state exploration symbolically executes
//! (paper §3.3).
//!
//! [`Quirks`] captures the per-implementation behaviors that differ *within
//! the architecture's latitude or by documented emulator deviation*:
//! undefined-flag policy, far-pointer operand fetch order, and descriptor
//! accessed-bit maintenance. Real hardware, Bochs and QEMU disagree on
//! exactly these (paper §6.2); everything else in this module is common.

use pokemu_symx::Dom;

use crate::decode::decode;
use crate::flags::UndefPolicy;
use crate::inst::Inst;
use crate::state::{attrs, Exception, Gpr, Machine, Seg};
use crate::translate::{self, AccessKind};

mod exec_arith;
mod exec_control;
mod exec_data;
mod exec_system;

/// Implementation-specific behaviors within architectural latitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quirks {
    /// Values of architecturally-undefined flag results.
    pub undef_policy: UndefPolicy,
    /// `true`: far-pointer loads (`lds`/`les`/`lfs`/`lgs`/`lss`) fetch the
    /// segment selector before the offset — Bochs's order, opposite to QEMU
    /// and the hardware (paper §6.2).
    pub segment_first_far_fetch: bool,
    /// Maintain the descriptor "accessed" bit on segment loads (QEMU does
    /// not, §6.2).
    pub set_accessed_bit: bool,
}

impl Quirks {
    /// The hardware model: reference in every respect.
    pub const HARDWARE: Quirks = Quirks {
        undef_policy: UndefPolicy::HwModel,
        segment_first_far_fetch: false,
        set_accessed_bit: true,
    };

    /// The Hi-Fi emulator (Bochs-like): complete, with documented benign
    /// deviations — cleared undefined flags and reversed far-pointer fetch
    /// order.
    pub const HIFI: Quirks = Quirks {
        undef_policy: UndefPolicy::Clear,
        segment_first_far_fetch: true,
        set_accessed_bit: true,
    };
}

impl Default for Quirks {
    fn default() -> Self {
        Quirks::HARDWARE
    }
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Instruction retired normally.
    Normal,
    /// The CPU halted (`hlt`).
    Halt,
    /// An exception was raised; machine state is rolled back to the
    /// instruction boundary (EIP points at the faulting instruction).
    Exception(Exception),
}

/// Control-flow result inside `execute`.
pub(crate) enum Flow {
    Next,
    Halt,
}

pub(crate) type ExecResult = Result<Flow, Exception>;

/// Size of the `coverage.exception` bitmap: one bit per interrupt vector.
pub const EXCEPTION_COVERAGE_BITS: usize = 256;

/// Records an exception vector in the `coverage.exception` map — which
/// exception *classes* interpretation has exercised (the axis Tables 3–4
/// cluster deviations by).
fn record_exception(e: &Exception) {
    static COV: std::sync::OnceLock<pokemu_rt::CoverageMap> = std::sync::OnceLock::new();
    COV.get_or_init(|| pokemu_rt::coverage::map("coverage.exception", EXCEPTION_COVERAGE_BITS))
        .set(e.vector() as usize);
}

/// Executes one full instruction step: fetch (through CS, with paging),
/// decode, execute.
pub fn step<D: Dom>(d: &mut D, m: &mut Machine<D::V>, q: &Quirks) -> StepOutcome {
    let start_eip = m.eip;
    let inst = {
        let r = decode(d, |d: &mut D, idx: u8| fetch_byte(d, m, start_eip, idx));
        match r {
            Ok(i) => i,
            Err(e) => {
                record_exception(&e);
                return StepOutcome::Exception(e);
            }
        }
    };
    execute_decoded(d, m, q, &inst, start_eip)
}

/// Executes an already-decoded instruction whose first byte sits at
/// `start_eip`. This is the entry point machine-state exploration uses: the
/// paper starts symbolic execution "after it has fetched and decoded an
/// instruction" (§3.4).
pub fn execute_decoded<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    q: &Quirks,
    inst: &Inst<D::V>,
    start_eip: u32,
) -> StepOutcome {
    m.eip = start_eip.wrapping_add(inst.len as u32);
    match execute(d, m, q, inst) {
        Ok(Flow::Next) => StepOutcome::Normal,
        Ok(Flow::Halt) => StepOutcome::Halt,
        Err(e) => {
            record_exception(&e);
            m.eip = start_eip;
            StepOutcome::Exception(e)
        }
    }
}

/// Fetches one instruction byte through segmentation and paging.
fn fetch_byte<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    start_eip: u32,
    idx: u8,
) -> Result<D::V, Exception> {
    let off = d.constant(32, start_eip.wrapping_add(idx as u32) as u64);
    let lin = translate::seg_linear(d, m, Seg::Cs, off, 1, AccessKind::Execute)?;
    let lin = d.pick(lin, "fetch linear") as u32;
    let user = translate::at_user_privilege(d, m);
    let (p0, _) = match translate::translate_range(d, m, lin, 1, AccessKind::Execute, user) {
        Ok(v) => v,
        Err(e) => {
            if let Exception::Pf(_, a) = e {
                m.cr2 = a;
            }
            return Err(e);
        }
    };
    Ok(m.mem.read_u8(d, p0))
}

/// The execution context threaded through instruction implementations.
pub(crate) struct Exec<'a, D: Dom> {
    pub d: &'a mut D,
    pub m: &'a mut Machine<D::V>,
    pub q: Quirks,
}

impl<'a, D: Dom> Exec<'a, D> {
    /// Reads a general-purpose register at the given size (1, 2, 4 bytes).
    /// For byte size, registers 4..=7 are AH/CH/DH/BH.
    pub fn read_reg(&mut self, reg: u8, size: u8) -> D::V {
        match size {
            4 => self.m.gpr[reg as usize],
            2 => self.d.extract(self.m.gpr[reg as usize], 15, 0),
            1 => {
                if reg < 4 {
                    self.d.extract(self.m.gpr[reg as usize], 7, 0)
                } else {
                    self.d.extract(self.m.gpr[(reg - 4) as usize], 15, 8)
                }
            }
            _ => unreachable!("bad operand size"),
        }
    }

    /// Writes a general-purpose register at the given size, preserving the
    /// untouched high bits.
    pub fn write_reg(&mut self, reg: u8, size: u8, val: D::V) {
        match size {
            4 => self.m.gpr[reg as usize] = val,
            2 => {
                let hi = self.d.extract(self.m.gpr[reg as usize], 31, 16);
                self.m.gpr[reg as usize] = self.d.concat(hi, val);
            }
            1 => {
                if reg < 4 {
                    let hi = self.d.extract(self.m.gpr[reg as usize], 31, 8);
                    self.m.gpr[reg as usize] = self.d.concat(hi, val);
                } else {
                    let r = (reg - 4) as usize;
                    let hi = self.d.extract(self.m.gpr[r], 31, 16);
                    let lo = self.d.extract(self.m.gpr[r], 7, 0);
                    let mid_hi = self.d.concat(hi, val);
                    self.m.gpr[r] = self.d.concat(mid_hi, lo);
                }
            }
            _ => unreachable!("bad operand size"),
        }
    }

    /// Computes the effective address offset of a memory operand.
    pub fn effective_address(&mut self, mem: &crate::inst::MemOperand<D::V>) -> D::V {
        let mut ea = mem.disp;
        if let Some(b) = mem.base {
            ea = self.d.add(ea, self.m.gpr[b as usize]);
        }
        if let Some((i, scale)) = mem.index {
            let idx = self.m.gpr[i as usize];
            let sc = self.d.constant(32, scale as u64);
            let scaled = self.d.shl(idx, sc);
            ea = self.d.add(ea, scaled);
        }
        ea
    }

    /// Reads the ModRM r/m operand (register or checked memory access).
    pub fn read_rm(&mut self, inst: &Inst<D::V>, size: u8) -> Result<D::V, Exception> {
        let mr = inst.modrm.as_ref().expect("instruction has modrm");
        match &mr.mem {
            None => Ok(self.read_reg(mr.rm, size)),
            Some(mem) => {
                let off = self.effective_address(mem);
                translate::mem_read(self.d, self.m, mem.seg, off, size)
            }
        }
    }

    /// Writes the ModRM r/m operand.
    pub fn write_rm(&mut self, inst: &Inst<D::V>, size: u8, val: D::V) -> Result<(), Exception> {
        let mr = inst.modrm.as_ref().expect("instruction has modrm");
        match &mr.mem {
            None => {
                self.write_reg(mr.rm, size, val);
                Ok(())
            }
            Some(mem) => {
                let off = self.effective_address(mem);
                translate::mem_write(self.d, self.m, mem.seg, off, val, size)
            }
        }
    }

    /// Pushes a value of `size` bytes (2 or 4) onto the stack.
    pub fn push(&mut self, val: D::V, size: u8) -> Result<(), Exception> {
        let esp = self.m.gpr[Gpr::Esp as usize];
        let dec = self.d.constant(32, size as u64);
        let new_esp = self.d.sub(esp, dec);
        translate::mem_write(self.d, self.m, Seg::Ss, new_esp, val, size)?;
        self.m.gpr[Gpr::Esp as usize] = new_esp;
        Ok(())
    }

    /// Pops `size` bytes (2 or 4) off the stack.
    pub fn pop(&mut self, size: u8) -> Result<D::V, Exception> {
        let esp = self.m.gpr[Gpr::Esp as usize];
        let val = translate::mem_read(self.d, self.m, Seg::Ss, esp, size)?;
        let inc = self.d.constant(32, size as u64);
        self.m.gpr[Gpr::Esp as usize] = self.d.add(esp, inc);
        Ok(val)
    }

    /// Reads the stack without committing ESP (for multi-pop instructions
    /// that must validate everything before committing, e.g. `iret`).
    pub fn peek_stack(&mut self, slot: u32, size: u8) -> Result<D::V, Exception> {
        let esp = self.m.gpr[Gpr::Esp as usize];
        let off = self.d.constant(32, slot as u64);
        let addr = self.d.add(esp, off);
        translate::mem_read(self.d, self.m, Seg::Ss, addr, size)
    }

    /// Adjusts ESP by a constant.
    pub fn bump_esp(&mut self, delta: i32) {
        let esp = self.m.gpr[Gpr::Esp as usize];
        let dv = self.d.constant(32, delta as u32 as u64);
        self.m.gpr[Gpr::Esp as usize] = self.d.add(esp, dv);
    }

    /// `true` when CPL == 0; privileged instructions require it.
    pub fn at_cpl0(&mut self) -> bool {
        let cpl = self.m.cpl(self.d);
        let zero = self.d.constant(2, 0);
        let eq = self.d.eq(cpl, zero);
        self.d.branch(eq, "CPL == 0")
    }

    /// Loads a segment register from a selector, running all descriptor
    /// checks (through the summary hook, §3.3.2) and maintaining the
    /// accessed bit per quirks.
    pub fn load_segment(&mut self, seg: Seg, sel: D::V, kind: u64) -> Result<(), Exception> {
        let sel = self.d.extract(sel, 15, 0);
        // Null selector: index 0, TI 0.
        let upper = self.d.extract(sel, 15, 2);
        let z = self.d.constant(14, 0);
        let is_null = self.d.eq(upper, z);
        if self.d.branch(is_null, "null selector") {
            if kind != translate::desc_kind::DATA {
                return Err(Exception::Gp(0));
            }
            // Data segments may be loaded null: mark unusable (P = 0).
            let zero_attrs = self.d.constant(attrs::WIDTH, 0);
            let zero32 = self.d.constant(32, 0);
            let s = &mut self.m.segs[seg as usize];
            s.selector = sel;
            s.cache.base = zero32;
            s.cache.limit = zero32;
            s.cache.attrs = zero_attrs;
            return Ok(());
        }
        // Pin the table index (a large-table index, §3.3.2); TI and RPL stay
        // symbolic only through the checks below.
        let idx_ti = self.d.extract(sel, 15, 2);
        let idx_ti = self.d.pick(idx_ti, "selector index") as u16;
        let ti = idx_ti & 1 != 0;
        let index = idx_ti >> 1;
        let err = index << 3; // selector error code (TI/RPL bits cleared)
        if ti {
            // No LDT in the baseline environment.
            return Err(Exception::Gp(err | 0x4));
        }
        // GDT limit check.
        let in_table = translate::selector_in_table(self.d, sel, self.m.gdtr.limit);
        if !self.d.branch(in_table, "selector within GDT limit") {
            return Err(Exception::Gp(err));
        }
        let desc_lin = self.m.gdtr.base.wrapping_add((index as u32) << 3);
        let lo = translate::lin_read(self.d, self.m, desc_lin, 4)?;
        let hi = translate::lin_read(self.d, self.m, desc_lin.wrapping_add(4), 4)?;

        let cpl = self.m.cpl(self.d);
        let kind_v = self.d.constant(2, kind);
        let [fault, base, limit, cache_attrs] =
            translate::descriptor_checks_hooked(self.d, lo, hi, sel, cpl, kind_v);
        let fault = self.d.concretize(fault, "descriptor fault class") as u8;
        match fault {
            0 => {}
            11 => return Err(Exception::Np(err)),
            12 => return Err(Exception::Ss(err)),
            _ => return Err(Exception::Gp(err)),
        }

        // Set the descriptor's accessed bit (type bit 0 = hi bit 8).
        if self.q.set_accessed_bit {
            let acc = self.d.extract(hi, 8, 8);
            if !self.d.branch(acc, "descriptor already accessed") {
                let mask = self.d.constant(32, 1 << 8);
                let new_hi = self.d.or(hi, mask);
                translate::lin_write(self.d, self.m, desc_lin.wrapping_add(4), new_hi, 4)?;
            }
        }

        let s = &mut self.m.segs[seg as usize];
        s.selector = sel;
        s.cache.base = base;
        s.cache.limit = limit;
        s.cache.attrs = cache_attrs;
        Ok(())
    }

    /// Reads a far pointer (offset:selector) from memory in the
    /// quirk-configured order — the `lfs` fetch-order deviation of §6.2.
    pub fn read_far_pointer(
        &mut self,
        seg: Seg,
        off: D::V,
        opsize: u8,
    ) -> Result<(D::V, D::V), Exception> {
        let sel_off = self.d.constant(32, opsize as u64);
        let sel_addr = self.d.add(off, sel_off);
        if self.q.segment_first_far_fetch {
            let sel = translate::mem_read(self.d, self.m, seg, sel_addr, 2)?;
            let offset = translate::mem_read(self.d, self.m, seg, off, opsize)?;
            Ok((offset, sel))
        } else {
            let offset = translate::mem_read(self.d, self.m, seg, off, opsize)?;
            let sel = translate::mem_read(self.d, self.m, seg, sel_addr, 2)?;
            Ok((offset, sel))
        }
    }

    /// Sets EIP from a (possibly symbolic) target, pinning it to a concrete
    /// value — the instruction pointer stays concrete (Fig. 3).
    pub fn set_eip(&mut self, target: D::V) {
        self.m.eip = self.d.pick(target, "branch target") as u32;
    }
}

/// Dispatches one decoded instruction to its implementation.
pub(crate) fn execute<D: Dom>(
    d: &mut D,
    m: &mut Machine<D::V>,
    q: &Quirks,
    inst: &Inst<D::V>,
) -> ExecResult {
    let mut x = Exec { d, m, q: *q };
    let op = inst.class.opcode;
    match op {
        // ALU families.
        0x00..=0x05
        | 0x08..=0x0d
        | 0x10..=0x15
        | 0x18..=0x1d
        | 0x20..=0x25
        | 0x28..=0x2d
        | 0x30..=0x35
        | 0x38..=0x3d => exec_arith::alu_family(&mut x, inst),
        0x80 | 0x81 | 0x82 | 0x83 => exec_arith::alu_group(&mut x, inst),
        0x84 | 0x85 | 0xa8 | 0xa9 => exec_arith::test_ops(&mut x, inst),
        0xf6 | 0xf7 => exec_arith::group_f6(&mut x, inst),
        0xfe | 0xff => exec_arith::group_fe_ff(&mut x, inst),
        0x40..=0x4f => exec_arith::inc_dec_reg(&mut x, inst),
        0xc0 | 0xc1 | 0xd0 | 0xd1 | 0xd2 | 0xd3 => exec_arith::shift_group(&mut x, inst),
        0x69 | 0x6b | 0x0faf => exec_arith::imul_2op(&mut x, inst),
        0x0fa4 | 0x0fa5 | 0x0fac | 0x0fad => exec_arith::shld_shrd(&mut x, inst),
        0x0fa3 | 0x0fab | 0x0fb3 | 0x0fbb | 0x0fba => exec_arith::bit_ops(&mut x, inst),
        0x0fbc | 0x0fbd => exec_arith::bsf_bsr(&mut x, inst),
        0x0fb0 | 0x0fb1 => exec_arith::cmpxchg(&mut x, inst),
        0x0fc0 | 0x0fc1 => exec_arith::xadd(&mut x, inst),
        0x0fc8..=0x0fcf => exec_arith::bswap(&mut x, inst),
        0x27 | 0x2f | 0x37 | 0x3f | 0xd4 | 0xd5 => exec_arith::bcd(&mut x, inst),
        0xd6 => exec_arith::salc(&mut x),
        0x98 | 0x99 => exec_arith::sign_extensions(&mut x, inst),
        0x0fb6 | 0x0fb7 | 0x0fbe | 0x0fbf => exec_arith::movzx_movsx(&mut x, inst),
        0x0f90..=0x0f9f => exec_arith::setcc(&mut x, inst),
        0x0f40..=0x0f4f => exec_arith::cmovcc(&mut x, inst),

        // Data movement.
        0x88..=0x8b | 0xa0..=0xa3 | 0xb0..=0xbf | 0xc6 | 0xc7 => {
            exec_data::mov_family(&mut x, inst)
        }
        0x8c | 0x8e => exec_data::mov_sreg(&mut x, inst),
        0x8d => exec_data::lea(&mut x, inst),
        0x86 | 0x87 | 0x90..=0x97 => exec_data::xchg(&mut x, inst),
        0x50..=0x5f | 0x68 | 0x6a => exec_data::push_pop_reg(&mut x, inst),
        0x8f => exec_data::pop_rm(&mut x, inst),
        0x06 | 0x07 | 0x0e | 0x16 | 0x17 | 0x1e | 0x1f | 0x0fa0 | 0x0fa1 | 0x0fa8 | 0x0fa9 => {
            exec_data::push_pop_sreg(&mut x, inst)
        }
        0x60 | 0x61 => exec_data::pusha_popa(&mut x, inst),
        0x9c | 0x9d => exec_data::pushf_popf(&mut x, inst),
        0x9e | 0x9f => exec_data::lahf_sahf(&mut x, inst),
        0xf5 | 0xf8 | 0xf9 | 0xfa | 0xfb | 0xfc | 0xfd => exec_data::flag_ops(&mut x, inst),
        0xd7 => exec_data::xlat(&mut x, inst),
        0xa4..=0xa7 | 0xaa..=0xaf => exec_data::string_ops(&mut x, inst),
        0xc4 | 0xc5 | 0x0fb2 | 0x0fb4 | 0x0fb5 => exec_data::load_far_pointer(&mut x, inst),

        // Control flow.
        0x70..=0x7f | 0x0f80..=0x0f8f => exec_control::jcc(&mut x, inst),
        0xe0..=0xe3 => exec_control::loops(&mut x, inst),
        0xe8 | 0xe9 | 0xeb => exec_control::call_jmp_rel(&mut x, inst),
        0x9a | 0xea => exec_control::far_direct(&mut x, inst),
        0xc2 | 0xc3 => exec_control::ret_near(&mut x, inst),
        0xca | 0xcb => exec_control::ret_far(&mut x, inst),
        0xcf => exec_control::iret(&mut x, inst),
        0xcc | 0xcd | 0xce | 0xf1 => exec_control::int_ops(&mut x, inst),
        0xc8 => exec_control::enter(&mut x, inst),
        0xc9 => exec_control::leave(&mut x, inst),
        0x62 => exec_control::bound(&mut x, inst),
        0x63 => exec_control::arpl(&mut x, inst),

        // System.
        0xf4 => exec_system::hlt(&mut x),
        0x0f20 | 0x0f22 => exec_system::mov_cr(&mut x, inst),
        0x0f00 => exec_system::group_0f00(&mut x, inst),
        0x0f01 => exec_system::group_0f01(&mut x, inst),
        0x0f02 | 0x0f03 => exec_system::lar_lsl(&mut x, inst),
        0x0f06 => exec_system::clts(&mut x),
        0x0f08 | 0x0f09 => exec_system::cache_ops(&mut x),
        0x0f30 | 0x0f31 | 0x0f32 => exec_system::msr_ops(&mut x, inst),
        0x0fa2 => exec_system::cpuid(&mut x),

        _ => Err(Exception::Ud),
    }
}
