//! A small assembler for building test programs.
//!
//! The test-program generator (paper §4) emits short instruction sequences —
//! baseline initializers, state-initializer gadgets, test instructions — as
//! raw bytes. This module provides typed encoders for exactly the
//! instructions those sequences need, plus a generic escape hatch. Encoders
//! and the decoder are independent implementations, so round-trip property
//! tests cross-check both.

use crate::state::{Gpr, Seg};

/// An instruction-sequence builder.
///
/// # Examples
///
/// ```
/// use pokemu_isa::asm::Asm;
/// use pokemu_isa::state::Gpr;
///
/// let mut a = Asm::new();
/// a.mov_r32_imm32(Gpr::Esp, 0x0020_07dc);
/// a.push_r32(Gpr::Eax);
/// a.hlt();
/// assert_eq!(a.bytes(), &[0xbc, 0xdc, 0x07, 0x20, 0x00, 0x50, 0xf4]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Asm {
    out: Vec<u8>,
}

impl Asm {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// The assembled bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.out
    }

    /// Consumes the builder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been assembled yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Appends raw bytes (the escape hatch for test instructions).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut Self {
        self.out.extend_from_slice(bytes);
        self
    }

    fn imm32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn imm16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    /// `mov r32, imm32`.
    pub fn mov_r32_imm32(&mut self, r: Gpr, imm: u32) -> &mut Self {
        self.out.push(0xb8 + r as u8);
        self.imm32(imm);
        self
    }

    /// `mov byte [abs32], imm8` — the workhorse of test-state initializers
    /// (Fig. 5 lines 2-3).
    pub fn mov_m8_imm8(&mut self, addr: u32, imm: u8) -> &mut Self {
        self.out.extend_from_slice(&[0xc6, 0x05]);
        self.imm32(addr);
        self.out.push(imm);
        self
    }

    /// `mov dword [abs32], imm32`.
    pub fn mov_m32_imm32(&mut self, addr: u32, imm: u32) -> &mut Self {
        self.out.extend_from_slice(&[0xc7, 0x05]);
        self.imm32(addr);
        self.imm32(imm);
        self
    }

    /// `mov word [abs32], imm16`.
    pub fn mov_m16_imm16(&mut self, addr: u32, imm: u16) -> &mut Self {
        self.out.extend_from_slice(&[0x66, 0xc7, 0x05]);
        self.imm32(addr);
        self.imm16(imm);
        self
    }

    /// `mov ax, imm16` (Fig. 5 line 4).
    pub fn mov_ax_imm16(&mut self, imm: u16) -> &mut Self {
        self.out.extend_from_slice(&[0x66, 0xb8]);
        self.imm16(imm);
        self
    }

    /// `mov sreg, ax` (Fig. 5 line 5).
    pub fn mov_sreg_ax(&mut self, seg: Seg) -> &mut Self {
        self.out
            .extend_from_slice(&[0x8e, 0xc0 | ((seg as u8) << 3)]);
        self
    }

    /// `push r32`.
    pub fn push_r32(&mut self, r: Gpr) -> &mut Self {
        self.out.push(0x50 + r as u8);
        self
    }

    /// `pop r32`.
    pub fn pop_r32(&mut self, r: Gpr) -> &mut Self {
        self.out.push(0x58 + r as u8);
        self
    }

    /// `push imm32`.
    pub fn push_imm32(&mut self, imm: u32) -> &mut Self {
        self.out.push(0x68);
        self.imm32(imm);
        self
    }

    /// `popf`.
    pub fn popf(&mut self) -> &mut Self {
        self.out.push(0x9d);
        self
    }

    /// `pushf`.
    pub fn pushf(&mut self) -> &mut Self {
        self.out.push(0x9c);
        self
    }

    /// `mov cr0, eax`.
    pub fn mov_cr0_eax(&mut self) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x22, 0xc0]);
        self
    }

    /// `mov cr3, eax`.
    pub fn mov_cr3_eax(&mut self) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x22, 0xd8]);
        self
    }

    /// `mov cr4, eax`.
    pub fn mov_cr4_eax(&mut self) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x22, 0xe0]);
        self
    }

    /// `mov eax, cr0`.
    pub fn mov_eax_cr0(&mut self) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x20, 0xc0]);
        self
    }

    /// `lgdt [abs32]`.
    pub fn lgdt(&mut self, addr: u32) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x01, 0x15]);
        self.imm32(addr);
        self
    }

    /// `lidt [abs32]`.
    pub fn lidt(&mut self, addr: u32) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x01, 0x1d]);
        self.imm32(addr);
        self
    }

    /// `wrmsr`.
    pub fn wrmsr(&mut self) -> &mut Self {
        self.out.extend_from_slice(&[0x0f, 0x30]);
        self
    }

    /// `jmp far sel:off` (reloads CS).
    pub fn jmp_far(&mut self, sel: u16, off: u32) -> &mut Self {
        self.out.push(0xea);
        self.imm32(off);
        self.imm16(sel);
        self
    }

    /// `hlt` — every test program ends with it (Fig. 5 line 8).
    pub fn hlt(&mut self) -> &mut Self {
        self.out.push(0xf4);
        self
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.out.push(0x90);
        self
    }

    /// `sti` / `cli`.
    pub fn sti(&mut self) -> &mut Self {
        self.out.push(0xfb);
        self
    }

    /// `cli`.
    pub fn cli(&mut self) -> &mut Self {
        self.out.push(0xfa);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use pokemu_symx::{Concrete, Dom};

    fn decode_one(bytes: &[u8]) -> crate::inst::Inst<pokemu_symx::CVal> {
        let mut d = Concrete::new();
        let owned = bytes.to_vec();
        decode(&mut d, move |d, i| {
            Ok(d.constant(8, *owned.get(i as usize).unwrap_or(&0) as u64))
        })
        .expect("assembler output must decode")
    }

    #[test]
    fn assembler_output_decodes() {
        let mut a = Asm::new();
        a.mov_r32_imm32(Gpr::Esp, 0x2007dc);
        let i = decode_one(a.bytes());
        assert_eq!(i.class.opcode, 0xb8 + Gpr::Esp as u16);
        assert_eq!(i.len as usize, a.len());

        let mut a = Asm::new();
        a.mov_m8_imm8(0x208055, 0x13);
        let i = decode_one(a.bytes());
        assert_eq!(i.class.opcode, 0xc6);
        assert_eq!(i.len as usize, a.len());

        let mut a = Asm::new();
        a.mov_sreg_ax(Seg::Ss);
        let i = decode_one(a.bytes());
        assert_eq!(i.class.opcode, 0x8e);
        assert_eq!(i.modrm.unwrap().reg, Seg::Ss as u8);

        let mut a = Asm::new();
        a.lgdt(0x1000);
        let i = decode_one(a.bytes());
        assert_eq!(i.class.opcode, 0x0f01);
        assert_eq!(i.class.group_reg, Some(2));
    }

    #[test]
    fn figure5_sequence_assembles() {
        // The paper's Fig. 5 test program for `push %eax`.
        let mut a = Asm::new();
        a.mov_r32_imm32(Gpr::Esp, 0x002007dc)
            .mov_m8_imm8(0x00208055, 0x13)
            .mov_m8_imm8(0x00208056, 0xcf)
            .mov_ax_imm16(0x0050)
            .mov_sreg_ax(Seg::Ss)
            .mov_r32_imm32(Gpr::Eax, 0)
            .raw(&[0xff, 0xf0]) // push %eax (FF /6 register form)
            .hlt();
        assert!(a.len() > 20);
        // Every instruction in the sequence must decode.
        let mut off = 0usize;
        let bytes = a.bytes().to_vec();
        while off < bytes.len() {
            let i = decode_one(&bytes[off..]);
            off += i.len as usize;
        }
        assert_eq!(off, bytes.len());
    }
}
