//! # pokemu-explore
//!
//! Path-exploration lifting (paper §3): the core contribution. This crate
//! drives the symbolic execution engine over the Hi-Fi emulator to:
//!
//! 1. enumerate the instruction set from the decoder ([`insn_space`],
//!    paper §3.2);
//! 2. explore the machine-state space of each instruction's implementation
//!    ([`state_space`], §3.3), using the Figure-3 symbolic state
//!    ([`symstate`]) and the descriptor-load summary (§3.3.2);
//! 3. minimize each path's solver model against the baseline state (§3.4)
//!    and emit [`pokemu_testgen::TestState`]s ready for test-program
//!    generation (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod insn_space;
pub mod state_space;
pub mod symstate;

pub use insn_space::{explore_instruction_space, ClassRep, InsnSpace, InsnSpaceConfig};
pub use state_space::{
    explore_state_space, to_chain_segments, to_test_programs, PathEnd, PathTest, StateSpace,
    StateSpaceConfig,
};

#[cfg(test)]
pub(crate) fn baseline_snapshot() -> pokemu_isa::snapshot::Snapshot {
    use pokemu_hifi::HiFi;
    use pokemu_isa::state::{attrs, Seg};
    use pokemu_symx::Dom;
    use pokemu_testgen::{boot_state, layout, TestProgram};

    let prog = TestProgram::baseline_only("baseline".into(), &[0x90]).expect("baseline builds");
    let boot = boot_state();
    let mut emu = HiFi::new();
    {
        let (d, m) = emu.parts_mut();
        m.cr0 = d.constant(32, boot.cr0 as u64);
        m.eip = boot.eip;
        m.gpr[4] = d.constant(32, boot.esp as u64);
        for seg in Seg::ALL {
            let typ: u64 = if seg == Seg::Cs { 0xb } else { 0x3 };
            let a = typ
                | (1 << attrs::S as u64)
                | (1 << attrs::P as u64)
                | (1 << attrs::DB as u64)
                | (1 << attrs::G as u64);
            let s = &mut m.segs[seg as usize];
            s.selector = d.constant(16, 0x8);
            s.cache.base = d.constant(32, 0);
            s.cache.limit = d.constant(32, 0xffff_ffff);
            s.cache.attrs = d.constant(attrs::WIDTH, a);
        }
    }
    emu.load_image(layout::CODE_BASE, &prog.code);
    let exit = emu.run(20_000);
    assert_eq!(exit, pokemu_hifi::RunExit::Halted);
    emu.snapshot(exit)
}
