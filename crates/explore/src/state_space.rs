//! Machine-state-space exploration (paper §3.3) and test-state extraction.
//!
//! For one test instruction, symbolically executes the Hi-Fi emulator's
//! implementation from the symbolic machine state of Figure 3, one path per
//! distinct behavior. Each path's solver model is minimized against the
//! baseline (§3.4) and converted into a [`pokemu_testgen::TestState`] — the
//! exact list of initializer gadgets needed to retrigger that path at run
//! time.

use std::collections::HashMap;

use pokemu_isa::interp::{self, Quirks, StepOutcome};
use pokemu_isa::snapshot::Snapshot;
use pokemu_isa::state::{Gpr, Machine, Seg};
use pokemu_isa::translate::{descriptor_checks, DESC_SUMMARY_KEY};
use pokemu_rt::metrics;
use pokemu_solver::TermId;
use pokemu_symx::{minimize, Dom, Executor, ExploreConfig, MinimizeStats};
use pokemu_testgen::{layout, ChainSegment, TestProgram, TestState};

/// Hex rendering of instruction bytes for span attributes and reports.
pub(crate) fn insn_hex(insn: &[u8]) -> String {
    insn.iter().map(|b| format!("{b:02x}")).collect()
}

use crate::symstate;

/// How a path through the instruction implementation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathEnd {
    /// The instruction retired normally.
    Retired,
    /// The CPU halted.
    Halted,
    /// An exception with this vector was raised.
    Exception(u8),
    /// The instruction bytes failed to decode (should not happen for
    /// representatives from instruction-space exploration).
    DecodeFault(u8),
}

/// One explored path, with its extracted test state.
#[derive(Debug, Clone)]
pub struct PathTest {
    /// How the Hi-Fi emulator's path ended.
    pub end: PathEnd,
    /// The minimized machine-state difference that triggers the path.
    pub state: TestState,
    /// Number of branch conditions on the path.
    pub pc_len: usize,
    /// The engine's deterministic path-decision hash (see
    /// [`pokemu_symx::PathOutcome::path_id`]); carried through to test
    /// programs so deviations can name the exact explored path.
    pub path_id: u64,
    /// Names of the symbolic state components this path's instruction
    /// wrote (`"eax"`, `"eflags"`, `"sel_ds"`, `"mem"`, ...), detected by
    /// comparing the machine's term ids before and after symbolic
    /// execution. The program chainer uses this final-state export to know
    /// which constraints of the *next* path must be re-established.
    pub clobbers: Vec<String>,
    /// Minimization statistics (E8).
    pub minimize: MinimizeStats,
}

/// Exploration result for one instruction.
#[derive(Debug)]
pub struct StateSpace {
    /// The instruction bytes explored.
    pub insn: Vec<u8>,
    /// One entry per explored path.
    pub paths: Vec<PathTest>,
    /// Complete path coverage achieved (the 95% criterion of §6.1).
    pub complete: bool,
    /// Engine statistics.
    pub solver_queries: u64,
    /// Solver queries abandoned as Unknown (budget exhausted or fault
    /// injected); nonzero implies `complete == false`.
    pub unknown_queries: u64,
    /// Replayed paths whose condition was unsatisfiable at the end (demoted
    /// from a panic; see `ExploreStats::infeasible_paths`).
    pub infeasible_paths: usize,
}

/// Configuration for state-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct StateSpaceConfig {
    /// Per-instruction path cap (8192 in the paper, §6.1).
    pub max_paths: usize,
    /// Use the descriptor-load summary (§3.3.2). Disabled by the E7
    /// ablation to measure the blowup it prevents.
    pub use_summaries: bool,
    /// Skip state-difference minimization (E8 ablation).
    pub minimize: bool,
    /// Wall-clock deadline for this instruction's exploration; past it the
    /// engine stops starting paths and reports `complete = false`.
    pub deadline: Option<std::time::Instant>,
}

impl Default for StateSpaceConfig {
    fn default() -> Self {
        StateSpaceConfig {
            max_paths: 8192,
            use_summaries: true,
            minimize: true,
            deadline: None,
        }
    }
}

/// Term-id snapshot of the symbolic machine taken between decode and
/// execution. Because the executor interns terms structurally, a component
/// whose term id changed was written by the instruction (possibly with an
/// equal concrete value — the export is deliberately conservative: a false
/// "clobbered" only costs the chainer a redundant re-establishing gadget).
struct MachineProbe {
    gpr: [TermId; 8],
    eflags: TermId,
    segs: [(TermId, TermId, TermId, TermId); 6],
    cr0: TermId,
    cr3_flags: TermId,
    cr4: TermId,
    gdtr_limit: TermId,
    idtr_limit: TermId,
    msrs: [TermId; 3],
    mem: HashMap<u32, TermId>,
}

impl MachineProbe {
    fn of(m: &Machine<TermId>) -> MachineProbe {
        MachineProbe {
            gpr: m.gpr,
            eflags: m.eflags,
            segs: std::array::from_fn(|i| {
                let s = &m.segs[i];
                (s.selector, s.cache.base, s.cache.limit, s.cache.attrs)
            }),
            cr0: m.cr0,
            cr3_flags: m.cr3_flags,
            cr4: m.cr4,
            gdtr_limit: m.gdtr.limit,
            idtr_limit: m.idtr.limit,
            msrs: [m.msrs.sysenter_cs, m.msrs.sysenter_esp, m.msrs.sysenter_eip],
            mem: m.mem.iter_initialized().collect(),
        }
    }

    /// The components whose term ids the execution changed, under the same
    /// names `symstate` gives the symbolic inputs. Memory is reported as
    /// one collective `"mem"` entry (the chainer accumulates memory rather
    /// than restoring individual bytes). The order is fixed, so the export
    /// is deterministic.
    fn clobbers_of(&self, m: &Machine<TermId>) -> Vec<String> {
        let mut out = Vec::new();
        for r in Gpr::ALL {
            if m.gpr[r as usize] != self.gpr[r as usize] {
                out.push(r.name().to_owned());
            }
        }
        if m.eflags != self.eflags {
            out.push("eflags".to_owned());
        }
        for seg in Seg::ALL {
            let s = &m.segs[seg as usize];
            if (s.selector, s.cache.base, s.cache.limit, s.cache.attrs) != self.segs[seg as usize] {
                out.push(format!("sel_{}", seg.name()));
            }
        }
        for (id, before, name) in [
            (m.cr0, self.cr0, "cr0"),
            (m.cr3_flags, self.cr3_flags, "cr3_flags"),
            (m.cr4, self.cr4, "cr4"),
            (m.gdtr.limit, self.gdtr_limit, "gdtr_limit"),
            (m.idtr.limit, self.idtr_limit, "idtr_limit"),
            (m.msrs.sysenter_cs, self.msrs[0], "msr_sysenter_cs"),
            (m.msrs.sysenter_esp, self.msrs[1], "msr_sysenter_esp"),
            (m.msrs.sysenter_eip, self.msrs[2], "msr_sysenter_eip"),
        ] {
            if id != before {
                out.push(name.to_owned());
            }
        }
        // A byte whose term changed was written; a byte *appearing* was
        // merely materialized by an on-demand read, which also lands here —
        // acceptable, since "mem" only documents that memory effects may
        // have accumulated.
        let mem_changed = m.mem.initialized_len() != self.mem.len()
            || m.mem
                .iter_initialized()
                .any(|(addr, v)| self.mem.get(&addr) != Some(&v));
        if mem_changed {
            out.push("mem".to_owned());
        }
        out
    }
}

/// Explores the machine-state space of one instruction on the Hi-Fi
/// emulator's semantics.
pub fn explore_state_space(
    insn: &[u8],
    baseline: &Snapshot,
    config: StateSpaceConfig,
) -> StateSpace {
    let _span = pokemu_rt::span!("explore.state_space", insn = insn_hex(insn));
    let _frame = pokemu_rt::prof::frame("explore.state_space");
    // Solver queries issued anywhere below carry this instruction's hex in
    // their provenance (flight notes, slow-query attribution).
    let _insn_ctx = pokemu_solver::origin::insn_scoped(insn_hex(insn));
    let mut exec = Executor::with_config(ExploreConfig {
        max_paths: config.max_paths,
        deadline: config.deadline,
        ..ExploreConfig::default()
    });

    if config.use_summaries {
        // A summary that cannot be folded exhaustively (starved solver,
        // expired deadline) is skipped, not fatal: exploration falls back
        // to executing the real descriptor-check code on every path.
        match exec.try_summarize(
            &[(32, "lo"), (32, "hi"), (16, "sel"), (2, "cpl"), (2, "kind")],
            |e, f| descriptor_checks(e, f[0], f[1], f[2], f[3], f[4]).to_vec(),
        ) {
            Some(summary) => exec.register_summary(DESC_SUMMARY_KEY, summary),
            None => metrics::counter("explore.summary_skipped").inc(),
        }
    }

    let mem_template = {
        // Build inside a throwaway exploration so on-demand variables exist
        // consistently; the template itself is deterministic.
        symstate::symbolic_memory_template(&mut exec, baseline)
    };

    let insn_owned: Vec<u8> = insn.to_vec();
    let quirks = Quirks::HIFI;
    let result = exec.explore(|e| {
        let mut m = symstate::symbolic_machine(e, baseline, &mem_template);
        // Decode from the concrete test bytes — exploration starts after
        // fetch/decode (§3.4).
        let decoded = pokemu_isa::decode(e, |d, i| {
            Ok(d.constant(8, *insn_owned.get(i as usize).unwrap_or(&0) as u64))
        });
        let inst = match decoded {
            Ok(i) => i,
            Err(fault) => return (PathEnd::DecodeFault(fault.vector()), Vec::new()),
        };
        let before = MachineProbe::of(&m);
        let end = match interp::execute_decoded(e, &mut m, &quirks, &inst, layout::CODE_BASE) {
            StepOutcome::Normal => PathEnd::Retired,
            StepOutcome::Halt => PathEnd::Halted,
            StepOutcome::Exception(ex) => PathEnd::Exception(ex.vector()),
        };
        (end, before.clobbers_of(&m))
    });

    let env = symstate::baseline_env(&exec, baseline);
    let mut paths = Vec::with_capacity(result.paths.len());
    for p in &result.paths {
        let (model, mstats) = if config.minimize {
            let _o = pokemu_solver::origin::scoped("minimize");
            pokemu_solver::origin::set_path_id(p.path_id);
            minimize(exec.pool(), &p.path_condition, &p.model, &env)
        } else {
            (p.model.clone(), MinimizeStats::default())
        };
        // Extract the state difference as gadget items.
        let mut items = Vec::new();
        for (name, var) in exec.named_vars() {
            let Some(val) = model.value(var) else {
                continue;
            };
            let base = symstate::baseline_value_of(&name, baseline);
            if val != base {
                if let Some(item) = symstate::state_item_of(&name, val) {
                    items.push(item);
                }
            }
        }
        paths.push(PathTest {
            end: p.value.0,
            state: TestState { items },
            pc_len: p.path_condition.len(),
            path_id: p.path_id,
            clobbers: p.value.1.clone(),
            minimize: mstats,
        });
    }
    // Per-instruction exploration accounting (`explore.` namespace): how
    // many instructions were explored, how many paths each one produced,
    // and whether coverage was exhaustive (the §6.1 completeness criterion).
    metrics::counter("explore.insns").inc();
    metrics::counter("explore.paths").add(paths.len() as u64);
    metrics::histogram("paths.per_insn").record(paths.len() as u64);
    if result.complete {
        metrics::counter("explore.complete").inc();
    } else {
        metrics::counter("explore.incomplete").inc();
    }
    let estats = exec.stats();
    StateSpace {
        insn: insn.to_vec(),
        paths,
        complete: result.complete,
        solver_queries: estats.solver_queries,
        unknown_queries: estats.unknown,
        infeasible_paths: estats.infeasible_paths,
    }
}

/// Converts a state-space exploration into runnable test programs
/// (paper §4: one test program per explored path).
pub fn to_test_programs(space: &StateSpace, name_prefix: &str) -> Vec<TestProgram> {
    space
        .paths
        .iter()
        .enumerate()
        .filter_map(|(i, p)| {
            TestProgram::build(
                format!("{name_prefix}/path{i}"),
                p.state.clone(),
                &space.insn,
            )
            .ok()
            .map(|mut prog| {
                prog.path_id = p.path_id;
                prog
            })
        })
        .collect()
}

/// Converts explored paths into chainable segments for
/// [`pokemu_testgen::TestProgram::chain`], named `{prefix}/path{i}` to
/// mirror [`to_test_programs`]. Indices align with [`StateSpace::paths`],
/// so callers can pick segments by [`PathEnd`].
pub fn to_chain_segments(space: &StateSpace, name_prefix: &str) -> Vec<ChainSegment> {
    space
        .paths
        .iter()
        .enumerate()
        .map(|(i, p)| ChainSegment {
            name: format!("{name_prefix}/path{i}"),
            insn: space.insn.clone(),
            state: p.state.clone(),
            path_id: p.path_id,
            clobbers: p.clobbers.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_snapshot;

    fn small_config() -> StateSpaceConfig {
        StateSpaceConfig {
            max_paths: 512,
            use_summaries: true,
            minimize: true,
            deadline: None,
        }
    }

    #[test]
    fn clc_is_a_single_path() {
        // clc (F8) touches only CF: no symbolic branches at all.
        let baseline = baseline_snapshot();
        let space = explore_state_space(&[0xf8], &baseline, small_config());
        assert!(space.complete);
        assert_eq!(space.paths.len(), 1);
        assert_eq!(space.paths[0].end, PathEnd::Retired);
        // The minimized test state should be (near) empty: nothing is
        // constrained.
        assert!(
            space.paths[0].state.items.is_empty(),
            "{:?}",
            space.paths[0].state
        );
    }

    #[test]
    fn conditional_jump_has_two_flag_paths() {
        // jz +2 (74 02): branches on ZF only.
        let baseline = baseline_snapshot();
        let space = explore_state_space(&[0x74, 0x02], &baseline, small_config());
        assert!(space.complete);
        assert_eq!(space.paths.len(), 2);
        // One path must constrain EFLAGS away from the baseline (ZF set).
        let constrained: Vec<_> = space
            .paths
            .iter()
            .filter(|p| !p.state.items.is_empty())
            .collect();
        assert_eq!(constrained.len(), 1, "{:?}", space.paths);
    }

    #[test]
    fn clobber_export_names_written_components() {
        let baseline = baseline_snapshot();

        // clc (F8) rewrites EFLAGS and nothing else.
        let space = explore_state_space(&[0xf8], &baseline, small_config());
        assert_eq!(space.paths[0].clobbers, vec!["eflags".to_owned()]);

        // pop eax (58) writes EAX and ESP; the stack read materializes
        // memory terms, so "mem" may also appear — but no other register.
        // Fault paths legitimately report nothing written, so look at the
        // retired path.
        let space = explore_state_space(&[0x58], &baseline, small_config());
        let p = space
            .paths
            .iter()
            .find(|p| p.end == PathEnd::Retired)
            .expect("pop eax retires on some path");
        let c = &p.clobbers;
        assert!(c.contains(&"eax".to_owned()), "{c:?}");
        assert!(c.contains(&"esp".to_owned()), "{c:?}");
        assert!(!c.contains(&"ebx".to_owned()), "{c:?}");
        assert!(!c.contains(&"eflags".to_owned()), "{c:?}");
    }

    #[test]
    fn chain_segments_mirror_paths() {
        let baseline = baseline_snapshot();
        let space = explore_state_space(&[0x74, 0x02], &baseline, small_config());
        let segs = to_chain_segments(&space, "jz");
        assert_eq!(segs.len(), space.paths.len());
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.name, format!("jz/path{i}"));
            assert_eq!(s.insn, space.insn);
            assert_eq!(s.path_id, space.paths[i].path_id);
        }
    }

    #[test]
    fn div_explores_fault_and_success() {
        // div ecx (F7 F1): divide-by-zero, overflow, and success paths.
        let baseline = baseline_snapshot();
        let space = explore_state_space(&[0xf7, 0xf1], &baseline, small_config());
        assert!(space.complete);
        let ends: std::collections::HashSet<_> = space.paths.iter().map(|p| p.end).collect();
        assert!(
            ends.contains(&PathEnd::Exception(0)),
            "divide error explored: {ends:?}"
        );
        assert!(
            ends.contains(&PathEnd::Retired),
            "success explored: {ends:?}"
        );
        // A divide-by-zero path exists; ECX is zero at baseline already, so
        // its minimized test state needs few items.
        let de = space
            .paths
            .iter()
            .filter(|p| p.end == PathEnd::Exception(0))
            .min_by_key(|p| p.state.items.len())
            .expect("divide-by-zero path");
        assert!(de.state.items.len() <= 1, "{:?}", de.state);
    }
}
