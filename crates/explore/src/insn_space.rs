//! Instruction-set exploration (paper §3.2).
//!
//! Symbolically executes the instruction decoder with a 15-byte buffer whose
//! first three bytes are symbolic (the rest zero), discovering every byte
//! sequence the decoder accepts and partitioning them by per-instruction
//! code ([`pokemu_isa::InstClass`]). One representative per class becomes a
//! test instruction.

use std::collections::HashMap;

use pokemu_isa::decode;
use pokemu_isa::inst::InstClass;
use pokemu_solver::TermId;
use pokemu_symx::{Dom, Executor, ExploreConfig};

/// A representative byte sequence for one instruction class.
#[derive(Debug, Clone)]
pub struct ClassRep {
    /// The per-instruction-code equivalence class.
    pub class: InstClass,
    /// A concrete encoding (already truncated to the instruction length).
    pub bytes: Vec<u8>,
}

/// The result of exploring the instruction space.
#[derive(Debug)]
pub struct InsnSpace {
    /// Byte sequences accepted by the decoder — the paper's "candidate byte
    /// sequences encoding valid instructions" (68,977 for full x86, §6.1).
    pub candidates: usize,
    /// Paths ending in #UD or another decode fault.
    pub invalid: usize,
    /// Unique instructions (one per class; 880 in the paper).
    pub classes: Vec<ClassRep>,
    /// Whether the exploration covered every decoder path.
    pub complete: bool,
}

/// Configuration for instruction-space exploration.
#[derive(Debug, Clone, Copy)]
pub struct InsnSpaceConfig {
    /// Restrict the first byte to one value (used to partition work and by
    /// fast tests). `None` explores all 256.
    pub first_byte: Option<u8>,
    /// Restrict the second byte (e.g. the second opcode byte after 0x0F).
    pub second_byte: Option<u8>,
    /// Path cap for the underlying engine.
    pub max_paths: usize,
}

impl Default for InsnSpaceConfig {
    fn default() -> Self {
        InsnSpaceConfig {
            first_byte: None,
            second_byte: None,
            max_paths: 400_000,
        }
    }
}

/// Size of the `coverage.opcode` bitmap: 256 one-byte opcodes plus 256
/// two-byte (`0F xx`) opcodes.
pub const OPCODE_COVERAGE_BITS: usize = 512;

/// Bit index of an [`InstClass`] opcode in the `coverage.opcode` map:
/// one-byte opcodes map to `0..256`, two-byte (`0x0F00 | b`) to `256..512`.
pub fn opcode_coverage_index(opcode: u16) -> usize {
    if opcode < 0x100 {
        opcode as usize
    } else {
        0x100 | (opcode & 0xff) as usize
    }
}

/// Explores the decoder, returning candidates and unique classes.
pub fn explore_instruction_space(config: InsnSpaceConfig) -> InsnSpace {
    let _span = pokemu_rt::span!("explore.insn_space");
    let mut exec = Executor::with_config(ExploreConfig {
        max_paths: config.max_paths,
        ..ExploreConfig::default()
    });
    let result = exec.explore(|e| {
        // 15-byte buffer: 3 symbolic bytes, the rest zero (§6.1).
        let mut buf: Vec<TermId> = Vec::with_capacity(15);
        for i in 0..3 {
            let b = e.fresh_input(8, &format!("insn_b{i}"));
            let fixed = match i {
                0 => config.first_byte,
                1 => config.second_byte,
                _ => None,
            };
            if let Some(fixed) = fixed {
                let k = e.constant(8, fixed as u64);
                let ok = e.eq(b, k);
                e.assume(ok);
            }
            buf.push(b);
        }
        for _ in 3..15 {
            buf.push(e.constant(8, 0));
        }
        let r = decode::decode(e, |_, idx| Ok(buf[idx as usize]));
        r.map(|inst| (inst.class, inst.len)).map_err(|_| ())
    });

    let mut candidates = 0;
    let mut invalid = 0;
    let mut classes: HashMap<InstClass, ClassRep> = HashMap::new();
    for p in &result.paths {
        match p.value {
            Err(()) => invalid += 1,
            Ok((class, len)) => {
                candidates += 1;
                classes.entry(class).or_insert_with(|| {
                    let mut bytes = Vec::new();
                    for i in 0..len.min(15) {
                        let name = format!("insn_b{i}");
                        let byte = exec
                            .named_var_id(&name)
                            .map(|v| p.model.value_or(v, 0) as u8)
                            .unwrap_or(0);
                        bytes.push(byte);
                    }
                    ClassRep { class, bytes }
                });
            }
        }
    }
    let mut classes: Vec<ClassRep> = classes.into_values().collect();
    classes.sort_by_key(|c| c.class);
    pokemu_rt::metrics::counter("explore.candidates").add(candidates as u64);
    pokemu_rt::metrics::counter("explore.classes").add(classes.len() as u64);
    // Opcode-space coverage: which of the 512 one-/two-byte opcodes this
    // exploration discovered at least one valid encoding for.
    let opcode_cov = pokemu_rt::coverage::map("coverage.opcode", OPCODE_COVERAGE_BITS);
    for c in &classes {
        opcode_cov.set(opcode_coverage_index(c.class.opcode));
    }
    InsnSpace {
        candidates,
        invalid,
        classes,
        complete: result.complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_opcode_yields_one_class() {
        // 0x50 = push eax: no modrm, no immediate -> exactly one class.
        let r = explore_instruction_space(InsnSpaceConfig {
            first_byte: Some(0x50),
            second_byte: None,
            max_paths: 64,
        });
        assert!(r.complete);
        assert_eq!(r.candidates, 1);
        assert_eq!(r.classes.len(), 1);
        assert_eq!(r.classes[0].bytes, vec![0x50]);
        assert_eq!(r.invalid, 0);
    }

    #[test]
    fn modrm_opcode_splits_by_group_and_form() {
        // 0xF7: group with sub-opcodes 0..7, each in register and memory
        // forms (several addressing modes collapse into one class).
        let r = explore_instruction_space(InsnSpaceConfig {
            first_byte: Some(0xf7),
            second_byte: None,
            max_paths: 4096,
        });
        assert!(r.complete);
        // 8 sub-opcodes x {reg, mem} = 16 classes.
        assert_eq!(
            r.classes.len(),
            16,
            "classes: {:?}",
            r.classes
                .iter()
                .map(|c| c.class.to_string())
                .collect::<Vec<_>>()
        );
        assert!(r.candidates > r.classes.len(), "many encodings per class");
    }

    #[test]
    fn invalid_opcode_paths_are_counted() {
        // 0xD8 is FPU territory: everything is #UD.
        let r = explore_instruction_space(InsnSpaceConfig {
            first_byte: Some(0xd8),
            second_byte: None,
            max_paths: 64,
        });
        assert!(r.complete);
        assert_eq!(r.classes.len(), 0);
        assert!(r.invalid >= 1);
        assert_eq!(r.candidates, 0);
    }

    #[test]
    fn representative_bytes_decode_to_their_class() {
        let r = explore_instruction_space(InsnSpaceConfig {
            first_byte: Some(0x80),
            second_byte: None,
            max_paths: 4096,
        });
        assert!(r.complete);
        use pokemu_symx::Concrete;
        for rep in &r.classes {
            let mut d = Concrete::new();
            let bytes = rep.bytes.clone();
            let inst = decode::decode(&mut d, |d, i| {
                Ok(d.constant(8, *bytes.get(i as usize).unwrap_or(&0) as u64))
            })
            .expect("representative must decode");
            assert_eq!(inst.class, rep.class);
        }
    }
}
