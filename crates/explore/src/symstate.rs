//! Construction of the symbolic machine state (paper §3.3.1, Figure 3).
//!
//! The choice of which state is symbolic is the main control over the
//! explored space. Following Figure 3:
//!
//! * all general-purpose registers are symbolic;
//! * EFLAGS is symbolic except the fixed/reserved bits and VM/RF;
//! * segment *selectors* are symbolic; descriptor *caches* are recomputed
//!   from symbolic GDT descriptor bytes through the (summarized)
//!   descriptor-load computation, with the base address bytes left concrete;
//! * CR0/CR4 are symbolic except PE/PG (pinned to protected mode with
//!   paging, the tested configuration) and PAE (unsupported); CR3's PWT/PCD
//!   flags are symbolic while the directory base stays concrete;
//! * GDTR/IDTR limits are symbolic, their bases concrete;
//! * SYSENTER MSRs are symbolic;
//! * page-directory/page-table entries have symbolic flag bytes and concrete
//!   frame addresses;
//! * all other memory is symbolic on demand (`mem_XXXXXXXX` variables).
//!
//! Every symbolic location has a stable *name*; `pokemu-testgen` turns
//! `(name, value)` differences from the baseline into initializer gadgets.

use std::collections::HashMap;

use pokemu_isa::snapshot::Snapshot;
use pokemu_isa::state::{attrs, flags as fl, DescCache, Gpr, Machine, Msrs, Seg, SegReg, TableReg};
use pokemu_isa::translate::{desc_kind, descriptor_checks_hooked};
use pokemu_isa::{Memory, MissingPolicy};
use pokemu_solver::{TermId, VarId};
use pokemu_symx::{Dom, Executor};
use pokemu_testgen::layout;

/// Fixed EFLAGS bits during exploration: bit 1 reads 1; bits 3/5/15,
/// VM, RF, and everything above VIP read 0.
const EFLAGS_PIN_MASK: u32 = !fl::WRITABLE | fl::FIXED_ONE;

/// Builds the symbolic machine for one exploration path.
///
/// `baseline` supplies every concrete value (the paper uses "a snapshot of
/// the baseline machine state" as concrete inputs, §6.1). The memory
/// template should be built once with [`symbolic_memory_template`] and
/// cloned per path.
pub fn symbolic_machine(
    exec: &mut Executor,
    baseline: &Snapshot,
    mem_template: &Memory<TermId>,
) -> Machine<TermId> {
    let mut gpr = [exec.constant(32, 0); 8];
    for r in Gpr::ALL {
        gpr[r as usize] = exec.fresh_input(32, r.name());
    }

    // EFLAGS: symbolic with the fixed bits pinned by a side constraint.
    let eflags = exec.fresh_input(32, "eflags");
    let pin_mask = exec.constant(32, EFLAGS_PIN_MASK as u64);
    let pinned = exec.and(eflags, pin_mask);
    let pin_val = exec.constant(32, (baseline.eflags & EFLAGS_PIN_MASK) as u64);
    let ok = exec.eq(pinned, pin_val);
    exec.assume(ok);

    // CR0: PE and PG pinned to 1 (the tested mode, §6).
    let cr0 = exec.fresh_input(32, "cr0");
    let cr0_pin = exec.constant(32, 0x8000_0001);
    let cr0_masked = exec.and(cr0, cr0_pin);
    let ok = exec.eq(cr0_masked, cr0_pin);
    exec.assume(ok);

    // CR4: PAE must stay 0 (unsupported); PSE and friends symbolic.
    let cr4 = exec.fresh_input(32, "cr4");
    let pae = exec.extract(
        cr4,
        pokemu_isa::state::cr4::PAE,
        pokemu_isa::state::cr4::PAE,
    );
    let z1 = exec.ff();
    let ok = exec.eq(pae, z1);
    exec.assume(ok);

    // CR3: flags symbolic (PWT/PCD only), base concrete.
    let cr3_flags = exec.fresh_input(32, "cr3_flags");
    let allowed = exec.constant(32, !0x18u64 & 0xffff_ffff);
    let zero32 = exec.constant(32, 0);
    let outside = exec.and(cr3_flags, allowed);
    let ok = exec.eq(outside, zero32);
    exec.assume(ok);

    // Table registers: symbolic limits, concrete bases.
    let gdtr_limit = exec.fresh_input(16, "gdtr_limit");
    let idtr_limit = exec.fresh_input(16, "idtr_limit");

    let msrs = Msrs {
        sysenter_cs: exec.fresh_input(32, "msr_sysenter_cs"),
        sysenter_esp: exec.fresh_input(32, "msr_sysenter_esp"),
        sysenter_eip: exec.fresh_input(32, "msr_sysenter_eip"),
        tsc: 0,
    };

    let mut mem = mem_template.clone();

    // Segment registers: symbolic selectors; caches recomputed from the
    // (partially symbolic) descriptor bytes via the summarized check.
    let mut segs: [SegReg<TermId>; 6] = [SegReg {
        selector: exec.constant(16, 0),
        cache: DescCache {
            base: zero32,
            limit: zero32,
            attrs: exec.constant(attrs::WIDTH, 0),
        },
    }; 6];
    // CS first: its DPL is the CPL input for the remaining loads. CPL is
    // pinned to ring 0: the baseline environment runs at ring 0 and the
    // initializer gadgets cannot perform privilege transitions, so other
    // rings would only produce tests that fault identically during
    // initialization (the paper's setup has the same property).
    let sel_cs = exec.fresh_input(16, &format!("sel_{}", Seg::Cs.name()));
    let rpl_cs = exec.extract(sel_cs, 1, 0);
    let z2 = exec.constant(2, 0);
    let ok = exec.eq(rpl_cs, z2);
    exec.assume(ok);
    let cs_cache = load_cache(exec, &mut mem, Seg::Cs, sel_cs, None);
    segs[Seg::Cs as usize] = SegReg {
        selector: sel_cs,
        cache: cs_cache,
    };
    let cpl = exec.extract(cs_cache.attrs, attrs::DPL_LO + 1, attrs::DPL_LO);
    let ok = exec.eq(cpl, z2);
    exec.assume(ok);
    for seg in [Seg::Es, Seg::Ss, Seg::Ds, Seg::Fs, Seg::Gs] {
        let sel = exec.fresh_input(16, &format!("sel_{}", seg.name()));
        let cache = load_cache(exec, &mut mem, seg, sel, Some(cpl));
        segs[seg as usize] = SegReg {
            selector: sel,
            cache,
        };
    }

    Machine {
        gpr,
        eip: layout::CODE_BASE, // representative; the test instruction address
        eflags,
        segs,
        cr0,
        cr2: baseline.cr2,
        cr3_base: baseline.cr3 & 0xffff_f000,
        cr3_flags,
        cr4,
        gdtr: TableReg {
            base: baseline.gdtr.0,
            limit: gdtr_limit,
        },
        idtr: TableReg {
            base: baseline.idtr.0,
            limit: idtr_limit,
        },
        msrs,
        mem,
    }
}

/// Recomputes one descriptor cache from GDT memory (through the summary
/// hook when registered — the §3.3.2 optimization), assuming the load
/// succeeded: the baseline environment *did* load these segments.
fn load_cache(
    exec: &mut Executor,
    mem: &mut Memory<TermId>,
    seg: Seg,
    sel: TermId,
    cpl: Option<TermId>,
) -> DescCache<TermId> {
    let entry = layout::gdt_index(seg) as u32;
    let lin = layout::GDT_BASE + entry * 8;
    let lo = mem.read(exec, lin, 4);
    let hi = mem.read(exec, lin + 4, 4);
    let cpl = cpl.unwrap_or_else(|| exec.extract(sel, 1, 0));
    let kind = exec.constant(
        2,
        match seg {
            Seg::Cs => desc_kind::CODE,
            Seg::Ss => desc_kind::STACK,
            _ => desc_kind::DATA,
        },
    );
    let [fault, base, limit, attrs_v] = descriptor_checks_hooked(exec, lo, hi, sel, cpl, kind);
    // The baseline segments are loaded: constrain to the no-fault case.
    let z8 = exec.constant(8, 0);
    let ok = exec.eq(fault, z8);
    exec.assume(ok);
    // The selector must reference this segment's baseline GDT entry (its
    // index is where the cache was loaded from); TI = 0.
    let idx = exec.extract(sel, 15, 3);
    let want = exec.constant(13, entry as u64);
    let ok = exec.eq(idx, want);
    exec.assume(ok);
    let ti = exec.extract(sel, 2, 2);
    let z1 = exec.ff();
    let ok = exec.eq(ti, z1);
    exec.assume(ok);
    DescCache {
        base,
        limit,
        attrs: attrs_v,
    }
}

/// Builds the memory template: the baseline image with the Figure-3
/// symbolic holes (descriptor attribute bytes, PDE/PTE flag bytes), plus
/// on-demand symbolic everywhere uninitialized.
pub fn symbolic_memory_template(exec: &mut Executor, baseline: &Snapshot) -> Memory<TermId> {
    let mut mem: Memory<TermId> = Memory::new();
    mem.set_policy(MissingPolicy::Symbolic);
    for (&addr, &byte) in &baseline.mem {
        if symbolic_hole(addr) {
            continue; // leave uninitialized: becomes mem_XXXXXXXX on demand
        }
        let v = exec.constant(8, byte as u64);
        mem.write_u8(addr, v);
    }
    // The snapshot omits zero bytes, but the *structured* regions (GDT,
    // page directory, page table) must be concretely zero-filled outside
    // the designated holes — otherwise a zero base-address byte would read
    // as an on-demand symbolic variable.
    let zero = exec.constant(8, 0);
    let fill = |lo: u32, hi: u32, mem: &mut Memory<TermId>| {
        for addr in lo..hi {
            if !symbolic_hole(addr) && !baseline.mem.contains_key(&addr) {
                mem.write_u8(addr, zero);
            }
        }
    };
    fill(layout::GDT_BASE, layout::GDT_BASE + 16 * 8, &mut mem);
    fill(layout::PD_BASE, layout::PD_BASE + 0x1000, &mut mem);
    fill(layout::PT_BASE, layout::PT_BASE + 0x1000, &mut mem);
    mem
}

/// Is this baseline byte a deliberate symbolic hole (Fig. 3)?
fn symbolic_hole(addr: u32) -> bool {
    // GDT descriptor bytes 0, 1 (limit), 5 (type/S/DPL/P), 6 (limit/flags)
    // of the six baseline entries; bytes 2, 3, 4, 7 (base) stay concrete.
    for seg in Seg::ALL {
        let e = layout::GDT_BASE + layout::gdt_index(seg) as u32 * 8;
        if addr >= e && addr < e + 8 {
            return matches!(addr - e, 0 | 1 | 5 | 6);
        }
    }
    // PDE/PTE low flag byte (P/RW/US/PWT/PCD/A/D/PS-PAT); address bytes
    // stay concrete.
    if (layout::PD_BASE..layout::PD_BASE + 0x1000).contains(&addr)
        || (layout::PT_BASE..layout::PT_BASE + 0x1000).contains(&addr)
    {
        return addr & 3 == 0;
    }
    false
}

/// The baseline value of a named symbolic location, for state-difference
/// minimization (§3.4) and test-state extraction.
pub fn baseline_value_of(name: &str, baseline: &Snapshot) -> u64 {
    if let Some(hex) = name.strip_prefix("mem_") {
        let addr = u32::from_str_radix(hex, 16).expect("mem var name");
        return *baseline.mem.get(&addr).unwrap_or(&0) as u64;
    }
    if let Some(seg) = name.strip_prefix("sel_") {
        let s = Seg::ALL
            .into_iter()
            .find(|s| s.name() == seg)
            .expect("segment name");
        return baseline.segs[s as usize].selector as u64;
    }
    match name {
        "eax" | "ecx" | "edx" | "ebx" | "esp" | "ebp" | "esi" | "edi" => {
            let r = Gpr::ALL
                .into_iter()
                .find(|r| r.name() == name)
                .expect("gpr");
            baseline.gpr[r as usize] as u64
        }
        "eflags" => baseline.eflags as u64,
        "cr0" => baseline.cr0 as u64,
        "cr4" => baseline.cr4 as u64,
        "cr3_flags" => (baseline.cr3 & 0x18) as u64,
        "gdtr_limit" => baseline.gdtr.1 as u64,
        "idtr_limit" => baseline.idtr.1 as u64,
        "msr_sysenter_cs" | "msr_sysenter_esp" | "msr_sysenter_eip" => 0,
        _ => 0, // summary formals and scratch variables
    }
}

/// Builds the complete baseline environment (variable -> value) for
/// minimization, from the variables the exploration actually created.
pub fn baseline_env(exec: &Executor, baseline: &Snapshot) -> HashMap<VarId, u64> {
    exec.named_vars()
        .into_iter()
        .map(|(name, var)| (var, baseline_value_of(&name, baseline)))
        .collect()
}

/// Converts a named variable difference into a test-state item (the glue
/// between exploration output and gadget input).
pub fn state_item_of(name: &str, value: u64) -> Option<pokemu_testgen::StateItem> {
    use pokemu_testgen::StateItem;
    if let Some(hex) = name.strip_prefix("mem_") {
        let addr = u32::from_str_radix(hex, 16).ok()?;
        return Some(StateItem::MemByte(addr, value as u8));
    }
    if let Some(seg) = name.strip_prefix("sel_") {
        let s = Seg::ALL.into_iter().find(|s| s.name() == seg)?;
        return Some(StateItem::Selector(s, value as u16));
    }
    match name {
        "eax" | "ecx" | "edx" | "ebx" | "esp" | "ebp" | "esi" | "edi" => {
            let r = Gpr::ALL.into_iter().find(|r| r.name() == name)?;
            Some(pokemu_testgen::StateItem::Gpr(r, value as u32))
        }
        "eflags" => Some(pokemu_testgen::StateItem::Eflags(value as u32)),
        "cr0" => Some(pokemu_testgen::StateItem::Cr0(value as u32)),
        "cr4" => Some(pokemu_testgen::StateItem::Cr4(value as u32)),
        "cr3_flags" => Some(pokemu_testgen::StateItem::Cr3Flags(value as u32)),
        "gdtr_limit" => Some(pokemu_testgen::StateItem::GdtrLimit(value as u16)),
        "idtr_limit" => Some(pokemu_testgen::StateItem::IdtrLimit(value as u16)),
        "msr_sysenter_cs" => Some(pokemu_testgen::StateItem::Msr(0x174, value as u32)),
        "msr_sysenter_esp" => Some(pokemu_testgen::StateItem::Msr(0x175, value as u32)),
        "msr_sysenter_eip" => Some(pokemu_testgen::StateItem::Msr(0x176, value as u32)),
        _ => None, // summary formals etc. are not machine state
    }
}
