//! # pokemu-hwref
//!
//! The **hardware oracle** — the stand-in for the paper's Intel Core i5
//! workstation virtualized by a customized KVM (§5.2).
//!
//! The paper runs tests on real hardware under a hardware-assisted VMM:
//! most instructions execute directly on silicon (and are therefore correct
//! by definition), while a small set of privileged operations trap into the
//! VMM, whose mediation code the authors audit by hand. Exceptions, halts,
//! and injected events all trap, at which point the VMM snapshots the guest.
//!
//! PokeEMU-rs has no silicon, so the role of "the specification executed
//! directly" is played by the reference interpreter at
//! [`pokemu_isa::Quirks::HARDWARE`] — by construction the ground truth of the
//! VX86 architecture, including the hardware's own undefined-flag behavior
//! (which differs from both emulators, as real silicon does). This module
//! reproduces the *workflow* of §5.2: a [`Vmm`] wraps the guest, counts which
//! instructions would require mediation (the same set KVM mediates: control
//! register writes, descriptor-table loads, MSR access, `hlt`, `invlpg`),
//! intercepts exceptions and halts as traps, and snapshots on exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pokemu_isa::interp::{self, Quirks, StepOutcome};
use pokemu_isa::snapshot::{Outcome, Snapshot};
use pokemu_isa::state::Machine;
use pokemu_isa::{decode, Exception};
use pokemu_symx::{CVal, Concrete, Dom};

/// Why the VMM regained control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapReason {
    /// The guest executed `hlt`.
    Halt,
    /// An exception is about to be injected into the guest.
    Exception(Exception),
    /// The step budget was exhausted (the VMM can always regain control).
    StepLimit,
}

impl TrapReason {
    /// Converts to the snapshot outcome encoding.
    pub fn outcome(self) -> Outcome {
        match self {
            TrapReason::Halt => Outcome::Halted,
            TrapReason::Exception(e) => Outcome::Exception {
                vector: e.vector(),
                error: e.error_code(),
            },
            TrapReason::StepLimit => Outcome::Timeout,
        }
    }
}

/// Counters describing how much mediation the run needed — the paper's
/// claim that "the number of such instructions is very small" (§5.2) is
/// checked against these in the harness tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct MediationStats {
    /// Instructions executed "directly on hardware".
    pub direct: u64,
    /// Instructions that required VMM mediation.
    pub mediated: u64,
    /// Traps taken (exceptions + halt).
    pub traps: u64,
}

/// The hardware-assisted virtual machine: guest state plus the monitoring
/// layer.
#[derive(Debug)]
pub struct Vmm {
    dom: Concrete,
    guest: Machine<CVal>,
    stats: MediationStats,
}

impl Default for Vmm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vmm {
    /// Creates a VMM with a zeroed guest.
    pub fn new() -> Self {
        let mut dom = Concrete::new();
        let guest = Machine::zeroed(&mut dom);
        Vmm {
            dom,
            guest,
            stats: MediationStats::default(),
        }
    }

    /// The guest machine state (the VMM has complete visibility, §5.2).
    pub fn guest(&self) -> &Machine<CVal> {
        &self.guest
    }

    /// Mutable guest access, for baseline initialization.
    pub fn guest_mut(&mut self) -> &mut Machine<CVal> {
        &mut self.guest
    }

    /// Splits mutable access to domain and guest.
    pub fn parts_mut(&mut self) -> (&mut Concrete, &mut Machine<CVal>) {
        (&mut self.dom, &mut self.guest)
    }

    /// Loads raw bytes into guest physical memory.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) {
        self.guest.mem.load_bytes(&mut self.dom, addr, bytes);
    }

    /// Sets the guest instruction pointer.
    pub fn set_eip(&mut self, eip: u32) {
        self.guest.eip = eip;
    }

    /// Mediation statistics accumulated so far.
    pub fn stats(&self) -> MediationStats {
        self.stats
    }

    /// Peeks at the next instruction to classify it as direct-executable or
    /// VMM-mediated (the trap set of §5.2). Decode failures count as direct:
    /// the resulting #UD is a trap, not mediation.
    fn next_is_mediated(&mut self) -> bool {
        let eip = self.guest.eip;
        // A non-architectural peek: decode from linear memory bytes without
        // architectural side effects. Reading through the CS base without a
        // page walk leaves A/D bits untouched (concrete reads of missing
        // bytes materialize zeros, which is value-neutral).
        let d = &mut self.dom;
        let guest = &mut self.guest;
        let decoded = decode::decode(d, |d, idx| {
            let off = d.constant(32, eip.wrapping_add(idx as u32) as u64);
            let base = guest.segs[pokemu_isa::Seg::Cs as usize].cache.base;
            let lin = d.add(base, off);
            let lin = d.pick(lin, "probe fetch") as u32;
            Ok(guest.mem.read_u8(d, lin))
        });
        match decoded {
            Err(_) => false,
            Ok(inst) => {
                matches!(
                    inst.class.opcode,
                    0x0f22          // mov crN, r32
                | 0x0f30 | 0x0f32 // wrmsr / rdmsr
                | 0xf4 // hlt
                ) || (inst.class.opcode == 0x0f01
                    && matches!(inst.class.group_reg, Some(2) | Some(3) | Some(6) | Some(7)))
            }
        }
    }

    /// Runs the guest until a trap the VMM must handle terminally: a halt or
    /// an exception about to be injected (§5.2). Hardware interrupts are
    /// ignored and resumed, exactly as the paper's customized KVM does.
    pub fn run(&mut self, max_steps: u64) -> TrapReason {
        for _ in 0..max_steps {
            if self.next_is_mediated() {
                self.stats.mediated += 1;
            } else {
                self.stats.direct += 1;
            }
            match interp::step(&mut self.dom, &mut self.guest, &Quirks::HARDWARE) {
                StepOutcome::Normal => {}
                StepOutcome::Halt => {
                    self.stats.traps += 1;
                    return TrapReason::Halt;
                }
                StepOutcome::Exception(e) => {
                    self.stats.traps += 1;
                    return TrapReason::Exception(e);
                }
            }
        }
        TrapReason::StepLimit
    }

    /// Snapshots the guest CPU and physical memory from the VMM (§5.2).
    pub fn snapshot(&mut self, reason: TrapReason) -> Snapshot {
        Snapshot::capture(&mut self.dom, &self.guest, reason.outcome())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mediation_set_is_small() {
        let mut vmm = Vmm::new();
        // Flat CS so the probe can read code; direct instructions dominate.
        use pokemu_isa::state::{attrs, cr0};
        let d = &mut vmm.dom;
        vmm.guest.cr0 = d.constant(32, 1 << cr0::PE);
        let a: u64 = 0xb | (1 << attrs::S as u64) | (1 << attrs::P as u64);
        vmm.guest.segs[pokemu_isa::Seg::Cs as usize].cache.attrs = d.constant(attrs::WIDTH, a);
        vmm.guest.segs[pokemu_isa::Seg::Cs as usize].cache.limit = d.constant(32, 0xffff_ffff);
        vmm.guest.segs[pokemu_isa::Seg::Cs as usize].cache.base = d.constant(32, 0);
        // mov eax, 1; mov ebx, 2; hlt
        vmm.load_image(0, &[0xb8, 1, 0, 0, 0, 0xbb, 2, 0, 0, 0, 0xf4]);
        let r = vmm.run(16);
        assert_eq!(r, TrapReason::Halt);
        let s = vmm.stats();
        assert_eq!(s.mediated, 1, "only hlt is mediated");
        assert_eq!(s.direct, 2);
        assert_eq!(s.traps, 1);
    }
}
