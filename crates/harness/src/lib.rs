//! # pokemu-harness
//!
//! The cross-validation harness (paper §5-§6): executes generated test
//! programs on the Hi-Fi emulator, the Lo-Fi emulator, and the hardware
//! oracle ([`targets`]); compares final states with an undefined-behavior
//! filter and clusters differences by root cause ([`compare`]); drives the
//! whole pipeline in parallel ([`pipeline`]); and provides the
//! random-testing baseline the paper compares against ([`random`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod conformance;
pub mod fleet;
pub mod ledger;
pub mod manifest;
pub mod pipeline;
pub mod random;
pub mod targets;

pub use compare::{class_of, compare, undefined_flags_of, Clusters, Difference, RootCause};
pub use conformance::{
    build_corpus, check_conformance, find_roms_dir, program_json, run_conformance, write_baselines,
    ConformanceRun, ProgramResult, Violation,
};
pub use fleet::{run_fleet, FleetConfig, FleetOutcome, ShardReport, ShardStatus};
pub use manifest::RunManifest;
pub use pipeline::{
    generate_for_instruction, run_cross_validation, run_on_all_targets, CaseOutcome,
    CrossValidation, DeviationRecord, InsnGeneration, PipelineConfig, StageStats,
    INSN_DEADLINE_ENV, RUN_DEADLINE_ENV,
};
pub use random::{run_random_baseline, RandomConfig, RandomRun};
pub use targets::{baseline_snapshot, HardwareTarget, HiFiTarget, LofiTarget, Target};
