//! The random-testing baseline (paper §8 / Martignoni et al. ISSTA'09).
//!
//! Prior work tested emulators with randomly generated instructions and
//! states. The E5 experiment reproduces the paper's comparison: at an equal
//! test budget, random testing finds far fewer difference classes than
//! path-exploration lifting, because corner cases like "the `iret` frame
//! straddles a fault boundary" have vanishing probability under uniform
//! sampling (§6.2).

use pokemu_rt::Rng;

use pokemu_lofi::Fidelity;
use pokemu_testgen::{layout, StateItem, TestProgram, TestState};

use crate::compare::{compare, Clusters};
use crate::pipeline::run_on_all_targets;

/// Configuration for the random baseline.
#[derive(Debug, Clone, Copy)]
pub struct RandomConfig {
    /// Number of random tests to generate and run.
    pub tests: usize,
    /// RNG seed (deterministic experiments).
    pub seed: u64,
    /// Lo-Fi fidelity profile.
    pub lofi_fidelity: Fidelity,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            tests: 1000,
            seed: 0xDEC0DE,
            lofi_fidelity: Fidelity::QEMU_LIKE,
        }
    }
}

/// Result of a random-testing run.
#[derive(Debug, Default)]
pub struct RandomRun {
    /// Tests executed.
    pub tests: usize,
    /// Tests that produced a Lo-Fi difference.
    pub lofi_differences: usize,
    /// Root-cause clusters found.
    pub lofi_clusters: Clusters,
}

/// Generates one random test: random instruction bytes plus random
/// perturbations of registers, flags, and a few memory bytes — the
/// state-of-the-art the paper compares against.
pub fn random_test(rng: &mut Rng, idx: usize) -> TestProgram {
    // Random instruction: up to 15 random bytes.
    let len = rng.gen_range(1..=15usize);
    let insn: Vec<u8> = (0..len).map(|_| rng.gen()).collect();

    let mut items = Vec::new();
    // Random GPR values.
    for r in pokemu_isa::Gpr::ALL {
        if rng.gen_bool(0.5) {
            items.push(StateItem::Gpr(r, rng.gen()));
        }
    }
    if rng.gen_bool(0.5) {
        items.push(StateItem::Eflags(rng.gen::<u32>() & 0x0000_0ed5 | 0x2));
    }
    // A few random bytes in interesting regions (GDT, page table, data).
    for _ in 0..rng.gen_range(0..4u32) {
        let region = rng.gen_range(0..3u32);
        let addr = match region {
            0 => layout::GDT_BASE + rng.gen_range(8..128u32),
            1 => layout::PT_BASE + rng.gen_range(0u32..4096) / 4 * 4,
            _ => 0x0030_0000 + rng.gen_range(0u32..0x1000),
        };
        items.push(StateItem::MemByte(addr, rng.gen()));
    }
    TestProgram::build(format!("random/{idx}"), TestState { items }, &insn)
        .expect("random states are always sequencable")
}

/// Runs the random-testing baseline.
pub fn run_random_baseline(config: RandomConfig) -> RandomRun {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut out = RandomRun::default();
    for i in 0..config.tests {
        let prog = random_test(&mut rng, i);
        let case = run_on_all_targets(&prog, config.lofi_fidelity);
        out.tests += 1;
        if let Some(d) = compare(&case.hardware, &case.lofi, &prog.test_insn) {
            out.lofi_differences += 1;
            out.lofi_clusters.add(&prog.name, &d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tests_build_and_run() {
        let mut rng = Rng::seed_from_u64(7);
        for i in 0..5 {
            let prog = random_test(&mut rng, i);
            let case = run_on_all_targets(&prog, Fidelity::QEMU_LIKE);
            // All targets produce *some* terminal state.
            let _ = compare(&case.hardware, &case.lofi, &prog.test_insn);
        }
    }
}
