//! The end-to-end PokeEMU pipeline (paper Fig. 1): instruction-set
//! exploration → per-instruction state-space exploration → test-program
//! generation → execution on every target → difference analysis.
//!
//! Generation and execution are both embarrassingly parallel (the paper ran
//! on 3×8-core EC2 instances, §6); [`run_cross_validation`] fans out over
//! worker threads with [`pokemu_rt::for_each`] and reports a per-stage cost
//! breakdown (the E6 experiment) in [`StageStats`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pokemu_rt::WorkerStats;

use pokemu_explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu_isa::snapshot::Snapshot;
use pokemu_lofi::Fidelity;
use pokemu_testgen::TestProgram;

use crate::compare::{compare, Clusters};
use crate::targets::{baseline_snapshot, HardwareTarget, HiFiTarget, LofiTarget, Target};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Restrict instruction-space exploration to one first byte
    /// (None = the whole space).
    pub first_byte: Option<u8>,
    /// Restrict the second byte as well (e.g. one two-byte opcode).
    pub second_byte: Option<u8>,
    /// Cap on unique instructions taken from instruction exploration.
    pub max_instructions: usize,
    /// Per-instruction path cap (8192 in the paper).
    pub max_paths_per_insn: usize,
    /// Lo-Fi fidelity profile under test.
    pub lofi_fidelity: Fidelity,
    /// Worker threads for generation and execution.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            first_byte: None,
            second_byte: None,
            max_instructions: usize::MAX,
            max_paths_per_insn: 8192,
            lofi_fidelity: Fidelity::QEMU_LIKE,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Per-stage cost breakdown for one pipeline run (the E6 experiment):
/// where the wall time went, how hard the solver worked, and what each
/// worker thread did.
#[derive(Debug, Default, Clone)]
pub struct StageStats {
    /// Wall time of instruction-set exploration (Fig. 1 step 1).
    pub explore_insns: Duration,
    /// Worker time summed over state-space exploration + test generation
    /// (Fig. 1 steps 2–3).
    pub generate: Duration,
    /// Worker time summed over executing tests on all three targets
    /// (Fig. 1 step 4).
    pub execute: Duration,
    /// Wall time of the sequential difference analysis (Fig. 1 step 5).
    pub analyze: Duration,
    /// Wall time of the parallel generate+execute section; less than
    /// `generate + execute` when the run actually parallelized.
    pub parallel_wall: Duration,
    /// Total wall time of the pipeline run.
    pub total_wall: Duration,
    /// Solver queries issued during state-space exploration.
    pub solver_queries: u64,
    /// Per-worker item counts and busy time, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

/// Counters for the whole run (the §6 headline numbers).
#[derive(Debug, Default, Clone)]
pub struct CrossValidation {
    /// Candidate byte sequences found by decoder exploration.
    pub candidates: usize,
    /// Unique instructions selected.
    pub unique_instructions: usize,
    /// Instructions whose state space was exhaustively explored.
    pub fully_explored: usize,
    /// Total explored paths (= generated test programs).
    pub total_paths: usize,
    /// Tests whose Lo-Fi behavior differs from the hardware oracle
    /// (raw, before the undefined-behavior filter — the paper's headline
    /// counting).
    pub lofi_differences: usize,
    /// Tests whose Hi-Fi behavior differs from the hardware oracle (raw).
    pub hifi_differences: usize,
    /// Lo-Fi differences surviving the undefined-behavior filter.
    pub lofi_filtered: usize,
    /// Hi-Fi differences surviving the undefined-behavior filter.
    pub hifi_filtered: usize,
    /// Root-cause clusters for Lo-Fi differences.
    pub lofi_clusters: Clusters,
    /// Root-cause clusters for Hi-Fi differences.
    pub hifi_clusters: Clusters,
    /// Per-stage cost breakdown (E6).
    pub stages: StageStats,
}

/// The result of running one test on all three targets.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Test identity.
    pub name: String,
    /// Hardware-oracle snapshot.
    pub hardware: Snapshot,
    /// Hi-Fi snapshot.
    pub hifi: Snapshot,
    /// Lo-Fi snapshot.
    pub lofi: Snapshot,
}

/// Runs one test program on all three targets (paper Fig. 1 step 4).
pub fn run_on_all_targets(prog: &TestProgram, lofi_fidelity: Fidelity) -> CaseOutcome {
    let hardware = HardwareTarget.run_program(prog);
    let hifi = HiFiTarget.run_program(prog);
    let lofi = LofiTarget {
        fidelity: lofi_fidelity,
    }
    .run_program(prog);
    CaseOutcome {
        name: prog.name.clone(),
        hardware,
        hifi,
        lofi,
    }
}

/// Generates the test programs for one instruction representative.
/// Returns the programs, whether exploration was exhaustive, and how many
/// solver queries it cost.
pub fn generate_for_instruction(
    name: &str,
    insn: &[u8],
    baseline: &Snapshot,
    max_paths: usize,
) -> (Vec<TestProgram>, bool, u64) {
    let space = explore_state_space(
        insn,
        baseline,
        StateSpaceConfig {
            max_paths,
            ..StateSpaceConfig::default()
        },
    );
    let progs = pokemu_explore::to_test_programs(&space, name);
    (progs, space.complete, space.solver_queries)
}

/// Runs the complete cross-validation pipeline.
pub fn run_cross_validation(config: PipelineConfig) -> CrossValidation {
    let run_start = Instant::now();
    let baseline = baseline_snapshot();

    // Step 1: instruction-set exploration (Fig. 1 (1)).
    let explore_start = Instant::now();
    let insn_space = explore_instruction_space(InsnSpaceConfig {
        first_byte: config.first_byte,
        second_byte: config.second_byte,
        ..InsnSpaceConfig::default()
    });
    let explore_insns = explore_start.elapsed();
    let mut reps = insn_space.classes;
    reps.truncate(config.max_instructions);

    let mut out = CrossValidation {
        candidates: insn_space.candidates,
        unique_instructions: reps.len(),
        ..CrossValidation::default()
    };

    // Steps 2-4, parallel over instructions. Workers attribute their time
    // to the generate (state-space exploration) and execute (run on all
    // targets) stages via shared nanosecond counters.
    let results: Mutex<Vec<(String, bool, usize, Vec<(String, Vec<u8>, CaseOutcome)>)>> =
        Mutex::new(Vec::new());
    let generate_ns = AtomicU64::new(0);
    let execute_ns = AtomicU64::new(0);
    let solver_queries = AtomicU64::new(0);
    let pool = pokemu_rt::for_each(config.threads, reps.len(), |i| {
        let rep = &reps[i];
        let name = rep.class.to_string();
        let gen_start = Instant::now();
        let (progs, complete, queries) =
            generate_for_instruction(&name, &rep.bytes, &baseline, config.max_paths_per_insn);
        generate_ns.fetch_add(gen_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        solver_queries.fetch_add(queries, Ordering::Relaxed);
        let exec_start = Instant::now();
        let mut cases = Vec::with_capacity(progs.len());
        for p in &progs {
            let case = run_on_all_targets(p, config.lofi_fidelity);
            cases.push((p.name.clone(), p.test_insn.clone(), case));
        }
        execute_ns.fetch_add(exec_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results
            .lock()
            .expect("no poisoning")
            .push((name, complete, progs.len(), cases));
    });

    // Step 5: sequential difference analysis, in name order so counters and
    // clusters are deterministic regardless of worker scheduling.
    let analyze_start = Instant::now();
    let mut results = results.into_inner().expect("no poisoning");
    results.sort_by(|a, b| a.0.cmp(&b.0));
    for (_name, complete, n_paths, cases) in results {
        if complete {
            out.fully_explored += 1;
        }
        out.total_paths += n_paths;
        for (case_name, insn, case) in cases {
            if !case.hardware.same_behavior(&case.lofi) {
                out.lofi_differences += 1;
            }
            if !case.hardware.same_behavior(&case.hifi) {
                out.hifi_differences += 1;
            }
            if let Some(d) = compare(&case.hardware, &case.lofi, &insn) {
                out.lofi_filtered += 1;
                out.lofi_clusters.add(&case_name, &d);
            }
            if let Some(d) = compare(&case.hardware, &case.hifi, &insn) {
                out.hifi_filtered += 1;
                out.hifi_clusters.add(&case_name, &d);
            }
        }
    }
    out.stages = StageStats {
        explore_insns,
        generate: Duration::from_nanos(generate_ns.into_inner()),
        execute: Duration::from_nanos(execute_ns.into_inner()),
        analyze: analyze_start.elapsed(),
        parallel_wall: pool.wall,
        total_wall: run_start.elapsed(),
        solver_queries: solver_queries.into_inner(),
        workers: pool.workers,
    };
    out
}
