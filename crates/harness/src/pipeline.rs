//! The end-to-end PokeEMU pipeline (paper Fig. 1): instruction-set
//! exploration → per-instruction state-space exploration → test-program
//! generation → execution on every target → difference analysis.
//!
//! Generation and execution are both embarrassingly parallel (the paper ran
//! on 3×8-core EC2 instances, §6); [`run_cross_validation`] fans out over
//! worker threads with [`pokemu_rt::for_each`] and reports a per-stage cost
//! breakdown (the E6 experiment) in [`StageStats`].
//!
//! Every stage is instrumented through `pokemu_rt::trace`: the run is a
//! `pipeline.run` span containing one span per Fig. 1 stage
//! (`stage.explore_insns`, `stage.explore_states`, `stage.testgen`,
//! `stage.execute`, `stage.analyze`), with one `pipeline.instruction` span
//! per explored instruction on the worker that processed it. Stage worker
//! time accumulates in `stage.*.ns` timer metrics, and [`StageStats`] is a
//! view over those plus the span durations — there are no private timing
//! counters left in the pipeline itself. Span recording is off unless
//! [`PipelineConfig::trace`] or `POKEMU_TRACE=1` turns it on; when the
//! environment variable is set, a finished run also exports
//! `target/trace/cross_validation.trace.json` (Chrome `trace_event` format)
//! and `target/trace/cross_validation.metrics.jsonl` for `pokemu-report`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use pokemu_rt::{coverage, flight, metrics, pool, prof, trace, QuarantineRecord, WorkerStats};

use pokemu_explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu_isa::snapshot::Snapshot;
use pokemu_lofi::Fidelity;
use pokemu_testgen::TestProgram;

use crate::compare::{compare, Clusters};
use crate::targets::{baseline_snapshot, HardwareTarget, HiFiTarget, LofiTarget, Target};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Restrict instruction-space exploration to one first byte
    /// (None = the whole space).
    pub first_byte: Option<u8>,
    /// Restrict the second byte as well (e.g. one two-byte opcode).
    pub second_byte: Option<u8>,
    /// Cap on unique instructions taken from instruction exploration.
    pub max_instructions: usize,
    /// Per-instruction path cap (8192 in the paper).
    pub max_paths_per_insn: usize,
    /// Lo-Fi fidelity profile under test.
    pub lofi_fidelity: Fidelity,
    /// Worker threads for generation and execution (clamped to the number
    /// of instructions by the pool, so no idle workers are ever reported).
    pub threads: usize,
    /// Turn span recording on for this run (equivalent to `POKEMU_TRACE=1`,
    /// but scoped to in-process recording: the export files are only
    /// written under the environment variable).
    pub trace: bool,
    /// Write a run manifest to `target/run/<run-id>/manifest.json` when the
    /// run finishes (equivalent to `POKEMU_RUN_MANIFEST=1`; the run id
    /// comes from `POKEMU_RUN_ID`, see [`crate::manifest`]).
    pub manifest: bool,
    /// Whole-run wall deadline: past it the pool stops dispatching new
    /// instructions, in-flight ones finish, everything gathered so far is
    /// analyzed and flushed, and the manifest says `"completed": false`.
    /// Defaults from `POKEMU_RUN_DEADLINE_MS`.
    pub run_deadline: Option<Duration>,
    /// Per-instruction wall deadline for state-space exploration; an
    /// instruction past it keeps its paths so far and is counted as not
    /// fully explored. Defaults from `POKEMU_INSN_DEADLINE_MS`.
    pub insn_deadline: Option<Duration>,
}

/// Env var: whole-run deadline in milliseconds (see
/// [`PipelineConfig::run_deadline`]).
pub const RUN_DEADLINE_ENV: &str = "POKEMU_RUN_DEADLINE_MS";

/// Env var: per-instruction exploration deadline in milliseconds (see
/// [`PipelineConfig::insn_deadline`]).
pub const INSN_DEADLINE_ENV: &str = "POKEMU_INSN_DEADLINE_MS";

fn env_ms(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            first_byte: None,
            second_byte: None,
            max_instructions: usize::MAX,
            max_paths_per_insn: 8192,
            lofi_fidelity: Fidelity::QEMU_LIKE,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            trace: false,
            manifest: false,
            run_deadline: env_ms(RUN_DEADLINE_ENV),
            insn_deadline: env_ms(INSN_DEADLINE_ENV),
        }
    }
}

/// One cross-validation deviation with full provenance: which target
/// diverged, on which test, the instruction bytes, the explored path, and
/// the root-cause cluster it landed in. The manifest's `deviations` array
/// is exactly this list; it is deterministic for a fixed config and seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviationRecord {
    /// Which emulator diverged from the hardware oracle: `"lofi"`/`"hifi"`.
    pub target: String,
    /// The test program's name.
    pub test: String,
    /// Hex of the test-instruction bytes.
    pub insn_hex: String,
    /// The symbolic-exploration path the test exercises.
    pub path_id: u64,
    /// Root cause (the [`crate::compare::RootCause`] display form).
    pub cause: String,
    /// The differing snapshot components.
    pub components: Vec<String>,
}

/// Per-stage cost breakdown for one pipeline run (the E6 experiment):
/// where the wall time went, how hard the solver worked, and what each
/// worker thread did.
///
/// This is a *view* over the observability layer: wall durations come from
/// the stage spans the pipeline opens, worker-summed durations from the
/// `stage.*.ns` timer metrics, and `solver_queries` from per-instruction
/// exploration results. Because the metrics registry is process-global,
/// worker-summed stage times include any pipeline run executing
/// concurrently in the same process (runs are normally sequential).
#[derive(Debug, Default, Clone)]
pub struct StageStats {
    /// Wall time of instruction-set exploration (Fig. 1 step 1).
    pub explore_insns: Duration,
    /// Worker time summed over state-space exploration + test generation
    /// (Fig. 1 steps 2–3).
    pub generate: Duration,
    /// Worker time summed over executing tests on all three targets
    /// (Fig. 1 step 4).
    pub execute: Duration,
    /// Wall time of the sequential difference analysis (Fig. 1 step 5).
    pub analyze: Duration,
    /// Wall time of the parallel generate+execute section; less than
    /// `generate + execute` when the run actually parallelized.
    pub parallel_wall: Duration,
    /// Total wall time of the pipeline run.
    pub total_wall: Duration,
    /// Solver queries issued during state-space exploration.
    pub solver_queries: u64,
    /// Per-worker item counts and busy time, indexed by worker id. Only
    /// live workers appear: the pool clamps its size to the item count.
    pub workers: Vec<WorkerStats>,
}

/// Counters for the whole run (the §6 headline numbers).
#[derive(Debug, Default, Clone)]
pub struct CrossValidation {
    /// Candidate byte sequences found by decoder exploration.
    pub candidates: usize,
    /// Unique instructions selected.
    pub unique_instructions: usize,
    /// Instructions whose state space was exhaustively explored.
    pub fully_explored: usize,
    /// Total explored paths (= generated test programs).
    pub total_paths: usize,
    /// Tests whose Lo-Fi behavior differs from the hardware oracle
    /// (raw, before the undefined-behavior filter — the paper's headline
    /// counting).
    pub lofi_differences: usize,
    /// Tests whose Hi-Fi behavior differs from the hardware oracle (raw).
    pub hifi_differences: usize,
    /// Lo-Fi differences surviving the undefined-behavior filter.
    pub lofi_filtered: usize,
    /// Hi-Fi differences surviving the undefined-behavior filter.
    pub hifi_filtered: usize,
    /// Root-cause clusters for Lo-Fi differences.
    pub lofi_clusters: Clusters,
    /// Root-cause clusters for Hi-Fi differences.
    pub hifi_clusters: Clusters,
    /// Every filtered deviation with provenance, in analysis order.
    pub deviations: Vec<DeviationRecord>,
    /// Per-stage cost breakdown (E6).
    pub stages: StageStats,
    /// `false` when the whole-run deadline tripped and dispatch stopped
    /// early; everything above still reflects the work that did finish.
    /// Quarantined instructions do *not* clear this flag — a finished run
    /// with failures attributed is a completed run.
    pub completed: bool,
    /// Instructions whose worker panicked; the failure is attributed here
    /// instead of aborting the campaign.
    pub quarantined: Vec<QuarantineRecord>,
    /// Instructions never dispatched because the run deadline passed.
    pub skipped_instructions: usize,
    /// Solver queries across all instructions abandoned as Unknown.
    pub unknown_queries: u64,
    /// Replayed paths found unsatisfiable at path end (demoted panic).
    pub infeasible_paths: usize,
}

/// The result of running one test on all three targets.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Test identity.
    pub name: String,
    /// Hardware-oracle snapshot.
    pub hardware: Snapshot,
    /// Hi-Fi snapshot.
    pub hifi: Snapshot,
    /// Lo-Fi snapshot.
    pub lofi: Snapshot,
}

/// Runs one test program on all three targets (paper Fig. 1 step 4).
pub fn run_on_all_targets(prog: &TestProgram, lofi_fidelity: Fidelity) -> CaseOutcome {
    let hardware = HardwareTarget.run_program(prog);
    let hifi = HiFiTarget.run_program(prog);
    let lofi = LofiTarget {
        fidelity: lofi_fidelity,
    }
    .run_program(prog);
    CaseOutcome {
        name: prog.name.clone(),
        hardware,
        hifi,
        lofi,
    }
}

/// What [`generate_for_instruction`] produced for one instruction.
#[derive(Debug)]
pub struct InsnGeneration {
    /// One runnable test program per explored path.
    pub programs: Vec<TestProgram>,
    /// Whether state-space exploration was exhaustive (no path cap, no
    /// deadline trip, no Unknown-pruned branch).
    pub complete: bool,
    /// Solver queries issued.
    pub solver_queries: u64,
    /// Solver queries abandoned as Unknown (budget/fault).
    pub unknown_queries: u64,
    /// Replayed paths whose condition was unsatisfiable at the end.
    pub infeasible_paths: usize,
}

/// Generates the test programs for one instruction representative.
///
/// `deadline` bounds this instruction's state-space exploration: past it,
/// paths gathered so far are kept and `complete` comes back `false`.
pub fn generate_for_instruction(
    name: &str,
    insn: &[u8],
    baseline: &Snapshot,
    max_paths: usize,
    deadline: Option<Instant>,
) -> InsnGeneration {
    let (space, explore_d) = trace::timed_with(
        "stage.explore_states",
        || vec![("insn", name.to_owned())],
        || {
            prof::framed("stage.explore_states", || {
                explore_state_space(
                    insn,
                    baseline,
                    StateSpaceConfig {
                        max_paths,
                        deadline,
                        ..StateSpaceConfig::default()
                    },
                )
            })
        },
    );
    metrics::timer("stage.explore_states.ns").add(explore_d);
    let (programs, testgen_d) = trace::timed_with(
        "stage.testgen",
        || vec![("insn", name.to_owned())],
        || {
            prof::framed("stage.testgen", || {
                pokemu_explore::to_test_programs(&space, name)
            })
        },
    );
    metrics::timer("stage.testgen.ns").add(testgen_d);
    InsnGeneration {
        programs,
        complete: space.complete,
        solver_queries: space.solver_queries,
        unknown_queries: space.unknown_queries,
        infeasible_paths: space.infeasible_paths,
    }
}

/// What one worker produced for one instruction representative.
struct ItemOutcome {
    complete: bool,
    n_paths: usize,
    solver_queries: u64,
    unknown_queries: u64,
    infeasible_paths: usize,
    /// `(test name, instruction bytes, path id, outcome)` per test program.
    cases: Vec<(String, Vec<u8>, u64, CaseOutcome)>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Writes the Lo-Fi hot-TB table (top 64 translation blocks by execution
/// count, merged across all `Lofi` instances dropped so far) to
/// `target/trace/<run>.hot.jsonl`, one `{"kind":"hot_tb",...}` object per
/// line in descending-execution order.
fn dump_hot_tbs(run: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = pokemu_rt::bench::target_dir().join("trace");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.hot.jsonl"));
    let mut body = String::new();
    for (eip, execs) in pokemu_lofi::hot_tbs().into_iter().take(64) {
        body.push_str(&format!(
            "{{\"kind\":\"hot_tb\",\"eip\":{eip},\"execs\":{execs}}}\n"
        ));
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Runs the complete cross-validation pipeline.
pub fn run_cross_validation(config: PipelineConfig) -> CrossValidation {
    if config.trace {
        trace::set_enabled(true);
    }
    // Arm the run-artifact layer: a manifest directory to aggregate into,
    // and the flight recorder's panic hook pointed at it, so a crash
    // anywhere below leaves `flightrec-panic.jsonl` next to the manifest.
    let manifest_armed = config.manifest || crate::manifest::env_enabled();
    let run_id = crate::manifest::resolve_run_id();
    if manifest_armed {
        flight::set_dump_dir(crate::manifest::run_dir(&run_id));
    }
    flight::install_panic_hook();
    let run_start = Instant::now();
    let metrics_start = metrics::snapshot();
    // The hot-TB table is process-cumulative; snapshot it so the ledger
    // record carries this run's execution delta only (thread-invariant).
    let history_armed = pokemu_rt::history::enabled();
    let hot_before: std::collections::BTreeMap<u32, u64> = if history_armed {
        pokemu_lofi::hot_tbs().into_iter().collect()
    } else {
        Default::default()
    };
    let run_span = pokemu_rt::span!("pipeline.run");
    let run_frame = prof::frame("pipeline.run");
    let (baseline, setup_wall) = trace::timed("pipeline.setup", || {
        prof::framed("pipeline.setup", baseline_snapshot)
    });

    // Step 1: instruction-set exploration (Fig. 1 (1)).
    let (insn_space, explore_insns) = trace::timed("stage.explore_insns", || {
        prof::framed("stage.explore_insns", || {
            explore_instruction_space(InsnSpaceConfig {
                first_byte: config.first_byte,
                second_byte: config.second_byte,
                ..InsnSpaceConfig::default()
            })
        })
    });
    let mut reps = insn_space.classes;
    reps.truncate(config.max_instructions);

    let mut out = CrossValidation {
        candidates: insn_space.candidates,
        unique_instructions: reps.len(),
        ..CrossValidation::default()
    };

    // Steps 2-4, parallel over instructions. Each worker writes its result
    // into the slot for its item index — no result lock, no post-hoc sort:
    // slot order *is* the deterministic analysis order. Stage timing flows
    // through the `stage.*` spans and timer metrics recorded per item.
    // A slot can legitimately stay empty: its item panicked (quarantined
    // by the pool) or was never dispatched (run deadline).
    let run_deadline = config.run_deadline.map(|d| run_start + d);
    let results: Vec<OnceLock<ItemOutcome>> = (0..reps.len()).map(|_| OnceLock::new()).collect();
    let (pool_run, parallel_wall) = trace::timed("stage.parallel", || {
        // The main thread's frame covers dispatch + wait; each worker's
        // per-item frames start their own stacks on the worker threads and
        // are merged when the pool flushes them at exit.
        let _pf = prof::frame("stage.parallel");
        pool::for_each_budgeted(config.threads, reps.len(), run_deadline, |i| {
            let rep = &reps[i];
            let name = rep.class.to_string();
            let _insn_span = pokemu_rt::span!("pipeline.instruction", insn = name);
            let _insn_frame = prof::frame("pipeline.instruction");
            flight::note("pipeline.instruction", || {
                format!("{name} ({})", hex(&rep.bytes))
            });
            // The per-instruction budget starts when the worker picks the
            // item up; the run deadline caps it so a whole-run timeout is
            // never stuck behind one slow exploration.
            let insn_deadline = match (
                config.insn_deadline.map(|d| Instant::now() + d),
                run_deadline,
            ) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let gen = generate_for_instruction(
                &name,
                &rep.bytes,
                &baseline,
                config.max_paths_per_insn,
                insn_deadline,
            );
            let (cases, execute_d) = trace::timed_with(
                "stage.execute",
                || vec![("insn", name.clone())],
                || {
                    let _ef = prof::frame("stage.execute");
                    gen.programs
                        .iter()
                        .map(|p| {
                            let case = run_on_all_targets(p, config.lofi_fidelity);
                            (p.name.clone(), p.test_insn.clone(), p.path_id, case)
                        })
                        .collect::<Vec<_>>()
                },
            );
            metrics::timer("stage.execute.ns").add(execute_d);
            let slot_was_empty = results[i]
                .set(ItemOutcome {
                    complete: gen.complete,
                    n_paths: gen.programs.len(),
                    solver_queries: gen.solver_queries,
                    unknown_queries: gen.unknown_queries,
                    infeasible_paths: gen.infeasible_paths,
                    cases,
                })
                .is_ok();
            assert!(slot_was_empty, "pool delivered item {i} twice");
        })
    });
    out.completed = !pool_run.deadline_hit;
    out.skipped_instructions = pool_run.skipped;
    out.quarantined = pool_run.quarantined.clone();
    if !out.completed {
        flight::note("pipeline.deadline", || {
            format!("skipped {} instructions", pool_run.skipped)
        });
    }

    // Step 5: sequential difference analysis, in item order (instruction
    // classes are sorted by exploration), so counters and clusters are
    // deterministic regardless of worker scheduling.
    let (solver_queries, analyze) = trace::timed("stage.analyze", || {
        let _af = prof::frame("stage.analyze");
        let mut solver_queries = 0u64;
        for slot in results {
            // Quarantined or skipped items have no outcome; their absence
            // is already accounted in `quarantined`/`skipped_instructions`.
            let Some(item) = slot.into_inner() else {
                continue;
            };
            let ItemOutcome {
                complete,
                n_paths,
                solver_queries: queries,
                unknown_queries,
                infeasible_paths,
                cases,
            } = item;
            solver_queries += queries;
            out.unknown_queries += unknown_queries;
            out.infeasible_paths += infeasible_paths;
            if complete {
                out.fully_explored += 1;
            }
            out.total_paths += n_paths;
            for (case_name, insn, path_id, case) in cases {
                if !case.hardware.same_behavior(&case.lofi) {
                    out.lofi_differences += 1;
                }
                if !case.hardware.same_behavior(&case.hifi) {
                    out.hifi_differences += 1;
                }
                if let Some(mut d) = compare(&case.hardware, &case.lofi, &insn) {
                    d.path_id = path_id;
                    out.lofi_filtered += 1;
                    out.lofi_clusters.add(&case_name, &d);
                    record_deviation(&mut out.deviations, "lofi", &case_name, &d);
                }
                if let Some(mut d) = compare(&case.hardware, &case.hifi, &insn) {
                    d.path_id = path_id;
                    out.hifi_filtered += 1;
                    out.hifi_clusters.add(&case_name, &d);
                    record_deviation(&mut out.deviations, "hifi", &case_name, &d);
                }
            }
        }
        solver_queries
    });
    drop(run_span);
    drop(run_frame);

    // Pipeline-level wall timers: the attribution table `pokemu-report
    // perf` checks against (setup + explore_insns + parallel + analyze
    // must cover ≥95% of total). Timer metrics are nondeterministic by
    // contract, so they are only fed when a timing consumer is active.
    if prof::timing_enabled() {
        metrics::timer("pipeline.ns.setup").add(setup_wall);
        metrics::timer("pipeline.ns.explore_insns").add(explore_insns);
        metrics::timer("pipeline.ns.parallel").add(parallel_wall);
        metrics::timer("pipeline.ns.analyze").add(analyze);
        metrics::timer("pipeline.ns.total").add(run_start.elapsed());
    }

    let delta = metrics::snapshot().since(&metrics_start);
    out.stages = StageStats {
        explore_insns,
        generate: Duration::from_nanos(
            delta.timer_ns("stage.explore_states.ns") + delta.timer_ns("stage.testgen.ns"),
        ),
        execute: Duration::from_nanos(delta.timer_ns("stage.execute.ns")),
        analyze,
        parallel_wall,
        total_wall: run_start.elapsed(),
        solver_queries,
        workers: pool_run.workers,
    };

    // Under POKEMU_TRACE=1, every finished run leaves an openable trace
    // behind (overwritten per run, like the bench JSON files), plus the
    // hot-TB table `pokemu-report perf` folds into its attribution view.
    if trace::env_enabled() {
        match trace::export("cross_validation") {
            Ok(paths) => eprintln!("[trace] exported {}", paths.trace_json.display()),
            Err(e) => eprintln!("[trace] export failed: {e}"),
        }
        match dump_hot_tbs("cross_validation") {
            Ok(path) => eprintln!("[trace] hot TBs {}", path.display()),
            Err(e) => eprintln!("[trace] hot-TB dump failed: {e}"),
        }
    }
    // Under POKEMU_PROF=1, the collapsed-stack profile lands beside it.
    if prof::env_enabled() {
        match prof::export("cross_validation") {
            Ok(path) => eprintln!("[prof] exported {}", path.display()),
            Err(e) => eprintln!("[prof] export failed: {e}"),
        }
    }

    // Run artifacts: the manifest aggregates the whole run, and any
    // comparison deviation also dumps the flight recorder next to it so
    // the last events before each divergence are inspectable post-hoc.
    if manifest_armed {
        // Coverage is reported *cumulatively* (all bits the process has set),
        // not as a since-run-start delta: bitmaps are idempotent, so the
        // cumulative set is deterministic for a fixed binary and config and
        // cannot lose bits when an earlier stage (e.g. a bench warm-up)
        // happens to pre-cover something the pipeline also covers.
        let manifest = crate::manifest::RunManifest::build(
            &run_id,
            &config,
            &out,
            &delta,
            &coverage::snapshot(),
        );
        // Run-artifact writes must never panic a finished run: a full disk
        // at the end of a campaign still leaves the in-memory result and an
        // attributed trail (shard id + OS error) explaining what is missing
        // on disk.
        match manifest.write() {
            Ok(path) => eprintln!("[manifest] wrote {}", path.display()),
            Err(e) => crate::manifest::note_write_failure("manifest write", &e),
        }
        if !out.deviations.is_empty() {
            let path = crate::manifest::run_dir(&run_id).join("flightrec-deviations.jsonl");
            if let Err(e) = flight::dump_to(&path) {
                crate::manifest::note_write_failure("flight dump", &e);
            }
        }
        // Each quarantined item carries the flight snapshot captured at
        // panic time; dump them merged for post-hoc attribution.
        if !out.quarantined.is_empty() {
            let mut events: Vec<flight::FlightEvent> = Vec::new();
            for q in &out.quarantined {
                events.extend(q.flight.iter().cloned());
            }
            events.sort_by_key(|e| e.seq);
            events.dedup();
            let path = crate::manifest::run_dir(&run_id).join("flightrec-quarantine.jsonl");
            if let Err(e) = flight::dump_events_to(&path, &events) {
                crate::manifest::note_write_failure("quarantine dump", &e);
            } else {
                eprintln!("[manifest] quarantine dump {}", path.display());
            }
        }
    }
    // Every finished run leaves one compact record in the run ledger
    // (POKEMU_HISTORY=0 opts out) — the cross-run substrate for
    // `pokemu-report compare/trend` and the CI trend gate.
    if history_armed {
        let hot_delta = crate::ledger::hot_tb_delta(&hot_before, &pokemu_lofi::hot_tbs());
        crate::ledger::append_record(crate::ledger::build_record(
            &run_id,
            &config,
            &out,
            &delta,
            &coverage::snapshot(),
            &hot_delta,
        ));
    }
    out
}

/// Appends one deviation record and leaves a breadcrumb in the flight
/// recorder (the recorder's merged dump is written alongside the manifest
/// whenever a run with deviations finishes).
fn record_deviation(
    deviations: &mut Vec<DeviationRecord>,
    target: &str,
    test: &str,
    d: &crate::compare::Difference,
) {
    flight::note("pipeline.deviation", || {
        format!("{target} {test} insn={} cause={}", hex(&d.insn), d.cause)
    });
    deviations.push(DeviationRecord {
        target: target.to_owned(),
        test: test.to_owned(),
        insn_hex: hex(&d.insn),
        path_id: d.path_id,
        cause: d.cause.to_string(),
        components: d.components.clone(),
    });
}
