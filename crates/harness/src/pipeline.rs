//! The end-to-end PokeEMU pipeline (paper Fig. 1): instruction-set
//! exploration → per-instruction state-space exploration → test-program
//! generation → execution on every target → difference analysis.
//!
//! Generation and execution are both embarrassingly parallel (the paper ran
//! on 3×8-core EC2 instances, §6); [`run_cross_validation`] fans out over
//! worker threads with `crossbeam` scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pokemu_explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu_isa::snapshot::Snapshot;
use pokemu_lofi::Fidelity;
use pokemu_testgen::TestProgram;

use crate::compare::{compare, Clusters};
use crate::targets::{baseline_snapshot, HardwareTarget, HiFiTarget, LofiTarget, Target};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Restrict instruction-space exploration to one first byte
    /// (None = the whole space).
    pub first_byte: Option<u8>,
    /// Restrict the second byte as well (e.g. one two-byte opcode).
    pub second_byte: Option<u8>,
    /// Cap on unique instructions taken from instruction exploration.
    pub max_instructions: usize,
    /// Per-instruction path cap (8192 in the paper).
    pub max_paths_per_insn: usize,
    /// Lo-Fi fidelity profile under test.
    pub lofi_fidelity: Fidelity,
    /// Worker threads for generation and execution.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            first_byte: None,
            second_byte: None,
            max_instructions: usize::MAX,
            max_paths_per_insn: 8192,
            lofi_fidelity: Fidelity::QEMU_LIKE,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

/// Counters for the whole run (the §6 headline numbers).
#[derive(Debug, Default, Clone)]
pub struct CrossValidation {
    /// Candidate byte sequences found by decoder exploration.
    pub candidates: usize,
    /// Unique instructions selected.
    pub unique_instructions: usize,
    /// Instructions whose state space was exhaustively explored.
    pub fully_explored: usize,
    /// Total explored paths (= generated test programs).
    pub total_paths: usize,
    /// Tests whose Lo-Fi behavior differs from the hardware oracle
    /// (raw, before the undefined-behavior filter — the paper's headline
    /// counting).
    pub lofi_differences: usize,
    /// Tests whose Hi-Fi behavior differs from the hardware oracle (raw).
    pub hifi_differences: usize,
    /// Lo-Fi differences surviving the undefined-behavior filter.
    pub lofi_filtered: usize,
    /// Hi-Fi differences surviving the undefined-behavior filter.
    pub hifi_filtered: usize,
    /// Root-cause clusters for Lo-Fi differences.
    pub lofi_clusters: Clusters,
    /// Root-cause clusters for Hi-Fi differences.
    pub hifi_clusters: Clusters,
}

/// The result of running one test on all three targets.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Test identity.
    pub name: String,
    /// Hardware-oracle snapshot.
    pub hardware: Snapshot,
    /// Hi-Fi snapshot.
    pub hifi: Snapshot,
    /// Lo-Fi snapshot.
    pub lofi: Snapshot,
}

/// Runs one test program on all three targets (paper Fig. 1 step 4).
pub fn run_on_all_targets(prog: &TestProgram, lofi_fidelity: Fidelity) -> CaseOutcome {
    let hardware = HardwareTarget.run_program(prog);
    let hifi = HiFiTarget.run_program(prog);
    let lofi = LofiTarget { fidelity: lofi_fidelity }.run_program(prog);
    CaseOutcome { name: prog.name.clone(), hardware, hifi, lofi }
}

/// Generates the test programs for one instruction representative.
pub fn generate_for_instruction(
    name: &str,
    insn: &[u8],
    baseline: &Snapshot,
    max_paths: usize,
) -> (Vec<TestProgram>, bool) {
    let space = explore_state_space(
        insn,
        baseline,
        StateSpaceConfig { max_paths, ..StateSpaceConfig::default() },
    );
    let progs = pokemu_explore::to_test_programs(&space, name);
    (progs, space.complete)
}

/// Runs the complete cross-validation pipeline.
pub fn run_cross_validation(config: PipelineConfig) -> CrossValidation {
    let baseline = baseline_snapshot();

    // Step 1: instruction-set exploration (Fig. 1 (1)).
    let insn_space = explore_instruction_space(InsnSpaceConfig {
        first_byte: config.first_byte,
        second_byte: config.second_byte,
        ..InsnSpaceConfig::default()
    });
    let mut reps = insn_space.classes;
    reps.truncate(config.max_instructions);

    let mut out = CrossValidation {
        candidates: insn_space.candidates,
        unique_instructions: reps.len(),
        ..CrossValidation::default()
    };

    // Steps 2-5, parallel over instructions.
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(String, bool, usize, Vec<(String, Vec<u8>, CaseOutcome)>)>> =
        Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for _ in 0..config.threads.max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(rep) = reps.get(i) else { break };
                let name = rep.class.to_string();
                let (progs, complete) = generate_for_instruction(
                    &name,
                    &rep.bytes,
                    &baseline,
                    config.max_paths_per_insn,
                );
                let mut cases = Vec::with_capacity(progs.len());
                for p in &progs {
                    let case = run_on_all_targets(p, config.lofi_fidelity);
                    cases.push((p.name.clone(), p.test_insn.clone(), case));
                }
                results.lock().expect("no poisoning").push((name, complete, progs.len(), cases));
            });
        }
    })
    .expect("worker threads join");

    let mut results = results.into_inner().expect("no poisoning");
    results.sort_by(|a, b| a.0.cmp(&b.0));
    for (_name, complete, n_paths, cases) in results {
        if complete {
            out.fully_explored += 1;
        }
        out.total_paths += n_paths;
        for (case_name, insn, case) in cases {
            if !case.hardware.same_behavior(&case.lofi) {
                out.lofi_differences += 1;
            }
            if !case.hardware.same_behavior(&case.hifi) {
                out.hifi_differences += 1;
            }
            if let Some(d) = compare(&case.hardware, &case.lofi, &insn) {
                out.lofi_filtered += 1;
                out.lofi_clusters.add(&case_name, &d);
            }
            if let Some(d) = compare(&case.hardware, &case.hifi, &insn) {
                out.hifi_filtered += 1;
                out.hifi_clusters.add(&case_name, &d);
            }
        }
    }
    out
}
