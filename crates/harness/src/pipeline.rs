//! The end-to-end PokeEMU pipeline (paper Fig. 1): instruction-set
//! exploration → per-instruction state-space exploration → test-program
//! generation → execution on every target → difference analysis.
//!
//! Generation and execution are both embarrassingly parallel (the paper ran
//! on 3×8-core EC2 instances, §6); [`run_cross_validation`] fans out over
//! worker threads with [`pokemu_rt::for_each`] and reports a per-stage cost
//! breakdown (the E6 experiment) in [`StageStats`].
//!
//! Every stage is instrumented through `pokemu_rt::trace`: the run is a
//! `pipeline.run` span containing one span per Fig. 1 stage
//! (`stage.explore_insns`, `stage.explore_states`, `stage.testgen`,
//! `stage.execute`, `stage.analyze`), with one `pipeline.instruction` span
//! per explored instruction on the worker that processed it. Stage worker
//! time accumulates in `stage.*.ns` timer metrics, and [`StageStats`] is a
//! view over those plus the span durations — there are no private timing
//! counters left in the pipeline itself. Span recording is off unless
//! [`PipelineConfig::trace`] or `POKEMU_TRACE=1` turns it on; when the
//! environment variable is set, a finished run also exports
//! `target/trace/cross_validation.trace.json` (Chrome `trace_event` format)
//! and `target/trace/cross_validation.metrics.jsonl` for `pokemu-report`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use pokemu_rt::{coverage, flight, metrics, trace, WorkerStats};

use pokemu_explore::{
    explore_instruction_space, explore_state_space, InsnSpaceConfig, StateSpaceConfig,
};
use pokemu_isa::snapshot::Snapshot;
use pokemu_lofi::Fidelity;
use pokemu_testgen::TestProgram;

use crate::compare::{compare, Clusters};
use crate::targets::{baseline_snapshot, HardwareTarget, HiFiTarget, LofiTarget, Target};

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Restrict instruction-space exploration to one first byte
    /// (None = the whole space).
    pub first_byte: Option<u8>,
    /// Restrict the second byte as well (e.g. one two-byte opcode).
    pub second_byte: Option<u8>,
    /// Cap on unique instructions taken from instruction exploration.
    pub max_instructions: usize,
    /// Per-instruction path cap (8192 in the paper).
    pub max_paths_per_insn: usize,
    /// Lo-Fi fidelity profile under test.
    pub lofi_fidelity: Fidelity,
    /// Worker threads for generation and execution (clamped to the number
    /// of instructions by the pool, so no idle workers are ever reported).
    pub threads: usize,
    /// Turn span recording on for this run (equivalent to `POKEMU_TRACE=1`,
    /// but scoped to in-process recording: the export files are only
    /// written under the environment variable).
    pub trace: bool,
    /// Write a run manifest to `target/run/<run-id>/manifest.json` when the
    /// run finishes (equivalent to `POKEMU_RUN_MANIFEST=1`; the run id
    /// comes from `POKEMU_RUN_ID`, see [`crate::manifest`]).
    pub manifest: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            first_byte: None,
            second_byte: None,
            max_instructions: usize::MAX,
            max_paths_per_insn: 8192,
            lofi_fidelity: Fidelity::QEMU_LIKE,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            trace: false,
            manifest: false,
        }
    }
}

/// One cross-validation deviation with full provenance: which target
/// diverged, on which test, the instruction bytes, the explored path, and
/// the root-cause cluster it landed in. The manifest's `deviations` array
/// is exactly this list; it is deterministic for a fixed config and seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviationRecord {
    /// Which emulator diverged from the hardware oracle: `"lofi"`/`"hifi"`.
    pub target: String,
    /// The test program's name.
    pub test: String,
    /// Hex of the test-instruction bytes.
    pub insn_hex: String,
    /// The symbolic-exploration path the test exercises.
    pub path_id: u64,
    /// Root cause (the [`crate::compare::RootCause`] display form).
    pub cause: String,
    /// The differing snapshot components.
    pub components: Vec<String>,
}

/// Per-stage cost breakdown for one pipeline run (the E6 experiment):
/// where the wall time went, how hard the solver worked, and what each
/// worker thread did.
///
/// This is a *view* over the observability layer: wall durations come from
/// the stage spans the pipeline opens, worker-summed durations from the
/// `stage.*.ns` timer metrics, and `solver_queries` from per-instruction
/// exploration results. Because the metrics registry is process-global,
/// worker-summed stage times include any pipeline run executing
/// concurrently in the same process (runs are normally sequential).
#[derive(Debug, Default, Clone)]
pub struct StageStats {
    /// Wall time of instruction-set exploration (Fig. 1 step 1).
    pub explore_insns: Duration,
    /// Worker time summed over state-space exploration + test generation
    /// (Fig. 1 steps 2–3).
    pub generate: Duration,
    /// Worker time summed over executing tests on all three targets
    /// (Fig. 1 step 4).
    pub execute: Duration,
    /// Wall time of the sequential difference analysis (Fig. 1 step 5).
    pub analyze: Duration,
    /// Wall time of the parallel generate+execute section; less than
    /// `generate + execute` when the run actually parallelized.
    pub parallel_wall: Duration,
    /// Total wall time of the pipeline run.
    pub total_wall: Duration,
    /// Solver queries issued during state-space exploration.
    pub solver_queries: u64,
    /// Per-worker item counts and busy time, indexed by worker id. Only
    /// live workers appear: the pool clamps its size to the item count.
    pub workers: Vec<WorkerStats>,
}

/// Counters for the whole run (the §6 headline numbers).
#[derive(Debug, Default, Clone)]
pub struct CrossValidation {
    /// Candidate byte sequences found by decoder exploration.
    pub candidates: usize,
    /// Unique instructions selected.
    pub unique_instructions: usize,
    /// Instructions whose state space was exhaustively explored.
    pub fully_explored: usize,
    /// Total explored paths (= generated test programs).
    pub total_paths: usize,
    /// Tests whose Lo-Fi behavior differs from the hardware oracle
    /// (raw, before the undefined-behavior filter — the paper's headline
    /// counting).
    pub lofi_differences: usize,
    /// Tests whose Hi-Fi behavior differs from the hardware oracle (raw).
    pub hifi_differences: usize,
    /// Lo-Fi differences surviving the undefined-behavior filter.
    pub lofi_filtered: usize,
    /// Hi-Fi differences surviving the undefined-behavior filter.
    pub hifi_filtered: usize,
    /// Root-cause clusters for Lo-Fi differences.
    pub lofi_clusters: Clusters,
    /// Root-cause clusters for Hi-Fi differences.
    pub hifi_clusters: Clusters,
    /// Every filtered deviation with provenance, in analysis order.
    pub deviations: Vec<DeviationRecord>,
    /// Per-stage cost breakdown (E6).
    pub stages: StageStats,
}

/// The result of running one test on all three targets.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Test identity.
    pub name: String,
    /// Hardware-oracle snapshot.
    pub hardware: Snapshot,
    /// Hi-Fi snapshot.
    pub hifi: Snapshot,
    /// Lo-Fi snapshot.
    pub lofi: Snapshot,
}

/// Runs one test program on all three targets (paper Fig. 1 step 4).
pub fn run_on_all_targets(prog: &TestProgram, lofi_fidelity: Fidelity) -> CaseOutcome {
    let hardware = HardwareTarget.run_program(prog);
    let hifi = HiFiTarget.run_program(prog);
    let lofi = LofiTarget {
        fidelity: lofi_fidelity,
    }
    .run_program(prog);
    CaseOutcome {
        name: prog.name.clone(),
        hardware,
        hifi,
        lofi,
    }
}

/// Generates the test programs for one instruction representative.
/// Returns the programs, whether exploration was exhaustive, and how many
/// solver queries it cost.
pub fn generate_for_instruction(
    name: &str,
    insn: &[u8],
    baseline: &Snapshot,
    max_paths: usize,
) -> (Vec<TestProgram>, bool, u64) {
    let (space, explore_d) = trace::timed_with(
        "stage.explore_states",
        || vec![("insn", name.to_owned())],
        || {
            explore_state_space(
                insn,
                baseline,
                StateSpaceConfig {
                    max_paths,
                    ..StateSpaceConfig::default()
                },
            )
        },
    );
    metrics::timer("stage.explore_states.ns").add(explore_d);
    let (progs, testgen_d) = trace::timed_with(
        "stage.testgen",
        || vec![("insn", name.to_owned())],
        || pokemu_explore::to_test_programs(&space, name),
    );
    metrics::timer("stage.testgen.ns").add(testgen_d);
    (progs, space.complete, space.solver_queries)
}

/// What one worker produced for one instruction representative.
struct ItemOutcome {
    complete: bool,
    n_paths: usize,
    solver_queries: u64,
    /// `(test name, instruction bytes, path id, outcome)` per test program.
    cases: Vec<(String, Vec<u8>, u64, CaseOutcome)>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs the complete cross-validation pipeline.
pub fn run_cross_validation(config: PipelineConfig) -> CrossValidation {
    if config.trace {
        trace::set_enabled(true);
    }
    // Arm the run-artifact layer: a manifest directory to aggregate into,
    // and the flight recorder's panic hook pointed at it, so a crash
    // anywhere below leaves `flightrec-panic.jsonl` next to the manifest.
    let manifest_armed = config.manifest || crate::manifest::env_enabled();
    let run_id = crate::manifest::resolve_run_id();
    if manifest_armed {
        flight::set_dump_dir(crate::manifest::run_dir(&run_id));
    }
    flight::install_panic_hook();
    let run_start = Instant::now();
    let metrics_start = metrics::snapshot();
    let run_span = pokemu_rt::span!("pipeline.run");
    let (baseline, _) = trace::timed("pipeline.setup", baseline_snapshot);

    // Step 1: instruction-set exploration (Fig. 1 (1)).
    let (insn_space, explore_insns) = trace::timed("stage.explore_insns", || {
        explore_instruction_space(InsnSpaceConfig {
            first_byte: config.first_byte,
            second_byte: config.second_byte,
            ..InsnSpaceConfig::default()
        })
    });
    let mut reps = insn_space.classes;
    reps.truncate(config.max_instructions);

    let mut out = CrossValidation {
        candidates: insn_space.candidates,
        unique_instructions: reps.len(),
        ..CrossValidation::default()
    };

    // Steps 2-4, parallel over instructions. Each worker writes its result
    // into the slot for its item index — no result lock, no post-hoc sort:
    // slot order *is* the deterministic analysis order. Stage timing flows
    // through the `stage.*` spans and timer metrics recorded per item.
    let results: Vec<OnceLock<ItemOutcome>> = (0..reps.len()).map(|_| OnceLock::new()).collect();
    let (pool, parallel_wall) = trace::timed("stage.parallel", || {
        pokemu_rt::for_each(config.threads, reps.len(), |i| {
            let rep = &reps[i];
            let name = rep.class.to_string();
            let _insn_span = pokemu_rt::span!("pipeline.instruction", insn = name);
            flight::note("pipeline.instruction", || {
                format!("{name} ({})", hex(&rep.bytes))
            });
            let (progs, complete, solver_queries) =
                generate_for_instruction(&name, &rep.bytes, &baseline, config.max_paths_per_insn);
            let (cases, execute_d) = trace::timed_with(
                "stage.execute",
                || vec![("insn", name.clone())],
                || {
                    progs
                        .iter()
                        .map(|p| {
                            let case = run_on_all_targets(p, config.lofi_fidelity);
                            (p.name.clone(), p.test_insn.clone(), p.path_id, case)
                        })
                        .collect::<Vec<_>>()
                },
            );
            metrics::timer("stage.execute.ns").add(execute_d);
            let slot_was_empty = results[i]
                .set(ItemOutcome {
                    complete,
                    n_paths: progs.len(),
                    solver_queries,
                    cases,
                })
                .is_ok();
            assert!(slot_was_empty, "pool delivered item {i} twice");
        })
    });

    // Step 5: sequential difference analysis, in item order (instruction
    // classes are sorted by exploration), so counters and clusters are
    // deterministic regardless of worker scheduling.
    let (solver_queries, analyze) = trace::timed("stage.analyze", || {
        let mut solver_queries = 0u64;
        for slot in results {
            let item = slot.into_inner().expect("every item slot filled");
            let ItemOutcome {
                complete,
                n_paths,
                solver_queries: queries,
                cases,
            } = item;
            solver_queries += queries;
            if complete {
                out.fully_explored += 1;
            }
            out.total_paths += n_paths;
            for (case_name, insn, path_id, case) in cases {
                if !case.hardware.same_behavior(&case.lofi) {
                    out.lofi_differences += 1;
                }
                if !case.hardware.same_behavior(&case.hifi) {
                    out.hifi_differences += 1;
                }
                if let Some(mut d) = compare(&case.hardware, &case.lofi, &insn) {
                    d.path_id = path_id;
                    out.lofi_filtered += 1;
                    out.lofi_clusters.add(&case_name, &d);
                    record_deviation(&mut out.deviations, "lofi", &case_name, &d);
                }
                if let Some(mut d) = compare(&case.hardware, &case.hifi, &insn) {
                    d.path_id = path_id;
                    out.hifi_filtered += 1;
                    out.hifi_clusters.add(&case_name, &d);
                    record_deviation(&mut out.deviations, "hifi", &case_name, &d);
                }
            }
        }
        solver_queries
    });
    drop(run_span);

    let delta = metrics::snapshot().since(&metrics_start);
    out.stages = StageStats {
        explore_insns,
        generate: Duration::from_nanos(
            delta.timer_ns("stage.explore_states.ns") + delta.timer_ns("stage.testgen.ns"),
        ),
        execute: Duration::from_nanos(delta.timer_ns("stage.execute.ns")),
        analyze,
        parallel_wall,
        total_wall: run_start.elapsed(),
        solver_queries,
        workers: pool.workers,
    };

    // Under POKEMU_TRACE=1, every finished run leaves an openable trace
    // behind (overwritten per run, like the bench JSON files).
    if trace::env_enabled() {
        match trace::export("cross_validation") {
            Ok(paths) => eprintln!("[trace] exported {}", paths.trace_json.display()),
            Err(e) => eprintln!("[trace] export failed: {e}"),
        }
    }

    // Run artifacts: the manifest aggregates the whole run, and any
    // comparison deviation also dumps the flight recorder next to it so
    // the last events before each divergence are inspectable post-hoc.
    if manifest_armed {
        // Coverage is reported *cumulatively* (all bits the process has set),
        // not as a since-run-start delta: bitmaps are idempotent, so the
        // cumulative set is deterministic for a fixed binary and config and
        // cannot lose bits when an earlier stage (e.g. a bench warm-up)
        // happens to pre-cover something the pipeline also covers.
        let manifest = crate::manifest::RunManifest::build(
            &run_id,
            &config,
            &out,
            &delta,
            &coverage::snapshot(),
        );
        match manifest.write() {
            Ok(path) => eprintln!("[manifest] wrote {}", path.display()),
            Err(e) => eprintln!("[manifest] write failed: {e}"),
        }
        if !out.deviations.is_empty() {
            let path = crate::manifest::run_dir(&run_id).join("flightrec-deviations.jsonl");
            if let Err(e) = flight::dump_to(&path) {
                eprintln!("[manifest] flight dump failed: {e}");
            }
        }
    }
    out
}

/// Appends one deviation record and leaves a breadcrumb in the flight
/// recorder (the recorder's merged dump is written alongside the manifest
/// whenever a run with deviations finishes).
fn record_deviation(
    deviations: &mut Vec<DeviationRecord>,
    target: &str,
    test: &str,
    d: &crate::compare::Difference,
) {
    flight::note("pipeline.deviation", || {
        format!("{target} {test} insn={} cause={}", hex(&d.insn), d.cause)
    });
    deviations.push(DeviationRecord {
        target: target.to_owned(),
        test: test.to_owned(),
        insn_hex: hex(&d.insn),
        path_id: d.path_id,
        cause: d.cause.to_string(),
        components: d.components.clone(),
    });
}
