//! Difference analysis (paper §6.2): three-way comparison, the
//! undefined-behavior filter, and root-cause clustering.
//!
//! Following the paper, differences are computed against the hardware
//! oracle ("60,770 of these programs produced distinguishable behaviors in
//! QEMU and 15,219 of them produced distinguishable behaviors in Bochs").
//! Differences caused by architecturally-undefined flag results are
//! filtered out first ("we used scripts to filter out differences due to
//! undefined behaviors"); the rest are clustered by root cause.

use std::collections::BTreeMap;

use pokemu_isa::snapshot::{Outcome, Snapshot};
use pokemu_isa::state::flags as fl;
use pokemu_isa::InstClass;
use pokemu_symx::{Concrete, Dom};

/// Root causes of behavior differences, matching the classes §6.2 reports.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RootCause {
    /// Segment limits/rights/presence not enforced: the reference faults
    /// with #GP/#SS where the Lo-Fi emulator proceeds.
    MissingSegmentChecks,
    /// Non-atomic execution: both fault identically but registers diverge
    /// (`leave` corrupting ESP, `cmpxchg` corrupting the accumulator).
    AtomicityViolation,
    /// `rdmsr`/`wrmsr` of an invalid MSR missing its #GP.
    MsrValidation,
    /// Memory operands fetched in a different order (`iret` pop order,
    /// far-pointer loads): visible as different exceptions or different
    /// accessed/dirty bits.
    FetchOrder,
    /// The descriptor "accessed" bit not maintained on segment loads.
    AccessedFlag,
    /// A valid encoding rejected with #UD.
    EncodingRejected,
    /// Status flags differ beyond the undefined-behavior filter.
    FlagPolicy,
    /// Anything else, keyed by the differing components.
    Other(String),
}

impl RootCause {
    /// `true` for the named paper classes (everything except `Other`).
    pub fn is_identified(&self) -> bool {
        !matches!(self, RootCause::Other(_))
    }
}

impl std::fmt::Display for RootCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootCause::MissingSegmentChecks => write!(f, "missing segment limit/rights checks"),
            RootCause::AtomicityViolation => write!(f, "non-atomic instruction execution"),
            RootCause::MsrValidation => write!(f, "missing invalid-MSR #GP"),
            RootCause::FetchOrder => write!(f, "operand fetch/pop order"),
            RootCause::AccessedFlag => write!(f, "descriptor accessed-flag maintenance"),
            RootCause::EncodingRejected => write!(f, "valid encoding rejected (#UD)"),
            RootCause::FlagPolicy => write!(f, "status-flag computation"),
            RootCause::Other(k) => write!(f, "other: {k}"),
        }
    }
}

/// One confirmed behavior difference between a target and the reference.
#[derive(Debug, Clone)]
pub struct Difference {
    /// Components that differ (from [`Snapshot::diff`]).
    pub components: Vec<String>,
    /// The inferred root cause.
    pub cause: RootCause,
    /// The test-instruction bytes that exposed the difference (provenance
    /// for the run manifest and flight recorder).
    pub insn: Vec<u8>,
    /// The symbolic-exploration path the test exercises; 0 until the
    /// caller attaches the originating [`TestProgram`]'s path-id (random
    /// baseline tests have no explored path).
    ///
    /// [`TestProgram`]: pokemu_testgen::TestProgram
    pub path_id: u64,
}

/// The undefined-flag mask for one instruction class: bits of EFLAGS whose
/// value the architecture leaves undefined after this instruction.
pub fn undefined_flags_of(class: &InstClass) -> u32 {
    const ALL: u32 = fl::STATUS;
    const AF: u32 = 1 << fl::AF;
    const OF: u32 = 1 << fl::OF;
    const CF: u32 = 1 << fl::CF;
    match class.opcode {
        // Logic families: AF undefined.
        0x08..=0x0d | 0x20..=0x25 | 0x30..=0x35 | 0x84 | 0x85 | 0xa8 | 0xa9 => AF,
        0x80..=0x83 => match class.group_reg {
            Some(1) | Some(4) | Some(6) => AF, // or/and/xor
            _ => 0,
        },
        0xf6 | 0xf7 => match class.group_reg {
            Some(0) | Some(1) => AF,              // test
            Some(4) | Some(5) => ALL & !CF & !OF, // mul/imul: SF/ZF/AF/PF
            Some(6) | Some(7) => ALL,             // div/idiv: everything
            _ => 0,
        },
        0x69 | 0x6b | 0x0faf => ALL & !CF & !OF, // imul 2-op
        // Shift group: AF always undefined; OF undefined for counts != 1.
        0xc0 | 0xc1 | 0xd2 | 0xd3 => AF | OF,
        0xd0 | 0xd1 => match class.group_reg {
            Some(0..=3) => 0, // rotate by 1: CF/OF defined, others untouched
            _ => AF,          // shift by 1: OF defined
        },
        0x0fa4 | 0x0fa5 | 0x0fac | 0x0fad => AF | OF, // shld/shrd
        0x0fa3 | 0x0fab | 0x0fb3 | 0x0fbb | 0x0fba => ALL & !CF, // bt family
        0x0fbc | 0x0fbd => ALL & !(1 << fl::ZF),      // bsf/bsr
        0xd4 | 0xd5 => CF | AF | OF,                  // aam/aad
        0x27 | 0x2f => OF,                            // daa/das
        0x37 | 0x3f => OF | (1 << fl::SF) | (1 << fl::ZF) | (1 << fl::PF), // aaa/aas
        _ => 0,
    }
}

/// Additional architecturally-undefined state: `bsf`/`bsr` leave the
/// destination register undefined when the source is zero. Returns the GPR
/// index to mask, if any.
fn undefined_dest_reg(class: &InstClass) -> bool {
    matches!(class.opcode, 0x0fbc | 0x0fbd)
}

/// Decodes the class of a test instruction (for the filter).
pub fn class_of(test_insn: &[u8]) -> Option<InstClass> {
    let mut d = Concrete::new();
    let bytes = test_insn.to_vec();
    pokemu_isa::decode(&mut d, |d, i| {
        Ok(d.constant(8, *bytes.get(i as usize).unwrap_or(&0) as u64))
    })
    .ok()
    .map(|i| i.class)
}

/// Applies the undefined-behavior filter: masks undefined flag bits (and
/// the undefined `bsf`/`bsr` destination) in both snapshots.
pub fn filter_undefined(a: &mut Snapshot, b: &mut Snapshot, class: Option<&InstClass>) {
    let Some(class) = class else { return };
    let mask = undefined_flags_of(class);
    a.eflags &= !mask;
    b.eflags &= !mask;
    if undefined_dest_reg(class) {
        // Mask every GPR that differs only when the sources agree is too
        // subtle to reconstruct here; mask the likely destination instead:
        // any register where both sides wrote "a scan result or nothing".
        for i in 0..8 {
            if a.gpr[i] != b.gpr[i]
                && (a.gpr[i] == 0 || b.gpr[i] == 0 || a.gpr[i] < 32 || b.gpr[i] < 32)
            {
                a.gpr[i] = 0;
                b.gpr[i] = 0;
            }
        }
    }
}

/// Compares a target snapshot against the reference, filtering undefined
/// behavior and classifying the root cause.
pub fn compare(reference: &Snapshot, target: &Snapshot, test_insn: &[u8]) -> Option<Difference> {
    let class = class_of(test_insn);
    let mut a = reference.clone();
    let mut b = target.clone();
    filter_undefined(&mut a, &mut b, class.as_ref());
    let components = a.diff(&b);
    if components.is_empty() {
        return None;
    }
    let cause = classify(&a, &b, &components, class.as_ref());
    Some(Difference {
        components,
        cause,
        insn: test_insn.to_vec(),
        path_id: 0,
    })
}

fn classify(
    reference: &Snapshot,
    target: &Snapshot,
    components: &[String],
    class: Option<&InstClass>,
) -> RootCause {
    let ref_exc = matches!(reference.outcome, Outcome::Exception { .. });
    let tgt_exc = matches!(target.outcome, Outcome::Exception { .. });
    let outcome_differs = reference.outcome != target.outcome;

    // A valid encoding rejected with #UD by the target.
    if let Outcome::Exception { vector: 6, .. } = target.outcome {
        if reference.outcome != target.outcome {
            return RootCause::EncodingRejected;
        }
    }

    let is_msr = class
        .map(|c| matches!(c.opcode, 0x0f30 | 0x0f32))
        .unwrap_or(false);
    if is_msr && outcome_differs {
        return RootCause::MsrValidation;
    }

    // Reference faults with #GP/#SS where the target proceeds: the missing
    // segment checks class.
    if outcome_differs {
        if let Outcome::Exception { vector, .. } = reference.outcome {
            if matches!(vector, 12 | 13) && !tgt_exc {
                return RootCause::MissingSegmentChecks;
            }
            // Different faults (or fault identity) on multi-read
            // instructions: fetch-order class.
            if let Outcome::Exception { .. } = target.outcome {
                if class.map(|c| is_multi_read(c)).unwrap_or(false) {
                    return RootCause::FetchOrder;
                }
            }
        }
        if let Outcome::Exception { vector, .. } = target.outcome {
            if matches!(vector, 12 | 13) && !ref_exc {
                return RootCause::MissingSegmentChecks;
            }
        }
    }

    // Both faulted identically but registers differ: atomicity violation.
    if ref_exc && reference.outcome == target.outcome {
        let reg_diff = components
            .iter()
            .any(|c| c.starts_with("esp") || c.starts_with("ebp") || c.starts_with("eax"));
        if reg_diff && class.map(|c| is_rmw_multi(c)).unwrap_or(false) {
            return RootCause::AtomicityViolation;
        }
    }

    // Only GDT accessed-bit bytes differ. Tests can raise the GDT limit and
    // load far-away selectors, so the window is the maximum addressable GDT
    // (8192 entries), not just the baseline's 16; the differing byte must be
    // a descriptor attribute byte (offset 5 of an 8-byte entry).
    let only_gdt_accessed = components.iter().all(|c| c.starts_with("mem[")) && {
        let gdt = pokemu_testgen::layout::GDT_BASE;
        reference
            .mem
            .iter()
            .filter(|(k, v)| target.mem.get(k) != Some(v))
            .chain(
                target
                    .mem
                    .iter()
                    .filter(|(k, v)| reference.mem.get(k) != Some(v)),
            )
            .all(|(&k, _)| (gdt..gdt + 8192 * 8).contains(&k) && (k - gdt) % 8 == 5)
    };
    if only_gdt_accessed && !components.is_empty() {
        return RootCause::AccessedFlag;
    }

    if components.iter().all(|c| c.starts_with("eflags")) {
        return RootCause::FlagPolicy;
    }

    // CR2 / page A-D bit differences on multi-read instructions.
    if class.map(|c| is_multi_read(c)).unwrap_or(false) {
        return RootCause::FetchOrder;
    }

    // Fall back to a component-kind signature (skip the "... N memory
    // bytes" truncation summary so counts don't fragment clusters).
    let mut kinds: Vec<&str> = components
        .iter()
        .filter(|c| !c.starts_with("..."))
        .map(|c| c.split([':', '[']).next().unwrap_or("?"))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    RootCause::Other(kinds.join("+"))
}

/// Instructions with multiple data reads whose order is observable.
fn is_multi_read(class: &InstClass) -> bool {
    matches!(
        class.opcode,
        0xcf // iret
        | 0xca | 0xcb // retf
        | 0xc4 | 0xc5 | 0x0fb2 | 0x0fb4 | 0x0fb5 // lds/les/lss/lfs/lgs
        | 0x61 // popa
        | 0x62 // bound
    ) || (matches!(class.opcode, 0xff) && matches!(class.group_reg, Some(3) | Some(5)))
}

/// Read-modify-write or multi-commit instructions where partial commits are
/// observable on faults.
fn is_rmw_multi(class: &InstClass) -> bool {
    matches!(
        class.opcode,
        0xc9 | 0x0fb0 | 0x0fb1 | 0x0fc0 | 0x0fc1 | 0x8f | 0x60 | 0x61
    )
}

/// A cluster of differences sharing a root cause (paper §6.2: "we then
/// clustered the differences according to root cause").
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Clusters {
    /// cause -> (count, example test names)
    clusters: BTreeMap<RootCause, (usize, Vec<String>)>,
}

impl Clusters {
    /// Creates an empty clustering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one difference.
    pub fn add(&mut self, test_name: &str, diff: &Difference) {
        let entry = self.clusters.entry(diff.cause.clone()).or_default();
        entry.0 += 1;
        if entry.1.len() < 5 {
            entry.1.push(test_name.to_owned());
        }
    }

    /// Iterates `(cause, count, examples)` sorted by cause.
    pub fn iter(&self) -> impl Iterator<Item = (&RootCause, usize, &[String])> {
        self.clusters
            .iter()
            .map(|(k, (n, ex))| (k, *n, ex.as_slice()))
    }

    /// Total differences recorded.
    pub fn total(&self) -> usize {
        self.clusters.values().map(|(n, _)| n).sum()
    }

    /// Number of distinct root causes.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// `true` when no differences were recorded.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// `true` when a cause is present.
    pub fn has(&self, cause: &RootCause) -> bool {
        self.clusters.contains_key(cause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undefined_flag_masks() {
        let mul = InstClass {
            opcode: 0xf7,
            group_reg: Some(4),
            mem_operand: Some(false),
            opsize16: false,
        };
        let m = undefined_flags_of(&mul);
        assert_ne!(m & (1 << fl::AF), 0);
        assert_eq!(m & (1 << fl::CF), 0, "CF is defined for mul");
        let div = InstClass {
            opcode: 0xf7,
            group_reg: Some(6),
            mem_operand: Some(false),
            opsize16: false,
        };
        assert_eq!(undefined_flags_of(&div), fl::STATUS);
        let add = InstClass {
            opcode: 0x01,
            group_reg: None,
            mem_operand: Some(false),
            opsize16: false,
        };
        assert_eq!(undefined_flags_of(&add), 0);
    }

    #[test]
    fn identical_snapshots_compare_clean() {
        let s = crate::targets::baseline_snapshot();
        assert!(compare(&s, &s, &[0x90]).is_none());
    }
}
