//! Conformance corpus: committed chained test programs with
//! expected-deviation baselines (DESIGN.md §9).
//!
//! The corpus is a fixed set of multi-instruction test programs built by
//! [`build_corpus`]: data-driven chains that stitch explored paths of small
//! instruction families together ([`TestProgram::chain`]), plus directed
//! chains that exercise sequence-dependent state the single-shot pipeline
//! cannot reach (descriptor accessed-bit accumulation: de-access a GDT
//! descriptor in one segment, reload the segment register in a later one).
//!
//! Each program's expected behavior is committed under `tests/roms/` as one
//! JSON document per program — its chain path id, code hash, per-segment
//! provenance, and the exact deviations (in the run-manifest interchange
//! format) the three-target comparison produces. `pokemu-report
//! conformance` re-runs the corpus and fails when any program drifts: a new
//! deviation, a vanished deviation, a path-id change, or any byte of the
//! generated program changing. The gate is *string equality* of the
//! rendered document, so it cannot be fooled by lossy number parsing; the
//! parse-based diagnosis only explains the drift.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use pokemu_explore::{explore_state_space, to_chain_segments, PathEnd, StateSpaceConfig};
use pokemu_isa::snapshot::Snapshot;
use pokemu_isa::state::{Gpr, Seg};
use pokemu_lofi::Fidelity;
use pokemu_rt::json::{self, escape, Value};
use pokemu_rt::{metrics, pool, QuarantineRecord};
use pokemu_testgen::{fnv1a, gadgets::sel, layout, ChainSegment, SegmentMeta, TestProgram};
use pokemu_testgen::{StateItem, TestState};

use crate::compare::compare;
use crate::pipeline::{run_on_all_targets, DeviationRecord};
use crate::targets::baseline_snapshot;

/// The corpus is validated against this Lo-Fi profile (the paper's QEMU
/// configuration); baselines are only meaningful for a fixed fidelity.
pub const CONFORMANCE_FIDELITY: Fidelity = Fidelity::QEMU_LIKE;

/// Path cap for corpus exploration: families are tiny instructions, and a
/// fixed low cap keeps corpus construction fast and deterministic.
const CORPUS_MAX_PATHS: usize = 64;

/// The instruction families the data-driven recipes draw segments from.
const FAMILIES: &[(&str, &[u8])] = &[
    ("clc", &[0xf8]),
    ("stc", &[0xf9]),
    ("cmc", &[0xf5]),
    ("jz", &[0x74, 0x02]),
    ("push_eax", &[0x50]),
    ("pop_eax", &[0x58]),
    ("shl_eax", &[0xc1, 0xe0, 0x02]),
    ("div_ecx", &[0xf7, 0xf1]),
    ("leave", &[0xc9]),
    ("mov_moffs_al", &[0xa2, 0x00, 0x50, 0x00, 0x00]),
    ("rdmsr", &[0x0f, 0x32]),
    ("iret", &[0xcf]),
    ("mov_ds_ax", &[0x8e, 0xd8]),
    ("pushf", &[0x9c]),
    ("popf", &[0x9d]),
];

/// Which explored path of a family a recipe slot takes.
#[derive(Debug, Clone, Copy)]
enum Pick {
    /// The `n`-th (mod count) normally-retiring path.
    Retired(usize),
    /// The `n`-th (mod count) faulting path. Faulting segments halt the
    /// program through the IDT handler, so recipes place them last.
    Fault(usize),
}

/// The data-driven recipes: `(chain name, [(family, pick)])`. Together with
/// the three directed chains below this yields the committed corpus.
const RECIPES: &[(&str, &[(&str, Pick)])] = &[
    (
        "flags-clc-stc",
        &[("clc", Pick::Retired(0)), ("stc", Pick::Retired(0))],
    ),
    (
        "flags-carry-chain",
        &[
            ("clc", Pick::Retired(0)),
            ("cmc", Pick::Retired(0)),
            ("pushf", Pick::Retired(0)),
        ],
    ),
    (
        "flags-popf-branch",
        &[("popf", Pick::Retired(0)), ("jz", Pick::Retired(0))],
    ),
    (
        "branch-both-ways",
        &[("jz", Pick::Retired(0)), ("jz", Pick::Retired(1))],
    ),
    (
        "stack-push-pop",
        &[
            ("push_eax", Pick::Retired(0)),
            ("pop_eax", Pick::Retired(0)),
        ],
    ),
    (
        "stack-pop-push-pop",
        &[
            ("pop_eax", Pick::Retired(0)),
            ("push_eax", Pick::Retired(0)),
            ("pop_eax", Pick::Retired(0)),
        ],
    ),
    (
        "stack-leave",
        &[("push_eax", Pick::Retired(0)), ("leave", Pick::Retired(0))],
    ),
    (
        "shift-then-branch",
        &[("shl_eax", Pick::Retired(0)), ("jz", Pick::Retired(0))],
    ),
    (
        "shift-twice",
        &[("shl_eax", Pick::Retired(0)), ("shl_eax", Pick::Retired(0))],
    ),
    (
        "div-then-clc",
        &[("div_ecx", Pick::Retired(0)), ("clc", Pick::Retired(0))],
    ),
    (
        "div-fault-last",
        &[("clc", Pick::Retired(0)), ("div_ecx", Pick::Fault(0))],
    ),
    (
        "store-moffs-twice",
        &[
            ("mov_moffs_al", Pick::Retired(0)),
            ("mov_moffs_al", Pick::Retired(0)),
        ],
    ),
    (
        "rdmsr-then-clc",
        &[("rdmsr", Pick::Retired(0)), ("clc", Pick::Retired(0))],
    ),
    (
        "rdmsr-fault-last",
        &[("stc", Pick::Retired(0)), ("rdmsr", Pick::Fault(0))],
    ),
    (
        "iret-fault-last",
        &[("push_eax", Pick::Retired(0)), ("iret", Pick::Fault(0))],
    ),
    (
        "segreload-then-push",
        &[
            ("mov_ds_ax", Pick::Retired(0)),
            ("push_eax", Pick::Retired(0)),
        ],
    ),
    (
        "segreload-twice",
        &[
            ("mov_ds_ax", Pick::Retired(0)),
            ("mov_ds_ax", Pick::Retired(0)),
        ],
    ),
    (
        "pushf-popf-roundtrip",
        &[("pushf", Pick::Retired(0)), ("popf", Pick::Retired(0))],
    ),
    (
        "mixed-four",
        &[
            ("clc", Pick::Retired(0)),
            ("push_eax", Pick::Retired(0)),
            ("shl_eax", Pick::Retired(0)),
            ("pop_eax", Pick::Retired(0)),
        ],
    ),
    (
        "mixed-flags-four",
        &[
            ("stc", Pick::Retired(0)),
            ("jz", Pick::Retired(0)),
            ("cmc", Pick::Retired(0)),
            ("pushf", Pick::Retired(0)),
        ],
    ),
    (
        "store-then-branch",
        &[("mov_moffs_al", Pick::Retired(0)), ("jz", Pick::Retired(1))],
    ),
];

/// One family's explored material: chainable segments plus each path's end
/// (segment index `i` corresponds to path `i`).
struct FamilyPaths {
    segments: Vec<ChainSegment>,
    ends: Vec<PathEnd>,
}

fn explore_family(key: &str, insn: &[u8], baseline: &Snapshot) -> FamilyPaths {
    let space = explore_state_space(
        insn,
        baseline,
        StateSpaceConfig {
            max_paths: CORPUS_MAX_PATHS,
            ..StateSpaceConfig::default()
        },
    );
    FamilyPaths {
        segments: to_chain_segments(&space, key),
        ends: space.paths.iter().map(|p| p.end).collect(),
    }
}

/// Selects one segment of a family by pick, falling back to the full path
/// list when the preferred kind is absent (deterministic either way).
fn select(family: &FamilyPaths, pick: Pick) -> ChainSegment {
    let indices: Vec<usize> = match pick {
        Pick::Retired(_) => (0..family.ends.len())
            .filter(|&i| family.ends[i] == PathEnd::Retired)
            .collect(),
        Pick::Fault(_) => (0..family.ends.len())
            .filter(|&i| matches!(family.ends[i], PathEnd::Exception(_)))
            .collect(),
    };
    let pool: Vec<usize> = if indices.is_empty() {
        (0..family.ends.len()).collect()
    } else {
        indices
    };
    let n = match pick {
        Pick::Retired(n) | Pick::Fault(n) => n,
    };
    family.segments[pool[n % pool.len()]].clone()
}

/// A hand-built segment that rewrites one GDT descriptor's attribute byte
/// to its *non-accessed* encoding (`mov byte [gdt+idx*8+5], attrs`). The
/// baseline commits every descriptor pre-accessed, so this is the only way
/// to put the accessed-bit write-back machinery in play.
fn deaccess_segment(seg: Seg) -> ChainSegment {
    let addr = layout::GDT_BASE + layout::gdt_index(seg) as u32 * 8 + 5;
    let attrs: u8 = if seg == Seg::Cs { 0x9a } else { 0x92 };
    let mut insn = vec![0xc6, 0x05];
    insn.extend_from_slice(&addr.to_le_bytes());
    insn.push(attrs);
    let name = format!("directed/deaccess-{}", seg.name());
    ChainSegment {
        path_id: fnv1a(name.as_bytes()),
        name,
        insn,
        state: TestState::default(),
        clobbers: vec!["mem".to_owned()],
    }
}

/// A hand-built segment that reloads a data-segment register from the GDT
/// (`mov sreg, ax` with EAX holding the baseline selector). On targets that
/// maintain accessed bits the load writes the bit back into the descriptor.
fn reload_segment(seg: Seg) -> ChainSegment {
    let sreg: u8 = match seg {
        Seg::Es => 0,
        Seg::Cs => panic!("CS cannot be loaded with mov"),
        Seg::Ss => 2,
        Seg::Ds => 3,
        Seg::Fs => 4,
        Seg::Gs => 5,
    };
    let name = format!("directed/reload-{}", seg.name());
    ChainSegment {
        path_id: fnv1a(name.as_bytes()),
        name,
        insn: vec![0x8e, 0xc0 | (sreg << 3)],
        state: TestState {
            items: vec![StateItem::Gpr(Gpr::Eax, sel(layout::gdt_index(seg)) as u32)],
        },
        clobbers: vec![format!("sel_{}", seg.name()), "mem".to_owned()],
    }
}

/// Builds the committed corpus: every data-driven recipe plus the directed
/// accessed-bit chains. Deterministic for a fixed binary.
pub fn build_corpus() -> Vec<TestProgram> {
    let _span = pokemu_rt::span!("conformance.build_corpus");
    let baseline = baseline_snapshot();
    let mut cache: HashMap<&str, FamilyPaths> = HashMap::new();
    for (key, insn) in FAMILIES {
        cache.insert(key, explore_family(key, insn, &baseline));
    }
    let mut out = Vec::with_capacity(RECIPES.len() + 3);
    for (name, picks) in RECIPES {
        let segments: Vec<ChainSegment> = picks
            .iter()
            .map(|(family, pick)| select(&cache[family], *pick))
            .collect();
        let prog = TestProgram::chain(format!("chain/{name}"), &segments)
            .unwrap_or_else(|e| panic!("corpus recipe {name} must assemble: {e}"));
        out.push(prog);
    }

    // Directed chains. De-access then reload makes hardware (and Hi-Fi)
    // write the accessed bit back into the GDT while the QEMU-like Lo-Fi
    // profile does not — a deviation *only a sequence* can expose, since
    // single-shot programs always start from pre-accessed descriptors.
    let deaccess = [deaccess_segment(Seg::Ds), reload_segment(Seg::Ds)];
    out.push(TestProgram::chain("chain/deaccess-ds".into(), &deaccess).expect("directed chain"));
    let multi = [
        deaccess_segment(Seg::Ds),
        deaccess_segment(Seg::Es),
        reload_segment(Seg::Ds),
        reload_segment(Seg::Es),
    ];
    out.push(TestProgram::chain("chain/deaccess-multi".into(), &multi).expect("directed chain"));
    // Control: the same reload without de-accessing first touches nothing
    // (the descriptor is already accessed), so no target deviates.
    let control = [reload_segment(Seg::Ds), reload_segment(Seg::Es)];
    out.push(TestProgram::chain("chain/reload-baseline".into(), &control).expect("directed chain"));

    metrics::counter("conformance.corpus_programs").add(out.len() as u64);
    out
}

/// The observed behavior of one corpus program: identity, byte-exact code
/// hash, per-segment provenance, and the deviations the three-target
/// comparison produced.
#[derive(Debug, Clone)]
pub struct ProgramResult {
    /// The chained program's name.
    pub name: String,
    /// The chain path id ([`pokemu_testgen::chain_path_id`]).
    pub path_id: u64,
    /// Generated code size in bytes.
    pub code_len: usize,
    /// FNV-1a over the generated code bytes (byte-identity teeth: any
    /// change to generation shows up here even if behavior matches).
    pub code_fnv: u64,
    /// Per-segment provenance.
    pub segments: Vec<SegmentMeta>,
    /// Deviations against the hardware oracle, manifest interchange format.
    pub deviations: Vec<DeviationRecord>,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Runs one corpus program on all three targets and records its result.
pub fn result_of(prog: &TestProgram, fidelity: Fidelity) -> ProgramResult {
    // Scope hot-TB attribution to this program: corpus programs run back
    // to back (and in parallel), and without a per-program scope their TB
    // execution counts would bleed into each other and into the default
    // scope the pipeline dumps for `pokemu-report perf`.
    let _hot = pokemu_lofi::hot_scope(fnv1a(prog.name.as_bytes()));
    let case = run_on_all_targets(prog, fidelity);
    let mut deviations = Vec::new();
    for (target, snap) in [("lofi", &case.lofi), ("hifi", &case.hifi)] {
        if let Some(d) = compare(&case.hardware, snap, &prog.test_insn) {
            deviations.push(DeviationRecord {
                target: target.to_owned(),
                test: prog.name.clone(),
                insn_hex: hex(&d.insn),
                path_id: prog.path_id,
                cause: d.cause.to_string(),
                components: d.components.clone(),
            });
        }
    }
    ProgramResult {
        name: prog.name.clone(),
        path_id: prog.path_id,
        code_len: prog.code.len(),
        code_fnv: fnv1a(&prog.code),
        segments: prog.segments.clone(),
        deviations,
    }
}

/// The outcome of running the whole corpus.
#[derive(Debug)]
pub struct ConformanceRun {
    /// One result per program that finished, in corpus order. A program
    /// whose worker panicked is absent here and present in `quarantined`.
    pub results: Vec<ProgramResult>,
    /// Programs whose worker panicked (fault injection or a real bug).
    pub quarantined: Vec<QuarantineRecord>,
}

/// Runs every corpus program on all three targets, in parallel. Results
/// are slot-indexed, so the output order (and content) is independent of
/// the thread count.
pub fn run_conformance(corpus: &[TestProgram], threads: usize) -> ConformanceRun {
    let _span = pokemu_rt::span!("conformance.run");
    let slots: Vec<OnceLock<ProgramResult>> = (0..corpus.len()).map(|_| OnceLock::new()).collect();
    let run = pool::for_each_budgeted(threads, corpus.len(), None, |i| {
        let r = result_of(&corpus[i], CONFORMANCE_FIDELITY);
        assert!(
            slots[i].set(r).is_ok(),
            "pool delivered corpus item {i} twice"
        );
    });
    let results: Vec<ProgramResult> = slots.into_iter().filter_map(OnceLock::into_inner).collect();
    metrics::counter("conformance.programs_run").add(results.len() as u64);
    ConformanceRun {
        results,
        quarantined: run.quarantined,
    }
}

/// Renders one program's baseline document. `path_id` and `code_fnv` are
/// JSON *strings*: the workspace JSON reader stores numbers as `f64`, which
/// cannot round-trip 64-bit hashes (deviation entries keep the manifest's
/// numeric form — the gate never re-parses them, it compares rendered
/// text).
pub fn program_json(r: &ProgramResult) -> String {
    let segments: Vec<String> = r
        .segments
        .iter()
        .map(|s| {
            format!(
                "\n {{\"name\":\"{}\",\"insn\":\"{}\",\"path_id\":\"{}\",\"offset\":{}}}",
                escape(&s.name),
                hex(&s.insn),
                s.path_id,
                s.insn_offset
            )
        })
        .collect();
    let deviations: Vec<String> = r
        .deviations
        .iter()
        .map(crate::manifest::deviation_json)
        .collect();
    format!(
        "{{\n\"program\":\"{}\",\n\"path_id\":\"{}\",\n\"code_len\":{},\n\"code_fnv\":\"{:016x}\",\n\
         \"segments\":[{}],\n\"deviations\":[{}]\n}}\n",
        escape(&r.name),
        r.path_id,
        r.code_len,
        r.code_fnv,
        segments.join(","),
        deviations.join(","),
    )
}

/// Keeps corpus program names path-safe for baseline file names
/// (`chain/deaccess-ds` → `chain-deaccess-ds.json`).
fn file_name(program: &str) -> String {
    let safe: String = program
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("{safe}.json")
}

/// Finds the committed `tests/roms/` directory by walking up from the
/// current directory (the binary runs from the repo root, integration
/// tests from their crate directory).
pub fn find_roms_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let cand = dir.join("tests").join("roms");
        if cand.is_dir() {
            return Some(cand);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Writes (or rewrites) the baseline documents for `results` into `dir`,
/// removing stale `.json` files whose program no longer exists, and
/// returns the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_baselines(dir: &Path, results: &[ProgramResult]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let expected: BTreeSet<String> = results.iter().map(|r| file_name(&r.name)).collect();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") && !expected.contains(&name) {
            std::fs::remove_file(entry.path())?;
        }
    }
    let mut written = Vec::with_capacity(results.len());
    for r in results {
        let path = dir.join(file_name(&r.name));
        std::fs::write(&path, program_json(r))?;
        written.push(path);
    }
    Ok(written)
}

/// One conformance gate violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violating program (or baseline file, for orphans).
    pub program: String,
    /// What drifted.
    pub reason: String,
}

/// The deviation identity used for drift diagnosis: everything but the
/// path id (which the byte-equality gate already covers exactly).
fn deviation_key(v: &Value) -> String {
    format!(
        "{} {} [{}]",
        v.get("target").and_then(Value::as_str).unwrap_or("?"),
        v.get("cause").and_then(Value::as_str).unwrap_or("?"),
        v.get("components")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default()
    )
}

/// Explains *why* a baseline mismatched: path-id drift, code drift,
/// segment-provenance drift, or new/vanished deviations. Falls back to a
/// generic reason when the texts differ in some other way (the gate itself
/// is the byte comparison, never this diagnosis).
fn diagnose(baseline_text: &str, r: &ProgramResult) -> String {
    let Ok(base) = json::parse(baseline_text) else {
        return "committed baseline is not valid JSON".to_owned();
    };
    let mut reasons = Vec::new();
    let base_pid = base.get("path_id").and_then(Value::as_str).unwrap_or("?");
    if base_pid != r.path_id.to_string() {
        reasons.push(format!(
            "chain path-id changed (baseline {base_pid}, now {})",
            r.path_id
        ));
    }
    let base_fnv = base.get("code_fnv").and_then(Value::as_str).unwrap_or("?");
    let cur_fnv = format!("{:016x}", r.code_fnv);
    if base_fnv != cur_fnv {
        reasons.push(format!(
            "generated code changed (hash baseline {base_fnv}, now {cur_fnv})"
        ));
    }
    if let Some(segs) = base.get("segments").and_then(Value::as_array) {
        let base_segs: Vec<String> = segs
            .iter()
            .map(|s| {
                format!(
                    "{}:{}",
                    s.get("name").and_then(Value::as_str).unwrap_or("?"),
                    s.get("path_id").and_then(Value::as_str).unwrap_or("?")
                )
            })
            .collect();
        let cur_segs: Vec<String> = r
            .segments
            .iter()
            .map(|s| format!("{}:{}", s.name, s.path_id))
            .collect();
        if base_segs != cur_segs {
            reasons.push("segment provenance changed".to_owned());
        }
    }
    let base_devs: BTreeSet<String> = base
        .get("deviations")
        .and_then(Value::as_array)
        .map(|a| a.iter().map(deviation_key).collect())
        .unwrap_or_default();
    let cur_devs: BTreeSet<String> = r
        .deviations
        .iter()
        .map(|d| format!("{} {} [{}]", d.target, d.cause, d.components.join(",")))
        .collect();
    for d in cur_devs.difference(&base_devs) {
        reasons.push(format!("new deviation: {d}"));
    }
    for d in base_devs.difference(&cur_devs) {
        reasons.push(format!("vanished deviation: {d}"));
    }
    if reasons.is_empty() {
        reasons.push("baseline text drift".to_owned());
    }
    reasons.join("; ")
}

/// Gates the corpus results against the committed baselines in `dir`:
/// every program must have a baseline whose text is byte-identical to the
/// freshly rendered document, and every baseline file must correspond to a
/// current program. Returns the violations (empty = conformant).
///
/// # Errors
///
/// An unreadable baseline directory (missing-input, not a gate violation).
pub fn check_conformance(dir: &Path, results: &[ProgramResult]) -> io::Result<Vec<Violation>> {
    if !dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("baseline directory {} not found", dir.display()),
        ));
    }
    let mut violations = Vec::new();
    let mut claimed: BTreeSet<String> = BTreeSet::new();
    for r in results {
        let name = file_name(&r.name);
        claimed.insert(name.clone());
        let path = dir.join(&name);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if text != program_json(r) {
                    violations.push(Violation {
                        program: r.name.clone(),
                        reason: diagnose(&text, r),
                    });
                }
            }
            Err(_) => violations.push(Violation {
                program: r.name.clone(),
                reason: "no committed baseline (regenerate with \
                         `pokemu-report conformance --write`)"
                    .to_owned(),
            }),
        }
    }
    let mut orphans: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".json") && !claimed.contains(n))
        .collect();
    orphans.sort();
    for n in orphans {
        violations.push(Violation {
            program: n,
            reason: "baseline file has no matching corpus program".to_owned(),
        });
    }
    metrics::counter("conformance.violations").add(violations.len() as u64);
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> ProgramResult {
        ProgramResult {
            name: "chain/sample".into(),
            path_id: 0x0123_4567_89ab_cdef,
            code_len: 42,
            code_fnv: 0xfeed_face_dead_beef,
            segments: vec![SegmentMeta {
                name: "clc/path0".into(),
                insn: vec![0xf8],
                path_id: 7,
                insn_offset: 40,
            }],
            deviations: vec![DeviationRecord {
                target: "lofi".into(),
                test: "chain/sample".into(),
                insn_hex: "f8".into(),
                path_id: 0x0123_4567_89ab_cdef,
                cause: "descriptor accessed-flag maintenance".into(),
                components: vec!["mem".into()],
            }],
        }
    }

    #[test]
    fn program_json_round_trips_64_bit_ids_as_strings() {
        let doc = program_json(&sample_result());
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("path_id").and_then(Value::as_str),
            Some("81985529216486895") // 0x0123456789abcdef
        );
        assert_eq!(
            v.get("code_fnv").and_then(Value::as_str),
            Some("feedfacedeadbeef")
        );
    }

    #[test]
    fn baseline_write_and_check_round_trip() {
        let dir = std::env::temp_dir().join(format!("pokemu-conf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let results = vec![sample_result()];
        write_baselines(&dir, &results).unwrap();
        assert!(check_conformance(&dir, &results).unwrap().is_empty());

        // Tamper: change a deviation component in the committed file.
        let path = dir.join(file_name("chain/sample"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"mem\"", "\"eflags\"")).unwrap();
        let v = check_conformance(&dir, &results).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].program, "chain/sample");
        assert!(v[0].reason.contains("deviation"), "{}", v[0].reason);

        // A result with no baseline and an orphaned baseline both flag.
        let mut renamed = sample_result();
        renamed.name = "chain/renamed".into();
        let v = check_conformance(&dir, &[renamed]).unwrap();
        assert_eq!(v.len(), 2, "{v:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_baseline_dir_is_an_io_error_not_a_violation() {
        let dir = Path::new("/nonexistent/pokemu-roms");
        assert!(check_conformance(dir, &[]).is_err());
    }
}
