//! Execution targets (paper §5): the two emulators and the hardware oracle,
//! behind one interface that boots a test program, runs it to halt or
//! exception, and snapshots the final state.

use std::time::Instant;

use pokemu_hifi::HiFi;
use pokemu_hwref::{TrapReason, Vmm};
use pokemu_isa::snapshot::Snapshot;
use pokemu_isa::state::{attrs, Seg};
use pokemu_lofi::{Fidelity, Lofi};
use pokemu_rt::metrics;
use pokemu_symx::Dom;
use pokemu_testgen::{boot_state, layout, TestProgram};

/// Step budget for one test program (baseline is ~3,400 instructions).
pub const STEP_BUDGET: u64 = 50_000;

/// Anything that can execute a test program and report the final state.
pub trait Target {
    /// The target's display name.
    fn name(&self) -> &'static str;
    /// Boots the program, runs it, and snapshots the result.
    fn run_program(&mut self, prog: &TestProgram) -> Snapshot;
}

/// Bills one target execution: a deterministic run counter
/// (`target.<name>.runs`) plus, when timing is on, wall time in
/// `target.<name>.ns`. The per-run mean `ns / runs` is what
/// `pokemu-report perf` turns into the lofi/hifi throughput ratio — the
/// direct observable for the e3 inversion (DBT slower than the
/// interpreter on short programs).
fn billed<F: FnOnce() -> Snapshot>(name: &'static str, run: F) -> Snapshot {
    let (runs, ns, frame) = match name {
        "hifi" => (
            metrics::counter("target.hifi.runs"),
            metrics::timer("target.hifi.ns"),
            "target.hifi",
        ),
        "lofi" => (
            metrics::counter("target.lofi.runs"),
            metrics::timer("target.lofi.ns"),
            "target.lofi",
        ),
        _ => (
            metrics::counter("target.hardware.runs"),
            metrics::timer("target.hardware.ns"),
            "target.hardware",
        ),
    };
    runs.inc();
    let _f = pokemu_rt::prof::frame(frame);
    let t = pokemu_rt::prof::timing_enabled().then(Instant::now);
    let snap = run();
    if let Some(t) = t {
        ns.add(t.elapsed());
    }
    snap
}

/// The Hi-Fi emulator as a target.
#[derive(Debug, Default)]
pub struct HiFiTarget;

/// The Lo-Fi emulator as a target, with a fidelity profile.
#[derive(Debug)]
pub struct LofiTarget {
    /// The fidelity profile to run with.
    pub fidelity: Fidelity,
}

impl Default for LofiTarget {
    fn default() -> Self {
        LofiTarget {
            fidelity: Fidelity::QEMU_LIKE,
        }
    }
}

/// The hardware oracle (VMM-supervised reference execution).
#[derive(Debug, Default)]
pub struct HardwareTarget;

impl Target for HiFiTarget {
    fn name(&self) -> &'static str {
        "hifi"
    }

    fn run_program(&mut self, prog: &TestProgram) -> Snapshot {
        billed("hifi", || {
            let mut emu = HiFi::new();
            {
                let (d, m) = emu.parts_mut();
                apply_boot(d, m);
            }
            emu.load_image(layout::CODE_BASE, &prog.code);
            let exit = emu.run(STEP_BUDGET);
            emu.snapshot(exit)
        })
    }
}

impl Target for LofiTarget {
    fn name(&self) -> &'static str {
        "lofi"
    }

    fn run_program(&mut self, prog: &TestProgram) -> Snapshot {
        let fidelity = self.fidelity;
        billed("lofi", move || {
            let mut emu = Lofi::new(fidelity);
            let boot = boot_state();
            {
                let m = emu.machine_mut();
                m.cr0 = boot.cr0;
                m.eip = boot.eip;
                m.gpr[4] = boot.esp;
                for i in 0..6 {
                    let typ: u16 = if i == 1 { 0xb } else { 0x3 };
                    m.segs[i] = pokemu_lofi::state::LofiSeg {
                        selector: 0x8,
                        base: 0,
                        limit: 0xffff_ffff,
                        attrs: typ
                            | (1 << attrs::S as u16)
                            | (1 << attrs::P as u16)
                            | (1 << attrs::DB as u16)
                            | (1 << attrs::G as u16),
                    };
                }
            }
            emu.load_image(layout::CODE_BASE, &prog.code);
            // Block budget: blocks hold up to 8 instructions; use the same
            // step-scale budget.
            let exit = emu.run(STEP_BUDGET);
            emu.snapshot(exit)
        })
    }
}

impl Target for HardwareTarget {
    fn name(&self) -> &'static str {
        "hardware"
    }

    fn run_program(&mut self, prog: &TestProgram) -> Snapshot {
        billed("hardware", || {
            let mut vmm = Vmm::new();
            {
                let (d, m) = vmm.parts_mut();
                apply_boot(d, m);
            }
            vmm.load_image(layout::CODE_BASE, &prog.code);
            let reason = vmm.run(STEP_BUDGET);
            let _ = matches!(reason, TrapReason::Halt);
            vmm.snapshot(reason)
        })
    }
}

/// Applies the boot-loader state to a reference-interpreter machine.
pub fn apply_boot(d: &mut pokemu_symx::Concrete, m: &mut pokemu_isa::Machine<pokemu_symx::CVal>) {
    let boot = boot_state();
    m.cr0 = d.constant(32, boot.cr0 as u64);
    m.eip = boot.eip;
    m.gpr[4] = d.constant(32, boot.esp as u64);
    for seg in Seg::ALL {
        let typ: u64 = if seg == Seg::Cs { 0xb } else { 0x3 };
        let a = typ
            | (1 << attrs::S as u64)
            | (1 << attrs::P as u64)
            | (1 << attrs::DB as u64)
            | (1 << attrs::G as u64);
        let s = &mut m.segs[seg as usize];
        s.selector = d.constant(16, 0x8);
        s.cache.base = d.constant(32, 0);
        s.cache.limit = d.constant(32, 0xffff_ffff);
        s.cache.attrs = d.constant(attrs::WIDTH, a);
    }
}

/// Runs the baseline-only program on the hardware oracle and returns its
/// final state: the concrete environment the exploration starts from
/// (paper §6.1: "as concrete inputs we used a snapshot of the baseline
/// machine state").
pub fn baseline_snapshot() -> Snapshot {
    let prog = TestProgram::baseline_only("baseline".into(), &[0x90]).expect("baseline builds");
    let mut hw = HardwareTarget;
    let snap = hw.run_program(&prog);
    assert_eq!(
        snap.outcome,
        pokemu_isa::snapshot::Outcome::Halted,
        "the baseline initializer must complete"
    );
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_targets_complete_the_baseline() {
        let prog = TestProgram::baseline_only("nop".into(), &[0x90]).unwrap();
        let hs = HiFiTarget.run_program(&prog);
        let ls = LofiTarget::default().run_program(&prog);
        let ws = HardwareTarget.run_program(&prog);
        assert_eq!(hs.outcome, pokemu_isa::snapshot::Outcome::Halted);
        assert!(hs.same_behavior(&ls), "{:?}", hs.diff(&ls));
        assert!(hs.same_behavior(&ws), "{:?}", hs.diff(&ws));
    }
}
