//! Manifest → run-ledger bridge: folds one finished cross-validation run
//! into a [`pokemu_rt::history::RunRecord`] and appends it to the
//! append-only history store (`target/history/ledger.jsonl`, DESIGN.md §12).
//!
//! The record's `det` section carries only fields that are byte-identical
//! across thread counts and repeat runs of the same config — work counts,
//! coverage populations, deviation clusters, run-delta counters, hot-TB
//! execution deltas — so the `pokemu-report trend` gate can compare them
//! exactly (MAD 0 ⇒ any change is a regression). Stage wall times,
//! per-origin solver nanoseconds, and histogram percentiles go into the
//! `timing` section, which is only ever banded.

use std::collections::BTreeMap;
use std::time::Duration;

use pokemu_rt::coverage::CoverageSnapshot;
use pokemu_rt::history::{self, RunRecord};
use pokemu_rt::{metrics, MetricsSnapshot};

use crate::pipeline::{CrossValidation, PipelineConfig};

/// Counter namespaces excluded from the `det` section: trace bookkeeping is
/// scheduling-dependent, and the manifest/history writers must not observe
/// their own side effects.
const EXCLUDED_COUNTER_PREFIXES: [&str; 3] = ["trace.", "manifest.", "history."];

/// Config fingerprint for a pipeline run: the workload-shaping config
/// fields plus the process context and tracked environment (see
/// [`history::fingerprint`]). The thread count is deliberately excluded —
/// deterministic fields are thread-invariant by the repo's replay contract,
/// so runs at 1/2/8 threads belong to one trend group.
pub fn config_fingerprint(config: &PipelineConfig) -> String {
    history::fingerprint(&[
        format!("first_byte={:?}", config.first_byte),
        format!("second_byte={:?}", config.second_byte),
        format!("max_instructions={}", config.max_instructions),
        format!("max_paths_per_insn={}", config.max_paths_per_insn),
        format!("lofi_fidelity={:?}", config.lofi_fidelity),
    ])
}

/// Per-TB execution-count delta for this run: `after` (cumulative hot-TB
/// table) minus `before` (the table snapshotted at run start), dropping
/// zero rows. Sorted by count descending then eip ascending — the same
/// deterministic order `pokemu_lofi::hot_tbs` guarantees.
pub fn hot_tb_delta(before: &BTreeMap<u32, u64>, after: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out: Vec<(u32, u64)> = after
        .iter()
        .filter_map(|&(eip, n)| {
            let d = n.saturating_sub(before.get(&eip).copied().unwrap_or(0));
            (d > 0).then_some((eip, d))
        })
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Hot-TB rows recorded per run record (level-3 attribution material).
const HOT_TB_ROWS: usize = 16;

fn ns(d: Duration) -> f64 {
    d.as_nanos() as f64
}

/// Builds the ledger record for one finished run. Pure — no I/O, no global
/// reads — so tests can assert determinism without touching a ledger file.
pub fn build_record(
    run_id: &str,
    config: &PipelineConfig,
    out: &CrossValidation,
    delta: &MetricsSnapshot,
    coverage: &CoverageSnapshot,
    hot_delta: &[(u32, u64)],
) -> RunRecord {
    let mut r = RunRecord::new("pipeline", run_id, config_fingerprint(config));

    // Headline work counts (§6 numbers, all deterministic).
    r.det("count.candidates", out.candidates as u64);
    r.det("count.unique_instructions", out.unique_instructions as u64);
    r.det("count.fully_explored", out.fully_explored as u64);
    r.det("count.total_paths", out.total_paths as u64);
    r.det("count.lofi_differences", out.lofi_differences as u64);
    r.det("count.hifi_differences", out.hifi_differences as u64);
    r.det("count.lofi_filtered", out.lofi_filtered as u64);
    r.det("count.hifi_filtered", out.hifi_filtered as u64);
    r.det("count.deviations", out.deviations.len() as u64);
    r.det("count.solver_queries", out.stages.solver_queries);

    // Robustness outcome: deterministic under a deterministic fault plan.
    r.det("robust.completed", out.completed as u64);
    r.det("robust.quarantined", out.quarantined.len() as u64);
    r.det("robust.skipped", out.skipped_instructions as u64);
    r.det("robust.unknown_queries", out.unknown_queries);
    r.det("robust.infeasible_paths", out.infeasible_paths as u64);

    // Run-delta counters (queries by origin, chain/lookup hit rates, …).
    for (name, value) in &delta.counters {
        if EXCLUDED_COUNTER_PREFIXES
            .iter()
            .any(|p| name.starts_with(p))
        {
            continue;
        }
        r.det(format!("ctr.{name}"), *value);
    }

    // Coverage population per layer (cumulative bit count, idempotent).
    for (name, map) in &coverage.maps {
        let short = name.strip_prefix("coverage.").unwrap_or(name);
        r.det(format!("cov.{short}.set"), map.set_count() as u64);
    }

    // Deviation clusters by root cause.
    for (cause, count, _) in out.lofi_clusters.iter() {
        r.det(format!("cluster.lofi.{cause}"), count as u64);
    }
    for (cause, count, _) in out.hifi_clusters.iter() {
        r.det(format!("cluster.hifi.{cause}"), count as u64);
    }

    // Hot-TB execution deltas: which generated code ran, and how much.
    for &(eip, execs) in hot_delta.iter().take(HOT_TB_ROWS) {
        r.det(format!("hot_tb.0x{eip:08x}"), execs);
    }

    // Timing: stage wall clocks from StageStats (always present, so
    // attribution works even without POKEMU_PROF)…
    r.timing("wall.total", ns(out.stages.total_wall));
    r.timing("wall.explore_insns", ns(out.stages.explore_insns));
    r.timing("wall.parallel", ns(out.stages.parallel_wall));
    r.timing("wall.analyze", ns(out.stages.analyze));
    r.timing("wall.generate", ns(out.stages.generate));
    r.timing("wall.execute", ns(out.stages.execute));
    // …plus every run-delta timer (per-origin solver time when profiling
    // is on) and histogram percentiles under documented names.
    for (name, value) in &delta.timers {
        r.timing(name.clone(), *value as f64);
    }
    for (name, h) in &delta.histograms {
        if h.count > 0 {
            r.timing(format!("p50.{name}"), h.p50() as f64);
            r.timing(format!("p95.{name}"), h.p95() as f64);
            r.timing(format!("p99.{name}"), h.p99() as f64);
        }
    }
    r
}

/// Appends a record to the default ledger, degrading like the manifest
/// writer: a failed write feeds `history.write_failures` and stderr, never
/// a panic — a full disk at campaign end still leaves the in-memory result.
pub fn append_record(record: RunRecord) {
    match history::append(record) {
        Ok(_) => {}
        Err(e) => {
            metrics::counter("history.write_failures").inc();
            eprintln!("[history] append failed: {e}");
        }
    }
}
