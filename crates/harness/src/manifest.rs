//! Run manifests: one JSON file that fully describes a pipeline run.
//!
//! `run_cross_validation` writes `target/run/<run-id>/manifest.json` when
//! armed ([`PipelineConfig::manifest`] or `POKEMU_RUN_MANIFEST=1`),
//! aggregating everything the run's observability layers produced:
//!
//! ```json
//! {
//!   "run_id": "smoke",
//!   "completed": true,
//!   "config": { "first_byte": 128, "threads": 2, ... },
//!   "counts": { "candidates": 27, "total_paths": 54, ... },
//!   "timings_ns": { "total_wall": ..., "explore_insns": ..., ... },
//!   "metrics": { "counters": {...}, "timers_ns": {...} },
//!   "coverage": { "coverage.opcode": {"bits":512,"set":1,"indices":[128]}, ... },
//!   "clusters": { "lofi": [ {"cause":"...","count":3,"examples":[...]} ], "hifi": [] },
//!   "robustness": { "quarantined": 0, "skipped_instructions": 0,
//!                   "unknown_queries": 0, "infeasible_paths": 0, "quarantine": [] },
//!   "deviations": [ {"target":"lofi","test":"...","insn":"f7f1",
//!                    "path_id":123456789,"cause":"...","components":[...]} ]
//! }
//! ```
//!
//! `"completed": false` marks a run cut short by the whole-run deadline
//! (`POKEMU_RUN_DEADLINE_MS`): every section still reflects the work that
//! finished, so a partial manifest is useful evidence, not garbage.
//!
//! `counts`, `coverage`, `clusters`, and `deviations` are deterministic for
//! a fixed config and seed (thread-count-invariant; proven by
//! `tests/deterministic_replay.rs`), which is what lets CI commit a
//! baseline manifest and gate on `pokemu-report diff`. `timings_ns` and
//! `metrics.timers_ns` are wall-clock measurements — informational only,
//! never compared.

use std::io;
use std::path::PathBuf;

use pokemu_rt::coverage::CoverageSnapshot;
use pokemu_rt::json::escape;
use pokemu_rt::MetricsSnapshot;

use crate::pipeline::{CrossValidation, DeviationRecord, PipelineConfig};

/// Environment variable that arms manifest writing (any value but `0`).
pub const MANIFEST_ENV: &str = "POKEMU_RUN_MANIFEST";

/// Environment variable naming the run (the `<run-id>` directory).
pub const RUN_ID_ENV: &str = "POKEMU_RUN_ID";

/// Whether the environment arms manifest writing.
pub fn env_enabled() -> bool {
    std::env::var(MANIFEST_ENV)
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// The run id: `POKEMU_RUN_ID`, or `pid-<pid>` so concurrent unnamed runs
/// cannot clobber each other's directories.
pub fn resolve_run_id() -> String {
    match std::env::var(RUN_ID_ENV) {
        Ok(id) if !id.is_empty() => sanitize(&id),
        _ => format!("pid-{}", std::process::id()),
    }
}

/// Keeps run ids path-safe: alphanumerics, `-`, `_`, `.`; everything else
/// becomes `-`.
fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The artifact directory for a run: `target/run/<run-id>/`.
pub fn run_dir(run_id: &str) -> PathBuf {
    pokemu_rt::bench::target_dir().join("run").join(run_id)
}

/// Degrades a failed run-artifact write without panicking, and — unlike a
/// bare counter bump — keeps the *attribution*: which fleet shard (from
/// `POKEMU_FLEET_SHARD`, `none` outside a fleet worker) hit which OS error
/// writing which artifact. The detail lands in the flight recorder (so a
/// later quarantine/panic dump carries it) and on stderr (so a fleet
/// coordinator's per-shard `worker.log` names the failure); the
/// `manifest.write_failures` counter still bumps for the metrics trail.
pub fn note_write_failure(what: &str, err: &io::Error) {
    pokemu_rt::metrics::counter("manifest.write_failures").inc();
    let shard = std::env::var(crate::fleet::SHARD_ENV).unwrap_or_else(|_| "none".to_owned());
    let os = err
        .raw_os_error()
        .map_or_else(|| "none".to_owned(), |c| c.to_string());
    pokemu_rt::flight::note("manifest.write_failure", || {
        format!("{what} failed: shard={shard} os_error={os}: {err}")
    });
    eprintln!("[manifest] {what} failed (shard {shard}, os error {os}): {err}");
}

/// A fully rendered run manifest, ready to write.
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// The run id (directory name under `target/run/`).
    pub run_id: String,
    json: String,
}

impl RunManifest {
    /// Renders a manifest from a finished run: its config, counters and
    /// clusters, the run's metrics delta, and the process's cumulative
    /// coverage (idempotent bitmaps, so deterministic for a fixed binary
    /// and config).
    pub fn build(
        run_id: &str,
        config: &PipelineConfig,
        out: &CrossValidation,
        metrics_delta: &MetricsSnapshot,
        coverage: &CoverageSnapshot,
    ) -> RunManifest {
        let s = &out.stages;
        let config_json = format!(
            "{{\"first_byte\":{},\"second_byte\":{},\"max_instructions\":{},\
             \"max_paths_per_insn\":{},\"lofi_fidelity\":\"{:?}\",\"threads\":{}}}",
            opt_u8(config.first_byte),
            opt_u8(config.second_byte),
            config.max_instructions,
            config.max_paths_per_insn,
            config.lofi_fidelity,
            config.threads,
        );
        let counts_json = format!(
            "{{\"candidates\":{},\"unique_instructions\":{},\"fully_explored\":{},\
             \"total_paths\":{},\"lofi_differences\":{},\"hifi_differences\":{},\
             \"lofi_filtered\":{},\"hifi_filtered\":{}}}",
            out.candidates,
            out.unique_instructions,
            out.fully_explored,
            out.total_paths,
            out.lofi_differences,
            out.hifi_differences,
            out.lofi_filtered,
            out.hifi_filtered,
        );
        let timings_json = format!(
            "{{\"total_wall\":{},\"explore_insns\":{},\"generate\":{},\"execute\":{},\
             \"analyze\":{},\"parallel_wall\":{},\"solver_queries\":{}}}",
            s.total_wall.as_nanos(),
            s.explore_insns.as_nanos(),
            s.generate.as_nanos(),
            s.execute.as_nanos(),
            s.analyze.as_nanos(),
            s.parallel_wall.as_nanos(),
            s.solver_queries,
        );
        let counters: Vec<String> = metrics_delta
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        let timers: Vec<String> = metrics_delta
            .timers
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
            .collect();
        let metrics_json = format!(
            "{{\"counters\":{{{}}},\"timers_ns\":{{{}}}}}",
            counters.join(","),
            timers.join(",")
        );
        let clusters_json = format!(
            "{{\"lofi\":{},\"hifi\":{}}}",
            clusters_json(&out.lofi_clusters),
            clusters_json(&out.hifi_clusters)
        );
        let deviations: Vec<String> = out.deviations.iter().map(deviation_json).collect();
        let quarantine: Vec<String> = out.quarantined.iter().map(quarantine_json).collect();
        let robustness_json = format!(
            "{{\"quarantined\":{},\"skipped_instructions\":{},\"unknown_queries\":{},\
             \"infeasible_paths\":{},\"quarantine\":[{}]}}",
            out.quarantined.len(),
            out.skipped_instructions,
            out.unknown_queries,
            out.infeasible_paths,
            quarantine.join(","),
        );
        let json = format!(
            "{{\n\"run_id\":\"{}\",\n\"completed\":{},\n\"config\":{},\n\"counts\":{},\n\
             \"timings_ns\":{},\n\"metrics\":{},\n\"coverage\":{},\n\"clusters\":{},\n\
             \"robustness\":{},\n\"deviations\":[{}]\n}}\n",
            escape(run_id),
            out.completed,
            config_json,
            counts_json,
            timings_json,
            metrics_json,
            coverage.to_json_object(),
            clusters_json,
            robustness_json,
            deviations.join(","),
        );
        RunManifest {
            run_id: run_id.to_owned(),
            json,
        }
    }

    /// The rendered JSON document.
    pub fn to_json(&self) -> &str {
        &self.json
    }

    /// Writes `manifest.json` into this run's `target/run/<run-id>/`
    /// directory, creating it as needed, and returns the file path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = run_dir(&self.run_id);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, &self.json)?;
        Ok(path)
    }
}

fn opt_u8(v: Option<u8>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_owned(),
    }
}

fn clusters_json(c: &crate::compare::Clusters) -> String {
    let entries: Vec<String> = c
        .iter()
        .map(|(cause, count, examples)| {
            let ex: Vec<String> = examples
                .iter()
                .map(|e| format!("\"{}\"", escape(e)))
                .collect();
            format!(
                "{{\"cause\":\"{}\",\"count\":{count},\"examples\":[{}]}}",
                escape(&cause.to_string()),
                ex.join(",")
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Renders one quarantine entry. The worker id is *not* serialized: it
/// depends on thread scheduling, and the manifest's robustness section must
/// stay deterministic for the baseline diff gate. The captured flight
/// events are summarized by count (the full dump lives next to the
/// manifest in `flightrec-quarantine.jsonl`).
fn quarantine_json(q: &pokemu_rt::QuarantineRecord) -> String {
    let item = match q.item {
        Some(i) => i.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"item\":{item},\"message\":\"{}\",\"flight_events\":{}}}",
        escape(&q.message),
        q.flight.len()
    )
}

pub(crate) fn deviation_json(d: &DeviationRecord) -> String {
    let components: Vec<String> = d
        .components
        .iter()
        .map(|c| format!("\"{}\"", escape(c)))
        .collect();
    format!(
        "\n {{\"target\":\"{}\",\"test\":\"{}\",\"insn\":\"{}\",\"path_id\":{},\
         \"cause\":\"{}\",\"components\":[{}]}}",
        escape(&d.target),
        escape(&d.test),
        escape(&d.insn_hex),
        d.path_id,
        escape(&d.cause),
        components.join(",")
    )
}
