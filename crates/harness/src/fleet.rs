//! Crash-safe sharded exploration fleet (DESIGN.md §13).
//!
//! The paper's cost story (§6: 545 h of test generation) only amortizes if
//! long campaigns survive crashes and re-validation is incremental. This
//! module is the ROADMAP's "fleet mode": a *coordinator* process partitions
//! the instruction space into shards by a stable hash of the opcode-class
//! name, spawns one *worker process* per shard (`pokemu-fleet worker
//! --shard N`), and merges the per-shard artifacts under
//! `target/fleet/<run>/` — run-manifest JSON files are the only interchange
//! format, no sockets, no extra dependencies.
//!
//! Robustness core, mirroring the in-process layers one level up:
//!
//! - **Checkpoint-resume**: a worker writes `shard-N/checkpoint.json`
//!   atomically (write-temp + rename) after *every* completed instruction,
//!   carrying the per-instruction results and the cumulative coverage
//!   snapshot. A worker killed mid-shard — SIGKILL included — resumes from
//!   the last checkpoint and reproduces the uninterrupted run's merged
//!   manifest byte for byte (`tests/fleet_recovery.rs`).
//! - **Watchdog + retry**: the coordinator polls worker exit status and the
//!   per-shard heartbeat file; a non-zero exit, a missing manifest, or a
//!   stale heartbeat fails the attempt, and the shard is retried with
//!   bounded exponential backoff whose jitter is a pure function of
//!   `(seed, shard, attempt)` — the retry schedule replays exactly.
//! - **Process-level quarantine**: a shard that exhausts its attempts is
//!   demoted to a `poisoned` record in the merged manifest (the process
//!   analogue of PR-4's item quarantine); the run still completes, and
//!   `pokemu-report diff` gates on poisoned-shard growth by name.
//! - **Incremental re-validation**: a re-run skips shards whose `done.json`
//!   marker carries the same config fingerprint
//!   ([`pokemu_rt::history::fingerprint`]) and whose recorded coverage
//!   populations still match the shard manifest on disk.
//!
//! Failure drills are first-class: the `fleet.spawn`, `fleet.heartbeat`,
//! and `fleet.checkpoint` fault points accept the same `POKEMU_FAULT` spec
//! grammar as `pool.item`/`solver.check`, so CI can SIGKILL a worker after
//! its first checkpoint (`fleet.checkpoint:kill:1`) or starve every spawn
//! (`fleet.spawn:unknown:*`) deterministically.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

use pokemu_explore::{explore_instruction_space, InsnSpaceConfig};
use pokemu_isa::snapshot::Snapshot;
use pokemu_lofi::Fidelity;
use pokemu_rt::coverage::{CoverageSnapshot, MapSnapshot};
use pokemu_rt::history::{self, RunRecord};
use pokemu_rt::json::{self, escape, Value};
use pokemu_rt::{fault, metrics, rng};

use crate::compare::compare;
use crate::manifest::{deviation_json, note_write_failure};
use crate::pipeline::{generate_for_instruction, run_on_all_targets, DeviationRecord};
use crate::targets::baseline_snapshot;

/// Environment variable a worker sets to its shard name (`shard-N`) so
/// write-failure degradation ([`crate::manifest::note_write_failure`]) can
/// attribute artifact-write errors to the shard that hit them.
pub const SHARD_ENV: &str = "POKEMU_FLEET_SHARD";

/// Coordinator poll period for worker exits and heartbeat staleness.
const POLL: Duration = Duration::from_millis(10);

/// Fleet configuration: the workload slice (same knobs as
/// [`crate::pipeline::PipelineConfig`]) plus the process-fleet policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Run id: names `target/fleet/<run-id>/` and the merged manifest.
    pub run_id: String,
    /// Number of shards = number of worker processes.
    pub shards: usize,
    /// Restrict exploration to one first byte (None = whole space).
    pub first_byte: Option<u8>,
    /// Restrict the second byte as well.
    pub second_byte: Option<u8>,
    /// Per-instruction path cap (8192 in the paper).
    pub max_paths_per_insn: usize,
    /// Total attempts per shard before it is poisoned (≥ 1).
    pub max_attempts: u32,
    /// Backoff base: attempt k retries after `base·2^(k-1)` plus a seeded
    /// jitter in `[0, base)`.
    pub backoff_base: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Worker heartbeat write period.
    pub heartbeat_interval: Duration,
    /// Heartbeat age past which the watchdog kills the worker.
    pub heartbeat_stale: Duration,
    /// Worker argv prefix; empty means `[current_exe, "worker"]`, which is
    /// what both `pokemu-fleet` and the recovery test binary dispatch on.
    pub worker_cmd: Vec<String>,
    /// Extra environment for spawned workers (e.g. a `POKEMU_FAULT` spec
    /// that must arm the workers but not the coordinator).
    pub worker_env: Vec<(String, String)>,
    /// Artifact root; None = `target/fleet/<run-id>/`.
    pub root: Option<PathBuf>,
    /// Skip shards whose `done.json` fingerprint and recorded coverage
    /// populations are unchanged.
    pub incremental: bool,
    /// Append one `kind: "fleet"` record to the run ledger after merging.
    pub ledger: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            run_id: "fleet".to_owned(),
            shards: 2,
            first_byte: None,
            second_byte: None,
            max_paths_per_insn: 8192,
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_seed: 0x9e37_79b9_7f4a_7c15,
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_stale: Duration::from_secs(30),
            worker_cmd: Vec::new(),
            worker_env: Vec::new(),
            root: None,
            incremental: true,
            ledger: true,
        }
    }
}

/// How one shard ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// The shard's worker finished and its manifest was merged.
    Completed,
    /// The shard was skipped: its previous artifacts were still valid.
    Reused,
    /// Every attempt failed; the shard is quarantined at process level.
    Poisoned(String),
}

/// One shard's final report.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard name (`shard-N`).
    pub name: String,
    /// Worker attempts consumed (0 for a reused shard).
    pub attempts: u32,
    /// Terminal state.
    pub status: ShardStatus,
}

/// A finished fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The run id.
    pub run_id: String,
    /// Artifact root (`target/fleet/<run-id>/` unless overridden).
    pub root: PathBuf,
    /// Path of the merged manifest.
    pub merged_path: PathBuf,
    /// Per-shard terminal reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Poisoned shard names, sorted (empty on a healthy run).
    pub poisoned: Vec<String>,
    /// Shards skipped by incremental re-validation.
    pub reused: usize,
    /// Instructions across all merged shards.
    pub unique_instructions: usize,
    /// Explored paths across all merged shards.
    pub total_paths: usize,
    /// Deviations in the merged manifest (all shards' records, in global
    /// instruction order — shard partitioning guarantees no duplicates).
    pub deviations: usize,
}

/// Stable shard assignment: FNV-1a of the opcode-class name, mod the shard
/// count. A pure function of the class, so every worker computes the same
/// partition from its own instruction-space exploration — the coordinator
/// never ships work lists.
pub fn shard_of(class_name: &str, shards: usize) -> usize {
    (history::fnv1a64(class_name.as_bytes()) % shards.max(1) as u64) as usize
}

/// Config fingerprint for a fleet run: the workload-shaping fields plus the
/// shard count (a different partition invalidates per-shard reuse), through
/// [`history::fingerprint`] so the process context and tracked environment
/// participate exactly like pipeline fingerprints.
pub fn config_fingerprint(config: &FleetConfig) -> String {
    history::fingerprint(&[
        "fleet".to_owned(),
        format!("first_byte={:?}", config.first_byte),
        format!("second_byte={:?}", config.second_byte),
        format!("max_paths_per_insn={}", config.max_paths_per_insn),
        format!("shards={}", config.shards),
    ])
}

fn shard_name(shard: usize) -> String {
    format!("shard-{shard}")
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Write-temp + rename: a crash between the two calls leaves the previous
/// file intact, never a torn one. Same-directory rename is atomic on every
/// platform the repo targets.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Per-instruction records (the checkpoint / shard-manifest payload)
// ---------------------------------------------------------------------------

/// Everything one instruction contributes to the merged manifest. The
/// `index` is the instruction's position in the *global* sorted class list,
/// so the merge can interleave shards back into the exact analysis order
/// `run_cross_validation` would have used.
#[derive(Debug, Clone)]
struct InsnRecord {
    index: usize,
    name: String,
    hex: String,
    complete: bool,
    paths: usize,
    solver_queries: u64,
    unknown_queries: u64,
    infeasible_paths: usize,
    lofi_differences: usize,
    hifi_differences: usize,
    lofi_filtered: usize,
    hifi_filtered: usize,
    deviations: Vec<DeviationRecord>,
}

fn insn_json(r: &InsnRecord) -> String {
    let deviations: Vec<String> = r.deviations.iter().map(deviation_json).collect();
    format!(
        "{{\"index\":{},\"name\":\"{}\",\"hex\":\"{}\",\"complete\":{},\"paths\":{},\
         \"solver_queries\":{},\"unknown_queries\":{},\"infeasible_paths\":{},\
         \"lofi_differences\":{},\"hifi_differences\":{},\"lofi_filtered\":{},\
         \"hifi_filtered\":{},\"deviations\":[{}]}}",
        r.index,
        escape(&r.name),
        escape(&r.hex),
        r.complete,
        r.paths,
        r.solver_queries,
        r.unknown_queries,
        r.infeasible_paths,
        r.lofi_differences,
        r.hifi_differences,
        r.lofi_filtered,
        r.hifi_filtered,
        deviations.join(","),
    )
}

fn parse_deviation(v: &Value) -> Option<DeviationRecord> {
    Some(DeviationRecord {
        target: v.get("target")?.as_str()?.to_owned(),
        test: v.get("test")?.as_str()?.to_owned(),
        insn_hex: v.get("insn")?.as_str()?.to_owned(),
        path_id: v.get("path_id")?.as_u64()?,
        cause: v.get("cause")?.as_str()?.to_owned(),
        components: v
            .get("components")?
            .as_array()?
            .iter()
            .filter_map(|c| c.as_str().map(str::to_owned))
            .collect(),
    })
}

fn parse_insn(v: &Value) -> Option<InsnRecord> {
    Some(InsnRecord {
        index: v.get("index")?.as_u64()? as usize,
        name: v.get("name")?.as_str()?.to_owned(),
        hex: v.get("hex")?.as_str()?.to_owned(),
        complete: v.get("complete")?.as_bool()?,
        paths: v.get("paths")?.as_u64()? as usize,
        solver_queries: v.get("solver_queries")?.as_u64()?,
        unknown_queries: v.get("unknown_queries")?.as_u64()?,
        infeasible_paths: v.get("infeasible_paths")?.as_u64()? as usize,
        lofi_differences: v.get("lofi_differences")?.as_u64()? as usize,
        hifi_differences: v.get("hifi_differences")?.as_u64()? as usize,
        lofi_filtered: v.get("lofi_filtered")?.as_u64()? as usize,
        hifi_filtered: v.get("hifi_filtered")?.as_u64()? as usize,
        deviations: v
            .get("deviations")?
            .as_array()?
            .iter()
            .map(parse_deviation)
            .collect::<Option<Vec<_>>>()?,
    })
}

fn parse_coverage(v: Option<&Value>) -> CoverageSnapshot {
    let mut maps = BTreeMap::new();
    if let Some(Value::Obj(entries)) = v {
        for (name, m) in entries {
            if let Some(snap) = MapSnapshot::from_value(m) {
                maps.insert(name.clone(), snap);
            }
        }
    }
    CoverageSnapshot { maps }
}

/// Bitwise union of two coverage snapshots (bitmaps are monotone, so union
/// is exactly "everything either process set"). A same-named map whose bit
/// width differs between the two sides — possible when shards ran under
/// different builds — is widened to the larger width and OR-ed, so neither
/// side's set bits are ever silently discarded.
fn union_coverage(a: &CoverageSnapshot, b: &CoverageSnapshot) -> CoverageSnapshot {
    let mut maps = a.maps.clone();
    for (name, m) in &b.maps {
        match maps.get_mut(name) {
            Some(existing) => {
                if existing.bits != m.bits {
                    eprintln!(
                        "[fleet] coverage map {name} width mismatch ({} vs {} bits); \
                         widening and merging",
                        existing.bits, m.bits
                    );
                    metrics::counter("fleet.coverage_width_mismatches").inc();
                }
                if m.bits > existing.bits {
                    existing.bits = m.bits;
                    existing.words.resize(m.words.len(), 0);
                }
                for (w, v) in existing.words.iter_mut().zip(&m.words) {
                    *w |= v;
                }
            }
            None => {
                maps.insert(name.clone(), m.clone());
            }
        }
    }
    CoverageSnapshot { maps }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

struct WorkerArgs {
    shard: usize,
    shards: usize,
    root: PathBuf,
    first_byte: Option<u8>,
    second_byte: Option<u8>,
    max_paths: usize,
    config_fp: String,
    heartbeat_ms: u64,
}

fn parse_worker_args(args: &[String]) -> Result<WorkerArgs, String> {
    let mut out = WorkerArgs {
        shard: 0,
        shards: 1,
        root: PathBuf::from("target/fleet/adhoc"),
        first_byte: None,
        second_byte: None,
        max_paths: 8192,
        config_fp: String::new(),
        heartbeat_ms: 250,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--shard" => out.shard = val("--shard")?.parse().map_err(|e| format!("{e}"))?,
            "--shards" => out.shards = val("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--root" => out.root = PathBuf::from(val("--root")?),
            "--first-byte" => {
                out.first_byte = Some(val("--first-byte")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--second-byte" => {
                out.second_byte = Some(val("--second-byte")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-paths" => {
                out.max_paths = val("--max-paths")?.parse().map_err(|e| format!("{e}"))?
            }
            "--config-fp" => out.config_fp = val("--config-fp")?,
            "--heartbeat-ms" => {
                out.heartbeat_ms = val("--heartbeat-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            other => return Err(format!("unknown worker argument: {other}")),
        }
    }
    if out.shard >= out.shards {
        return Err(format!(
            "--shard {} out of range for --shards {}",
            out.shard, out.shards
        ));
    }
    Ok(out)
}

/// Worker entry point: `pokemu-fleet worker <flags>` (and the recovery
/// test binary) dispatch here. Returns the process exit code; any error is
/// printed to stderr, which the coordinator captures in
/// `shard-N/worker.log` for attribution.
pub fn worker_main(args: &[String]) -> i32 {
    let parsed = match parse_worker_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("[fleet-worker] bad arguments: {e}");
            return 2;
        }
    };
    match worker_run(&parsed) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("[fleet-worker] shard {} failed: {e}", parsed.shard);
            1
        }
    }
}

fn heartbeat_loop(dir: PathBuf, interval: Duration) {
    let mut seq: u64 = 0;
    loop {
        seq += 1;
        // A latency fault here stalls the heartbeat past the watchdog's
        // staleness window; a panic kills only this thread, which has the
        // same observable effect — both drills exercise the stale-kill
        // path without touching the worker's actual work.
        fault::inject("fleet.heartbeat", seq);
        let write = std::fs::write(dir.join("heartbeat.tmp"), seq.to_string())
            .and_then(|()| std::fs::rename(dir.join("heartbeat.tmp"), dir.join("heartbeat")));
        if write.is_err() {
            // A heartbeat that cannot land is indistinguishable from a
            // wedged worker; let the watchdog make the call.
        }
        std::thread::sleep(interval);
    }
}

struct Checkpoint {
    config_fp: String,
    insns: Vec<InsnRecord>,
    coverage: CoverageSnapshot,
}

fn render_checkpoint(c: &Checkpoint) -> String {
    let insns: Vec<String> = c.insns.iter().map(insn_json).collect();
    format!(
        "{{\n\"config_fp\":\"{}\",\n\"insns\":[\n{}\n],\n\"coverage\":{}\n}}\n",
        escape(&c.config_fp),
        insns.join(",\n"),
        c.coverage.to_json_object(),
    )
}

/// Loads the shard checkpoint if it exists and matches this run's config
/// fingerprint; a missing, torn, or stale-config checkpoint starts the
/// shard from scratch (never an error — the checkpoint is an optimization,
/// not a correctness input).
fn load_checkpoint(path: &Path, config_fp: &str) -> Checkpoint {
    let fresh = || Checkpoint {
        config_fp: config_fp.to_owned(),
        insns: Vec::new(),
        coverage: CoverageSnapshot::default(),
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return fresh();
    };
    let Ok(root) = json::parse(&text) else {
        return fresh();
    };
    if root.get("config_fp").and_then(Value::as_str) != Some(config_fp) {
        return fresh();
    }
    let Some(insns) = root
        .get("insns")
        .and_then(Value::as_array)
        .and_then(|a| a.iter().map(parse_insn).collect::<Option<Vec<_>>>())
    else {
        return fresh();
    };
    Checkpoint {
        config_fp: config_fp.to_owned(),
        insns,
        coverage: parse_coverage(root.get("coverage")),
    }
}

/// Runs one instruction exactly like the pipeline's worker + analysis
/// stages: generate test programs, execute on all three targets, compare
/// with the undefined-behavior filter, and record every deviation with
/// provenance — in program order, lofi before hifi per case, so the merged
/// deviation list is byte-identical to a single-process run's.
fn process_instruction(
    index: usize,
    name: &str,
    bytes: &[u8],
    baseline: &Snapshot,
    max_paths: usize,
) -> InsnRecord {
    let gen = generate_for_instruction(name, bytes, baseline, max_paths, None);
    let mut rec = InsnRecord {
        index,
        name: name.to_owned(),
        hex: hex(bytes),
        complete: gen.complete,
        paths: gen.programs.len(),
        solver_queries: gen.solver_queries,
        unknown_queries: gen.unknown_queries,
        infeasible_paths: gen.infeasible_paths,
        lofi_differences: 0,
        hifi_differences: 0,
        lofi_filtered: 0,
        hifi_filtered: 0,
        deviations: Vec::new(),
    };
    for p in &gen.programs {
        let case = run_on_all_targets(p, Fidelity::QEMU_LIKE);
        if !case.hardware.same_behavior(&case.lofi) {
            rec.lofi_differences += 1;
        }
        if !case.hardware.same_behavior(&case.hifi) {
            rec.hifi_differences += 1;
        }
        if let Some(mut d) = compare(&case.hardware, &case.lofi, &p.test_insn) {
            d.path_id = p.path_id;
            rec.lofi_filtered += 1;
            rec.deviations.push(DeviationRecord {
                target: "lofi".to_owned(),
                test: case.name.clone(),
                insn_hex: rec.hex.clone(),
                path_id: d.path_id,
                cause: d.cause.to_string(),
                components: d.components.clone(),
            });
        }
        if let Some(mut d) = compare(&case.hardware, &case.hifi, &p.test_insn) {
            d.path_id = p.path_id;
            rec.hifi_filtered += 1;
            rec.deviations.push(DeviationRecord {
                target: "hifi".to_owned(),
                test: case.name.clone(),
                insn_hex: rec.hex.clone(),
                path_id: d.path_id,
                cause: d.cause.to_string(),
                components: d.components.clone(),
            });
        }
    }
    rec
}

fn worker_run(a: &WorkerArgs) -> io::Result<()> {
    // Attribution first: any artifact-write failure below names this shard.
    std::env::set_var(SHARD_ENV, shard_name(a.shard));
    let dir = a.root.join(shard_name(a.shard));
    std::fs::create_dir_all(&dir)?;

    let hb_dir = dir.clone();
    let hb_interval = Duration::from_millis(a.heartbeat_ms.max(1));
    std::thread::spawn(move || heartbeat_loop(hb_dir, hb_interval));

    let baseline = baseline_snapshot();
    let space = explore_instruction_space(InsnSpaceConfig {
        first_byte: a.first_byte,
        second_byte: a.second_byte,
        ..InsnSpaceConfig::default()
    });
    // Every worker derives the same global order and takes its slice by
    // stable hash; the (global) candidate count rides along so the merged
    // manifest can report it like a single-process run would.
    let slice: Vec<(usize, String, Vec<u8>)> = space
        .classes
        .iter()
        .enumerate()
        .map(|(i, rep)| (i, rep.class.to_string(), rep.bytes.clone()))
        .filter(|(_, name, _)| shard_of(name, a.shards) == a.shard)
        .collect();

    let ckpt_path = dir.join("checkpoint.json");
    let mut ckpt = load_checkpoint(&ckpt_path, &a.config_fp);
    if ckpt.insns.len() > slice.len() {
        // A checkpoint larger than the slice cannot belong to this config;
        // the fingerprint should have caught it, but never trust a resume
        // input further than it can be validated.
        ckpt = Checkpoint {
            config_fp: a.config_fp.clone(),
            insns: Vec::new(),
            coverage: CoverageSnapshot::default(),
        };
    }
    if !ckpt.insns.is_empty() {
        eprintln!(
            "[fleet-worker] shard {} resuming at instruction {}/{}",
            a.shard,
            ckpt.insns.len(),
            slice.len()
        );
        metrics::counter("fleet.resumes").inc();
    }

    for i in ckpt.insns.len()..slice.len() {
        let (index, name, bytes) = &slice[i];
        let rec = process_instruction(*index, name, bytes, &baseline, a.max_paths);
        // Cumulative coverage = bits from resumed instructions (checkpoint)
        // ∪ bits this process set; a killed instruction's partial bits are
        // deliberately dropped — its full re-run regenerates them.
        ckpt.coverage = union_coverage(&ckpt.coverage, &pokemu_rt::coverage::snapshot());
        ckpt.insns.push(rec);
        write_atomic(&ckpt_path, &render_checkpoint(&ckpt))?;
        // Fired *after* the rename with the cumulative completed count as
        // key: a `kill` fault here crashes exactly once — the resumed
        // attempt starts past this key — which is what makes the CI
        // kill-one-worker drill deterministic.
        fault::inject("fleet.checkpoint", ckpt.insns.len() as u64);
    }

    let doc = render_shard_manifest(a, space.candidates, &ckpt);
    if let Err(e) = write_atomic(&dir.join("manifest.json"), &doc) {
        note_write_failure("shard manifest write", &e);
        return Err(e);
    }
    // The reuse marker is written only after the manifest landed, and
    // records the coverage populations so a later incremental run can
    // detect a manifest that rotted underneath the marker.
    let cov: Vec<String> = ckpt
        .coverage
        .maps
        .iter()
        .map(|(name, m)| format!("\"{}\":{}", escape(name), m.set_count()))
        .collect();
    write_atomic(
        &dir.join("done.json"),
        &format!(
            "{{\"config_fp\":\"{}\",\"instructions\":{},\"cov\":{{{}}}}}\n",
            escape(&a.config_fp),
            ckpt.insns.len(),
            cov.join(",")
        ),
    )?;
    eprintln!(
        "[fleet-worker] shard {} done: {} instruction(s), {} deviation(s)",
        a.shard,
        ckpt.insns.len(),
        ckpt.insns.iter().map(|r| r.deviations.len()).sum::<usize>()
    );
    Ok(())
}

/// Renders a shard manifest: the standard run-manifest sections (so
/// `pokemu-report coverage/diff` can open a shard directly) plus the
/// per-instruction `insns` detail the merge interleaves.
fn render_shard_manifest(a: &WorkerArgs, candidates: usize, ckpt: &Checkpoint) -> String {
    let counts = sum_counts(&ckpt.insns);
    let deviations: Vec<String> = ckpt
        .insns
        .iter()
        .flat_map(|r| r.deviations.iter())
        .map(deviation_json)
        .collect();
    let insns: Vec<String> = ckpt.insns.iter().map(insn_json).collect();
    format!(
        "{{\n\"run_id\":\"{}\",\n\"completed\":true,\n\"shard\":{{\"index\":{},\"of\":{},\
         \"config_fp\":\"{}\",\"candidates\":{}}},\n\"counts\":{},\n\"coverage\":{},\n\
         \"clusters\":{},\n\"robustness\":{},\n\"deviations\":[{}],\n\"insns\":[\n{}\n]\n}}\n",
        shard_name(a.shard),
        a.shard,
        a.shards,
        escape(&a.config_fp),
        candidates,
        counts_json(candidates, &counts),
        ckpt.coverage.to_json_object(),
        clusters_json_of(&all_deviations(&ckpt.insns)),
        robustness_json(&counts, &[]),
        deviations.join(","),
        insns.join(",\n"),
    )
}

// ---------------------------------------------------------------------------
// Shared count/cluster rendering (worker manifest + merged manifest)
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct Counts {
    unique_instructions: usize,
    fully_explored: usize,
    total_paths: usize,
    lofi_differences: usize,
    hifi_differences: usize,
    lofi_filtered: usize,
    hifi_filtered: usize,
    unknown_queries: u64,
    infeasible_paths: usize,
    solver_queries: u64,
}

fn sum_counts(insns: &[InsnRecord]) -> Counts {
    let mut c = Counts {
        unique_instructions: insns.len(),
        ..Counts::default()
    };
    for r in insns {
        if r.complete {
            c.fully_explored += 1;
        }
        c.total_paths += r.paths;
        c.lofi_differences += r.lofi_differences;
        c.hifi_differences += r.hifi_differences;
        c.lofi_filtered += r.lofi_filtered;
        c.hifi_filtered += r.hifi_filtered;
        c.unknown_queries += r.unknown_queries;
        c.infeasible_paths += r.infeasible_paths;
        c.solver_queries += r.solver_queries;
    }
    c
}

fn counts_json(candidates: usize, c: &Counts) -> String {
    format!(
        "{{\"candidates\":{},\"unique_instructions\":{},\"fully_explored\":{},\
         \"total_paths\":{},\"lofi_differences\":{},\"hifi_differences\":{},\
         \"lofi_filtered\":{},\"hifi_filtered\":{}}}",
        candidates,
        c.unique_instructions,
        c.fully_explored,
        c.total_paths,
        c.lofi_differences,
        c.hifi_differences,
        c.lofi_filtered,
        c.hifi_filtered,
    )
}

fn robustness_json(c: &Counts, poisoned: &[String]) -> String {
    let names: Vec<String> = poisoned
        .iter()
        .map(|p| format!("\"{}\"", escape(p)))
        .collect();
    format!(
        "{{\"quarantined\":0,\"skipped_instructions\":0,\"unknown_queries\":{},\
         \"infeasible_paths\":{},\"quarantine\":[],\"poisoned_shards\":[{}]}}",
        c.unknown_queries,
        c.infeasible_paths,
        names.join(","),
    )
}

fn all_deviations(insns: &[InsnRecord]) -> Vec<DeviationRecord> {
    insns
        .iter()
        .flat_map(|r| r.deviations.iter().cloned())
        .collect()
}

/// Rebuilds the `clusters` section from a deviation list: per target, one
/// entry per root cause with the total count and the first ≤ 5 example test
/// names in deviation order — the same shape and caps as
/// [`crate::compare::Clusters`], sorted by cause string.
fn clusters_json_of(deviations: &[DeviationRecord]) -> String {
    let render = |target: &str| -> String {
        let mut by_cause: BTreeMap<&str, (usize, Vec<&str>)> = BTreeMap::new();
        for d in deviations.iter().filter(|d| d.target == target) {
            let entry = by_cause.entry(d.cause.as_str()).or_default();
            entry.0 += 1;
            if entry.1.len() < 5 {
                entry.1.push(&d.test);
            }
        }
        let entries: Vec<String> = by_cause
            .iter()
            .map(|(cause, (count, examples))| {
                let ex: Vec<String> = examples
                    .iter()
                    .map(|e| format!("\"{}\"", escape(e)))
                    .collect();
                format!(
                    "{{\"cause\":\"{}\",\"count\":{count},\"examples\":[{}]}}",
                    escape(cause),
                    ex.join(",")
                )
            })
            .collect();
        format!("[{}]", entries.join(","))
    };
    format!(
        "{{\"lofi\":{},\"hifi\":{}}}",
        render("lofi"),
        render("hifi")
    )
}

// ---------------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------------

/// Append-only diagnostics stream (`fleet-events.jsonl`): spawns, exits,
/// retries, stale-kills, poisonings — everything nondeterministic lives
/// here, *never* in the merged manifest, so an interrupted-then-resumed run
/// and an uninterrupted one produce byte-identical merges.
struct EventLog {
    file: std::fs::File,
    started: Instant,
}

impl EventLog {
    fn open(path: &Path, started: Instant) -> io::Result<EventLog> {
        Ok(EventLog {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
            started,
        })
    }

    fn log(&mut self, shard: usize, event: &str, detail: &str) {
        self.log_named(&shard_name(shard), event, detail);
    }

    fn log_named(&mut self, who: &str, event: &str, detail: &str) {
        let line = format!(
            "{{\"ms\":{},\"shard\":\"{}\",\"event\":\"{}\",\"detail\":\"{}\"}}\n",
            self.started.elapsed().as_millis(),
            escape(who),
            escape(event),
            escape(detail),
        );
        let _ = self.file.write_all(line.as_bytes());
        eprintln!("[fleet] {who} {event}: {detail}");
    }
}

enum ShardState {
    Pending {
        attempt: u32,
        not_before: Instant,
    },
    Running {
        child: Child,
        attempt: u32,
        spawned: Instant,
    },
    Done {
        attempts: u32,
        reused: bool,
    },
    Poisoned {
        attempts: u32,
        reason: String,
    },
}

/// Deterministic backoff: `base·2^(attempt-1)` plus a jitter in
/// `[0, base)` that is a pure function of `(seed, shard, attempt)`.
fn backoff_delay(config: &FleetConfig, shard: usize, attempt: u32) -> Duration {
    let base = config.backoff_base.as_millis() as u64;
    let exp = base.saturating_mul(1u64 << (attempt.min(16).saturating_sub(1)));
    let jitter = if base == 0 {
        0
    } else {
        rng::mix64(config.backoff_seed ^ ((shard as u64) << 32) ^ u64::from(attempt)) % base
    };
    Duration::from_millis(exp + jitter)
}

/// Whether a shard's previous artifacts can be reused: the `done.json`
/// marker must carry this run's config fingerprint, the shard manifest must
/// still parse, and the manifest's coverage populations must match what the
/// marker recorded when the shard finished.
fn reuse_ok(dir: &Path, config_fp: &str) -> bool {
    let Ok(marker_text) = std::fs::read_to_string(dir.join("done.json")) else {
        return false;
    };
    let Ok(marker) = json::parse(&marker_text) else {
        return false;
    };
    if marker.get("config_fp").and_then(Value::as_str) != Some(config_fp) {
        return false;
    }
    let Ok(doc) = parse_shard_doc(&dir.join("manifest.json")) else {
        return false;
    };
    let Some(Value::Obj(recorded)) = marker.get("cov") else {
        return false;
    };
    for (name, set) in recorded {
        let want = set.as_u64().unwrap_or(u64::MAX) as usize;
        if doc.coverage.map(name).map(MapSnapshot::set_count) != Some(want) {
            return false;
        }
    }
    true
}

struct ShardDoc {
    completed: bool,
    candidates: usize,
    insns: Vec<InsnRecord>,
    coverage: CoverageSnapshot,
}

fn parse_shard_doc(path: &Path) -> Result<ShardDoc, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let root = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let insns = root
        .get("insns")
        .and_then(Value::as_array)
        .and_then(|a| a.iter().map(parse_insn).collect::<Option<Vec<_>>>())
        .ok_or_else(|| format!("{}: bad insns section", path.display()))?;
    Ok(ShardDoc {
        completed: root
            .get("completed")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        candidates: root
            .get("shard")
            .and_then(|s| s.get("candidates"))
            .and_then(Value::as_u64)
            .unwrap_or(0) as usize,
        insns,
        coverage: parse_coverage(root.get("coverage")),
    })
}

fn spawn_worker(
    config: &FleetConfig,
    root: &Path,
    shard: usize,
    attempt: u32,
    config_fp: &str,
) -> io::Result<Child> {
    let dir = root.join(shard_name(shard));
    std::fs::create_dir_all(&dir)?;
    // A fresh attempt must not inherit the previous attempt's heartbeat
    // mtime, or a wedged respawn could look alive for a full stale window.
    let _ = std::fs::remove_file(dir.join("heartbeat"));
    // Append, never truncate: a retry must not destroy the failed
    // attempt's stderr — that is the output failure attribution runs on.
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("worker.log"))?;
    writeln!(log, "----- attempt {attempt} -----")?;

    let (exe, prefix): (PathBuf, &[String]) = if config.worker_cmd.is_empty() {
        (std::env::current_exe()?, &[])
    } else {
        (
            PathBuf::from(&config.worker_cmd[0]),
            &config.worker_cmd[1..],
        )
    };
    let mut cmd = Command::new(exe);
    cmd.args(prefix);
    if config.worker_cmd.is_empty() {
        cmd.arg("worker");
    }
    cmd.arg("--shard")
        .arg(shard.to_string())
        .arg("--shards")
        .arg(config.shards.to_string())
        .arg("--root")
        .arg(root)
        .arg("--max-paths")
        .arg(config.max_paths_per_insn.to_string())
        .arg("--config-fp")
        .arg(config_fp)
        .arg("--heartbeat-ms")
        .arg(config.heartbeat_interval.as_millis().to_string());
    if let Some(b) = config.first_byte {
        cmd.arg("--first-byte").arg(b.to_string());
    }
    if let Some(b) = config.second_byte {
        cmd.arg("--second-byte").arg(b.to_string());
    }
    for (k, v) in &config.worker_env {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::from(log));
    cmd.spawn()
}

/// Fails one attempt: schedules a retry with deterministic backoff, or
/// poisons the shard once the attempt budget is spent.
fn fail_attempt(
    config: &FleetConfig,
    events: &mut EventLog,
    shard: usize,
    attempt: u32,
    reason: String,
) -> ShardState {
    metrics::counter("fleet.attempt_failures").inc();
    if attempt >= config.max_attempts {
        events.log(
            shard,
            "poisoned",
            &format!("all {attempt} attempt(s) failed; last: {reason}"),
        );
        ShardState::Poisoned {
            attempts: attempt,
            reason,
        }
    } else {
        let delay = backoff_delay(config, shard, attempt);
        events.log(
            shard,
            "retry",
            &format!(
                "attempt {attempt} failed ({reason}); attempt {} in {}ms",
                attempt + 1,
                delay.as_millis()
            ),
        );
        ShardState::Pending {
            attempt,
            not_before: Instant::now() + delay,
        }
    }
}

/// Heartbeat age for a running worker: time since the heartbeat file's
/// mtime, or time since spawn while no heartbeat has landed yet (the file
/// is removed before each spawn).
fn heartbeat_age(dir: &Path, spawned: Instant) -> Duration {
    match std::fs::metadata(dir.join("heartbeat")).and_then(|m| m.modified()) {
        Ok(t) => SystemTime::now()
            .duration_since(t)
            .unwrap_or(Duration::ZERO),
        Err(_) => spawned.elapsed(),
    }
}

/// Runs the whole fleet: partition, spawn, watch, retry, merge. Returns
/// `Ok` even when shards were poisoned — a completed run with failures
/// attributed is a completed run; the diff gate is what fails on poisoned
/// growth.
///
/// # Errors
///
/// Propagates filesystem errors on the coordinator's own artifacts (root
/// directory, event log, merged manifest) and shard-manifest parse failures
/// for shards that claimed success.
pub fn run_fleet(config: &FleetConfig) -> io::Result<FleetOutcome> {
    let started = Instant::now();
    let root = config.root.clone().unwrap_or_else(|| {
        pokemu_rt::bench::target_dir()
            .join("fleet")
            .join(&config.run_id)
    });
    std::fs::create_dir_all(&root)?;
    let config_fp = config_fingerprint(config);
    let mut events = EventLog::open(&root.join("fleet-events.jsonl"), started)?;

    let mut states: Vec<ShardState> = (0..config.shards.max(1))
        .map(|shard| {
            let dir = root.join(shard_name(shard));
            if config.incremental && reuse_ok(&dir, &config_fp) {
                events.log(shard, "reused", "fingerprint and coverage unchanged");
                metrics::counter("fleet.shards_reused").inc();
                ShardState::Done {
                    attempts: 0,
                    reused: true,
                }
            } else {
                ShardState::Pending {
                    attempt: 0,
                    not_before: started,
                }
            }
        })
        .collect();

    loop {
        let mut busy = false;
        for shard in 0..states.len() {
            let next = match &mut states[shard] {
                ShardState::Pending {
                    attempt,
                    not_before,
                } => {
                    busy = true;
                    if Instant::now() < *not_before {
                        None
                    } else {
                        let attempt_no = *attempt + 1;
                        // The spawn fault point, keyed by shard: an
                        // `unknown` spec turns into a spawn failure on
                        // every attempt — the deterministic way to drive a
                        // shard into poisoning.
                        if fault::inject("fleet.spawn", shard as u64) {
                            Some(fail_attempt(
                                config,
                                &mut events,
                                shard,
                                attempt_no,
                                "spawn fault injected".to_owned(),
                            ))
                        } else {
                            match spawn_worker(config, &root, shard, attempt_no, &config_fp) {
                                Ok(child) => {
                                    events.log(shard, "spawn", &format!("attempt {attempt_no}"));
                                    Some(ShardState::Running {
                                        child,
                                        attempt: attempt_no,
                                        spawned: Instant::now(),
                                    })
                                }
                                Err(e) => Some(fail_attempt(
                                    config,
                                    &mut events,
                                    shard,
                                    attempt_no,
                                    format!("spawn error: {e}"),
                                )),
                            }
                        }
                    }
                }
                ShardState::Running {
                    child,
                    attempt,
                    spawned,
                } => {
                    busy = true;
                    let attempt_no = *attempt;
                    match child.try_wait() {
                        // A poll error must stay scoped to this shard:
                        // propagating it out of run_fleet would abandon
                        // every other still-running worker un-killed, left
                        // writing into the run root. Kill this child and
                        // charge the attempt instead.
                        Err(e) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            Some(fail_attempt(
                                config,
                                &mut events,
                                shard,
                                attempt_no,
                                format!("wait error: {e}"),
                            ))
                        }
                        Ok(Some(status)) => {
                            let manifest_ok =
                                root.join(shard_name(shard)).join("manifest.json").is_file();
                            if status.success() && manifest_ok {
                                events.log(shard, "done", &format!("attempt {attempt_no}"));
                                Some(ShardState::Done {
                                    attempts: attempt_no,
                                    reused: false,
                                })
                            } else if status.success() {
                                Some(fail_attempt(
                                    config,
                                    &mut events,
                                    shard,
                                    attempt_no,
                                    "exited 0 without a shard manifest".to_owned(),
                                ))
                            } else {
                                Some(fail_attempt(
                                    config,
                                    &mut events,
                                    shard,
                                    attempt_no,
                                    format!("worker {status}"),
                                ))
                            }
                        }
                        Ok(None) => {
                            let age = heartbeat_age(&root.join(shard_name(shard)), *spawned);
                            if age > config.heartbeat_stale {
                                let _ = child.kill();
                                let _ = child.wait();
                                events.log(
                                    shard,
                                    "stale",
                                    &format!("heartbeat silent for {}ms", age.as_millis()),
                                );
                                Some(fail_attempt(
                                    config,
                                    &mut events,
                                    shard,
                                    attempt_no,
                                    format!("heartbeat stale ({}ms)", age.as_millis()),
                                ))
                            } else {
                                None
                            }
                        }
                    }
                }
                ShardState::Done { .. } | ShardState::Poisoned { .. } => None,
            };
            if let Some(s) = next {
                states[shard] = s;
            }
        }
        if !busy {
            break;
        }
        std::thread::sleep(POLL);
    }

    // Merge: interleave every merged shard's instruction records back into
    // global order, union coverage, and rebuild the clusters —
    // deterministic content only; retries, timings, and reuse live in
    // fleet-events.jsonl.
    let mut shards_out = Vec::new();
    let mut poisoned = Vec::new();
    let mut reused = 0usize;
    let mut docs = Vec::new();
    for (shard, st) in states.iter().enumerate() {
        let (attempts, status) = match st {
            ShardState::Done {
                attempts,
                reused: r,
            } => {
                let doc = parse_shard_doc(&root.join(shard_name(shard)).join("manifest.json"))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                docs.push(doc);
                if *r {
                    reused += 1;
                    (*attempts, ShardStatus::Reused)
                } else {
                    (*attempts, ShardStatus::Completed)
                }
            }
            ShardState::Poisoned { attempts, reason } => {
                poisoned.push(shard_name(shard));
                (*attempts, ShardStatus::Poisoned(reason.clone()))
            }
            ShardState::Pending { .. } | ShardState::Running { .. } => {
                unreachable!("coordinator loop exited with live shards")
            }
        };
        shards_out.push(ShardReport {
            name: shard_name(shard),
            attempts,
            status,
        });
    }
    poisoned.sort();

    let completed = docs.iter().all(|d| d.completed);
    let candidates = docs.iter().map(|d| d.candidates).max().unwrap_or(0);
    let mut coverage = CoverageSnapshot::default();
    for d in &docs {
        coverage = union_coverage(&coverage, &d.coverage);
    }
    let mut insns: Vec<InsnRecord> = docs.into_iter().flat_map(|d| d.insns).collect();
    insns.sort_by_key(|r| r.index);
    // No cross-shard dedup: shard assignment is a pure function of the
    // opcode class, so an instruction's deviations live in exactly one
    // shard — and path ids hash only the branch path (not the
    // instruction), so keying on them would collapse *distinct*
    // instructions' straight-line deviations. Every recorded deviation is
    // kept, exactly like a single-process `record_deviation` run.
    let counts = sum_counts(&insns);
    let deviations = all_deviations(&insns);
    let merged_shards = shards_out
        .iter()
        .filter(|s| !matches!(s.status, ShardStatus::Poisoned(_)))
        .count();

    let dev_json: Vec<String> = deviations.iter().map(deviation_json).collect();
    let poisoned_json: Vec<String> = poisoned
        .iter()
        .map(|p| format!("\"{}\"", escape(p)))
        .collect();
    let merged = format!(
        "{{\n\"run_id\":\"{}\",\n\"completed\":{},\n\"config\":{{\"first_byte\":{},\
         \"second_byte\":{},\"max_paths_per_insn\":{},\"shards\":{}}},\n\"counts\":{},\n\
         \"fleet\":{{\"shards\":{},\"merged\":{},\"poisoned\":[{}]}},\n\"coverage\":{},\n\
         \"clusters\":{},\n\"robustness\":{},\n\"deviations\":[{}]\n}}\n",
        escape(&config.run_id),
        completed,
        opt_u8_json(config.first_byte),
        opt_u8_json(config.second_byte),
        config.max_paths_per_insn,
        config.shards,
        counts_json(candidates, &counts),
        config.shards,
        merged_shards,
        poisoned_json.join(","),
        coverage.to_json_object(),
        clusters_json_of(&deviations),
        robustness_json(&counts, &poisoned),
        dev_json.join(","),
    );
    let merged_path = root.join("merged.json");
    write_atomic(&merged_path, &merged)?;
    events.log_named(
        "coordinator",
        "merged",
        &format!(
            "{merged_shards}/{} shard(s), {} deviation(s), {} poisoned",
            config.shards,
            deviations.len(),
            poisoned.len()
        ),
    );

    if config.ledger && history::enabled() {
        let mut rec = RunRecord::new("fleet", &config.run_id, config_fp.clone());
        rec.det("count.shards", config.shards as u64);
        rec.det("count.merged", merged_shards as u64);
        rec.det("count.poisoned", poisoned.len() as u64);
        rec.det(
            "count.unique_instructions",
            counts.unique_instructions as u64,
        );
        rec.det("count.fully_explored", counts.fully_explored as u64);
        rec.det("count.total_paths", counts.total_paths as u64);
        rec.det("count.deviations", deviations.len() as u64);
        rec.det("robust.unknown_queries", counts.unknown_queries);
        rec.det("robust.infeasible_paths", counts.infeasible_paths as u64);
        for (name, m) in &coverage.maps {
            let short = name.strip_prefix("coverage.").unwrap_or(name);
            rec.det(&format!("cov.{short}.set"), m.set_count() as u64);
        }
        rec.timing("wall.total", started.elapsed().as_secs_f64());
        crate::ledger::append_record(rec);
    }

    Ok(FleetOutcome {
        run_id: config.run_id.clone(),
        root,
        merged_path,
        shards: shards_out,
        poisoned,
        reused,
        unique_instructions: counts.unique_instructions,
        total_paths: counts.total_paths,
        deviations: deviations.len(),
    })
}

fn opt_u8_json(v: Option<u8>) -> String {
    match v {
        Some(b) => b.to_string(),
        None => "null".to_owned(),
    }
}
