//! Fixed-size atomic coverage bitmaps — the accounting half of the
//! observability layer that turns "the pipeline ran" into "the pipeline
//! covered this much of the space".
//!
//! The paper's headline results are coverage numbers (paths explored per
//! instruction, encodings discovered, deviation classes found), so the
//! pipeline records four spaces as process-global bitmaps:
//!
//! | map | bit index | recorded by |
//! |---|---|---|
//! | `coverage.opcode` | one-/two-byte opcode | `explore::insn_space` |
//! | `coverage.path` | FNV hash of a path's branch decisions | `symx::engine` |
//! | `coverage.uop` | Lo-Fi micro-op / helper kind | `lofi::exec` |
//! | `coverage.exception` | exception vector | `isa::interp` |
//!
//! Design mirrors [`crate::metrics`]: handles ([`CoverageMap`]) are `Copy`
//! pointers into leaked registry slots, hot sites resolve them once, and a
//! [`set`](CoverageMap::set) is one relaxed `fetch_or`. Bits are *monotone*
//! — they are only ever set — so snapshots taken after identical work are
//! byte-identical regardless of worker-thread count or how many times the
//! work repeated, which is what lets CI diff a run against a committed
//! baseline manifest.
//!
//! Recording defaults to **on** (a set bit is as cheap as a counter bump)
//! but can be switched off with [`set_enabled`] or `POKEMU_COVERAGE=0`;
//! when off, the per-event cost is a single relaxed atomic load. CI uses
//! the switch to prove the coverage gate actually gates: a run with
//! coverage disabled must fail the baseline diff.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::json::{self, Value};

/// Environment variable that disables coverage recording when set to `0`.
pub const COVERAGE_ENV: &str = "POKEMU_COVERAGE";

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// Tri-state so the steady-state check is one relaxed load; the environment
/// is consulted exactly once, on the first event.
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(COVERAGE_ENV)
        .map(|v| v != "0")
        .unwrap_or(true);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether coverage recording is on. One relaxed atomic load — the whole
/// per-event cost when recording is disabled.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Turns coverage recording on or off process-wide (overrides the
/// environment from this point on).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

#[derive(Debug)]
struct MapInner {
    bits: usize,
    words: Box<[AtomicU64]>,
}

/// Handle to a named fixed-size atomic bitmap.
///
/// Indices wrap modulo the map size, so hash-derived indices (path ids)
/// can be fed in directly.
#[derive(Debug, Clone, Copy)]
pub struct CoverageMap(&'static MapInner);

impl CoverageMap {
    /// Sets one bit (one relaxed `fetch_or`; a no-op relaxed load when
    /// recording is disabled).
    #[inline]
    pub fn set(&self, index: usize) {
        if !enabled() {
            return;
        }
        let i = index % self.0.bits;
        self.0.words[i / 64].fetch_or(1u64 << (i % 64), Ordering::Relaxed);
    }

    /// ORs a whole 64-bit word of bits at `word` (wrapping modulo the word
    /// count) in one operation. Equivalent to calling [`set`](Self::set)
    /// for every set bit in `mask`; hot replay paths use it to commit a
    /// block's precomputed bit pattern without per-bit RMWs. Skips the
    /// atomic entirely when every bit is already set, so steady-state
    /// replay costs one relaxed load.
    #[inline]
    pub fn or_word(&self, word: usize, mask: u64) {
        if !enabled() {
            return;
        }
        let w = &self.0.words[word % self.0.words.len()];
        if w.load(Ordering::Relaxed) & mask != mask {
            w.fetch_or(mask, Ordering::Relaxed);
        }
    }

    /// The map's size in bits.
    pub fn bits(&self) -> usize {
        self.0.bits
    }

    /// Number of bits currently set.
    pub fn set_count(&self) -> usize {
        self.0
            .words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

fn registry() -> &'static RwLock<BTreeMap<&'static str, &'static MapInner>> {
    static REGISTRY: OnceLock<RwLock<BTreeMap<&'static str, &'static MapInner>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(BTreeMap::new()))
}

/// The coverage map named `name` with `bits` capacity, created on first
/// use. Re-registering the same name requires the same size.
pub fn map(name: &'static str, bits: usize) -> CoverageMap {
    let bits = bits.max(1);
    if let Some(&m) = registry()
        .read()
        .expect("coverage registry poisoned")
        .get(name)
    {
        assert_eq!(
            m.bits, bits,
            "coverage map {name} re-registered with a different size"
        );
        return CoverageMap(m);
    }
    let mut w = registry().write().expect("coverage registry poisoned");
    let inner = w.entry(name).or_insert_with(|| {
        // One leaked allocation per distinct map for the process lifetime;
        // names are compile-time constants, so this is bounded.
        Box::leak(Box::new(MapInner {
            bits,
            words: (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }))
    });
    assert_eq!(
        inner.bits, bits,
        "coverage map {name} re-registered with a different size"
    );
    CoverageMap(inner)
}

/// Point-in-time copy of one bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapSnapshot {
    /// Map size in bits.
    pub bits: usize,
    /// Raw 64-bit words, little-endian bit order within each word.
    pub words: Vec<u64>,
}

impl MapSnapshot {
    /// Number of set bits.
    pub fn set_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of the space covered, in `0.0..=1.0`.
    pub fn fraction(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.set_count() as f64 / self.bits as f64
        }
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// The set bit indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.set_count());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
        }
        out
    }

    /// Bits newly set versus an earlier snapshot (`self & !earlier`).
    pub fn since(&self, earlier: &MapSnapshot) -> MapSnapshot {
        MapSnapshot {
            bits: self.bits,
            words: self
                .words
                .iter()
                .enumerate()
                .map(|(i, &w)| w & !earlier.words.get(i).copied().unwrap_or(0))
                .collect(),
        }
    }

    /// Indices set in `self` but missing from `other` — the "coverage
    /// dropped" set when `self` is the baseline and `other` the current run.
    pub fn missing_from(&self, other: &MapSnapshot) -> Vec<usize> {
        self.since(other).indices()
    }

    /// Builds a snapshot from a bit count and explicit set indices (the
    /// export format; out-of-range indices wrap like [`CoverageMap::set`]).
    pub fn from_indices(bits: usize, indices: &[usize]) -> MapSnapshot {
        let bits = bits.max(1);
        let mut words = vec![0u64; bits.div_ceil(64)];
        for &i in indices {
            let i = i % bits;
            words[i / 64] |= 1u64 << (i % 64);
        }
        MapSnapshot { bits, words }
    }

    /// Reconstructs a snapshot from a parsed JSON object with `bits` and
    /// `indices` members (the shape [`CoverageSnapshot::to_jsonl`] and the
    /// run-manifest `coverage` section both use).
    pub fn from_value(v: &Value) -> Option<MapSnapshot> {
        let bits = v.get("bits")?.as_u64()? as usize;
        let indices: Vec<usize> = v
            .get("indices")?
            .as_array()?
            .iter()
            .filter_map(|i| i.as_u64().map(|i| i as usize))
            .collect();
        Some(MapSnapshot::from_indices(bits, &indices))
    }
}

/// Point-in-time copy of every registered coverage map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSnapshot {
    /// name -> bitmap copy.
    pub maps: BTreeMap<String, MapSnapshot>,
}

impl CoverageSnapshot {
    /// Per-map difference versus an earlier snapshot (bits newly set).
    pub fn since(&self, earlier: &CoverageSnapshot) -> CoverageSnapshot {
        CoverageSnapshot {
            maps: self
                .maps
                .iter()
                .map(|(k, v)| {
                    let was = earlier.maps.get(k).cloned().unwrap_or_default();
                    (k.clone(), v.since(&was))
                })
                .collect(),
        }
    }

    /// One map by name, if present.
    pub fn map(&self, name: &str) -> Option<&MapSnapshot> {
        self.maps.get(name)
    }

    /// Renders one JSON line per map:
    /// `{"kind":"coverage","name":...,"bits":N,"set":K,"indices":[...]}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, m) in &self.maps {
            out.push_str(&map_json_line(name, m));
            out.push('\n');
        }
        out
    }

    /// Renders the maps as one JSON object keyed by map name — the shape
    /// embedded in the run manifest's `coverage` section.
    pub fn to_json_object(&self) -> String {
        let entries: Vec<String> = self
            .maps
            .iter()
            .map(|(name, m)| format!("\"{}\":{}", json::escape(name), map_json_body(m)))
            .collect();
        format!("{{{}}}", entries.join(","))
    }

    /// Parses a [`to_jsonl`](CoverageSnapshot::to_jsonl) dump back into a
    /// snapshot (the round-trip the report tooling and tests rely on).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<CoverageSnapshot, String> {
        let mut maps = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if v.get("kind").and_then(Value::as_str) != Some("coverage") {
                continue;
            }
            let name = v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: no name", i + 1))?;
            let m = MapSnapshot::from_value(&v)
                .ok_or_else(|| format!("line {}: no bits/indices", i + 1))?;
            maps.insert(name.to_owned(), m);
        }
        Ok(CoverageSnapshot { maps })
    }
}

fn map_json_body(m: &MapSnapshot) -> String {
    let indices: Vec<String> = m.indices().iter().map(|i| i.to_string()).collect();
    format!(
        "{{\"bits\":{},\"set\":{},\"indices\":[{}]}}",
        m.bits,
        m.set_count(),
        indices.join(",")
    )
}

fn map_json_line(name: &str, m: &MapSnapshot) -> String {
    format!(
        "{{\"kind\":\"coverage\",\"name\":\"{}\",\"bits\":{},\"set\":{},\"indices\":[{}]}}",
        json::escape(name),
        m.bits,
        m.set_count(),
        m.indices()
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// Copies the current state of every registered map.
pub fn snapshot() -> CoverageSnapshot {
    let maps = registry()
        .read()
        .expect("coverage registry poisoned")
        .iter()
        .map(|(&name, inner)| {
            (
                name.to_owned(),
                MapSnapshot {
                    bits: inner.bits,
                    words: inner
                        .words
                        .iter()
                        .map(|w| w.load(Ordering::Relaxed))
                        .collect(),
                },
            )
        })
        .collect();
    CoverageSnapshot { maps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The enabled flag is process-global; tests that toggle it serialize.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bits_set_and_wrap() {
        let _g = serialize();
        set_enabled(true);
        let m = map("test.coverage.wrap", 100);
        m.set(3);
        m.set(103); // wraps to 3
        m.set(99);
        let s = snapshot();
        let ms = s.map("test.coverage.wrap").unwrap();
        assert_eq!(ms.bits, 100);
        assert!(ms.contains(3) && ms.contains(99));
        assert_eq!(ms.indices(), vec![3, 99]);
        assert_eq!(ms.set_count(), 2);
    }

    #[test]
    fn same_name_is_the_same_map() {
        let _g = serialize();
        set_enabled(true);
        let a = map("test.coverage.same", 64);
        let b = map("test.coverage.same", 64);
        a.set(7);
        assert!(snapshot().map("test.coverage.same").unwrap().contains(7));
        assert_eq!(a.bits(), b.bits());
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = serialize();
        let m = map("test.coverage.disabled", 64);
        set_enabled(false);
        m.set(11);
        set_enabled(true);
        assert!(
            !snapshot()
                .map("test.coverage.disabled")
                .unwrap()
                .contains(11),
            "a set while disabled must not land"
        );
        m.set(11);
        assert!(snapshot()
            .map("test.coverage.disabled")
            .unwrap()
            .contains(11));
    }

    #[test]
    fn since_reports_only_new_bits() {
        let _g = serialize();
        set_enabled(true);
        let m = map("test.coverage.since", 128);
        m.set(1);
        let before = snapshot();
        m.set(1);
        m.set(65);
        let d = snapshot().since(&before);
        assert_eq!(d.map("test.coverage.since").unwrap().indices(), vec![65]);
    }

    #[test]
    fn missing_from_detects_drops() {
        let base = MapSnapshot::from_indices(64, &[1, 5, 9]);
        let cur = MapSnapshot::from_indices(64, &[1, 9, 20]);
        assert_eq!(base.missing_from(&cur), vec![5]);
        assert!(cur.missing_from(&cur).is_empty());
    }

    /// Snapshot -> JSONL -> `pokemu_rt::json` parse -> snapshot must be the
    /// identity, and diffing the round-tripped copy against the original
    /// must be empty — this is the contract the run manifest, the committed
    /// CI baseline, and `pokemu-report diff` all depend on.
    #[test]
    fn snapshot_roundtrip_through_json() {
        let _g = serialize();
        set_enabled(true);
        let m = map("test.coverage.roundtrip", 130);
        for i in [0usize, 63, 64, 129, 130 /* wraps to 0 */] {
            m.set(i);
        }
        let snap = snapshot();
        let text = snap.to_jsonl();
        let parsed = CoverageSnapshot::from_jsonl(&text).expect("round-trip parses");
        assert_eq!(parsed, snap, "JSONL round-trip must be the identity");
        let rt = parsed.map("test.coverage.roundtrip").unwrap();
        assert_eq!(rt.indices(), vec![0, 63, 64, 129]);
        // Diff in both directions is empty: nothing gained, nothing lost.
        let orig = snap.map("test.coverage.roundtrip").unwrap();
        assert!(rt.missing_from(orig).is_empty());
        assert!(orig.missing_from(rt).is_empty());
        // The manifest-embedded object form parses to the same maps too.
        let obj = json::parse(&snap.to_json_object()).expect("object form parses");
        let again = MapSnapshot::from_value(obj.get("test.coverage.roundtrip").unwrap()).unwrap();
        assert_eq!(&again, orig);
    }
}
