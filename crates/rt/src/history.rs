//! Run ledger: append-only, content-hashed cross-run history.
//!
//! Every pipeline / bench run appends one compact JSONL record to
//! `target/history/ledger.jsonl` (override the directory with
//! `POKEMU_HISTORY_DIR`, opt out entirely with `POKEMU_HISTORY=0`). A record
//! separates **deterministic** fields (work counts, coverage populations,
//! deviation clusters, hot-TB exec counts — byte-identical across thread
//! counts and repeat runs of the same config) from **timing** fields (stage
//! wall-times, per-origin solver nanoseconds, histogram percentiles — never
//! compared exactly). This is the interchange format the fleet coordinator
//! merges shard records through (ROADMAP item 3) and the substrate for
//! `pokemu-report compare/trend/history`.
//!
//! ## Line format
//!
//! ```text
//! {"hash":"<16 hex>","body":{"schema":1,"seq":N,"kind":"...","run_id":"...",
//!   "config_fp":"<16 hex>","det":{...},"timing":{...}}}
//! ```
//!
//! The hash is FNV-1a 64 over the rendered body bytes, so `verify` can check
//! integrity without re-parsing floats: it textually extracts the body
//! substring and re-hashes it. Records are self-contained — no cross-record
//! pointers — so `gc` can drop a prefix without invalidating anything.
//!
//! ## Grouping
//!
//! Records are comparable only within a `(kind, config_fp)` group. The config
//! fingerprint folds in the pipeline config (minus thread count — determinism
//! is thread-invariant by contract), a process-wide *context* label (which
//! binary / flow produced the record, see [`set_context`]), and the
//! workload-shaping environment ([`TRACKED_ENV`]: fault injection, chain
//! toggle, solver/run deadlines). Pure observer toggles (`POKEMU_COVERAGE`,
//! `POKEMU_PROF`, `POKEMU_TRACE`) are deliberately *not* fingerprinted: a
//! run that silently lost its coverage is a regression the trend gate must
//! catch, not a new group.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::RwLock;

use crate::json::{self, escape, Value};

/// Current record schema version.
pub const SCHEMA: u64 = 1;
/// Set to `0` to disable automatic ledger appends.
pub const HISTORY_ENV: &str = "POKEMU_HISTORY";
/// Overrides the ledger directory (default `target/history`).
pub const HISTORY_DIR_ENV: &str = "POKEMU_HISTORY_DIR";
/// Appends auto-gc down to [`AUTO_GC_KEEP`] once the ledger exceeds this.
pub const AUTO_GC_CAP: usize = 4096;
/// Records kept by an automatic gc.
pub const AUTO_GC_KEEP: usize = 2048;
/// Default cap for an explicit `pokemu-report history gc`.
pub const DEFAULT_GC_CAP: usize = 512;
/// Trend window default (`pokemu-report trend --last N`).
pub const DEFAULT_TREND_WINDOW: usize = 20;

/// Environment variables that shape the workload and therefore partition
/// trend groups. Observer toggles (coverage/prof/trace) are intentionally
/// absent — see the module docs.
pub const TRACKED_ENV: [&str; 6] = [
    "POKEMU_FAULT",
    "POKEMU_LOFI_CHAIN",
    "POKEMU_SOLVER_DEADLINE_MS",
    "POKEMU_SOLVER_FUEL",
    "POKEMU_RUN_DEADLINE_MS",
    "POKEMU_INSN_DEADLINE_MS",
];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte string (same function as the path-id hash).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// True unless `POKEMU_HISTORY=0`.
pub fn enabled() -> bool {
    std::env::var(HISTORY_ENV).map_or(true, |v| v != "0")
}

/// Ledger directory: `POKEMU_HISTORY_DIR` or `<target>/history`.
pub fn dir() -> PathBuf {
    match std::env::var(HISTORY_DIR_ENV) {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => crate::bench::target_dir().join("history"),
    }
}

/// Default ledger file.
pub fn ledger_path() -> PathBuf {
    dir().join("ledger.jsonl")
}

static CONTEXT: RwLock<Option<String>> = RwLock::new(None);

/// Labels every subsequent record with the producing flow (e.g.
/// `"smoke-bench"`, `"pokemu-bench:pipeline_smoke"`). Folded into every
/// config fingerprint so different flows — even with identical pipeline
/// configs — form separate trend groups. Overwrites any earlier label.
pub fn set_context(label: &str) {
    *CONTEXT.write().expect("history context poisoned") = Some(label.to_string());
}

/// The current context label: the last [`set_context`] value, else the
/// current executable's file stem (with any trailing `-<16 hex>` cargo test
/// hash stripped so the label survives rebuilds), else `"unknown"`.
pub fn context() -> String {
    if let Some(c) = CONTEXT.read().expect("history context poisoned").clone() {
        return c;
    }
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().and_then(|s| s.to_str()).map(strip_bin_hash))
        .unwrap_or_else(|| "unknown".to_string())
}

fn strip_bin_hash(stem: &str) -> String {
    if let Some(idx) = stem.rfind('-') {
        let tail = &stem[idx + 1..];
        if tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()) {
            return stem[..idx].to_string();
        }
    }
    stem.to_string()
}

/// `K=V;K=V` string of the set [`TRACKED_ENV`] variables (empty when none
/// are set). Part of every config fingerprint.
pub fn env_fingerprint() -> String {
    let mut parts = Vec::new();
    for key in TRACKED_ENV {
        if let Ok(v) = std::env::var(key) {
            parts.push(format!("{key}={v}"));
        }
    }
    parts.join(";")
}

/// 16-hex config fingerprint over `context | tracked env | parts`.
pub fn fingerprint(parts: &[String]) -> String {
    let mut buf = Vec::new();
    buf.extend_from_slice(context().as_bytes());
    buf.push(0x1f);
    buf.extend_from_slice(env_fingerprint().as_bytes());
    for p in parts {
        buf.push(0x1f);
        buf.extend_from_slice(p.as_bytes());
    }
    format!("{:016x}", fnv1a64(&buf))
}

/// One run's ledger record. `det` holds deterministic u64 fields (compared
/// exactly by the trend gate); `timing` holds nondeterministic measurements
/// (banded, never compared exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Record schema version ([`SCHEMA`]).
    pub schema: u64,
    /// 1-based position in the ledger, assigned at append time.
    pub seq: u64,
    /// Producer kind: `"pipeline"` or `"bench"`.
    pub kind: String,
    /// Run identifier (manifest run id or bench workload name).
    pub run_id: String,
    /// 16-hex group fingerprint (see [`fingerprint`]).
    pub config_fp: String,
    /// Deterministic fields: thread-invariant, replay-identical.
    pub det: BTreeMap<String, u64>,
    /// Timing fields (nanoseconds unless the name says otherwise).
    pub timing: BTreeMap<String, f64>,
}

impl RunRecord {
    /// A fresh record with no fields; `seq` is assigned by [`append_to`].
    pub fn new(kind: &str, run_id: &str, config_fp: String) -> RunRecord {
        RunRecord {
            schema: SCHEMA,
            seq: 0,
            kind: kind.to_string(),
            run_id: run_id.to_string(),
            config_fp,
            det: BTreeMap::new(),
            timing: BTreeMap::new(),
        }
    }

    /// Sets a deterministic field.
    pub fn det(&mut self, name: impl Into<String>, value: u64) {
        self.det.insert(name.into(), value);
    }

    /// Sets a timing field.
    pub fn timing(&mut self, name: impl Into<String>, value: f64) {
        self.timing.insert(name.into(), value);
    }

    /// The rendered body (hash input). Field order is fixed; maps render in
    /// BTreeMap (byte-sorted) key order, so rendering is deterministic.
    pub fn body_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"schema\":{},\"seq\":{},\"kind\":\"{}\",\"run_id\":\"{}\",\"config_fp\":\"{}\",\"det\":{{",
            self.schema,
            self.seq,
            escape(&self.kind),
            escape(&self.run_id),
            escape(&self.config_fp),
        ));
        for (i, (k, v)) in self.det.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        s.push_str("},\"timing\":{");
        for (i, (k, v)) in self.timing.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(k), render_num(*v)));
        }
        s.push_str("}}");
        s
    }

    /// The full ledger line: `{"hash":"<16 hex>","body":<body>}`.
    pub fn to_line(&self) -> String {
        let body = self.body_json();
        format!(
            "{{\"hash\":\"{:016x}\",\"body\":{}}}",
            fnv1a64(body.as_bytes()),
            body
        )
    }

    /// Parses one ledger line. Returns the record and whether the stored
    /// content hash matches the body bytes (`verify` reports mismatches; all
    /// other callers may ignore the flag).
    pub fn parse_line(line: &str) -> Result<(RunRecord, bool), String> {
        const PREFIX: &str = "{\"hash\":\"";
        const SEP: &str = "\",\"body\":";
        let rest = line
            .strip_prefix(PREFIX)
            .ok_or_else(|| "missing hash prefix".to_string())?;
        if rest.len() < 16 + SEP.len() + 1 {
            return Err("record truncated".to_string());
        }
        let stored = u64::from_str_radix(&rest[..16], 16).map_err(|e| format!("bad hash: {e}"))?;
        let rest = rest[16..]
            .strip_prefix(SEP)
            .ok_or_else(|| "missing body separator".to_string())?;
        let body = rest
            .strip_suffix('}')
            .ok_or_else(|| "missing closing brace".to_string())?;
        let hash_ok = fnv1a64(body.as_bytes()) == stored;
        let v = json::parse(body).map_err(|e| format!("body parse: {e}"))?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field {name}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing field {name}"))
        };
        let mut det = BTreeMap::new();
        if let Some(Value::Obj(fields)) = v.get("det") {
            for (k, fv) in fields {
                det.insert(
                    k.clone(),
                    fv.as_u64().ok_or_else(|| format!("det.{k} not a u64"))?,
                );
            }
        }
        let mut timing = BTreeMap::new();
        if let Some(Value::Obj(fields)) = v.get("timing") {
            for (k, fv) in fields {
                timing.insert(
                    k.clone(),
                    fv.as_f64()
                        .ok_or_else(|| format!("timing.{k} not a number"))?,
                );
            }
        }
        Ok((
            RunRecord {
                schema: u64_field("schema")?,
                seq: u64_field("seq")?,
                kind: str_field("kind")?,
                run_id: str_field("run_id")?,
                config_fp: str_field("config_fp")?,
                det,
                timing,
            },
            hash_ok,
        ))
    }
}

/// Renders a timing value: integers print without a fraction (stable
/// round-trip through the f64 JSON parser), everything else with six
/// decimals. Non-finite values degrade to 0.
fn render_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_string()
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Appends to the default ledger ([`ledger_path`]); returns the assigned
/// seq and the path written.
pub fn append(record: RunRecord) -> io::Result<(u64, PathBuf)> {
    let path = ledger_path();
    let seq = append_to(&path, record)?;
    Ok((seq, path))
}

/// Appends one record to `path`, assigning `seq` = last record's seq + 1
/// (line count + 1 when the tail is unparseable). Once the ledger exceeds
/// [`AUTO_GC_CAP`] records it is rewritten keeping the newest
/// [`AUTO_GC_KEEP`], so unattended appends never grow without bound. Seq
/// assignment is best-effort under concurrent writers (last-writer-wins on
/// the read-count race); the ledger itself stays line-atomic via `O_APPEND`.
pub fn append_to(path: &Path, mut record: RunRecord) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let existing = fs::read_to_string(path).unwrap_or_default();
    let lines: Vec<&str> = existing.lines().filter(|l| !l.trim().is_empty()).collect();
    let last_seq = lines
        .last()
        .and_then(|l| RunRecord::parse_line(l).ok())
        .map(|(r, _)| r.seq)
        .unwrap_or(lines.len() as u64);
    record.seq = last_seq + 1;
    let line = record.to_line();
    if lines.len() >= AUTO_GC_CAP {
        let keep_from = lines.len() - AUTO_GC_KEEP;
        let mut out = String::with_capacity(existing.len() / 2);
        for l in &lines[keep_from..] {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str(&line);
        out.push('\n');
        fs::write(path, out)?;
    } else {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
    }
    Ok(record.seq)
}

/// Loads every record in ledger order. Strict: an unparseable line is an
/// error naming `path:line` (use [`verify`] to enumerate all problems).
pub fn load(path: &Path) -> Result<Vec<RunRecord>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (r, _) = RunRecord::parse_line(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records.push(r);
    }
    Ok(records)
}

/// Integrity check: re-hashes every record body against its stored content
/// hash. Returns one violation string per bad record, each naming the file,
/// line, and run id — empty means the ledger is intact.
pub fn verify(path: &Path) -> Result<Vec<String>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut violations = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match RunRecord::parse_line(line) {
            Ok((_, true)) => {}
            Ok((r, false)) => violations.push(format!(
                "{}:{}: run {} (seq {}): content hash mismatch — record tampered or truncated",
                path.display(),
                i + 1,
                r.run_id,
                r.seq
            )),
            Err(e) => violations.push(format!(
                "{}:{}: unparseable record: {e}",
                path.display(),
                i + 1
            )),
        }
    }
    Ok(violations)
}

/// Rewrites the ledger keeping only the newest `cap` records. Returns
/// `(kept, dropped)`.
pub fn gc(path: &Path, cap: usize) -> Result<(usize, usize), String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() <= cap {
        return Ok((lines.len(), 0));
    }
    let keep_from = lines.len() - cap;
    let mut out = String::with_capacity(text.len());
    for l in &lines[keep_from..] {
        out.push_str(l);
        out.push('\n');
    }
    fs::write(path, out).map_err(|e| format!("cannot rewrite {}: {e}", path.display()))?;
    Ok((cap, keep_from))
}

/// Group key for trend analysis: records are comparable only within the
/// same `(kind, config fingerprint)` pair.
pub fn group_key(r: &RunRecord) -> String {
    format!("{}/{}", r.kind, r.config_fp)
}

// ---------------------------------------------------------------------------
// Causal attribution (pokemu-report compare)
// ---------------------------------------------------------------------------

/// Stage wall-time fields decomposed at attribution level 1, in pipeline
/// order. `wall.parallel` covers the worker phase and subdivides further
/// into worker-stage sums and per-origin solver time.
pub const STAGE_WALL_KEYS: [&str; 3] = ["wall.explore_insns", "wall.parallel", "wall.analyze"];

/// One stage's contribution to a wall-time delta.
#[derive(Debug, Clone)]
pub struct AttributionEntry {
    /// Timing field name (`wall.*`).
    pub name: String,
    /// Delta in nanoseconds (b − a).
    pub delta_ns: f64,
    /// Signed share of the total wall delta.
    pub share: f64,
    /// Sub-contributions: worker-stage sums and `solver.ns.<origin>` deltas
    /// for `wall.parallel`, empty elsewhere. Sorted by |delta| descending.
    pub children: Vec<(String, f64)>,
}

/// `compare` decomposition of a wall-time delta: stages covering ≥90% of
/// the delta, each subdivided down to solver origins, plus the hot-TB
/// execution-count deltas (level 3, deterministic).
#[derive(Debug, Clone)]
pub struct Attribution {
    /// `wall.total` delta in nanoseconds (b − a).
    pub total_delta_ns: f64,
    /// Signed share of the total covered by `entries`.
    pub covered_share: f64,
    /// Included stages, by |delta| descending.
    pub entries: Vec<AttributionEntry>,
    /// Hot-TB exec-count deltas (`hot_tb.<eip>`, b − a), |delta| descending.
    pub hot_tbs: Vec<(String, i64)>,
}

fn timing_of(r: &RunRecord, key: &str) -> f64 {
    r.timing.get(key).copied().unwrap_or(0.0)
}

fn prefixed_deltas(a: &RunRecord, b: &RunRecord, prefix: &str) -> Vec<(String, f64)> {
    let mut keys: BTreeSet<&String> = a.timing.keys().collect();
    keys.extend(b.timing.keys());
    let mut out: Vec<(String, f64)> = keys
        .into_iter()
        .filter(|k| k.starts_with(prefix))
        .map(|k| (k.clone(), timing_of(b, k) - timing_of(a, k)))
        .filter(|(_, d)| *d != 0.0)
        .collect();
    out.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()).then(x.0.cmp(&y.0)));
    out
}

/// Decomposes the `wall.total` delta between two records: stages are ranked
/// by |delta| and included until they cover ≥90% of |Δ wall.total| (noise
/// stages under 0.5% are dropped once coverage is reached); the parallel
/// stage subdivides into worker-summed generate/execute and per-origin
/// solver time; hot-TB deltas name the code whose execution count moved.
pub fn attribute(a: &RunRecord, b: &RunRecord) -> Attribution {
    let total = timing_of(b, "wall.total") - timing_of(a, "wall.total");
    let denom = total.abs().max(1.0);
    let mut stages: Vec<(String, f64)> = STAGE_WALL_KEYS
        .iter()
        .map(|k| (k.to_string(), timing_of(b, k) - timing_of(a, k)))
        .collect();
    stages.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()));
    let mut entries = Vec::new();
    let mut covered_abs = 0.0;
    for (name, d) in stages {
        let reached = covered_abs >= 0.90 * total.abs();
        if reached && d.abs() < 0.005 * denom {
            continue;
        }
        let children = if name == "wall.parallel" {
            let mut c = Vec::new();
            for k in ["wall.generate", "wall.execute"] {
                let d = timing_of(b, k) - timing_of(a, k);
                if d != 0.0 {
                    c.push((k.to_string(), d));
                }
            }
            c.extend(prefixed_deltas(a, b, "solver.ns.").into_iter().take(8));
            c.sort_by(|x, y| y.1.abs().total_cmp(&x.1.abs()).then(x.0.cmp(&y.0)));
            c
        } else {
            Vec::new()
        };
        covered_abs += d.abs();
        entries.push(AttributionEntry {
            share: d / denom,
            name,
            delta_ns: d,
            children,
        });
    }
    let covered_share = entries.iter().map(|e| e.share).sum();
    let mut keys: BTreeSet<&String> = a.det.keys().collect();
    keys.extend(b.det.keys());
    let mut hot_tbs: Vec<(String, i64)> = keys
        .into_iter()
        .filter(|k| k.starts_with("hot_tb."))
        .map(|k| {
            let da = a.det.get(k).copied().unwrap_or(0) as i64;
            let db = b.det.get(k).copied().unwrap_or(0) as i64;
            (k.clone(), db - da)
        })
        .filter(|(_, d)| *d != 0)
        .collect();
    hot_tbs.sort_by(|x, y| y.1.abs().cmp(&x.1.abs()).then(x.0.cmp(&y.0)));
    hot_tbs.truncate(8);
    Attribution {
        total_delta_ns: total,
        covered_share,
        entries,
        hot_tbs,
    }
}

// ---------------------------------------------------------------------------
// Trend analysis (pokemu-report trend)
// ---------------------------------------------------------------------------

/// One metric's trajectory over a trend window plus the latest record.
/// All gate decisions are integer-only: deterministic fields are raw u64;
/// timing fields are banded in integer milli-units (see [`trend_stats`]).
#[derive(Debug, Clone)]
pub struct TrendStat {
    /// Metric name (det name, or timing name for banded metrics).
    pub name: String,
    /// True for det fields (exact-match gate), false for timing (band gate).
    pub deterministic: bool,
    /// Window size (records before the latest).
    pub n: usize,
    /// Window minimum.
    pub min: u64,
    /// Window median (element at index `(n-1)/2` of the sorted window).
    pub median: u64,
    /// Window maximum.
    pub max: u64,
    /// Median absolute deviation of the window (det metrics only; 0 for
    /// timing).
    pub mad: u64,
    /// The latest record's value.
    pub latest: u64,
    /// Gate violation, naming the metric, when the latest value regressed.
    pub violation: Option<String>,
}

fn median_u64(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

/// Timing values are banded in integer milli-units so sub-1.0 ratios stay
/// representable without floats in the gate math.
fn timing_milli(v: f64) -> u64 {
    if !v.is_finite() || v <= 0.0 {
        0
    } else {
        (v * 1000.0).min(1.8e19) as u64
    }
}

/// Per-metric trajectory over a seq-ordered group of same-fingerprint
/// records: the last record is "latest", the up-to-`window` records before
/// it are the comparison window. Empty when the group has fewer than two
/// records.
///
/// Gate rules (integer-only):
/// - det metric, window MAD = 0 (all window values equal): any change is a
///   **deterministic drift** violation.
/// - det metric, MAD > 0: |latest − median| > 8·MAD is an **anomaly**.
/// - timing metric (milli-units): latest outside [median/8, median·8] is a
///   **timing anomaly** (skipped when the window median is 0).
pub fn trend_stats(group: &[RunRecord], window: usize) -> Vec<TrendStat> {
    if group.len() < 2 {
        return Vec::new();
    }
    let latest = &group[group.len() - 1];
    let start = (group.len() - 1).saturating_sub(window.max(1));
    let win = &group[start..group.len() - 1];
    let mut out = Vec::new();

    let mut det_names: BTreeSet<&String> = latest.det.keys().collect();
    for r in win {
        det_names.extend(r.det.keys());
    }
    for name in det_names {
        let vals: Vec<u64> = win
            .iter()
            .map(|r| r.det.get(name).copied().unwrap_or(0))
            .collect();
        let med = median_u64(vals.clone());
        let mad = median_u64(vals.iter().map(|v| v.abs_diff(med)).collect());
        let latest_v = latest.det.get(name).copied().unwrap_or(0);
        let violation = if mad == 0 && latest_v != med {
            Some(format!(
                "deterministic metric {name} drifted: window median {med} -> latest {latest_v}"
            ))
        } else if mad > 0 && latest_v.abs_diff(med) > mad.saturating_mul(8) {
            Some(format!(
                "anomaly in {name}: latest {latest_v} vs window median {med} exceeds 8 x MAD ({mad})"
            ))
        } else {
            None
        };
        out.push(TrendStat {
            name: name.clone(),
            deterministic: true,
            n: win.len(),
            min: vals.iter().copied().min().unwrap_or(0),
            median: med,
            max: vals.iter().copied().max().unwrap_or(0),
            mad,
            latest: latest_v,
            violation,
        });
    }

    let mut timing_names: BTreeSet<&String> = latest.timing.keys().collect();
    for r in win {
        timing_names.extend(r.timing.keys());
    }
    for name in timing_names {
        let vals: Vec<u64> = win
            .iter()
            .map(|r| timing_milli(r.timing.get(name).copied().unwrap_or(0.0)))
            .collect();
        let med = median_u64(vals.clone());
        let latest_v = timing_milli(latest.timing.get(name).copied().unwrap_or(0.0));
        let violation =
            if med > 0 && (latest_v > med.saturating_mul(8) || latest_v.saturating_mul(8) < med) {
                Some(format!(
                    "timing anomaly in {name}: latest {latest_v} outside [{}, {}] milli-unit band \
                 (window median {med})",
                    med / 8,
                    med.saturating_mul(8)
                ))
            } else {
                None
            };
        out.push(TrendStat {
            name: name.clone(),
            deterministic: false,
            n: win.len(),
            min: vals.iter().copied().min().unwrap_or(0),
            median: med,
            max: vals.iter().copied().max().unwrap_or(0),
            mad: 0,
            latest: latest_v,
            violation,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_ledger(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pokemu-history-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("ledger.jsonl")
    }

    fn rec(kind: &str, run_id: &str, fp: &str) -> RunRecord {
        let mut r = RunRecord::new(kind, run_id, fp.to_string());
        r.det("count.paths", 54);
        r.det("cov.opcode.set", 37);
        r.timing("wall.total", 1_234_567.0);
        r.timing("ratio.x", 0.431_25);
        r
    }

    #[test]
    fn line_round_trips_and_hash_holds() {
        let r = rec("pipeline", "smoke", "00c0ffee00c0ffee");
        let line = r.to_line();
        let (back, hash_ok) = RunRecord::parse_line(&line).unwrap();
        assert!(hash_ok);
        assert_eq!(back, r);
        // Rendering the parsed record reproduces the exact line (hash
        // stability across parse/render cycles).
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn tampered_line_fails_hash() {
        let line = rec("pipeline", "smoke", "feed").to_line();
        let tampered = line.replace("\"count.paths\":54", "\"count.paths\":55");
        assert_ne!(tampered, line);
        let (_, hash_ok) = RunRecord::parse_line(&tampered).unwrap();
        assert!(!hash_ok, "hash must not survive a tampered body");
    }

    #[test]
    fn append_assigns_monotonic_seq_and_verify_passes() {
        let path = tmp_ledger("seq");
        assert_eq!(append_to(&path, rec("pipeline", "a", "fp")).unwrap(), 1);
        assert_eq!(append_to(&path, rec("pipeline", "b", "fp")).unwrap(), 2);
        assert_eq!(append_to(&path, rec("bench", "c", "fp2")).unwrap(), 3);
        let records = load(&path).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(verify(&path).unwrap().is_empty());
    }

    #[test]
    fn verify_names_the_tampered_line() {
        let path = tmp_ledger("tamper");
        append_to(&path, rec("pipeline", "a", "fp")).unwrap();
        append_to(&path, rec("pipeline", "victim", "fp")).unwrap();
        append_to(&path, rec("pipeline", "c", "fp")).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let tampered: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("\"run_id\":\"victim\"") {
                    l.replace("\"cov.opcode.set\":37", "\"cov.opcode.set\":0")
                } else {
                    l.to_string()
                }
            })
            .collect();
        fs::write(&path, tampered.join("\n") + "\n").unwrap();
        let violations = verify(&path).unwrap();
        assert_eq!(
            violations.len(),
            1,
            "exactly the tampered record: {violations:?}"
        );
        assert!(
            violations[0].contains("ledger.jsonl:2"),
            "{}",
            violations[0]
        );
        assert!(violations[0].contains("victim"), "{}", violations[0]);
    }

    #[test]
    fn gc_keeps_newest() {
        let path = tmp_ledger("gc");
        for i in 0..10 {
            append_to(&path, rec("pipeline", &format!("r{i}"), "fp")).unwrap();
        }
        let (kept, dropped) = gc(&path, 4).unwrap();
        assert_eq!((kept, dropped), (4, 6));
        let records = load(&path).unwrap();
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        // Appends continue the seq chain past a gc.
        assert_eq!(append_to(&path, rec("pipeline", "next", "fp")).unwrap(), 11);
    }

    #[test]
    fn attribution_names_the_dominant_stage_and_origin() {
        let mut a = RunRecord::new("pipeline", "a", "fp".into());
        a.timing("wall.total", 100e6);
        a.timing("wall.explore_insns", 10e6);
        a.timing("wall.parallel", 80e6);
        a.timing("wall.analyze", 10e6);
        a.timing("wall.generate", 60e6);
        a.timing("wall.execute", 20e6);
        a.timing("solver.ns.feasibility", 50e6);
        a.timing("solver.ns.model", 10e6);
        a.det("hot_tb.0x00001000", 100);
        let mut b = a.clone();
        b.timing("wall.total", 500e6);
        b.timing("wall.parallel", 478e6);
        b.timing("wall.generate", 455e6);
        b.timing("solver.ns.feasibility", 440e6);
        b.timing("wall.analyze", 12e6);
        b.det("hot_tb.0x00001000", 150);
        let attr = attribute(&a, &b);
        assert!((attr.total_delta_ns - 400e6).abs() < 1.0);
        assert!(attr.covered_share >= 0.90, "covered {}", attr.covered_share);
        assert_eq!(attr.entries[0].name, "wall.parallel");
        let top_child = &attr.entries[0].children[0];
        assert_eq!(top_child.0, "wall.generate");
        assert!(
            attr.entries[0]
                .children
                .iter()
                .any(|(n, d)| n == "solver.ns.feasibility" && (*d - 390e6).abs() < 1.0),
            "solver origin must be named: {:?}",
            attr.entries[0].children
        );
        assert_eq!(attr.hot_tbs[0], ("hot_tb.0x00001000".to_string(), 50));
    }

    #[test]
    fn trend_flags_deterministic_drift_and_anomaly() {
        let mk = |seq: u64, cov: u64, noisy: u64, wall: f64| {
            let mut r = RunRecord::new("pipeline", &format!("r{seq}"), "fp".into());
            r.seq = seq;
            r.det("cov.opcode.set", cov);
            r.det("ctr.noisy", noisy);
            r.timing("wall.total", wall);
            r
        };
        // Stable window, stable latest: no violations.
        let group: Vec<RunRecord> = (1..=4).map(|i| mk(i, 37, 100 + i, 50e6)).collect();
        let stats = trend_stats(&group, DEFAULT_TREND_WINDOW);
        assert!(stats.iter().all(|s| s.violation.is_none()), "{stats:?}");

        // Deterministic drift: cov drops to 0 with MAD 0.
        let mut drift = group.clone();
        drift.push(mk(5, 0, 104, 50e6));
        let stats = trend_stats(&drift, DEFAULT_TREND_WINDOW);
        let bad = stats.iter().find(|s| s.violation.is_some()).unwrap();
        assert_eq!(bad.name, "cov.opcode.set");
        assert!(bad.violation.as_ref().unwrap().contains("cov.opcode.set"));
        assert!(bad.violation.as_ref().unwrap().contains("drifted"));

        // MAD>0 anomaly: noisy counter jumps far beyond 8x MAD.
        let mut anom = group.clone();
        anom.push(mk(5, 37, 10_000, 50e6));
        let stats = trend_stats(&anom, DEFAULT_TREND_WINDOW);
        let bad = stats.iter().find(|s| s.violation.is_some()).unwrap();
        assert_eq!(bad.name, "ctr.noisy");
        assert!(bad.violation.as_ref().unwrap().contains("anomaly"));

        // Timing band: a 10x wall time is flagged, in milli-units.
        let mut slow = group.clone();
        slow.push(mk(5, 37, 104, 500e6));
        let stats = trend_stats(&slow, DEFAULT_TREND_WINDOW);
        let bad = stats.iter().find(|s| s.violation.is_some()).unwrap();
        assert_eq!(bad.name, "wall.total");
        assert!(!bad.deterministic);

        // An 8x-within-band timing wobble passes.
        let mut ok = group.clone();
        ok.push(mk(5, 37, 104, 200e6));
        let stats = trend_stats(&ok, DEFAULT_TREND_WINDOW);
        assert!(stats.iter().all(|s| s.violation.is_none()), "{stats:?}");
    }

    #[test]
    fn trend_window_caps_history() {
        let mk = |seq: u64, v: u64| {
            let mut r = RunRecord::new("pipeline", &format!("r{seq}"), "fp".into());
            r.seq = seq;
            r.det("x", v);
            r
        };
        // Old records (value 1) fall outside a window of 3; recent window is
        // all 5s, latest 5: clean.
        let mut group: Vec<RunRecord> = (1..=4).map(|i| mk(i, 1)).collect();
        group.extend((5..=8).map(|i| mk(i, 5)));
        let stats = trend_stats(&group, 3);
        assert_eq!(stats[0].median, 5);
        assert!(stats[0].violation.is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_context_sensitive() {
        set_context("history-test-a");
        let a1 = fingerprint(&["x=1".into()]);
        let a2 = fingerprint(&["x=1".into()]);
        assert_eq!(a1, a2);
        assert_eq!(a1.len(), 16);
        set_context("history-test-b");
        assert_ne!(
            fingerprint(&["x=1".into()]),
            a1,
            "context must partition groups"
        );
        set_context("history-test-a");
        assert_ne!(
            fingerprint(&["x=2".into()]),
            a1,
            "config must partition groups"
        );
    }

    #[test]
    fn render_num_round_trips_through_parser() {
        for v in [0.0, 1.0, 0.431_25, 1_234_567.0, 2.5e12, 1e-6] {
            let s = render_num(v);
            let parsed = json::parse(&s).unwrap().as_f64().unwrap();
            assert!(
                (parsed - v).abs() <= v.abs() * 1e-9 + 1e-9,
                "{v} -> {s} -> {parsed}"
            );
        }
        assert_eq!(render_num(f64::NAN), "0");
    }

    #[test]
    fn strip_bin_hash_strips_only_cargo_hashes() {
        assert_eq!(strip_bin_hash("run_ledger-0123456789abcdef"), "run_ledger");
        assert_eq!(strip_bin_hash("smoke-bench"), "smoke-bench");
        assert_eq!(strip_bin_hash("pokemu-report"), "pokemu-report");
    }
}
