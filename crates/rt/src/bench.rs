//! A micro-benchmark timer harness (the in-repo `criterion` replacement).
//!
//! Protocol per benchmark function: warm up for a wall-clock budget, size a
//! batch so one sample lasts roughly `measurement_time / sample_size`, then
//! take K timed samples and report per-iteration latency as min / mean /
//! median / p95 / max. Results print to stdout and append as JSON lines to
//! `target/bench/<suite>.json`, one object per benchmark:
//!
//! ```json
//! {"suite":"e6","group":"e6","bench":"generation_unit","samples":10,
//!  "iters_per_sample":4,"min_ns":812345,"mean_ns":830412,
//!  "median_ns":829101,"p95_ns":861200,"max_ns":870001}
//! ```
//!
//! Benches are plain binaries (`harness = false`): call [`Bench::new`],
//! create a [`Group`], register functions, `finish()`.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One benchmark suite, owning the JSON output file.
#[derive(Debug)]
pub struct Bench {
    suite: String,
    out_path: PathBuf,
    lines: Vec<String>,
}

impl Bench {
    /// Opens a suite named `suite`; results go to `target/bench/<suite>.json`
    /// (truncated per run, so each file holds exactly the latest results).
    pub fn new(suite: &str) -> Self {
        let dir = target_dir().join("bench");
        let _ = std::fs::create_dir_all(&dir);
        Bench {
            suite: suite.to_owned(),
            out_path: dir.join(format!("{suite}.json")),
            lines: Vec::new(),
        }
    }

    /// Where this suite's JSON lines are written.
    pub fn out_path(&self) -> &std::path::Path {
        &self.out_path
    }

    /// Starts a named benchmark group with default settings (10 samples,
    /// 500 ms warm-up, 3 s measurement budget).
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_owned(),
            sample_size: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(3),
        }
    }

    fn record(&mut self, line: String) {
        self.lines.push(line);
        self.flush();
    }

    fn flush(&self) {
        if let Ok(mut f) = std::fs::File::create(&self.out_path) {
            for l in &self.lines {
                let _ = writeln!(f, "{l}");
            }
        }
    }
}

/// A group of benchmark functions sharing timing settings.
#[derive(Debug)]
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (K).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock warm-up budget before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget; per-sample batches are sized from it.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly once with the routine under test.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        assert!(
            !b.samples_ns.is_empty(),
            "bench_function body must call Bencher::iter"
        );
        let stats = Stats::of(&mut b.samples_ns);
        println!(
            "[bench] {}/{}/{id}: median {} p95 {} ({} samples x {} iters)",
            self.bench.suite,
            self.name,
            fmt_ns(stats.median),
            fmt_ns(stats.p95),
            b.samples_ns.len(),
            b.iters_per_sample,
        );
        self.bench.record(format!(
            "{{\"suite\":\"{}\",\"group\":\"{}\",\"bench\":\"{id}\",\"samples\":{},\
             \"iters_per_sample\":{},\"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\
             \"p95_ns\":{},\"max_ns\":{}}}",
            self.bench.suite,
            self.name,
            b.samples_ns.len(),
            b.iters_per_sample,
            stats.min,
            stats.mean,
            stats.median,
            stats.p95,
            stats.max,
        ));
    }

    /// Ends the group (kept for criterion API parity; recording is eager).
    pub fn finish(self) {}
}

/// Times one routine: warm-up, batch sizing, K samples.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples_ns: Vec<u64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs the measurement protocol on `routine`. The return value is
    /// passed through [`std::hint::black_box`] so the computation is kept.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up: run until the budget elapses (at least once), and use the
        // observed per-iteration time to size sample batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let per_sample_budget =
            (self.measurement.as_nanos() / self.sample_size.max(1) as u128).max(1);
        self.iters_per_sample = (per_sample_budget / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as u64 / self.iters_per_sample;
            self.samples_ns.push(ns);
        }
    }
}

#[derive(Debug)]
struct Stats {
    min: u64,
    mean: u64,
    median: u64,
    p95: u64,
    max: u64,
}

impl Stats {
    fn of(samples: &mut [u64]) -> Stats {
        samples.sort_unstable();
        let n = samples.len();
        let pct = |p: f64| samples[(((n - 1) as f64) * p).round() as usize];
        Stats {
            min: samples[0],
            mean: (samples.iter().map(|&s| s as u128).sum::<u128>() / n as u128) as u64,
            median: pct(0.5),
            p95: pct(0.95),
            max: samples[n - 1],
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The workspace `target/` directory: `$CARGO_TARGET_DIR` if set, else the
/// nearest ancestor `target/` of the current directory, else `./target`.
pub fn target_dir() -> PathBuf {
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(d);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        let cand = dir.join("target");
        if cand.is_dir() {
            return cand;
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd.join("target"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_emits_json_lines() {
        let mut bench = Bench::new("rt-selftest");
        let mut g = bench.group("unit");
        g.sample_size(4)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x * x)))
        });
        g.finish();
        let text = std::fs::read_to_string(bench.out_path()).expect("json file written");
        let line = text.lines().next().expect("one line");
        for key in [
            "\"suite\":\"rt-selftest\"",
            "\"bench\":\"spin\"",
            "median_ns",
            "p95_ns",
        ] {
            assert!(line.contains(key), "{key} missing from {line}");
        }
    }

    #[test]
    fn stats_percentiles() {
        let mut s: Vec<u64> = (1..=100).collect();
        let st = Stats::of(&mut s);
        assert_eq!(st.min, 1);
        assert_eq!(st.max, 100);
        assert_eq!(st.median, 51, "nearest-rank median of 1..=100");
        assert_eq!(st.p95, 95);
    }
}
