//! Structured spans for the PokeEMU pipeline, with Chrome `trace_event`
//! export.
//!
//! Design (the whole layer is zero-dependency and safe Rust):
//!
//! * Each thread owns a bounded event buffer (a flat ring: events append
//!   until capacity; when full, new events are *dropped and counted* in the
//!   `trace.dropped_events` metric rather than blocking the instrumented
//!   code). The recording hot path never takes a lock: buffers drain to the
//!   global collector in batches with `try_lock`, at the half-full
//!   high-water mark, and with a blocking flush only at explicit sync
//!   points ([`flush_thread`], pool-worker exit, [`export`]).
//! * Spans form a per-thread stack: [`span!`] returns an RAII guard that
//!   records one *complete* event (begin timestamp + duration + parent span
//!   id + `key=value` attributes) when dropped.
//! * Recording is **off by default**. The only cost at a disabled macro
//!   site is one relaxed atomic load. Enable with `POKEMU_TRACE=1` in the
//!   environment or [`set_enabled`] (the pipeline does this for
//!   `PipelineConfig { trace: true }`).
//! * [`export`] serializes everything collected so far to
//!   `target/trace/<run>.trace.json` (Chrome `trace_event` JSON, loadable
//!   in `chrome://tracing` or <https://ui.perfetto.dev>) and
//!   `target/trace/<run>.metrics.jsonl` (one metric per line, see
//!   [`crate::metrics::MetricsSnapshot::to_jsonl`]).
//!
//! Timestamps are relative to a process-wide epoch fixed at first use, so
//! they are monotonic and comparable across threads but carry no wall-clock
//! meaning — golden comparisons must only ever look at metric *counters*,
//! never at timestamps.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics;

/// Environment variable that turns span recording on (any non-empty value
/// other than `0`) and makes the pipeline export a trace when it finishes.
pub const TRACE_ENV: &str = "POKEMU_TRACE";

/// Default per-thread event-buffer capacity (events, not bytes).
pub const DEFAULT_BUFFER_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_CHECKED: OnceLock<bool> = OnceLock::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// `true` when `POKEMU_TRACE` was set in the environment at first check.
pub fn env_enabled() -> bool {
    *ENV_CHECKED.get_or_init(|| {
        std::env::var(TRACE_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether span recording is currently on. One relaxed load — this is the
/// per-macro-site cost when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns span recording on or off process-wide. The environment variable
/// [`TRACE_ENV`] wins over `set_enabled(false)`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One completed span, as stored in the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static: instrumentation sites name their spans in code).
    pub name: &'static str,
    /// Unique span id (process-wide).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Trace thread id (small dense integers assigned at first use).
    pub tid: u64,
    /// Begin timestamp, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// `key=value` attributes captured at span entry.
    pub attrs: Vec<(&'static str, String)>,
}

struct ThreadBuf {
    tid: u64,
    /// Ids of the currently open spans, innermost last.
    stack: Vec<u64>,
    buf: Vec<SpanEvent>,
    cap: usize,
}

thread_local! {
    static THREAD: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        stack: Vec::new(),
        buf: Vec::new(),
        cap: DEFAULT_BUFFER_CAPACITY,
    });
}

fn collector() -> &'static Mutex<Vec<SpanEvent>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

fn thread_names() -> &'static Mutex<BTreeMap<u64, String>> {
    static NAMES: OnceLock<Mutex<BTreeMap<u64, String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Names the current thread in exported traces (e.g. `worker-3`).
pub fn set_thread_name(name: impl Into<String>) {
    let tid = THREAD.with(|t| t.borrow().tid);
    thread_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(tid, name.into());
}

/// Overrides the current thread's event-buffer capacity. Intended for tests
/// (tiny capacities make drop behavior observable); production code keeps
/// [`DEFAULT_BUFFER_CAPACITY`].
pub fn set_thread_buffer_capacity(cap: usize) {
    THREAD.with(|t| t.borrow_mut().cap = cap.max(1));
}

fn record(ev: SpanEvent) {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if t.buf.len() >= t.cap {
            // Buffer full and the collector is busy: drop rather than block
            // or reallocate. The count makes the loss visible (CI fails a
            // traced run with any drops).
            if let Ok(mut g) = collector().try_lock() {
                g.append(&mut t.buf);
            } else {
                metrics::counter("trace.dropped_events").inc();
                return;
            }
        }
        t.buf.push(ev);
        if t.buf.len() * 2 >= t.cap {
            // High-water mark: drain opportunistically, never blocking.
            if let Ok(mut g) = collector().try_lock() {
                g.append(&mut t.buf);
            }
        }
    });
}

/// Drains the current thread's buffer into the global collector (blocking).
/// Pool workers call this as they exit; call it manually on long-lived
/// threads before [`export`].
pub fn flush_thread() {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if !t.buf.is_empty() {
            collector()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append(&mut t.buf);
        }
    });
}

/// Flushes the current thread and takes every event collected so far.
pub fn drain() -> Vec<SpanEvent> {
    flush_thread();
    std::mem::take(&mut *collector().lock().unwrap_or_else(|e| e.into_inner()))
}

/// RAII guard for one span: records a [`SpanEvent`] when dropped.
///
/// Create guards through the [`span!`](crate::span) macro (or [`span`] /
/// [`span_with`]); they return `None` when tracing is disabled, so the
/// instrumented code pays only the enabled check.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    parent: u64,
    tid: u64,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    fn begin(name: &'static str, attrs: Vec<(&'static str, String)>) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (tid, parent) = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let parent = t.stack.last().copied().unwrap_or(0);
            t.stack.push(id);
            (t.tid, parent)
        });
        SpanGuard {
            name,
            id,
            parent,
            tid,
            start: Instant::now(),
            start_ns: now_ns(),
            attrs,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            // Pop this span (guards drop in LIFO order per thread, but be
            // defensive about leaked guards).
            if let Some(pos) = t.stack.iter().rposition(|&id| id == self.id) {
                t.stack.truncate(pos);
            }
        });
        record(SpanEvent {
            name: self.name,
            id: self.id,
            parent: self.parent,
            tid: self.tid,
            start_ns: self.start_ns,
            dur_ns,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

/// Opens a span with no attributes; `None` when tracing is disabled.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    if enabled() {
        Some(SpanGuard::begin(name, Vec::new()))
    } else {
        None
    }
}

/// Opens a span with pre-built attributes; `None` when tracing is disabled.
/// Prefer the [`span!`](crate::span) macro, which skips attribute
/// formatting entirely when disabled.
pub fn span_with(name: &'static str, attrs: Vec<(&'static str, String)>) -> Option<SpanGuard> {
    if enabled() {
        Some(SpanGuard::begin(name, attrs))
    } else {
        None
    }
}

/// Runs `f` under a span named `name`, returning its result *and* the
/// measured duration.
///
/// The duration is measured whether or not tracing is enabled, which is
/// what lets `StageStats` stay populated (and byte-compatible) with tracing
/// off while being a pure view over the span layer when it is on.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, std::time::Duration) {
    timed_with(name, Vec::new, f)
}

/// [`timed`] with lazily-built attributes (only evaluated when enabled).
pub fn timed_with<T>(
    name: &'static str,
    attrs: impl FnOnce() -> Vec<(&'static str, String)>,
    f: impl FnOnce() -> T,
) -> (T, std::time::Duration) {
    let guard = if enabled() {
        Some(SpanGuard::begin(name, attrs()))
    } else {
        None
    };
    let t = Instant::now();
    let out = f();
    let dur = t.elapsed();
    drop(guard);
    (out, dur)
}

/// Opens a span recording begin/end timestamps and `key = value` attributes:
///
/// ```
/// pokemu_rt::trace::set_enabled(true);
/// let insn = "push_r32";
/// let _guard = pokemu_rt::span!("explore_state_space", insn = insn, paths = 42);
/// ```
///
/// Expands to one relaxed atomic check when tracing is disabled; attribute
/// expressions are not evaluated in that case.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::span_with(
                $name,
                vec![$((stringify!($key), format!("{}", $value))),+],
            )
        } else {
            None
        }
    };
}

/// Paths written by [`export`].
#[derive(Debug, Clone)]
pub struct TracePaths {
    /// The Chrome `trace_event` JSON file.
    pub trace_json: PathBuf,
    /// The metrics JSONL dump.
    pub metrics_jsonl: PathBuf,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one event as a Chrome `trace_event` *complete* event object.
fn event_json(ev: &SpanEvent) -> String {
    let mut args = format!("\"span\":{},\"parent\":{}", ev.id, ev.parent);
    for (k, v) in &ev.attrs {
        args.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"pokemu\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
        json_escape(ev.name),
        ev.tid,
        ev.start_ns as f64 / 1000.0,
        ev.dur_ns as f64 / 1000.0,
    )
}

/// The directory trace exports land in: `target/trace/` next to the other
/// build artifacts (honors `CARGO_TARGET_DIR`). `pokemu-report` reads the
/// files back from here.
pub fn trace_dir() -> PathBuf {
    crate::bench::target_dir().join("trace")
}

/// Drains all collected spans and the metrics registry to
/// `target/trace/<run>.trace.json` + `target/trace/<run>.metrics.jsonl`.
///
/// The trace file is a Chrome `trace_event` JSON object — open it in
/// `chrome://tracing` or drop it onto <https://ui.perfetto.dev>. Events
/// recorded by threads that are still alive and have not flushed are not
/// included; the pool flushes its workers automatically.
///
/// # Errors
///
/// Propagates filesystem errors creating or writing the output files.
pub fn export(run: &str) -> std::io::Result<TracePaths> {
    let events = drain();
    let dir = trace_dir();
    std::fs::create_dir_all(&dir)?;
    let trace_json = dir.join(format!("{run}.trace.json"));
    let metrics_jsonl = dir.join(format!("{run}.metrics.jsonl"));

    let mut f = std::io::BufWriter::new(std::fs::File::create(&trace_json)?);
    write!(f, "{{\"traceEvents\":[")?;
    let mut first = true;
    for (tid, name) in thread_names()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        if !first {
            write!(f, ",")?;
        }
        first = false;
        write!(
            f,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        )?;
    }
    for ev in &events {
        if !first {
            write!(f, ",")?;
        }
        first = false;
        write!(f, "{}", event_json(ev))?;
    }
    write!(
        f,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"run\":\"{}\"}}}}",
        json_escape(run)
    )?;
    f.flush()?;

    std::fs::write(&metrics_jsonl, metrics::snapshot().to_jsonl())?;
    Ok(TracePaths {
        trace_json,
        metrics_jsonl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Span recording is process-global state; tests that toggle it or
    /// inspect the collector serialize on this lock.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_macro_returns_none() {
        let _g = serialize();
        set_enabled(false);
        if env_enabled() {
            return; // cannot observe the disabled path under POKEMU_TRACE=1
        }
        let s = crate::span!("test.disabled", ignored = 1);
        assert!(s.is_none());
    }

    #[test]
    fn spans_nest_within_a_thread() {
        let _g = serialize();
        set_enabled(true);
        drain();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner", depth = 2);
        }
        set_enabled(false);
        let events = drain();
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(inner.parent, outer.id, "inner span links to outer");
        assert_eq!(outer.parent, 0, "outer span is a root");
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(inner.attrs, vec![("depth", "2".to_owned())]);
        // Inner drops first, so it is recorded first.
        let io = events.iter().position(|e| e.name == "test.inner").unwrap();
        let oo = events.iter().position(|e| e.name == "test.outer").unwrap();
        assert!(io < oo);
    }

    #[test]
    fn spans_on_other_threads_get_their_own_stack() {
        let _g = serialize();
        set_enabled(true);
        drain();
        let main_tid = THREAD.with(|t| t.borrow().tid);
        {
            let _outer = crate::span!("test.cross_outer");
            std::thread::spawn(|| {
                let _child = crate::span!("test.cross_child");
                drop(_child);
                flush_thread();
            })
            .join()
            .unwrap();
        }
        set_enabled(false);
        let events = drain();
        let child = events
            .iter()
            .find(|e| e.name == "test.cross_child")
            .unwrap();
        assert_eq!(
            child.parent, 0,
            "a span on a fresh thread is a root, not a child of another thread's span"
        );
        assert_ne!(child.tid, main_tid);
    }

    #[test]
    fn wraparound_drops_are_counted() {
        let _g = serialize();
        set_enabled(true);
        drain();
        let dropped = metrics::counter("trace.dropped_events");
        let before = dropped.get();
        // Hold the collector lock so buffers cannot drain, with a tiny
        // capacity so the ring fills immediately.
        let hold = collector().lock().unwrap_or_else(|e| e.into_inner());
        set_thread_buffer_capacity(4);
        for _ in 0..10 {
            let _s = crate::span!("test.dropped");
        }
        drop(hold);
        set_thread_buffer_capacity(DEFAULT_BUFFER_CAPACITY);
        set_enabled(false);
        let kept = drain().iter().filter(|e| e.name == "test.dropped").count();
        let dropped_now = dropped.get() - before;
        assert!(dropped_now > 0, "overflow must be counted");
        assert_eq!(kept as u64 + dropped_now, 10, "kept + dropped = recorded");
    }

    #[test]
    fn export_writes_parseable_chrome_trace() {
        let _g = serialize();
        set_enabled(true);
        drain();
        {
            let _s = crate::span!("test.export", insn = "push \"eax\"");
        }
        set_enabled(false);
        let paths = export("rt-trace-selftest").expect("export succeeds");
        let text = std::fs::read_to_string(&paths.trace_json).unwrap();
        let v = crate::json::parse(&text).expect("trace JSON parses");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let ours = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("test.export"))
            .expect("exported span present");
        assert_eq!(ours.get("ph").and_then(|p| p.as_str()), Some("X"));
        let args = ours.get("args").unwrap();
        assert_eq!(
            args.get("insn").and_then(|i| i.as_str()),
            Some("push \"eax\""),
            "attribute quoting survives the round trip"
        );
        let metrics_text = std::fs::read_to_string(&paths.metrics_jsonl).unwrap();
        for line in metrics_text.lines() {
            crate::json::parse(line).expect("every metrics line parses");
        }
    }

    #[test]
    fn timed_measures_even_when_disabled() {
        let _g = serialize();
        set_enabled(false);
        let ((), dur) = timed("test.timed", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(dur >= std::time::Duration::from_millis(2));
    }
}
