//! A minimal property-testing harness (the in-repo `proptest` replacement).
//!
//! A property is a function over a [`Gen`]: it draws arbitrary inputs and
//! asserts invariants with the ordinary `assert!` family. The runner
//! executes it for N cases, each with a seed derived deterministically from
//! the property name, so runs are reproducible with no corpus files and no
//! network access.
//!
//! On failure the runner *shrinks by halving*: it replays the failing seed
//! with the generator size halved repeatedly, keeping the smallest size that
//! still fails (smaller size ⇒ shorter vectors, shallower recursion ⇒ a
//! smaller counterexample). The panic message reports the failing seed/size
//! pair; exporting `POKEMU_PROP_SEED` (and optionally `POKEMU_PROP_SIZE`)
//! replays exactly that case — same seed, same size, byte-for-byte the same
//! drawn values.
//!
//! ```ignore
//! pokemu_rt::prop! {
//!     /// Addition commutes.
//!     fn add_commutes(g, cases = 64) {
//!         let (a, b) = (g.gen::<u32>(), g.gen::<u32>());
//!         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     }
//! }
//! ```

use crate::rng::{mix64, Rng, Sample, SampleRange};

/// Environment variable replaying one exact failing case.
pub const SEED_ENV: &str = "POKEMU_PROP_SEED";
/// Environment variable fixing the generator size during replay.
pub const SIZE_ENV: &str = "POKEMU_PROP_SIZE";

/// Default case count when the property does not specify one.
pub const DEFAULT_CASES: u64 = 256;
/// Default generator size (scales collection lengths / recursion depth).
pub const DEFAULT_SIZE: usize = 64;

/// The input source handed to a property: a seeded PRNG plus a *size*
/// bound that shrinking reduces.
#[derive(Debug)]
pub struct Gen {
    rng: Rng,
    size: usize,
}

impl Gen {
    /// Creates a generator from an exact (seed, size) pair.
    pub fn new(seed: u64, size: usize) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed),
            size: size.max(1),
        }
    }

    /// The current size bound (collection lengths scale with it).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The underlying PRNG, for drawing primitives directly.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Draws a uniform primitive (`u8`…`u64`, `usize`, `bool`).
    pub fn gen<T: Sample>(&mut self) -> T {
        self.rng.gen()
    }

    /// Draws from a range, like [`Rng::gen_range`].
    pub fn range<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.rng.gen_range(range)
    }

    /// `true` with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// Picks one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose on empty slice");
        &options[self.rng.gen_range(0..options.len())]
    }

    /// A vector with length drawn from `min..max` (exclusive), clamped by
    /// the size bound so shrinking produces shorter inputs.
    pub fn vec<T>(
        &mut self,
        min: usize,
        max: usize,
        mut item: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        assert!(min < max, "vec length range is empty");
        let hi = max.min(min.saturating_add(self.size).max(min + 1));
        let len = self.rng.gen_range(min..hi);
        (0..len).map(|_| item(self)).collect()
    }

    /// A byte vector with length in `min..max` (exclusive).
    pub fn bytes(&mut self, min: usize, max: usize) -> Vec<u8> {
        self.vec(min, max, |g| g.gen())
    }
}

/// A failing case, as the runner reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Which case (0-based) failed.
    pub case: u64,
    /// The seed that generates the counterexample.
    pub seed: u64,
    /// The smallest generator size at which the seed still fails.
    pub size: usize,
    /// The original panic message.
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

fn fails_with(
    f: &(impl Fn(&mut Gen) + std::panic::RefUnwindSafe),
    seed: u64,
    size: usize,
) -> Option<String> {
    let result = std::panic::catch_unwind(|| {
        let mut g = Gen::new(seed, size);
        f(&mut g);
    });
    result.err().map(panic_message)
}

/// Runs a property and returns the shrunk failure, if any. [`run`] is the
/// panicking wrapper tests use; this form exists so the harness itself can
/// be tested (and is what the deterministic-replay test drives).
pub fn run_report(
    name: &str,
    cases: u64,
    f: impl Fn(&mut Gen) + std::panic::RefUnwindSafe,
) -> Result<u64, Failure> {
    // Replay mode: one exact case, no shrinking — byte-for-byte the values
    // of the reported failure.
    if let Ok(seed_str) = std::env::var(SEED_ENV) {
        let seed = parse_u64(&seed_str)
            .unwrap_or_else(|| panic!("{SEED_ENV} must be a u64 (decimal or 0x…): {seed_str}"));
        let size = std::env::var(SIZE_ENV)
            .ok()
            .and_then(|s| parse_u64(&s))
            .map(|s| s as usize)
            .unwrap_or(DEFAULT_SIZE);
        return match fails_with(&f, seed, size) {
            Some(message) => Err(Failure {
                case: 0,
                seed,
                size,
                message,
            }),
            None => Ok(1),
        };
    }

    // The per-property base seed is derived from the name, so distinct
    // properties explore distinct streams but every run is reproducible.
    let base = fnv1a(name) ^ 0x243f_6a88_85a3_08d3;
    for case in 0..cases {
        let seed = mix64(base.wrapping_add(case));
        if let Some(message) = fails_with(&f, seed, DEFAULT_SIZE) {
            // Shrink by halving the size while the same seed still fails.
            let mut best = (DEFAULT_SIZE, message);
            let mut size = DEFAULT_SIZE / 2;
            while size >= 1 {
                match fails_with(&f, seed, size) {
                    Some(m) => best = (size, m),
                    None => break,
                }
                if size == 1 {
                    break;
                }
                size /= 2;
            }
            return Err(Failure {
                case,
                seed,
                size: best.0,
                message: best.1,
            });
        }
    }
    Ok(cases)
}

/// Runs a property for `cases` iterations, panicking with a replayable
/// report on the first (shrunk) failure.
pub fn run(name: &str, cases: u64, f: impl Fn(&mut Gen) + std::panic::RefUnwindSafe) {
    if let Err(fail) = run_report(name, cases, f) {
        panic!(
            "property `{name}` failed at case {} (seed {:#018x}, size {}).\n  replay: \
             {SEED_ENV}={:#x} {SIZE_ENV}={} cargo test {name}\n  cause: {}",
            fail.case, fail.seed, fail.size, fail.seed, fail.size, fail.message
        );
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares `#[test]` properties over a [`Gen`].
///
/// ```ignore
/// pokemu_rt::prop! {
///     fn always_holds(g) { assert!(g.range(0..10u8) < 10); }
///     fn with_case_count(g, cases = 48) { /* … */ }
/// }
/// ```
#[macro_export]
macro_rules! prop {
    () => {};
    ($(#[$attr:meta])* fn $name:ident($g:ident, cases = $cases:expr) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        #[test]
        fn $name() {
            $crate::prop::run(stringify!($name), $cases, |$g: &mut $crate::prop::Gen| $body);
        }
        $crate::prop! { $($rest)* }
    };
    ($(#[$attr:meta])* fn $name:ident($g:ident) $body:block $($rest:tt)*) => {
        $crate::prop! {
            $(#[$attr])* fn $name($g, cases = $crate::prop::DEFAULT_CASES) $body
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let n = run_report("always_true", 32, |g| {
            let v: u8 = g.gen();
            let _ = v;
        })
        .expect("property holds");
        assert_eq!(n, 32);
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        let fail = run_report("fails_on_long_vecs", 64, |g| {
            let v = g.bytes(0, 200);
            assert!(v.len() < 3, "vector too long: {}", v.len());
        })
        .expect_err("property must fail");
        // Shrinking halves the size until vectors shorter than 3 pass; the
        // reported size must be small but still failing.
        assert!(fail.size <= DEFAULT_SIZE);
        let msg = fails_with(
            &|g: &mut Gen| {
                let v = g.bytes(0, 200);
                assert!(v.len() < 3, "vector too long: {}", v.len());
            },
            fail.seed,
            fail.size,
        );
        assert!(
            msg.is_some(),
            "reported (seed, size) must reproduce the failure"
        );
    }

    #[test]
    fn same_seed_same_size_draws_identical_bytes() {
        let mut a = Gen::new(0xfeed, 16);
        let mut b = Gen::new(0xfeed, 16);
        let va = a.bytes(0, 64);
        let vb = b.bytes(0, 64);
        assert_eq!(va, vb);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    prop! {
        /// The macro form compiles, runs, and sees the doc attribute.
        fn macro_declared_property(g, cases = 16) {
            let x = g.range(0..100u32);
            let y = g.range(0..100u32);
            assert_eq!(x.wrapping_add(y), y.wrapping_add(x));
        }

        fn macro_default_cases(g) {
            assert!(g.size() >= 1);
        }
    }
}
