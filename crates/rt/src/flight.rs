//! A flight recorder: the last N events per thread, always on, dumped on
//! crash or deviation.
//!
//! [`crate::trace`] answers "what did the whole run do?" but costs a full
//! re-run under `POKEMU_TRACE=1`. The flight recorder answers the post-hoc
//! question — "what were the last things each thread did before the panic /
//! before this cross-validation deviation?" — from the run that already
//! failed. Each thread owns a fixed-capacity ring of [`FlightEvent`]s;
//! recording overwrites the oldest entry, so memory is bounded no matter
//! how long the run.
//!
//! Recording locks only the recording thread's *own* ring (uncontended in
//! steady state — other threads touch it only while taking a [`snapshot`]),
//! and events are ordered by a global relaxed sequence counter so a merged
//! dump reads as one interleaved timeline.
//!
//! The harness pipeline arms the recorder with [`set_dump_dir`] +
//! [`install_panic_hook`]; a panic then writes `flightrec-panic.jsonl` into
//! the run-manifest directory, and the pipeline itself dumps
//! `flightrec-deviations.jsonl` whenever cross-validation finds a
//! deviation. Disable with `POKEMU_FLIGHT=0` (the per-event cost is then a
//! single relaxed atomic load); size the rings with `POKEMU_FLIGHT_CAP=<n>`
//! when 256 events per thread is not enough history. Overwrites of
//! not-yet-dumped events are counted in [`dropped`] so a too-small ring is
//! diagnosable.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

use crate::json;

/// Environment variable that disables flight recording when set to `0`.
pub const FLIGHT_ENV: &str = "POKEMU_FLIGHT";

/// Environment variable overriding the per-thread ring capacity (events;
/// parsed once at the first ring creation, minimum 1). Rings created after
/// an explicit [`set_thread_capacity`] call use that value instead.
pub const FLIGHT_CAP_ENV: &str = "POKEMU_FLIGHT_CAP";

/// Default per-thread ring capacity.
pub const DEFAULT_CAPACITY: usize = 256;

const STATE_UNINIT: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static SEQ: AtomicU64 = AtomicU64::new(0);
/// 0 = not yet resolved (lazy env check); any other value is the capacity.
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
/// Events overwritten before anyone snapshotted them, process-wide. Kept as
/// a plain atomic rather than a metrics counter: drop totals depend on how
/// items land on threads, so a counter would break the thread-count
/// byte-identity contract golden runs rely on.
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Parses a [`FLIGHT_CAP_ENV`] value: a positive integer event count.
fn parse_capacity(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

#[cold]
fn init_capacity_from_env() -> usize {
    let cap = std::env::var(FLIGHT_CAP_ENV)
        .ok()
        .as_deref()
        .and_then(parse_capacity)
        .unwrap_or(DEFAULT_CAPACITY);
    CAPACITY.store(cap, Ordering::Relaxed);
    cap
}

/// The capacity new rings are created with: an explicit
/// [`set_thread_capacity`] override, else `POKEMU_FLIGHT_CAP`, else
/// [`DEFAULT_CAPACITY`].
pub fn current_capacity() -> usize {
    match CAPACITY.load(Ordering::Relaxed) {
        0 => init_capacity_from_env(),
        cap => cap,
    }
}

/// Events overwritten (dropped from a full ring) so far, process-wide.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(FLIGHT_ENV).map(|v| v != "0").unwrap_or(true);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether flight recording is on (one relaxed load when off).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Turns flight recording on or off process-wide.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Sets the ring capacity used by threads that have not recorded yet
/// (existing rings keep their size), overriding both the default and any
/// `POKEMU_FLIGHT_CAP` value.
pub fn set_thread_capacity(cap: usize) {
    CAPACITY.store(cap.max(1), Ordering::Relaxed);
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch.
    pub ns: u64,
    /// Recorder thread index (assigned on the thread's first event).
    pub tid: u64,
    /// Event name (static label, e.g. `"pipeline.deviation"`).
    pub name: &'static str,
    /// Free-form detail payload.
    pub detail: String,
}

struct Ring {
    tid: u64,
    cap: usize,
    /// Oldest-first once full; `next` is the overwrite cursor.
    events: Vec<FlightEvent>,
    next: usize,
}

impl Ring {
    fn push(&mut self, ev: FlightEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            // Overwriting loses the oldest retained event; make the loss
            // visible so "the ring was too small" is diagnosable post-hoc.
            DROPPED.fetch_add(1, Ordering::Relaxed);
            self.events[self.next] = ev;
        }
        self.next = (self.next + 1) % self.cap;
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

thread_local! {
    static MY_RING: Arc<Mutex<Ring>> = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(Mutex::new(Ring {
            tid: reg.len() as u64,
            cap: current_capacity(),
            events: Vec::new(),
            next: 0,
        }));
        reg.push(ring.clone());
        ring
    };
}

/// Records one event on the calling thread's ring. The detail closure runs
/// only when recording is enabled, so callers can format lazily.
pub fn note(name: &'static str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    let detail = detail();
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let ns = crate::trace::now_ns();
    MY_RING.with(|ring| {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        let tid = r.tid;
        r.push(FlightEvent {
            seq,
            ns,
            tid,
            name,
            detail,
        });
    });
}

/// All retained events from every thread's ring, merged and ordered by
/// global sequence number.
pub fn snapshot() -> Vec<FlightEvent> {
    let rings: Vec<Arc<Mutex<Ring>>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    for ring in rings {
        let r = ring.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(r.events.iter().cloned());
    }
    out.sort_by_key(|e| e.seq);
    out
}

/// Empties every ring (test hook; sequence numbers keep counting).
pub fn clear() {
    let rings: Vec<Arc<Mutex<Ring>>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    for ring in rings {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.events.clear();
        r.next = 0;
    }
}

fn event_json(ev: &FlightEvent) -> String {
    format!(
        "{{\"kind\":\"flight\",\"seq\":{},\"ns\":{},\"tid\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
        ev.seq,
        ev.ns,
        ev.tid,
        json::escape(ev.name),
        json::escape(&ev.detail)
    )
}

/// Writes the merged ring contents to `path` as JSON lines, one event per
/// line, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    dump_events_to(path, &snapshot())
}

/// Writes an explicit event list (e.g. a quarantine record's captured
/// snapshot) to `path` in the same JSONL format as [`dump_to`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn dump_events_to(path: &Path, events: &[FlightEvent]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for ev in events {
        writeln!(f, "{}", event_json(ev))?;
    }
    f.flush()
}

fn dump_dir_slot() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(Mutex::default)
}

/// Directs crash dumps to `dir` (normally the run-manifest directory).
pub fn set_dump_dir(dir: PathBuf) {
    *dump_dir_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(dir);
}

/// Where crash dumps go: the configured dump dir, else `target/run/`.
pub fn dump_dir() -> PathBuf {
    dump_dir_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| crate::bench::target_dir().join("run"))
}

/// Installs a panic hook (once per process, chaining any existing hook)
/// that dumps the flight recorder to `<dump_dir>/flightrec-panic.jsonl`
/// before the panic propagates.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if enabled() {
                let path = dump_dir().join("flightrec-panic.jsonl");
                let _ = dump_to(&path);
                eprintln!("flight recorder dumped to {}", path.display());
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Rings and the enabled flag are process-global; tests serialize.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn records_and_orders_events() {
        let _g = serialize();
        set_enabled(true);
        clear();
        note("flight.test.a", || "first".to_owned());
        note("flight.test.b", || "second".to_owned());
        let evs: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.name.starts_with("flight.test."))
            .collect();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].seq < evs[1].seq);
        assert_eq!(evs[0].detail, "first");
        assert_eq!(evs[1].detail, "second");
    }

    #[test]
    fn ring_keeps_only_the_last_n() {
        let _g = serialize();
        set_enabled(true);
        clear();
        // This thread's ring already exists with the default capacity, so
        // overflow it: record far more than DEFAULT_CAPACITY events.
        for i in 0..(DEFAULT_CAPACITY + 10) {
            note("flight.test.ring", move || format!("ev{i}"));
        }
        let evs: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.name == "flight.test.ring")
            .collect();
        assert!(evs.len() <= DEFAULT_CAPACITY);
        // The newest event always survives; the oldest were overwritten.
        assert_eq!(
            evs.last().unwrap().detail,
            format!("ev{}", DEFAULT_CAPACITY + 9)
        );
        assert!(evs.iter().all(|e| e.detail != "ev0"));
    }

    #[test]
    fn capacity_env_values_parse() {
        assert_eq!(parse_capacity("64"), Some(64));
        assert_eq!(parse_capacity(" 1024 "), Some(1024));
        assert_eq!(
            parse_capacity("0"),
            None,
            "a zero-capacity ring is not a ring"
        );
        assert_eq!(parse_capacity(""), None);
        assert_eq!(parse_capacity("lots"), None);
        assert_eq!(parse_capacity("-4"), None);
    }

    #[test]
    fn over_capacity_burst_keeps_newest_and_counts_drops() {
        let _g = serialize();
        set_enabled(true);
        clear();
        set_thread_capacity(8);
        let before = dropped();
        // A fresh thread creates its ring at the configured capacity, the
        // same path a POKEMU_FLIGHT_CAP-sized ring takes.
        std::thread::spawn(|| {
            for i in 0..20 {
                note("flight.test.cap", move || format!("burst{i}"));
            }
        })
        .join()
        .unwrap();
        set_thread_capacity(DEFAULT_CAPACITY);
        let evs: Vec<_> = snapshot()
            .into_iter()
            .filter(|e| e.name == "flight.test.cap")
            .collect();
        assert_eq!(evs.len(), 8, "ring retains exactly its capacity");
        let details: Vec<_> = evs.iter().map(|e| e.detail.as_str()).collect();
        let newest: Vec<String> = (12..20).map(|i| format!("burst{i}")).collect();
        assert_eq!(
            details,
            newest.iter().map(String::as_str).collect::<Vec<_>>(),
            "the newest events survive, oldest are overwritten"
        );
        // 20 events into an 8-slot ring overwrite 12. Other test threads may
        // add drops of their own concurrently, so this is a floor.
        assert!(
            dropped() - before >= 12,
            "12 overwrites must be counted, saw {}",
            dropped() - before
        );
    }

    #[test]
    fn disabled_recording_skips_detail_closure() {
        let _g = serialize();
        set_enabled(false);
        let mut ran = false;
        note("flight.test.disabled", || {
            ran = true;
            String::new()
        });
        set_enabled(true);
        assert!(!ran, "detail closure must not run while disabled");
        assert!(snapshot().iter().all(|e| e.name != "flight.test.disabled"));
    }

    #[test]
    fn dump_is_parseable_jsonl() {
        let _g = serialize();
        set_enabled(true);
        clear();
        note("flight.test.dump", || "say \"hi\"\n".to_owned());
        let path = crate::bench::target_dir().join("run/flight-test/dump.jsonl");
        dump_to(&path).expect("dump writes");
        let text = std::fs::read_to_string(&path).expect("dump readable");
        let line = text
            .lines()
            .find(|l| l.contains("flight.test.dump"))
            .expect("dumped event present");
        let v = json::parse(line).expect("dump line parses");
        assert_eq!(v.get("kind").and_then(json::Value::as_str), Some("flight"));
        assert_eq!(
            v.get("detail").and_then(json::Value::as_str),
            Some("say \"hi\"\n")
        );
    }
}
