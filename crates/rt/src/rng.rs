//! Seedable, deterministic pseudo-random number generation.
//!
//! [`SplitMix64`] expands a 64-bit seed into an arbitrary stream (and seeds
//! everything else); [`Rng`] is xoshiro256** — fast, tiny state, and more
//! than adequate statistical quality for test-input generation and
//! exploration tie-breaking. Both are fully deterministic: the same seed
//! produces the same stream on every platform, which is what lets the E5
//! random baseline and the `rt::prop!` harness replay failures exactly.

/// The SplitMix64 generator (Steele, Lea, Flood 2014): one 64-bit word of
/// state, used to seed larger generators and to derive per-case seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot SplitMix64 mix, for deriving independent seeds from a base.
pub fn mix64(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}

/// The workspace PRNG: xoshiro256** (Blackman & Vigna 2018), seeded from a
/// `u64` through SplitMix64 (the reference seeding procedure).
///
/// The drawing surface mirrors the subset of `rand::Rng` the repo uses:
/// [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::fill_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// The next 64 bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next 32 bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Draws a uniformly distributed value of a primitive type.
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a `lo..hi` or `lo..=hi` range.
    ///
    /// Panics on an empty range, like `rand`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (0.0 ..= 1.0).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // Compare against the top 53 bits: exact for representable p.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// A uniform draw from `0..bound` without modulo bias (rejection on the
    /// short top interval).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types [`Rng::gen`] can draw uniformly.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can draw from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // the full u64 domain
                }
                lo.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 (from the public-domain
        // splitmix64.c reference implementation).
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(first, sm2.next_u64(), "deterministic");
        assert_ne!(first, sm.next_u64(), "stream advances");
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.gen_range(0..8u8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 drawn: {seen:?}");
        for _ in 0..256 {
            let v = r.gen_range(3..=15usize);
            assert!((3..=15).contains(&v));
        }
        // Full-domain inclusive range must not panic or loop.
        let _ = r.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = Rng::seed_from_u64(99);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
        let heads = (0..4096).filter(|_| r.gen_bool(0.5)).count();
        assert!((1700..2400).contains(&heads), "p=0.5 gave {heads}/4096");
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = Rng::seed_from_u64(5);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "filled: {buf:?}");
            }
        }
    }
}
