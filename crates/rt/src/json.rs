//! A minimal JSON reader for the observability tooling.
//!
//! The workspace *emits* JSON in several places (bench timings, Chrome
//! traces, metrics dumps) with hand-rolled writers; this module is the
//! matching reader so `pokemu-report` and CI validation can consume those
//! files with zero external dependencies. It parses standard JSON into a
//! [`Value`] tree; it is not tuned for huge documents (the trace files it
//! reads are megabytes at most).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like browsers do).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a hand-rolled JSON writer (the
/// counterpart of [`parse`] for the workspace's emit side).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure, with byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax violation.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap(), &Value::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(r#""quote \" backslash \\ unicode \u0041""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" backslash \\ unicode A"));
    }

    #[test]
    fn parses_bench_json_lines() {
        // The exact shape rt::bench emits.
        let line = r#"{"suite":"smoke","group":"smoke","bench":"x","samples":3,"iters_per_sample":1,"min_ns":1,"mean_ns":2,"median_ns":2,"p95_ns":3,"max_ns":3}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("suite").unwrap().as_str(), Some("smoke"));
        assert_eq!(v.get("p95_ns").unwrap().as_u64(), Some(3));
    }
}
