//! `pokemu-rt` — self-contained runtime support for the PokeEMU-rs
//! workspace, replacing every external crate the repo once pulled from
//! crates.io so that `cargo build && cargo test && cargo bench` work with
//! no network access:
//!
//! | was | now |
//! |---|---|
//! | `rand` | [`rng`]: seedable SplitMix64 / xoshiro256** with the small `Rng` surface the repo uses |
//! | `crossbeam` (scoped threads) | [`pool`]: `std::thread::scope` work queue with per-worker stats |
//! | `proptest` | [`prop`]: the [`prop!`] macro — N cases, PRNG generators, shrink-by-halving, `POKEMU_PROP_SEED` replay |
//! | `criterion` | [`bench`]: warm-up + K timed samples, median/p95, JSON lines in `target/bench/` |
//! | `tracing` + `metrics` + `serde_json` | [`trace`]: structured spans with Chrome `trace_event` export; [`metrics`]: counters / timers / log-scale histograms with snapshot-diff; [`json`]: the matching zero-dep JSON reader |
//!
//! On top of the replacements, two observability primitives with no
//! external equivalent in the old dependency set: [`coverage`] (fixed-size
//! atomic bitmaps recording opcode / path / µop / exception-class coverage,
//! snapshot-diffable and JSONL-exportable for the run manifest and the CI
//! coverage gate), [`flight`] (a per-thread ring buffer of recent events,
//! dumped post-hoc on panic or cross-validation deviation), and [`fault`]
//! (named deterministic fault-injection points, armed via `POKEMU_FAULT`,
//! that chaos-test the quarantine and budget layers), and [`prof`] (an
//! instrumenting self-profiler: per-thread scoped frames aggregated by
//! stack path, exported as collapsed-stack `.folded` files for flamegraph
//! tooling, one relaxed load per site when `POKEMU_PROF` is off), and
//! [`history`] (an append-only, content-hashed cross-run ledger under
//! `target/history/` — the substrate for `pokemu-report compare`, `trend`,
//! and the CI trend gate).
//!
//! Determinism is the point, not just offline builds: the same seeds produce
//! the same exploration choices, the same random-baseline tests (E5), and
//! the same property-test cases on every machine, so experiment results and
//! failures are exactly reproducible.

#![warn(missing_docs)]

pub mod bench;
pub mod coverage;
pub mod fault;
pub mod flight;
pub mod history;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod prof;
pub mod prop;
pub mod rng;
pub mod trace;

pub use coverage::{CoverageMap, CoverageSnapshot, MapSnapshot};
pub use fault::FaultKind;
pub use flight::FlightEvent;
pub use history::RunRecord;
pub use metrics::{Counter, Histogram, MetricsSnapshot, Timer};
pub use pool::{for_each, PoolRun, QuarantineRecord, WorkerStats};
pub use prof::{FrameGuard, FrameStat};
pub use prop::Gen;
pub use rng::{mix64, Rng, SplitMix64};
pub use trace::{SpanEvent, SpanGuard, TracePaths};
