//! A scoped work-stealing-free thread pool over `std::thread::scope`.
//!
//! The pipeline's parallelism is embarrassingly simple: N workers pull item
//! indexes from a shared atomic counter until the queue drains (exactly the
//! structure the paper ran on 3×8-core EC2 instances, §6). What `crossbeam`
//! provided — scoped spawns borrowing the caller's stack — `std::thread::scope`
//! has provided natively since Rust 1.63, so this module adds only the
//! work-queue loop and per-worker observability.
//!
//! The pool is the harness's fault boundary: each item runs under
//! `catch_unwind`, so a panicking item becomes a [`QuarantineRecord`] on the
//! [`PoolRun`] — item index, panic payload, and a flight-recorder dump —
//! while the worker repairs itself and keeps draining the queue. One bad
//! instruction implementation yields a *finding*, never a dead campaign.
//! An optional deadline stops dispatch when the run budget is exhausted;
//! items never claimed are counted in [`PoolRun::skipped`] so callers can
//! report a partial run honestly.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::fault;
use crate::flight;

/// What one worker did during a [`for_each`] run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Items this worker processed (successfully; quarantined items are
    /// counted on [`PoolRun::quarantined`] instead).
    pub items: usize,
    /// Wall time this worker spent inside the item closure.
    pub busy: Duration,
}

/// One quarantined failure: an item whose closure panicked (or a worker
/// thread that died outside the item boundary), recorded instead of
/// aborting the run.
#[derive(Debug, Clone)]
pub struct QuarantineRecord {
    /// The item that panicked; `None` when a worker thread died outside
    /// the per-item `catch_unwind` boundary (so the item, if any, is
    /// unknown).
    pub item: Option<usize>,
    /// The worker that hit the panic.
    pub worker: usize,
    /// The panic payload, downcast to a string when possible.
    pub message: String,
    /// Flight-recorder snapshot taken at quarantine time: the last events
    /// every thread recorded before the failure (empty when flight
    /// recording is disabled).
    pub flight: Vec<flight::FlightEvent>,
}

/// The result of a [`for_each`] run.
#[derive(Debug, Default, Clone)]
pub struct PoolRun {
    /// Per-worker statistics, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Wall time of the whole run (spawn to last join).
    pub wall: Duration,
    /// Items that panicked, in item order (deterministic regardless of
    /// which worker hit them). Empty on a healthy run.
    pub quarantined: Vec<QuarantineRecord>,
    /// Items never dispatched because the deadline expired first.
    pub skipped: usize,
    /// Whether the deadline stopped dispatch before the queue drained.
    pub deadline_hit: bool,
}

impl PoolRun {
    /// Total items processed successfully across all workers.
    pub fn items(&self) -> usize {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Total busy time summed over workers (CPU-time-like; exceeds `wall`
    /// when the run actually parallelized).
    pub fn busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }
}

/// Renders a panic payload as text (`&str` / `String` payloads pass
/// through; anything else gets a placeholder).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// Runs `f(i)` for every `i in 0..items` on `threads` scoped workers.
///
/// Items are claimed from a shared counter, so long items load-balance
/// naturally. `f` observes items in an unspecified order; runs with the same
/// inputs produce the same *set* of calls (callers needing deterministic
/// output must index results by item, as the pipeline does).
///
/// A panicking item is quarantined, not fatal: see [`for_each_budgeted`].
pub fn for_each(threads: usize, items: usize, f: impl Fn(usize) + Sync) -> PoolRun {
    for_each_budgeted(threads, items, None, f)
}

/// [`for_each`] with an optional dispatch deadline.
///
/// Each item runs under `catch_unwind` inside an ambient fault scope keyed
/// by its index (see [`crate::fault::scope`]), after passing the
/// `pool.item` fault point. A panicking item lands in
/// [`PoolRun::quarantined`] with the panic message and a flight-recorder
/// dump; the worker then continues with the next item — the panic poisons
/// nothing because all per-item state is owned by the closure invocation.
/// A worker thread that somehow dies outside the item boundary surfaces as
/// a quarantine record with `item: None`, never as a harness abort.
///
/// When `deadline` is given, workers stop claiming new items once it
/// passes; unclaimed items are counted in [`PoolRun::skipped`] and
/// [`PoolRun::deadline_hit`] is set. In-flight items always finish.
///
/// The pool never spawns a worker that cannot receive an item: the thread
/// count is clamped to the item count, and zero items spawn zero workers —
/// so [`PoolRun::workers`] reports live workers only, never idle padding.
/// Each worker drains its trace buffer ([`crate::trace::flush_thread`]) and
/// merges its profiler aggregate ([`crate::prof::flush_thread`]) as it
/// exits, so spans and frames recorded inside `f` are visible to a
/// subsequent export without further coordination.
pub fn for_each_budgeted(
    threads: usize,
    items: usize,
    deadline: Option<Instant>,
    f: impl Fn(usize) + Sync,
) -> PoolRun {
    let started = Instant::now();
    if items == 0 {
        return PoolRun {
            workers: Vec::new(),
            wall: started.elapsed(),
            ..PoolRun::default()
        };
    }
    let threads = threads.max(1).min(items);
    let next = AtomicUsize::new(0);
    let deadline_hit = AtomicBool::new(false);
    let quarantine: Mutex<Vec<QuarantineRecord>> = Mutex::new(Vec::new());
    let attempted = AtomicUsize::new(0);
    let mut workers = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let f = &f;
                let quarantine = &quarantine;
                let deadline_hit = &deadline_hit;
                let attempted = &attempted;
                scope.spawn(move || {
                    if crate::trace::enabled() {
                        crate::trace::set_thread_name(format!("worker-{worker}"));
                    }
                    let mut stats = WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    };
                    loop {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                deadline_hit.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        attempted.fetch_add(1, Ordering::Relaxed);
                        let t = Instant::now();
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            let _scope = fault::scope(i as u64);
                            fault::inject("pool.item", i as u64);
                            f(i)
                        }));
                        stats.busy += t.elapsed();
                        match run {
                            Ok(()) => stats.items += 1,
                            Err(payload) => {
                                crate::metrics::counter("pool.quarantined").inc();
                                let message = payload_message(payload.as_ref());
                                flight::note("pool.quarantine", || {
                                    format!("item {i} worker {worker}: {message}")
                                });
                                quarantine.lock().unwrap_or_else(|e| e.into_inner()).push(
                                    QuarantineRecord {
                                        item: Some(i),
                                        worker,
                                        message,
                                        flight: flight::snapshot(),
                                    },
                                );
                            }
                        }
                    }
                    crate::trace::flush_thread();
                    crate::prof::flush_thread();
                    stats
                })
            })
            .collect();
        for (worker, h) in handles.into_iter().enumerate() {
            // Even the join path must not abort the harness: a worker that
            // died outside the per-item catch_unwind (a panic in the pool's
            // own epilogue, or a foreign unwind) becomes a quarantine
            // record attributed to the worker, with no item index.
            match h.join() {
                Ok(stats) => workers.push(stats),
                Err(payload) => {
                    crate::metrics::counter("pool.quarantined").inc();
                    let message = payload_message(payload.as_ref());
                    quarantine
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(QuarantineRecord {
                            item: None,
                            worker,
                            message,
                            flight: flight::snapshot(),
                        });
                }
            }
        }
    });
    let mut quarantined = quarantine.into_inner().unwrap_or_else(|e| e.into_inner());
    // Item order, not arrival order: deterministic across thread counts.
    quarantined.sort_by_key(|q| q.item);
    let skipped = items - attempted.load(Ordering::Relaxed);
    PoolRun {
        workers,
        wall: started.elapsed(),
        quarantined,
        skipped,
        deadline_hit: deadline_hit.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn processes_every_item_exactly_once() {
        let _g = crate::fault::test_lock();
        let seen = Mutex::new(vec![0u32; 100]);
        let run = for_each(4, 100, |i| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        assert_eq!(run.items(), 100);
        assert_eq!(run.workers.len(), 4);
        assert!(run.quarantined.is_empty());
        assert_eq!(run.skipped, 0);
        assert!(!run.deadline_hit);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let _g = crate::fault::test_lock();
        let run = for_each(8, 0, |_| panic!("must not be called"));
        assert_eq!(run.items(), 0);
        assert!(
            run.workers.is_empty(),
            "zero items must spawn zero workers, not report idle ones"
        );
    }

    #[test]
    fn clamps_thread_count_to_items() {
        let _g = crate::fault::test_lock();
        let run = for_each(16, 3, |_| {});
        assert_eq!(run.workers.len(), 3);
        assert_eq!(run.items(), 3);
    }

    #[test]
    fn single_thread_is_sequential() {
        let _g = crate::fault::test_lock();
        let order = Mutex::new(Vec::new());
        for_each(1, 10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_item_is_quarantined_and_the_rest_complete() {
        let _g = crate::fault::test_lock();
        for threads in [1, 2, 8] {
            let run = for_each(threads, 20, |i| {
                if i == 7 {
                    panic!("boom on {i}");
                }
            });
            assert_eq!(run.items(), 19, "{threads} threads");
            assert_eq!(run.quarantined.len(), 1);
            let q = &run.quarantined[0];
            assert_eq!(q.item, Some(7));
            assert_eq!(q.message, "boom on 7");
            assert_eq!(run.skipped, 0);
        }
    }

    #[test]
    fn multiple_quarantines_sort_by_item() {
        let _g = crate::fault::test_lock();
        let run = for_each(4, 30, |i| {
            if i % 10 == 3 {
                panic!("bad item");
            }
        });
        assert_eq!(run.items(), 27);
        let items: Vec<_> = run.quarantined.iter().map(|q| q.item).collect();
        assert_eq!(items, vec![Some(3), Some(13), Some(23)]);
    }

    #[test]
    fn expired_deadline_skips_all_items() {
        let _g = crate::fault::test_lock();
        let ran = Mutex::new(0usize);
        let run = for_each_budgeted(4, 50, Some(Instant::now()), |_| {
            *ran.lock().unwrap() += 1;
        });
        assert_eq!(*ran.lock().unwrap(), 0);
        assert_eq!(run.skipped, 50);
        assert!(run.deadline_hit);
    }

    #[test]
    fn in_flight_items_finish_past_the_deadline() {
        let _g = crate::fault::test_lock();
        // Deadline in the near future: the first claims happen before it,
        // their items run to completion, and the remainder is skipped.
        let run = for_each_budgeted(
            1,
            50,
            Some(Instant::now() + Duration::from_millis(5)),
            |_| std::thread::sleep(Duration::from_millis(2)),
        );
        assert!(run.items() >= 1, "work started before the deadline runs");
        assert_eq!(run.items() + run.skipped, 50);
        assert!(run.deadline_hit);
    }

    #[test]
    fn fault_point_panics_are_quarantined() {
        let _g = crate::fault::test_lock();
        crate::fault::arm("pool.item:panic:3").unwrap();
        let run = for_each(2, 8, |_| {});
        crate::fault::disarm();
        assert_eq!(run.items(), 7);
        assert_eq!(run.quarantined.len(), 1);
        let q = &run.quarantined[0];
        assert_eq!(q.item, Some(3));
        assert!(
            q.message.contains("pool.item"),
            "message names the fault point: {}",
            q.message
        );
    }
}
