//! A scoped work-stealing-free thread pool over `std::thread::scope`.
//!
//! The pipeline's parallelism is embarrassingly simple: N workers pull item
//! indexes from a shared atomic counter until the queue drains (exactly the
//! structure the paper ran on 3×8-core EC2 instances, §6). What `crossbeam`
//! provided — scoped spawns borrowing the caller's stack — `std::thread::scope`
//! has provided natively since Rust 1.63, so this module adds only the
//! work-queue loop and per-worker observability.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// What one worker did during a [`for_each`] run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Items this worker processed.
    pub items: usize,
    /// Wall time this worker spent inside the item closure.
    pub busy: Duration,
}

/// The result of a [`for_each`] run.
#[derive(Debug, Default, Clone)]
pub struct PoolRun {
    /// Per-worker statistics, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Wall time of the whole run (spawn to last join).
    pub wall: Duration,
}

impl PoolRun {
    /// Total items processed across all workers.
    pub fn items(&self) -> usize {
        self.workers.iter().map(|w| w.items).sum()
    }

    /// Total busy time summed over workers (CPU-time-like; exceeds `wall`
    /// when the run actually parallelized).
    pub fn busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }
}

/// Runs `f(i)` for every `i in 0..items` on `threads` scoped workers.
///
/// Items are claimed from a shared counter, so long items load-balance
/// naturally. `f` observes items in an unspecified order; runs with the same
/// inputs produce the same *set* of calls (callers needing deterministic
/// output must index results by item, as the pipeline does).
///
/// The pool never spawns a worker that cannot receive an item: the thread
/// count is clamped to the item count, and zero items spawn zero workers —
/// so [`PoolRun::workers`] reports live workers only, never idle padding.
/// Each worker drains its trace buffer ([`crate::trace::flush_thread`]) as
/// it exits, so spans recorded inside `f` are visible to a subsequent
/// export without further coordination.
pub fn for_each(threads: usize, items: usize, f: impl Fn(usize) + Sync) -> PoolRun {
    let started = Instant::now();
    if items == 0 {
        return PoolRun {
            workers: Vec::new(),
            wall: started.elapsed(),
        };
    }
    let threads = threads.max(1).min(items);
    let next = AtomicUsize::new(0);
    let mut workers = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    if crate::trace::enabled() {
                        crate::trace::set_thread_name(format!("worker-{worker}"));
                    }
                    let mut stats = WorkerStats {
                        worker,
                        ..WorkerStats::default()
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items {
                            break;
                        }
                        let t = Instant::now();
                        f(i);
                        stats.busy += t.elapsed();
                        stats.items += 1;
                    }
                    crate::trace::flush_thread();
                    stats
                })
            })
            .collect();
        for h in handles {
            workers.push(h.join().expect("pool worker panicked"));
        }
    });
    PoolRun {
        workers,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn processes_every_item_exactly_once() {
        let seen = Mutex::new(vec![0u32; 100]);
        let run = for_each(4, 100, |i| {
            seen.lock().unwrap()[i] += 1;
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
        assert_eq!(run.items(), 100);
        assert_eq!(run.workers.len(), 4);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        let run = for_each(8, 0, |_| panic!("must not be called"));
        assert_eq!(run.items(), 0);
        assert!(
            run.workers.is_empty(),
            "zero items must spawn zero workers, not report idle ones"
        );
    }

    #[test]
    fn clamps_thread_count_to_items() {
        let run = for_each(16, 3, |_| {});
        assert_eq!(run.workers.len(), 3);
        assert_eq!(run.items(), 3);
    }

    #[test]
    fn single_thread_is_sequential() {
        let order = Mutex::new(Vec::new());
        for_each(1, 10, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }
}
