//! A process-wide registry of named counters, timers, and log-scale
//! histograms — the quantitative half of the observability layer (the
//! qualitative half, spans, lives in [`crate::trace`]).
//!
//! Three metric kinds with different determinism contracts:
//!
//! * **Counters** count *events* (solver queries, explored paths, emitted
//!   programs). They are pure functions of the work performed, so their
//!   values must be byte-identical across thread counts and runs — the
//!   deterministic-replay test asserts exactly that on a snapshot diff.
//! * **Timers** accumulate *nanoseconds* (per-stage worker time). They are
//!   inherently nondeterministic and are therefore kept in a separate
//!   namespace that golden comparisons exclude.
//! * **Histograms** record value *distributions* (paths per instruction,
//!   solver-query latency) in power-of-two buckets.
//!
//! Recording is always on: one relaxed atomic add per event, the same order
//! of cost as the enabled-check the span layer does, so there is no separate
//! off switch to keep consistent. Handles ([`Counter`], [`Timer`],
//! [`Histogram`]) are `Copy` pointers into leaked registry slots; hot code
//! looks them up once and stores them. [`snapshot`] + [`MetricsSnapshot::since`]
//! give benches and tests delta assertions without a global reset.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values with `floor(log2(v)) == i - 1`, i.e. `2^(i-1) ..= 2^i - 1`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value lands in.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The largest value that lands in bucket `i`.
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Handle to a named monotonic event counter.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a named nanosecond accumulator (kept apart from counters so
/// golden comparisons can exclude wall-clock noise).
#[derive(Debug, Clone, Copy)]
pub struct Timer(&'static AtomicU64);

impl Timer {
    /// Accumulates a duration.
    pub fn add(&self, d: Duration) {
        self.0.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulates raw nanoseconds.
    pub fn add_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current value in nanoseconds.
    pub fn get_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to a named log-scale histogram.
#[derive(Debug, Clone, Copy)]
pub struct Histogram(&'static HistogramInner);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: RwLock<BTreeMap<&'static str, &'static AtomicU64>>,
    timers: RwLock<BTreeMap<&'static str, &'static AtomicU64>>,
    histograms: RwLock<BTreeMap<&'static str, &'static HistogramInner>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lookup<T: 'static + Sync>(
    map: &RwLock<BTreeMap<&'static str, &'static T>>,
    name: &'static str,
    make: impl FnOnce() -> T,
) -> &'static T {
    if let Some(&v) = map.read().expect("metrics registry poisoned").get(name) {
        return v;
    }
    let mut w = map.write().expect("metrics registry poisoned");
    // One leaked allocation per distinct metric name for the process
    // lifetime; names are compile-time constants, so this is bounded.
    w.entry(name).or_insert_with(|| Box::leak(Box::new(make())))
}

/// The counter named `name`, created on first use.
pub fn counter(name: &'static str) -> Counter {
    Counter(lookup(&registry().counters, name, || AtomicU64::new(0)))
}

/// The timer named `name`, created on first use.
pub fn timer(name: &'static str) -> Timer {
    Timer(lookup(&registry().timers, name, || AtomicU64::new(0)))
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &'static str) -> Histogram {
    Histogram(lookup(&registry().histograms, name, HistogramInner::new))
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in 0..=1): the lower bound of the bucket
    /// containing the q-th observation. Exact to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_lo(i);
            }
        }
        bucket_lo(self.buckets.len().saturating_sub(1))
    }

    /// Median ([`quantile`](Self::quantile) at 0.50). Like all histogram
    /// quantiles this is the **lower bound of the power-of-two bucket**
    /// containing the ranked observation — exact at bucket boundaries
    /// (values 0 and 1 have dedicated buckets), otherwise a lower bound
    /// within a factor of two of the true order statistic.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile, bucket lower bound (see [`p50`](Self::p50)).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile, bucket lower bound (see [`p50`](Self::p50)).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Subtracts an earlier snapshot bucket-wise.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = (0..self.buckets.len().max(earlier.buckets.len()))
            .map(|i| {
                let now = self.buckets.get(i).copied().unwrap_or(0);
                let was = earlier.buckets.get(i).copied().unwrap_or(0);
                now.saturating_sub(was)
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// Point-in-time copy of the whole registry.
///
/// Metric values are cumulative for the process; use [`MetricsSnapshot::since`]
/// to scope them to a region of interest (snapshot before, snapshot after,
/// diff). `counters` is the only map with a cross-run determinism guarantee.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Deterministic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Nanosecond accumulators (nondeterministic; excluded from golden
    /// comparisons).
    pub timers: BTreeMap<String, u64>,
    /// Value distributions.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Difference versus an earlier snapshot (missing earlier entries count
    /// as zero; metrics are monotonic so saturation never triggers in
    /// correct use).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let sub_map = |now: &BTreeMap<String, u64>, was: &BTreeMap<String, u64>| {
            now.iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(was.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect()
        };
        MetricsSnapshot {
            counters: sub_map(&self.counters, &earlier.counters),
            timers: sub_map(&self.timers, &earlier.timers),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let was = earlier.histograms.get(k).cloned().unwrap_or_default();
                    (k.clone(), v.since(&was))
                })
                .collect(),
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Timer value in nanoseconds by name (0 when absent).
    pub fn timer_ns(&self, name: &str) -> u64 {
        self.timers.get(name).copied().unwrap_or(0)
    }

    /// Renders the snapshot as JSON lines, one metric per line — the format
    /// of the `<run>.metrics.jsonl` dump consumed by `pokemu-report`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, v) in &self.timers {
            out.push_str(&format!(
                "{{\"kind\":\"timer\",\"name\":\"{name}\",\"ns\":{v}}}\n"
            ));
        }
        for (name, h) in &self.histograms {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| format!("[{},{c}]", bucket_lo(i)))
                .collect();
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\
                 \"buckets\":[{}]}}\n",
                h.count,
                h.sum,
                buckets.join(",")
            ));
        }
        out
    }

    /// Parses a [`MetricsSnapshot::to_jsonl`] dump back into a snapshot —
    /// the read half of the `<run>.metrics.jsonl` interchange, going
    /// through [`crate::json`].
    ///
    /// Histogram buckets are reconstructed from their `[lo, count]` pairs
    /// via [`bucket_of`], so a parsed snapshot re-renders byte-identically
    /// through `to_jsonl`. Numbers travel as JSON numbers (`f64`): values
    /// up to 2^53 round-trip exactly, and `u64::MAX` survives via the
    /// saturating cast; other >2^53 values may lose low bits.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<MetricsSnapshot, String> {
        use crate::json::Value;
        let mut snap = MetricsSnapshot::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let err = |what: &str| format!("metrics line {}: {what}: {line}", idx + 1);
            let v = crate::json::parse(line).map_err(|e| err(&e.to_string()))?;
            let name = v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| err("missing name"))?
                .to_owned();
            match v.get("kind").and_then(Value::as_str) {
                Some("counter") => {
                    let value = v
                        .get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| err("counter without value"))?;
                    snap.counters.insert(name, value);
                }
                Some("timer") => {
                    let ns = v
                        .get("ns")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| err("timer without ns"))?;
                    snap.timers.insert(name, ns);
                }
                Some("histogram") => {
                    let count = v
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| err("histogram without count"))?;
                    let sum = v
                        .get("sum")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| err("histogram without sum"))?;
                    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
                    for pair in v
                        .get("buckets")
                        .and_then(Value::as_array)
                        .ok_or_else(|| err("histogram without buckets"))?
                    {
                        let pair = pair.as_array().ok_or_else(|| err("bucket not a pair"))?;
                        let (lo, c) = match (
                            pair.first().and_then(Value::as_u64),
                            pair.get(1).and_then(Value::as_u64),
                        ) {
                            (Some(lo), Some(c)) if pair.len() == 2 => (lo, c),
                            _ => return Err(err("bucket not a [lo, count] pair")),
                        };
                        buckets[bucket_of(lo)] = c;
                    }
                    snap.histograms.insert(
                        name,
                        HistogramSnapshot {
                            count,
                            sum,
                            buckets,
                        },
                    );
                }
                _ => return Err(err("unknown metric kind")),
            }
        }
        Ok(snap)
    }
}

/// Copies the current value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .read()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&k, v)| (k.to_owned(), v.load(Ordering::Relaxed)))
        .collect();
    let timers = reg
        .timers
        .read()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&k, v)| (k.to_owned(), v.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .read()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(&k, h)| {
            (
                k.to_owned(),
                HistogramSnapshot {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                },
            )
        })
        .collect();
    MetricsSnapshot {
        counters,
        timers,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let c = counter("test.metrics.counters_accumulate");
        let before = snapshot();
        c.inc();
        c.add(4);
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("test.metrics.counters_accumulate"), 5);
    }

    #[test]
    fn same_name_is_the_same_counter() {
        let a = counter("test.metrics.same_name");
        let b = counter("test.metrics.same_name");
        let before = a.get();
        b.inc();
        assert_eq!(a.get(), before + 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Zeros get their own bucket; powers of two start a new bucket.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            // Bucket ranges tile the value space exactly.
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
            assert_eq!(bucket_hi(i).wrapping_add(1), bucket_lo(i + 1));
        }
    }

    #[test]
    fn histogram_records_into_buckets() {
        let h = histogram("test.metrics.hist_buckets");
        let before = snapshot();
        for v in [0u64, 1, 2, 3, 1024] {
            h.record(v);
        }
        let d = snapshot().since(&before);
        let hs = &d.histograms["test.metrics.hist_buckets"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1030);
        assert_eq!(hs.buckets[0], 1); // 0
        assert_eq!(hs.buckets[1], 1); // 1
        assert_eq!(hs.buckets[2], 2); // 2, 3
        assert_eq!(hs.buckets[11], 1); // 1024
        assert!((hs.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_bucket_accurate() {
        let h = histogram("test.metrics.hist_quantile");
        let before = snapshot();
        for v in 1..=100u64 {
            h.record(v);
        }
        let d = snapshot().since(&before);
        let hs = &d.histograms["test.metrics.hist_quantile"];
        // p50 of 1..=100 is ~50, whose bucket lower bound is 32.
        assert_eq!(hs.quantile(0.5), 32);
        // p100 is 100, bucket lower bound 64.
        assert_eq!(hs.quantile(1.0), 64);
        assert_eq!(hs.quantile(0.0), 1);
        // The named accessors are the same bucket-boundary quantiles.
        assert_eq!(hs.p50(), hs.quantile(0.50));
        assert_eq!(hs.p95(), hs.quantile(0.95));
        assert_eq!(hs.p99(), hs.quantile(0.99));
        // p95 of 1..=100 ranks ~95, bucket lower bound 64; p99 likewise.
        assert_eq!(hs.p95(), 64);
        assert_eq!(hs.p99(), 64);
        assert_eq!(HistogramSnapshot::default().p99(), 0);
    }

    #[test]
    fn snapshot_diff_ignores_unrelated_history() {
        let c = counter("test.metrics.diff_scoped");
        c.add(17); // history from before the region of interest
        let before = snapshot();
        c.add(3);
        let d = snapshot().since(&before);
        assert_eq!(d.counter("test.metrics.diff_scoped"), 3);
    }

    #[test]
    fn histogram_extreme_values_land_in_the_edge_buckets() {
        let h = histogram("test.metrics.hist_edges");
        let before = snapshot();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let d = snapshot().since(&before);
        let hs = &d.histograms["test.metrics.hist_edges"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.buckets[0], 1, "0 lands in the zero bucket");
        assert_eq!(hs.buckets[1], 1, "1 lands in bucket 1 (2^0..2^1-1)");
        assert_eq!(hs.buckets[64], 1, "u64::MAX lands in the top bucket");
        assert_eq!(hs.buckets.iter().sum::<u64>(), 3, "no stray buckets");
        // The sum accumulator wraps (0 + 1 + u64::MAX ≡ 0 mod 2^64); the
        // histogram stays usable, it just cannot report an exact mean for
        // near-overflow totals.
        assert_eq!(hs.sum, 0);
    }

    #[test]
    fn snapshot_diff_round_trips_byte_identically_through_json() {
        let c = counter("test.metrics.rt_c");
        let t = timer("test.metrics.rt_t");
        let h = histogram("test.metrics.rt_h");
        let before = snapshot();
        c.add(7);
        t.add_ns(123_456_789);
        for v in [0u64, 1, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let delta = snapshot().since(&before);
        let text = delta.to_jsonl();
        let parsed = MetricsSnapshot::from_jsonl(&text).expect("dump parses");
        // The parsed snapshot is semantically equal (bucket vectors are
        // rebuilt at full width) and re-renders to the exact same bytes.
        assert_eq!(parsed, delta);
        assert_eq!(
            parsed.to_jsonl(),
            text,
            "render → parse → render is a fixpoint"
        );
        // The edge values survived the trip through rt::json's f64 numbers.
        let hs = &parsed.histograms["test.metrics.rt_h"];
        assert_eq!(hs.buckets[0], 1);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[64], 1);
        assert_eq!(parsed.counter("test.metrics.rt_c"), 7);
        assert_eq!(parsed.timer_ns("test.metrics.rt_t"), 123_456_789);
    }

    #[test]
    fn from_jsonl_rejects_malformed_lines() {
        assert!(MetricsSnapshot::from_jsonl("not json").is_err());
        assert!(
            MetricsSnapshot::from_jsonl("{\"kind\":\"gauge\",\"name\":\"x\",\"value\":1}")
                .unwrap_err()
                .contains("unknown metric kind")
        );
        assert!(
            MetricsSnapshot::from_jsonl("{\"kind\":\"counter\",\"value\":1}")
                .unwrap_err()
                .contains("missing name")
        );
        assert_eq!(
            MetricsSnapshot::from_jsonl("\n  \n").unwrap(),
            MetricsSnapshot::default(),
            "blank lines are skipped"
        );
    }

    #[test]
    fn jsonl_render_contains_every_kind() {
        counter("test.metrics.jsonl_c").inc();
        timer("test.metrics.jsonl_t").add_ns(42);
        histogram("test.metrics.jsonl_h").record(9);
        let text = snapshot().to_jsonl();
        assert!(text.contains("{\"kind\":\"counter\",\"name\":\"test.metrics.jsonl_c\""));
        assert!(text.contains("{\"kind\":\"timer\",\"name\":\"test.metrics.jsonl_t\""));
        assert!(text.contains("{\"kind\":\"histogram\",\"name\":\"test.metrics.jsonl_h\""));
    }
}
