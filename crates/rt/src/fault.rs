//! Deterministic fault injection for chaos testing the pipeline.
//!
//! A *fault point* is a named site in production code that calls
//! [`inject`]`("point.name", key)` on every pass. Disarmed (the default),
//! the call costs one relaxed atomic load. Armed — through the
//! [`FAULT_ENV`] environment variable or programmatically via [`arm`] — a
//! matching point fires its configured fault: a panic, artificial latency,
//! or a forced "degrade" return (`true` from [`inject`], which callers map
//! to their own soft-failure path, e.g. `SatResult::Unknown`).
//!
//! # Spec grammar
//!
//! ```text
//! POKEMU_FAULT=<point>:<kind>:<selector>[;<point>:<kind>:<selector>...]
//!
//! kind     := panic | unknown | latency[=<ms>] | kill (latency default 100 ms)
//! selector := <n>            fire when the point's key equals n
//!           | <p>@<seed>     fire with probability p (0.0..=1.0), seeded
//!           | *              fire on every hit
//! ```
//!
//! Examples: `pool.item:panic:3` panics the worker processing item 3;
//! `solver.check:unknown:0.05@42` degrades ~5% of solver queries;
//! `pipeline.insn:latency=50:1` stalls instruction 1 for 50 ms;
//! `fleet.checkpoint:kill:1` SIGKILLs a fleet worker right after its first
//! checkpoint lands (the crash-resume drill in `tests/fleet_recovery.rs`).
//!
//! # Fault points
//!
//! The production sites, by layer: `pool.item` (each dispatched work item),
//! `solver.check` (each satisfiability query), and the fleet's process
//! lifecycle — `fleet.spawn` (keyed by shard index, in the coordinator),
//! `fleet.heartbeat` (keyed by heartbeat sequence, in the worker's
//! heartbeat thread), and `fleet.checkpoint` (keyed by the shard's
//! cumulative completed-instruction count, fired *after* the checkpoint
//! rename so a `kill` here proves resume-from-checkpoint).
//!
//! # Determinism
//!
//! Every decision is a pure function of `(point name, key, spec)` — never
//! of arrival order, thread identity, or wall clock — so a chaos run
//! replays exactly: the same spec hits the same items on 1 or 8 worker
//! threads. Callers supply a deterministic key (usually the work-item
//! index); deep call sites that cannot see the item they serve inherit it
//! from the ambient [`scope`] the pool installs per item, and key as
//! `u64::MAX` (matching only `*` and probabilistic selectors) when no
//! scope is installed.
//!
//! Injections are observable: each fired fault bumps the `fault.injected`
//! counter and leaves a [`crate::flight`] event, so quarantine records and
//! crash dumps name the fault that caused them.

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Environment variable carrying the fault spec (see module docs).
pub const FAULT_ENV: &str = "POKEMU_FAULT";

/// Default sleep for `latency` faults without an explicit `=<ms>`.
pub const DEFAULT_LATENCY: Duration = Duration::from_millis(100);

/// What an armed fault does when its selector matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the point (exercises quarantine / crash handling).
    Panic,
    /// Ask the caller to degrade (e.g. return `SatResult::Unknown`).
    Unknown,
    /// Sleep for the given duration (exercises deadline handling).
    Latency(Duration),
    /// SIGKILL the calling process (exercises crash-resume: no unwinding,
    /// no destructors, no flushes — the hardest crash a checkpointing
    /// design has to survive).
    Kill,
}

/// When a fault fires, as a function of the point's deterministic key.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Selector {
    /// Fire when the key equals this value.
    Key(u64),
    /// Fire when `mix64(seed, name, key)` lands under this probability.
    Prob(f64, u64),
    /// Fire on every hit.
    Always,
}

/// One armed fault: point name, action, and firing rule.
#[derive(Debug, Clone, PartialEq)]
struct FaultSpec {
    point: String,
    kind: FaultKind,
    selector: Selector,
}

const STATE_UNINIT: u8 = 0;
const STATE_ARMED: u8 = 1;
const STATE_OFF: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn specs() -> &'static Mutex<Vec<FaultSpec>> {
    static SPECS: OnceLock<Mutex<Vec<FaultSpec>>> = OnceLock::new();
    SPECS.get_or_init(Mutex::default)
}

#[cold]
fn init_from_env() -> bool {
    match std::env::var(FAULT_ENV) {
        Ok(spec) if !spec.is_empty() => match parse_spec(&spec) {
            Ok(parsed) => {
                let armed = !parsed.is_empty();
                *specs().lock().unwrap_or_else(|e| e.into_inner()) = parsed;
                STATE.store(
                    if armed { STATE_ARMED } else { STATE_OFF },
                    Ordering::Relaxed,
                );
                armed
            }
            Err(e) => {
                // A malformed chaos spec must not take the harness down:
                // warn, run fault-free.
                eprintln!("[fault] ignoring bad {FAULT_ENV} spec: {e}");
                STATE.store(STATE_OFF, Ordering::Relaxed);
                false
            }
        },
        _ => {
            STATE.store(STATE_OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Whether any fault is armed (one relaxed load after first use).
#[inline]
pub fn armed() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ARMED => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Arms faults from a spec string (same grammar as [`FAULT_ENV`]),
/// replacing any previously armed set. Returns the number of faults armed.
///
/// # Errors
///
/// Returns a description of the first malformed entry; the armed set is
/// left unchanged on error.
pub fn arm(spec: &str) -> Result<usize, String> {
    let parsed = parse_spec(spec)?;
    let n = parsed.len();
    *specs().lock().unwrap_or_else(|e| e.into_inner()) = parsed;
    STATE.store(
        if n > 0 { STATE_ARMED } else { STATE_OFF },
        Ordering::Relaxed,
    );
    Ok(n)
}

/// Disarms every fault (the disarmed fast path is one relaxed load).
pub fn disarm() {
    specs().lock().unwrap_or_else(|e| e.into_inner()).clear();
    STATE.store(STATE_OFF, Ordering::Relaxed);
}

fn parse_spec(spec: &str) -> Result<Vec<FaultSpec>, String> {
    let mut out = Vec::new();
    for entry in spec.split([';', ',']).filter(|s| !s.trim().is_empty()) {
        let entry = entry.trim();
        let mut parts = entry.splitn(3, ':');
        let (point, kind, selector) = match (parts.next(), parts.next(), parts.next()) {
            (Some(p), Some(k), Some(s)) if !p.is_empty() => (p, k, s),
            _ => return Err(format!("`{entry}`: want <point>:<kind>:<selector>")),
        };
        let kind = parse_kind(kind).ok_or_else(|| format!("`{entry}`: unknown kind `{kind}`"))?;
        let selector = parse_selector(selector)
            .ok_or_else(|| format!("`{entry}`: bad selector `{selector}`"))?;
        out.push(FaultSpec {
            point: point.to_owned(),
            kind,
            selector,
        });
    }
    Ok(out)
}

fn parse_kind(s: &str) -> Option<FaultKind> {
    match s {
        "panic" => Some(FaultKind::Panic),
        "unknown" => Some(FaultKind::Unknown),
        "latency" => Some(FaultKind::Latency(DEFAULT_LATENCY)),
        "kill" => Some(FaultKind::Kill),
        _ => {
            let ms: u64 = s.strip_prefix("latency=")?.parse().ok()?;
            Some(FaultKind::Latency(Duration::from_millis(ms)))
        }
    }
}

fn parse_selector(s: &str) -> Option<Selector> {
    if s == "*" || s == "always" {
        return Some(Selector::Always);
    }
    if let Some((p, seed)) = s.split_once('@') {
        let p: f64 = p.parse().ok()?;
        let seed: u64 = parse_u64(seed)?;
        if !(0.0..=1.0).contains(&p) {
            return None;
        }
        return Some(Selector::Prob(p, seed));
    }
    parse_u64(s).map(Selector::Key)
}

fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// FNV-1a over the point name, mixed with the seed and key: the entire
/// firing decision for probabilistic selectors, thread-invariant by
/// construction.
fn prob_fires(p: f64, seed: u64, point: &str, key: u64) -> bool {
    let mut h = 0xcbf29ce484222325u64;
    for &b in point.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let x = crate::rng::mix64(seed ^ h ^ key.rotate_left(17));
    (x as f64 / u64::MAX as f64) < p
}

thread_local! {
    static SCOPE: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Restores the previous ambient scope key on drop (see [`scope`]).
#[derive(Debug)]
pub struct ScopeGuard {
    prev: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.prev));
    }
}

/// Installs `key` as the calling thread's ambient fault scope until the
/// guard drops. The pool scopes each work item by its index, so deep call
/// sites (the solver, the engine) can key their fault points by the item
/// they are serving without any plumbing.
pub fn scope(key: u64) -> ScopeGuard {
    SCOPE.with(|s| ScopeGuard {
        prev: s.replace(key),
    })
}

/// The ambient scope key, if one is installed on this thread.
pub fn scope_key() -> Option<u64> {
    SCOPE.with(|s| {
        let k = s.get();
        (k != u64::MAX).then_some(k)
    })
}

/// The fault point: fires an armed fault matching `(point, key)`.
///
/// Returns `true` when the caller should degrade (an `unknown` fault
/// fired); `panic` faults panic here with a message naming the point, and
/// `latency` faults sleep, then return `false`. Disarmed, this is one
/// relaxed atomic load.
///
/// # Panics
///
/// Panics by design when a `panic`-kind fault matches.
pub fn inject(point: &'static str, key: u64) -> bool {
    if !armed() {
        return false;
    }
    let fired = {
        let specs = specs().lock().unwrap_or_else(|e| e.into_inner());
        specs
            .iter()
            .find(|f| {
                f.point == point
                    && match f.selector {
                        Selector::Key(n) => n == key,
                        Selector::Prob(p, seed) => prob_fires(p, seed, point, key),
                        Selector::Always => true,
                    }
            })
            .map(|f| f.kind)
    };
    let Some(kind) = fired else {
        return false;
    };
    crate::metrics::counter("fault.injected").inc();
    crate::flight::note("fault.injected", || format!("{point} key={key} {kind:?}"));
    match kind {
        FaultKind::Panic => panic!("fault injected: {point}:panic (key {key})"),
        FaultKind::Latency(d) => {
            std::thread::sleep(d);
            false
        }
        FaultKind::Unknown => true,
        FaultKind::Kill => {
            // A real SIGKILL against our own pid: uncatchable, no unwind,
            // no atexit — the process simply vanishes mid-instruction.
            // abort() is the fallback if the kill(1) helper is missing;
            // still a hard crash, just SIGABRT instead of SIGKILL.
            eprintln!("fault injected: {point}:kill (key {key})");
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill")
                .args(["-9", &pid])
                .status();
            std::process::abort();
        }
    }
}

/// Serializes in-crate tests that mutate the process-global armed set
/// (fault tests and pool quarantine tests share it).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The armed set is process-global; tests serialize and always disarm.
    fn serialize() -> MutexGuard<'static, ()> {
        test_lock()
    }

    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            disarm();
        }
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = serialize();
        disarm();
        assert!(!inject("fault.test.none", 0));
        assert!(!armed());
    }

    #[test]
    fn key_selector_matches_exactly_one_key() {
        let _g = serialize();
        let _d = Disarm;
        arm("fault.test.key:unknown:3").unwrap();
        assert!(!inject("fault.test.key", 2));
        assert!(inject("fault.test.key", 3));
        assert!(!inject("fault.test.key", 4));
        assert!(!inject("fault.test.other", 3), "point name must match");
    }

    #[test]
    fn panic_kind_panics_with_point_name() {
        let _g = serialize();
        let _d = Disarm;
        arm("fault.test.panic:panic:7").unwrap();
        let err = std::panic::catch_unwind(|| inject("fault.test.panic", 7))
            .expect_err("panic fault must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("fault.test.panic"),
            "payload names the point: {msg}"
        );
    }

    #[test]
    fn prob_selector_is_deterministic_in_the_key() {
        let _g = serialize();
        let _d = Disarm;
        arm("fault.test.prob:unknown:0.5@42").unwrap();
        let first: Vec<bool> = (0..64).map(|k| inject("fault.test.prob", k)).collect();
        let second: Vec<bool> = (0..64).map(|k| inject("fault.test.prob", k)).collect();
        assert_eq!(first, second, "same key must always decide the same way");
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn latency_kind_sleeps_and_does_not_degrade() {
        let _g = serialize();
        let _d = Disarm;
        arm("fault.test.lat:latency=20:*").unwrap();
        let t = std::time::Instant::now();
        assert!(!inject("fault.test.lat", 0));
        assert!(t.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        let _g = serialize();
        let _d = Disarm;
        assert!(arm("nocolons").is_err());
        assert!(arm("p:weird:3").is_err());
        assert!(arm("p:unknown:2.0@1").is_err(), "probability > 1 rejected");
        assert_eq!(arm("a:panic:1;b:unknown:*").unwrap(), 2);
    }

    /// The `kill` kind parses and stays dormant off-key (actually firing it
    /// would SIGKILL the test runner; `tests/fleet_recovery.rs` fires it
    /// for real in a worker process).
    #[test]
    fn kill_kind_parses_and_misses_off_key() {
        let _g = serialize();
        let _d = Disarm;
        arm("fleet.checkpoint:kill:7").unwrap();
        assert_eq!(parse_kind("kill"), Some(FaultKind::Kill));
        assert!(!inject("fleet.checkpoint", 6), "off-key must not fire");
        assert!(!inject("fleet.spawn", 7), "other points must not fire");
    }

    #[test]
    fn scope_key_nests_and_restores() {
        let _g = serialize();
        assert_eq!(scope_key(), None);
        {
            let _outer = scope(5);
            assert_eq!(scope_key(), Some(5));
            {
                let _inner = scope(9);
                assert_eq!(scope_key(), Some(9));
            }
            assert_eq!(scope_key(), Some(5));
        }
        assert_eq!(scope_key(), None);
    }
}
