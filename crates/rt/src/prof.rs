//! Instrumenting self-profiler: per-thread scoped frames with wall-time
//! attribution per call-site and collapsed-stack export.
//!
//! Where [`crate::trace`] records *individual* span events for timeline
//! visualization (every event is kept, bounded by the ring), `prof`
//! *aggregates in place*: each thread keeps a stack of open frames and a
//! map from the current stack path (`root;child;leaf`) to accumulated call
//! counts, total time, and **self time** (total minus time spent in child
//! frames). The aggregate is merged into a process-global table when a
//! thread flushes, and [`export`] writes the table as a collapsed-stack
//! `.folded` file under `target/prof/` — the format `inferno`,
//! speedscope, and `flamegraph.pl` all consume (one line per stack:
//! `frame;frame;frame <self-µs>`).
//!
//! Design constraints, matching the rest of the observability layer:
//!
//! * **Off by default, one relaxed load per disabled site.** Enable with
//!   `POKEMU_PROF=1` or [`set_enabled`]. With profiling off, [`frame`]
//!   returns `None` after a single relaxed atomic load, so PR-1's
//!   deterministic-replay guarantees are untouched: profiling never feeds
//!   back into counter metrics or exploration decisions.
//! * **No locks on the hot path.** Frames aggregate into a thread-local
//!   `BTreeMap`; the global table is only touched by [`flush_thread`]
//!   (pool workers flush on exit, like the trace layer) and [`export`].
//! * **Wall time only.** Self-time is wall-clock nanoseconds; the folded
//!   export rounds to microseconds because that is what flamegraph
//!   tooling expects as integer sample counts.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable that turns frame recording on (any non-empty value
/// other than `0`) and makes the pipeline export a `.folded` profile when
/// it finishes.
pub const PROF_ENV: &str = "POKEMU_PROF";

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_CHECKED: OnceLock<bool> = OnceLock::new();

/// `true` when `POKEMU_PROF` was set in the environment at first check.
pub fn env_enabled() -> bool {
    *ENV_CHECKED.get_or_init(|| {
        std::env::var(PROF_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

/// Whether frame recording is currently on. One relaxed load — this is the
/// per-site cost when profiling is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || env_enabled()
}

/// Turns frame recording on or off process-wide. The environment variable
/// [`PROF_ENV`] wins over `set_enabled(false)`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether *any* wall-time attribution consumer is active: the profiler
/// itself or the trace layer. Instrumentation that samples `Instant::now`
/// outside a frame/span guard (per-origin solver timers, the symx time
/// split) gates on this so a plain counters-only run pays no timestamp
/// syscalls, while either `POKEMU_PROF=1` or `POKEMU_TRACE=1` lights up
/// the full latency attribution.
#[inline]
pub fn timing_enabled() -> bool {
    enabled() || crate::trace::enabled()
}

/// Accumulated statistics for one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStat {
    /// Number of times this exact stack path was entered.
    pub calls: u64,
    /// Total wall nanoseconds with this path on top of the stack,
    /// including time spent in child frames.
    pub total_ns: u64,
    /// Wall nanoseconds attributed to this path itself (total minus
    /// children) — the collapsed-stack "sample count".
    pub self_ns: u64,
}

struct OpenFrame {
    start: Instant,
    child_ns: u64,
    /// Length of the thread's path string before this frame was pushed;
    /// popping truncates back to it.
    path_len: usize,
}

#[derive(Default)]
struct ThreadProf {
    /// The current stack as a `;`-joined path, maintained incrementally so
    /// aggregation never re-joins frame names.
    path: String,
    stack: Vec<OpenFrame>,
    agg: BTreeMap<String, FrameStat>,
}

thread_local! {
    static THREAD: RefCell<ThreadProf> = RefCell::new(ThreadProf::default());
}

fn global() -> &'static Mutex<BTreeMap<String, FrameStat>> {
    static GLOBAL: OnceLock<Mutex<BTreeMap<String, FrameStat>>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// RAII guard for one profiler frame: attributes wall time to the current
/// stack path when dropped.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a zero-length frame"]
pub struct FrameGuard {
    _priv: (),
}

/// Opens a frame named `name` on the current thread's profiler stack;
/// `None` when profiling is disabled (one relaxed load).
#[inline]
pub fn frame(name: &'static str) -> Option<FrameGuard> {
    if !enabled() {
        return None;
    }
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        let path_len = t.path.len();
        if path_len > 0 {
            t.path.push(';');
        }
        t.path.push_str(name);
        t.stack.push(OpenFrame {
            start: Instant::now(),
            child_ns: 0,
            path_len,
        });
    });
    Some(FrameGuard { _priv: () })
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let Some(frame) = t.stack.pop() else {
                return; // flushed mid-frame; nothing sensible to record
            };
            let total_ns = frame.start.elapsed().as_nanos() as u64;
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            let path = t.path.clone();
            let stat = t.agg.entry(path).or_default();
            stat.calls += 1;
            stat.total_ns += total_ns;
            stat.self_ns += self_ns;
            t.path.truncate(frame.path_len);
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += total_ns;
            }
        });
    }
}

/// Runs `f` under a frame named `name`. Sugar for a [`frame`] guard around
/// a closure; the disabled cost is the same single relaxed load.
pub fn framed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _g = frame(name);
    f()
}

/// Merges the current thread's aggregate into the process-global table
/// (blocking). Pool workers call this as they exit, mirroring
/// [`crate::trace::flush_thread`]; call it manually on long-lived threads
/// before [`export`] or [`take`].
pub fn flush_thread() {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if t.agg.is_empty() {
            return;
        }
        let agg = std::mem::take(&mut t.agg);
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        for (path, stat) in agg {
            let slot = g.entry(path).or_default();
            slot.calls += stat.calls;
            slot.total_ns += stat.total_ns;
            slot.self_ns += stat.self_ns;
        }
    });
}

/// Flushes the current thread and takes the merged table collected so far,
/// leaving the global table empty.
pub fn take() -> BTreeMap<String, FrameStat> {
    flush_thread();
    std::mem::take(&mut *global().lock().unwrap_or_else(|e| e.into_inner()))
}

/// The directory profile exports land in: `target/prof/` next to the other
/// build artifacts (honors `CARGO_TARGET_DIR`).
pub fn prof_dir() -> PathBuf {
    crate::bench::target_dir().join("prof")
}

/// Renders a merged table in collapsed-stack format: one line per stack
/// path, `frame;frame;frame <self-µs>`, sorted by path (BTreeMap order) so
/// the output is stable for a given set of measurements. Paths whose
/// self-time rounds to zero microseconds are kept with count 0 so the call
/// structure stays visible.
pub fn render_folded(table: &BTreeMap<String, FrameStat>) -> String {
    let mut out = String::new();
    for (path, stat) in table {
        out.push_str(path);
        out.push(' ');
        out.push_str(&(stat.self_ns / 1_000).to_string());
        out.push('\n');
    }
    out
}

/// Drains the merged profile and writes it to `target/prof/<run>.folded`
/// (collapsed-stack format — feed it to `inferno-flamegraph`, speedscope,
/// or `flamegraph.pl`). Returns the path written.
///
/// # Errors
///
/// Propagates filesystem errors creating or writing the output file.
pub fn export(run: &str) -> std::io::Result<PathBuf> {
    let table = take();
    let dir = prof_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{run}.folded"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    f.write_all(render_folded(&table).as_bytes())?;
    f.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;
    use std::time::Duration;

    /// Profiling is process-global state; tests serialize on this lock.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_frame_returns_none() {
        let _g = serialize();
        set_enabled(false);
        if env_enabled() {
            return; // cannot observe the disabled path under POKEMU_PROF=1
        }
        assert!(frame("test.disabled").is_none());
    }

    #[test]
    fn frames_aggregate_under_their_stack_path() {
        let _g = serialize();
        set_enabled(true);
        take(); // reset
        std::thread::spawn(|| {
            set_enabled(true);
            {
                let _outer = frame("outer");
                std::thread::sleep(Duration::from_millis(4));
                for _ in 0..2 {
                    let _inner = frame("inner");
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            flush_thread();
        })
        .join()
        .unwrap();
        set_enabled(false);
        let table = take();
        let outer = table["outer"];
        let inner = table["outer;inner"];
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 2, "two inner entries aggregate on one path");
        assert!(
            inner.total_ns >= 4_000_000,
            "inner total covers both sleeps"
        );
        assert!(
            outer.total_ns >= outer.self_ns + inner.total_ns,
            "outer self excludes child time: total={} self={} child={}",
            outer.total_ns,
            outer.self_ns,
            inner.total_ns
        );
        assert!(
            outer.self_ns >= 4_000_000,
            "outer keeps its own 4 ms: {}",
            outer.self_ns
        );
    }

    #[test]
    fn folded_export_is_sorted_and_parseable() {
        let _g = serialize();
        set_enabled(true);
        take();
        std::thread::spawn(|| {
            set_enabled(true);
            {
                let _a = frame("pipeline");
                {
                    let _b = frame("stage_b");
                    std::thread::sleep(Duration::from_millis(2));
                }
                let _c = frame("stage_a");
                std::thread::sleep(Duration::from_millis(2));
            }
            flush_thread();
        })
        .join()
        .unwrap();
        set_enabled(false);
        let path = export("rt-prof-selftest").expect("export succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "three stack paths: {text:?}");
        // Every line is `path <integer-µs>` and lines are sorted by path.
        let mut paths = Vec::new();
        for line in &lines {
            let (p, count) = line.rsplit_once(' ').expect("folded line shape");
            count.parse::<u64>().expect("integer self-µs");
            paths.push(p.to_owned());
        }
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "folded output is path-sorted");
        assert!(paths.iter().any(|p| p == "pipeline;stage_a"));
        assert!(paths.iter().any(|p| p == "pipeline;stage_b"));
    }

    #[test]
    fn framed_runs_the_closure_when_disabled() {
        let _g = serialize();
        set_enabled(false);
        assert_eq!(framed("test.closure", || 41 + 1), 42);
    }
}
