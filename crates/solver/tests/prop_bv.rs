//! Property tests for the bit-vector decision procedure.
//!
//! The central invariant: for any term `t` and any concrete assignment, the
//! solver must agree with the interpreter (`TermPool::eval`). We check it in
//! both directions:
//!
//! 1. *Model soundness*: if the solver says SAT and returns a model, the model
//!    must evaluate the formula to true.
//! 2. *Completeness on pinned inputs*: asserting `var == value` for every
//!    variable must be SAT exactly when the formula evaluates to true.

use std::collections::HashMap;

use pokemu_rt::Gen;
use pokemu_solver::{BvSolver, SatResult, TermId, TermPool, VarId, Width};

/// A recipe for building a random term over a fixed set of variables.
#[derive(Debug, Clone)]
enum Recipe {
    Var(usize),
    Const(u64),
    Unary(u8, Box<Recipe>),
    Binary(u8, Box<Recipe>, Box<Recipe>),
    Ite(Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

/// Draws a random term recipe of at most `depth` interior levels. The depth
/// scales with the generator size, so shrinking produces smaller terms.
fn gen_recipe(g: &mut Gen, depth: u32) -> Recipe {
    if depth == 0 || g.bool(0.25) {
        return if g.bool(0.5) {
            Recipe::Var(g.range(0..3usize))
        } else {
            Recipe::Const(g.gen())
        };
    }
    match g.range(0..3u32) {
        0 => Recipe::Unary(g.range(0..2u8), Box::new(gen_recipe(g, depth - 1))),
        1 => Recipe::Binary(
            g.range(0..11u8),
            Box::new(gen_recipe(g, depth - 1)),
            Box::new(gen_recipe(g, depth - 1)),
        ),
        _ => Recipe::Ite(
            Box::new(gen_recipe(g, depth - 1)),
            Box::new(gen_recipe(g, depth - 1)),
            Box::new(gen_recipe(g, depth - 1)),
        ),
    }
}

/// Recipe depth for the current generator size (1..=3; shrinks with size).
fn depth_for(g: &Gen) -> u32 {
    ((g.size() / 24) as u32 + 1).min(3)
}

fn build(pool: &mut TermPool, vars: &[TermId], w: Width, r: &Recipe) -> TermId {
    match r {
        Recipe::Var(i) => vars[i % vars.len()],
        Recipe::Const(c) => pool.constant(w, *c),
        Recipe::Unary(op, a) => {
            let a = build(pool, vars, w, a);
            match op % 2 {
                0 => pool.not(a),
                _ => pool.neg(a),
            }
        }
        Recipe::Binary(op, a, b) => {
            let a = build(pool, vars, w, a);
            let b = build(pool, vars, w, b);
            match op % 11 {
                0 => pool.and(a, b),
                1 => pool.or(a, b),
                2 => pool.xor(a, b),
                3 => pool.add(a, b),
                4 => pool.sub(a, b),
                5 => pool.mul(a, b),
                6 => pool.shl(a, b),
                7 => pool.lshr(a, b),
                8 => pool.ashr(a, b),
                9 => pool.udiv(a, b),
                _ => pool.urem(a, b),
            }
        }
        Recipe::Ite(c, a, b) => {
            let c = build(pool, vars, w, c);
            let a = build(pool, vars, w, a);
            let b = build(pool, vars, w, b);
            let zero = pool.constant(w, 0);
            let cond = pool.ne(c, zero);
            pool.ite(cond, a, b)
        }
    }
}

pokemu_rt::prop! {
    /// SAT models must satisfy the asserted equality `t == target`.
    fn model_soundness(g, cases = 48) {
        let depth = depth_for(g);
        let recipe = gen_recipe(g, depth);
        let target: u64 = g.gen();
        let w = *g.choose(&[4u8, 8, 13]);
        let mut pool = TermPool::new();
        let vars: Vec<TermId> = (0..3).map(|i| pool.var(w, &format!("v{i}"))).collect();
        let t = build(&mut pool, &vars, w, &recipe);
        let k = pool.constant(w, target);
        let cond = pool.eq(t, k);
        let mut solver = BvSolver::new();
        if let Some(model) = solver.check_with_model(&pool, &[cond]) {
            let mut env: HashMap<VarId, u64> = HashMap::new();
            for i in 0..3 {
                env.insert(VarId(i), model.value_or(VarId(i), 0));
            }
            assert_eq!(pool.eval(cond, &env), 1, "model does not satisfy: {}", pool.display(cond));
        }
    }

    /// With every variable pinned, satisfiability must equal evaluation.
    fn pinned_inputs_match_eval(g, cases = 48) {
        let depth = depth_for(g);
        let recipe = gen_recipe(g, depth);
        let vals = [g.gen::<u64>(), g.gen::<u64>(), g.gen::<u64>()];
        let target: u64 = g.gen();
        let w = *g.choose(&[4u8, 7]);
        let mut pool = TermPool::new();
        let vars: Vec<TermId> = (0..3).map(|i| pool.var(w, &format!("v{i}"))).collect();
        let t = build(&mut pool, &vars, w, &recipe);
        let k = pool.constant(w, target);
        let cond = pool.eq(t, k);
        let mut assumptions = vec![cond];
        let mut env: HashMap<VarId, u64> = HashMap::new();
        for (i, (&v, &val)) in vars.iter().zip(vals.iter()).enumerate() {
            let c = pool.constant(w, val);
            assumptions.push(pool.eq(v, c));
            env.insert(VarId(i as u32), pokemu_solver::mask(w, val));
        }
        let expect = pool.eval(cond, &env) == 1;
        let mut solver = BvSolver::new();
        let got = solver.check(&pool, &assumptions) == SatResult::Sat;
        assert_eq!(got, expect, "term: {}", pool.display(t));
    }

    /// Comparison operators agree with native Rust semantics.
    fn comparisons_match_native(g, cases = 64) {
        let a: u64 = g.gen();
        let b: u64 = g.gen();
        let w = *g.choose(&[8u8, 16, 32]);
        let mut pool = TermPool::new();
        let av = pool.var(w, "a");
        let bv = pool.var(w, "b");
        let am = pokemu_solver::mask(w, a);
        let bm = pokemu_solver::mask(w, b);
        let ac = pool.constant(w, a);
        let bc = pool.constant(w, b);
        let pin_a = pool.eq(av, ac);
        let pin_b = pool.eq(bv, bc);

        let ult = pool.ult(av, bv);
        let slt = pool.slt(av, bv);
        let eq = pool.eq(av, bv);

        let mut solver = BvSolver::new();
        let sat = |s: &mut BvSolver, p: &TermPool, extra: pokemu_solver::TermId| {
            s.check(p, &[pin_a, pin_b, extra]) == SatResult::Sat
        };
        assert_eq!(sat(&mut solver, &pool, ult), am < bm);
        let expect_slt = pokemu_solver::sext64(w, am) < pokemu_solver::sext64(w, bm);
        assert_eq!(sat(&mut solver, &pool, slt), expect_slt);
        assert_eq!(sat(&mut solver, &pool, eq), am == bm);
    }
}

/// Exhaustive check of all 4-bit binary-operator circuits against `eval`.
#[test]
fn exhaustive_4bit_ops_via_solver() {
    let w: Width = 4;
    let ops: [&str; 8] = ["add", "sub", "mul", "udiv", "urem", "shl", "lshr", "ashr"];
    for op in ops {
        let mut pool = TermPool::new();
        let a = pool.var(w, "a");
        let b = pool.var(w, "b");
        let t = match op {
            "add" => pool.add(a, b),
            "sub" => pool.sub(a, b),
            "mul" => pool.mul(a, b),
            "udiv" => pool.udiv(a, b),
            "urem" => pool.urem(a, b),
            "shl" => pool.shl(a, b),
            "lshr" => pool.lshr(a, b),
            _ => pool.ashr(a, b),
        };
        let mut solver = BvSolver::new();
        // Sample the full 8-bit input space sparsely but deterministically.
        for x in 0..16u64 {
            for y in 0..16u64 {
                let xc = pool.constant(w, x);
                let yc = pool.constant(w, y);
                let pa = pool.eq(a, xc);
                let pb = pool.eq(b, yc);
                let mut env = HashMap::new();
                env.insert(VarId(0), x);
                env.insert(VarId(1), y);
                let expect = pool.eval(t, &env);
                let ec = pool.constant(w, expect);
                let matches = pool.eq(t, ec);
                assert_eq!(
                    solver.check(&pool, &[pa, pb, matches]),
                    SatResult::Sat,
                    "{op}({x},{y}) should be {expect}"
                );
                let differs = pool.not(matches);
                assert_eq!(
                    solver.check(&pool, &[pa, pb, differs]),
                    SatResult::Unsat,
                    "{op}({x},{y}) must uniquely be {expect}"
                );
            }
        }
    }
}
