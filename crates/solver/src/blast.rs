//! Bit-blasting: lowering bit-vector terms to CNF over the SAT core.
//!
//! Every [`TermId`] is lowered once to a vector of SAT literals (LSB first)
//! and cached, so repeated feasibility queries over a growing path condition
//! only blast the new branch condition. Word operators become standard
//! circuits: ripple-carry adders, borrow-chain comparators, barrel shifters,
//! shift-add multipliers and restoring dividers; all respect the SMT-LIB
//! `QF_BV` corner-case conventions used by [`crate::TermPool`].

use crate::sat::{Lit, Sat, SatVar};
use crate::term::{Op, TermId, TermPool, VarId};

/// Lowers terms to CNF incrementally and owns the SAT solver.
#[derive(Debug)]
pub struct Blaster {
    sat: Sat,
    /// Cached literal vectors per term (LSB first), indexed by `TermId`.
    bits: Vec<Option<Vec<Lit>>>,
    /// SAT variables allocated for each symbolic BV variable.
    var_bits: Vec<Option<Vec<Lit>>>,
    lit_true: Lit,
}

impl Default for Blaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Blaster {
    /// Creates a blaster with an empty SAT instance.
    pub fn new() -> Self {
        let mut sat = Sat::new();
        let t = sat.new_var();
        let lit_true = Lit::pos(t);
        sat.add_clause(&[lit_true]);
        Blaster {
            sat,
            bits: Vec::new(),
            var_bits: Vec::new(),
            lit_true,
        }
    }

    /// The underlying SAT solver (for `solve` and `model_value`).
    pub fn sat(&mut self) -> &mut Sat {
        &mut self.sat
    }

    /// Immutable access to the SAT solver, e.g. to read statistics.
    pub fn sat_ref(&self) -> &Sat {
        &self.sat
    }

    fn lit_const(&self, b: bool) -> Lit {
        if b {
            self.lit_true
        } else {
            self.lit_true.negate()
        }
    }

    fn as_const(&self, l: Lit) -> Option<bool> {
        if l == self.lit_true {
            Some(true)
        } else if l == self.lit_true.negate() {
            Some(false)
        } else {
            None
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.lit_const(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ if a == b.negate() => self.lit_const(false),
            _ => {
                let o = self.fresh();
                self.sat.add_clause(&[a.negate(), b.negate(), o]);
                self.sat.add_clause(&[a, o.negate()]);
                self.sat.add_clause(&[b, o.negate()]);
                o
            }
        }
    }

    fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        self.and_gate(a.negate(), b.negate()).negate()
    }

    fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) => b,
            (Some(true), _) => b.negate(),
            (_, Some(false)) => a,
            (_, Some(true)) => a.negate(),
            _ if a == b => self.lit_const(false),
            _ if a == b.negate() => self.lit_const(true),
            _ => {
                let o = self.fresh();
                self.sat.add_clause(&[a.negate(), b.negate(), o.negate()]);
                self.sat.add_clause(&[a, b, o.negate()]);
                self.sat.add_clause(&[a.negate(), b, o]);
                self.sat.add_clause(&[a, b.negate(), o]);
                o
            }
        }
    }

    fn mux_gate(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        match self.as_const(c) {
            Some(true) => return t,
            Some(false) => return e,
            None => {}
        }
        if t == e {
            return t;
        }
        match (self.as_const(t), self.as_const(e)) {
            (Some(true), Some(false)) => return c,
            (Some(false), Some(true)) => return c.negate(),
            (Some(true), None) => return self.or_gate(c, e),
            (Some(false), None) => return self.and_gate(c.negate(), e),
            (None, Some(true)) => return self.or_gate(c.negate(), t),
            (None, Some(false)) => return self.and_gate(c, t),
            _ => {}
        }
        let o = self.fresh();
        self.sat.add_clause(&[c.negate(), t.negate(), o]);
        self.sat.add_clause(&[c.negate(), t, o.negate()]);
        self.sat.add_clause(&[c, e.negate(), o]);
        self.sat.add_clause(&[c, e, o.negate()]);
        // Redundant clauses improve propagation when t == e at runtime.
        self.sat.add_clause(&[t.negate(), e.negate(), o]);
        self.sat.add_clause(&[t, e, o.negate()]);
        o
    }

    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(a, b);
        let s = self.xor_gate(axb, cin);
        let t1 = self.and_gate(a, b);
        let t2 = self.and_gate(axb, cin);
        let cout = self.or_gate(t1, t2);
        (s, cout)
    }

    fn add_vec(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn neg_vec(&mut self, a: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zeros = vec![self.lit_const(false); a.len()];
        self.add_vec(&inv, &zeros, self.lit_const(true))
    }

    fn sub_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = b.iter().map(|l| l.negate()).collect();
        self.add_vec(a, &inv, self.lit_const(true))
    }

    /// Borrow-chain unsigned comparator: `a < b`.
    fn ult_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut borrow = self.lit_const(false);
        for i in 0..a.len() {
            let differ = self.xor_gate(a[i], b[i]);
            borrow = self.mux_gate(differ, b[i], borrow);
        }
        borrow
    }

    fn slt_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // Flip the sign bits to map signed order onto unsigned order.
        let mut a2 = a.to_vec();
        let mut b2 = b.to_vec();
        let msb = a.len() - 1;
        a2[msb] = a2[msb].negate();
        b2[msb] = b2[msb].negate();
        self.ult_vec(&a2, &b2)
    }

    fn eq_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.lit_const(true);
        for i in 0..a.len() {
            let x = self.xor_gate(a[i], b[i]);
            acc = self.and_gate(acc, x.negate());
        }
        acc
    }

    fn mux_vec(&mut self, c: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(e)
            .map(|(&ti, &ei)| self.mux_gate(c, ti, ei))
            .collect()
    }

    /// Barrel shifter. `left` selects shift direction; `fill` is shifted in.
    /// Amount bits above `ceil(log2(w))` are handled by the range check.
    fn shift_vec(&mut self, a: &[Lit], amt: &[Lit], left: bool, fill: Lit) -> Vec<Lit> {
        let w = a.len();
        let k = usize::BITS - (w - 1).leading_zeros(); // ceil(log2(w)) for w >= 2
        let k = if w == 1 { 0 } else { k as usize };
        let mut cur = a.to_vec();
        for s in 0..k {
            let dist = 1usize << s;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if left {
                    if i >= dist {
                        cur[i - dist]
                    } else {
                        fill
                    }
                } else if i + dist < w {
                    cur[i + dist]
                } else {
                    fill
                };
                next.push(self.mux_gate(amt[s], shifted, cur[i]));
            }
            cur = next;
        }
        // If the amount is >= w, the result is all fill bits.
        let wconst = self.const_vec(amt.len(), w as u64);
        let in_range = self.ult_vec(amt, &wconst);
        let fills = vec![fill; w];
        self.mux_vec(in_range, &cur, &fills)
    }

    fn mul_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let f = self.lit_const(false);
        let mut acc = vec![f; w];
        for i in 0..w {
            let mut row = vec![f; w];
            for j in 0..(w - i) {
                row[i + j] = self.and_gate(b[i], a[j]);
            }
            acc = self.add_vec(&acc, &row, f);
        }
        acc
    }

    /// Restoring division producing `(quotient, remainder)` with the SMT-LIB
    /// division-by-zero conventions (q = all-ones, r = dividend).
    fn divrem_vec(&mut self, a: &[Lit], d: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let f = self.lit_const(false);
        // One extra bit so `2r + a_i` cannot overflow.
        let mut r: Vec<Lit> = vec![f; w + 1];
        let mut dext: Vec<Lit> = d.to_vec();
        dext.push(f);
        let mut q = vec![f; w];
        for i in (0..w).rev() {
            // r = (r << 1) | a_i
            let mut r2 = Vec::with_capacity(w + 1);
            r2.push(a[i]);
            r2.extend_from_slice(&r[..w]);
            let lt = self.ult_vec(&r2, &dext);
            let ge = lt.negate();
            let diff = self.sub_vec(&r2, &dext);
            q[i] = ge;
            r = self.mux_vec(ge, &diff, &r2);
        }
        r.truncate(w);
        (q, r)
    }

    fn const_vec(&self, w: usize, v: u64) -> Vec<Lit> {
        (0..w).map(|i| self.lit_const((v >> i) & 1 == 1)).collect()
    }

    fn ensure_var_bits(&mut self, v: VarId, w: usize) -> Vec<Lit> {
        let idx = v.0 as usize;
        while self.var_bits.len() <= idx {
            self.var_bits.push(None);
        }
        if self.var_bits[idx].is_none() {
            let bits: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
            self.var_bits[idx] = Some(bits);
        }
        self.var_bits[idx].clone().expect("just created")
    }

    /// Lowers `t` to its literal vector (LSB first), blasting any
    /// not-yet-seen subterms.
    pub fn blast(&mut self, pool: &TermPool, t: TermId) -> Vec<Lit> {
        while self.bits.len() < pool.len() {
            self.bits.push(None);
        }
        // Iterative post-order to avoid recursion on deep formulas.
        let mut stack: Vec<(TermId, bool)> = vec![(t, false)];
        while let Some((id, ready)) = stack.pop() {
            if self.bits[id.index()].is_some() {
                continue;
            }
            let op = pool.op(id);
            if !ready {
                stack.push((id, true));
                match op {
                    Op::Var(_) | Op::Const(_) => {}
                    Op::Not(a) | Op::Neg(a) | Op::Extract(a, _, _) | Op::ZExt(a) | Op::SExt(a) => {
                        stack.push((a, false))
                    }
                    Op::And(a, b)
                    | Op::Or(a, b)
                    | Op::Xor(a, b)
                    | Op::Add(a, b)
                    | Op::Sub(a, b)
                    | Op::Mul(a, b)
                    | Op::UDiv(a, b)
                    | Op::URem(a, b)
                    | Op::Shl(a, b)
                    | Op::LShr(a, b)
                    | Op::AShr(a, b)
                    | Op::Eq(a, b)
                    | Op::Ult(a, b)
                    | Op::Slt(a, b)
                    | Op::Concat(a, b) => {
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                    Op::Ite(c, a, b) => {
                        stack.push((c, false));
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                }
                continue;
            }
            let w = pool.width(id) as usize;
            let get = |x: TermId, me: &Self| -> Vec<Lit> {
                me.bits[x.index()].clone().expect("child blasted")
            };
            let out: Vec<Lit> = match op {
                Op::Var(v) => self.ensure_var_bits(v, w),
                Op::Const(c) => self.const_vec(w, c),
                Op::Not(a) => get(a, self).iter().map(|l| l.negate()).collect(),
                Op::Neg(a) => {
                    let av = get(a, self);
                    self.neg_vec(&av)
                }
                Op::And(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    av.iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.and_gate(x, y))
                        .collect()
                }
                Op::Or(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    av.iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.or_gate(x, y))
                        .collect()
                }
                Op::Xor(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    av.iter()
                        .zip(&bv)
                        .map(|(&x, &y)| self.xor_gate(x, y))
                        .collect()
                }
                Op::Add(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    let f = self.lit_const(false);
                    self.add_vec(&av, &bv, f)
                }
                Op::Sub(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    self.sub_vec(&av, &bv)
                }
                Op::Mul(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    self.mul_vec(&av, &bv)
                }
                Op::UDiv(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    self.divrem_vec(&av, &bv).0
                }
                Op::URem(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    self.divrem_vec(&av, &bv).1
                }
                Op::Shl(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    let f = self.lit_const(false);
                    self.shift_vec(&av, &bv, true, f)
                }
                Op::LShr(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    let f = self.lit_const(false);
                    self.shift_vec(&av, &bv, false, f)
                }
                Op::AShr(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    let fill = *av.last().expect("nonempty");
                    self.shift_vec(&av, &bv, false, fill)
                }
                Op::Eq(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    vec![self.eq_vec(&av, &bv)]
                }
                Op::Ult(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    vec![self.ult_vec(&av, &bv)]
                }
                Op::Slt(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    vec![self.slt_vec(&av, &bv)]
                }
                Op::Ite(c, a, b) => {
                    let cv = get(c, self)[0];
                    let (av, bv) = (get(a, self), get(b, self));
                    self.mux_vec(cv, &av, &bv)
                }
                Op::Extract(a, hi, lo) => {
                    let av = get(a, self);
                    av[lo as usize..=hi as usize].to_vec()
                }
                Op::Concat(a, b) => {
                    let (av, bv) = (get(a, self), get(b, self));
                    let mut out = bv;
                    out.extend_from_slice(&av);
                    out
                }
                Op::ZExt(a) => {
                    let mut out = get(a, self);
                    let f = self.lit_const(false);
                    out.resize(w, f);
                    out
                }
                Op::SExt(a) => {
                    let mut out = get(a, self);
                    let sign = *out.last().expect("nonempty");
                    out.resize(w, sign);
                    out
                }
            };
            debug_assert_eq!(out.len(), w);
            self.bits[id.index()] = Some(out);
        }
        self.bits[t.index()].clone().expect("blasted")
    }

    /// Lowers a width-1 term to a single literal.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not have width 1.
    pub fn blast_bool(&mut self, pool: &TermPool, t: TermId) -> Lit {
        assert_eq!(pool.width(t), 1, "expected a width-1 term");
        self.blast(pool, t)[0]
    }

    /// After a satisfying solve, reads the model value of BV variable `v`.
    ///
    /// Returns `None` when the variable never appeared in any blasted formula
    /// (its value is unconstrained).
    pub fn model_value(&self, v: VarId) -> Option<u64> {
        let bits = self.var_bits.get(v.0 as usize)?.as_ref()?;
        let mut val = 0u64;
        for (i, &l) in bits.iter().enumerate() {
            let b = self.sat.model_value(l.var());
            let b = if l.is_pos() { b } else { !b };
            if b {
                val |= 1 << i;
            }
        }
        Some(val)
    }
}

/// SAT variable handle exposed for tests that want raw access.
pub type RawVar = SatVar;
