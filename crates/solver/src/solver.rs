//! The bit-vector decision procedure facade used by the symbolic engine.
//!
//! [`BvSolver`] answers one kind of question: *is this conjunction of width-1
//! terms satisfiable, and if so under what variable assignment?* That is
//! exactly the interface FuzzBALL needs from STP/Z3 (paper §3.1.2): path
//! conditions are conjunctions of branch conditions, and solving is
//! incremental because successive queries share a growing prefix.

use std::collections::HashMap;
use std::time::Instant;

use pokemu_rt::metrics;

use crate::blast::Blaster;
use crate::sat::{Lit, SatResult, SatStats};
use crate::term::{TermId, TermPool, VarId};

/// A satisfying assignment for the bit-vector variables of a formula.
///
/// Variables that never appeared in any constraint are absent; callers decide
/// their value (PokeEMU leaves them at the baseline machine state, §3.4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from raw `(variable, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, u64)>) -> Self {
        Model {
            values: pairs.into_iter().collect(),
        }
    }

    /// The value assigned to `v`, if constrained.
    pub fn value(&self, v: VarId) -> Option<u64> {
        self.values.get(&v).copied()
    }

    /// The value assigned to `v`, or `default` when unconstrained.
    pub fn value_or(&self, v: VarId, default: u64) -> u64 {
        self.value(v).unwrap_or(default)
    }

    /// Sets (or overrides) the value of `v`.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.values.insert(v, value);
    }

    /// Iterates over the constrained `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// Number of constrained variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no variable is constrained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// View of the model as an evaluation environment for [`TermPool::eval`].
    pub fn as_env(&self) -> &HashMap<VarId, u64> {
        &self.values
    }
}

/// Cumulative query statistics (E6 cost-breakdown experiment).
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// Number of satisfiability checks issued.
    pub queries: u64,
    /// Checks that returned SAT.
    pub sat: u64,
    /// Checks that returned UNSAT.
    pub unsat: u64,
    /// Statistics of the underlying SAT core.
    pub sat_core: SatStats,
}

/// Incremental QF_BV solver: the STP/Z3 stand-in.
///
/// # Examples
///
/// ```
/// use pokemu_solver::{BvSolver, TermPool};
///
/// let mut pool = TermPool::new();
/// let mut solver = BvSolver::new();
/// let x = pool.var(8, "x");
/// let lim = pool.constant(8, 10);
/// let lt = pool.ult(x, lim);
/// let model = solver.check_with_model(&pool, &[lt]).expect("satisfiable");
/// let vx = model.value(pool.variables_of(x)[0]).unwrap();
/// assert!(vx < 10);
/// ```
#[derive(Debug)]
pub struct BvSolver {
    blaster: Blaster,
    stats: SolverStats,
    metrics: SolverMetrics,
}

/// Handles into the process-wide metrics registry, resolved once per solver
/// so the per-query cost is a relaxed atomic add (`solver.` namespace, see
/// DESIGN.md §Observability).
#[derive(Debug, Clone, Copy)]
struct SolverMetrics {
    queries: metrics::Counter,
    sat: metrics::Counter,
    unsat: metrics::Counter,
    query_ns: metrics::Histogram,
}

impl SolverMetrics {
    fn new() -> Self {
        SolverMetrics {
            queries: metrics::counter("solver.queries"),
            sat: metrics::counter("solver.sat"),
            unsat: metrics::counter("solver.unsat"),
            query_ns: metrics::histogram("solver.query_ns"),
        }
    }
}

impl Default for BvSolver {
    fn default() -> Self {
        BvSolver {
            blaster: Blaster::default(),
            stats: SolverStats::default(),
            metrics: SolverMetrics::new(),
        }
    }
}

impl BvSolver {
    /// Creates a fresh solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks satisfiability of the conjunction of `assumptions`.
    ///
    /// Every assumption must be a width-1 term. Learned clauses persist
    /// across calls; assumptions do not.
    ///
    /// # Panics
    ///
    /// Panics if an assumption term does not have width 1.
    pub fn check(&mut self, pool: &TermPool, assumptions: &[TermId]) -> SatResult {
        self.stats.queries += 1;
        self.metrics.queries.inc();
        // Latency is only sampled while tracing is on: the extra clock reads
        // are pure overhead otherwise.
        let t = pokemu_rt::trace::enabled().then(Instant::now);
        let lits: Vec<Lit> = assumptions
            .iter()
            .map(|&t| self.blaster.blast_bool(pool, t))
            .collect();
        let r = self.blaster.sat().solve(&lits);
        if let Some(t) = t {
            self.metrics.query_ns.record_duration(t.elapsed());
        }
        match r {
            SatResult::Sat => {
                self.stats.sat += 1;
                self.metrics.sat.inc();
            }
            SatResult::Unsat => {
                self.stats.unsat += 1;
                self.metrics.unsat.inc();
            }
        }
        self.stats.sat_core = self.blaster.sat_ref().stats();
        r
    }

    /// Like [`BvSolver::check`], returning a [`Model`] on satisfiability.
    pub fn check_with_model(&mut self, pool: &TermPool, assumptions: &[TermId]) -> Option<Model> {
        match self.check(pool, assumptions) {
            SatResult::Unsat => None,
            SatResult::Sat => {
                let mut model = Model::new();
                for i in 0..pool.num_vars() {
                    let v = VarId(i as u32);
                    if let Some(val) = self.blaster.model_value(v) {
                        model.set(v, val);
                    }
                }
                Some(model)
            }
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}
