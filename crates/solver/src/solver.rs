//! The bit-vector decision procedure facade used by the symbolic engine.
//!
//! [`BvSolver`] answers one kind of question: *is this conjunction of width-1
//! terms satisfiable, and if so under what variable assignment?* That is
//! exactly the interface FuzzBALL needs from STP/Z3 (paper §3.1.2): path
//! conditions are conjunctions of branch conditions, and solving is
//! incremental because successive queries share a growing prefix.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use pokemu_rt::{fault, flight, metrics};

use crate::blast::Blaster;
use crate::origin;
use crate::sat::{Lit, SatResult, SatStats, SolveBudget};
use crate::term::{TermId, TermPool, VarId};

/// Queries at least this slow leave a provenance note in the flight
/// recorder (origin + instruction + path id), so a post-hoc dump explains
/// where a latency cliff came from without a traced re-run.
const SLOW_QUERY_NOTE: Duration = Duration::from_millis(10);

/// Env var: per-query wall deadline in milliseconds for every
/// [`BvSolver::check`] in the process (`POKEMU_SOLVER_DEADLINE_MS=50`).
pub const SOLVER_DEADLINE_ENV: &str = "POKEMU_SOLVER_DEADLINE_MS";

/// Env var: per-query conflict fuel for every [`BvSolver::check`] in the
/// process (`POKEMU_SOLVER_FUEL=10000`).
pub const SOLVER_FUEL_ENV: &str = "POKEMU_SOLVER_FUEL";

/// Process-wide default budget, parsed from the environment once.
fn env_budget() -> &'static EnvBudget {
    static ENV: OnceLock<EnvBudget> = OnceLock::new();
    ENV.get_or_init(|| {
        let ms = std::env::var(SOLVER_DEADLINE_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        let fuel = std::env::var(SOLVER_FUEL_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        EnvBudget {
            deadline: ms.map(Duration::from_millis),
            max_conflicts: fuel,
        }
    })
}

#[derive(Debug, Clone, Copy)]
struct EnvBudget {
    deadline: Option<Duration>,
    max_conflicts: Option<u64>,
}

/// A satisfying assignment for the bit-vector variables of a formula.
///
/// Variables that never appeared in any constraint are absent; callers decide
/// their value (PokeEMU leaves them at the baseline machine state, §3.4).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, u64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a model from raw `(variable, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VarId, u64)>) -> Self {
        Model {
            values: pairs.into_iter().collect(),
        }
    }

    /// The value assigned to `v`, if constrained.
    pub fn value(&self, v: VarId) -> Option<u64> {
        self.values.get(&v).copied()
    }

    /// The value assigned to `v`, or `default` when unconstrained.
    pub fn value_or(&self, v: VarId, default: u64) -> u64 {
        self.value(v).unwrap_or(default)
    }

    /// Sets (or overrides) the value of `v`.
    pub fn set(&mut self, v: VarId, value: u64) {
        self.values.insert(v, value);
    }

    /// Iterates over the constrained `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// Number of constrained variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no variable is constrained.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// View of the model as an evaluation environment for [`TermPool::eval`].
    pub fn as_env(&self) -> &HashMap<VarId, u64> {
        &self.values
    }
}

/// Cumulative query statistics (E6 cost-breakdown experiment).
#[derive(Debug, Default, Clone, Copy)]
pub struct SolverStats {
    /// Number of satisfiability checks issued.
    pub queries: u64,
    /// Checks that returned SAT.
    pub sat: u64,
    /// Checks that returned UNSAT.
    pub unsat: u64,
    /// Checks abandoned as UNKNOWN (budget exhausted or fault injected).
    pub unknown: u64,
    /// Statistics of the underlying SAT core.
    pub sat_core: SatStats,
}

/// Incremental QF_BV solver: the STP/Z3 stand-in.
///
/// # Examples
///
/// ```
/// use pokemu_solver::{BvSolver, TermPool};
///
/// let mut pool = TermPool::new();
/// let mut solver = BvSolver::new();
/// let x = pool.var(8, "x");
/// let lim = pool.constant(8, 10);
/// let lt = pool.ult(x, lim);
/// let model = solver.check_with_model(&pool, &[lt]).expect("satisfiable");
/// let vx = model.value(pool.variables_of(x)[0]).unwrap();
/// assert!(vx < 10);
/// ```
#[derive(Debug)]
pub struct BvSolver {
    blaster: Blaster,
    stats: SolverStats,
    metrics: SolverMetrics,
    /// Per-query budget; `None` entries fall back to the process-wide env
    /// budget (`POKEMU_SOLVER_DEADLINE_MS` / `POKEMU_SOLVER_FUEL`).
    deadline: Option<Duration>,
    max_conflicts: Option<u64>,
}

/// Handles into the process-wide metrics registry, resolved once per solver
/// so the per-query cost is a relaxed atomic add (`solver.` namespace, see
/// DESIGN.md §Observability).
#[derive(Debug, Clone, Copy)]
struct SolverMetrics {
    queries: metrics::Counter,
    sat: metrics::Counter,
    unsat: metrics::Counter,
    unknown: metrics::Counter,
    query_ns: metrics::Histogram,
}

impl SolverMetrics {
    fn new() -> Self {
        SolverMetrics {
            queries: metrics::counter("solver.queries"),
            sat: metrics::counter("solver.sat"),
            unsat: metrics::counter("solver.unsat"),
            unknown: metrics::counter("solver.unknown"),
            query_ns: metrics::histogram("solver.query_ns"),
        }
    }
}

impl Default for BvSolver {
    fn default() -> Self {
        BvSolver {
            blaster: Blaster::default(),
            stats: SolverStats::default(),
            metrics: SolverMetrics::new(),
            deadline: None,
            max_conflicts: None,
        }
    }
}

impl BvSolver {
    /// Creates a fresh solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a per-query wall deadline (overrides `POKEMU_SOLVER_DEADLINE_MS`).
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Sets a per-query conflict fuel limit (overrides `POKEMU_SOLVER_FUEL`).
    pub fn set_max_conflicts(&mut self, fuel: Option<u64>) {
        self.max_conflicts = fuel;
    }

    /// The effective budget for the next query, resolving programmatic
    /// settings first and the process environment second.
    fn effective_budget(&self) -> SolveBudget {
        let env = env_budget();
        SolveBudget {
            deadline: self.deadline.or(env.deadline).map(|d| Instant::now() + d),
            max_conflicts: self.max_conflicts.or(env.max_conflicts),
        }
    }

    /// Checks satisfiability of the conjunction of `assumptions`.
    ///
    /// Every assumption must be a width-1 term. Learned clauses persist
    /// across calls; assumptions do not. Under a budget (programmatic or
    /// `POKEMU_SOLVER_DEADLINE_MS` / `POKEMU_SOLVER_FUEL`) a too-expensive
    /// query returns [`SatResult::Unknown`] instead of running unbounded;
    /// the armed `solver.check` fault point can force the same outcome.
    ///
    /// # Panics
    ///
    /// Panics if an assumption term does not have width 1.
    pub fn check(&mut self, pool: &TermPool, assumptions: &[TermId]) -> SatResult {
        // Latency is only sampled while profiling or tracing is on: the
        // extra clock reads are pure overhead otherwise. Sampling starts
        // *before* fault injection so an armed latency fault shows up in
        // the attribution (that visibility is what the bench-gate self-test
        // relies on).
        let t = pokemu_rt::prof::timing_enabled().then(Instant::now);
        let _f = pokemu_rt::prof::frame("solver.check");
        let query_origin = origin::current();
        let (origin_queries, origin_ns) = origin::handles(query_origin);
        self.stats.queries += 1;
        self.metrics.queries.inc();
        origin_queries.inc();
        // The deadline starts ticking before fault injection so an armed
        // latency fault consumes the real budget.
        let budget = self.effective_budget();
        if fault::armed() {
            // Inside a pool item the ambient scope key attributes the fault
            // to that item, so `solver.check:unknown:<n>` starves exactly
            // work item n. Unscoped queries (e.g. the main-thread
            // instruction-space sweep) key as u64::MAX, reachable only by
            // `*` and probabilistic selectors — a numeric key must never
            // leak onto work it did not name.
            let key = fault::scope_key().unwrap_or(u64::MAX);
            if fault::inject("solver.check", key) {
                self.stats.unknown += 1;
                self.metrics.unknown.inc();
                flight::note("solver.unknown", || {
                    format!(
                        "fault key={key} origin={query_origin} insn={} path={:016x}",
                        origin::current_insn(),
                        origin::current_path_id()
                    )
                });
                if let Some(t) = t {
                    let el = t.elapsed();
                    self.metrics.query_ns.record_duration(el);
                    origin_ns.add(el);
                }
                return SatResult::Unknown;
            }
        }
        let lits: Vec<Lit> = assumptions
            .iter()
            .map(|&t| self.blaster.blast_bool(pool, t))
            .collect();
        let budget_ref = budget.is_bounded().then_some(&budget);
        let r = self.blaster.sat().solve_budgeted(&lits, budget_ref);
        if let Some(t) = t {
            let el = t.elapsed();
            self.metrics.query_ns.record_duration(el);
            origin_ns.add(el);
            if el >= SLOW_QUERY_NOTE {
                flight::note("solver.slow", || {
                    format!(
                        "origin={query_origin} insn={} path={:016x} ms={}",
                        origin::current_insn(),
                        origin::current_path_id(),
                        el.as_millis()
                    )
                });
            }
        }
        match r {
            SatResult::Sat => {
                self.stats.sat += 1;
                self.metrics.sat.inc();
            }
            SatResult::Unsat => {
                self.stats.unsat += 1;
                self.metrics.unsat.inc();
            }
            SatResult::Unknown => {
                self.stats.unknown += 1;
                self.metrics.unknown.inc();
                flight::note("solver.unknown", || {
                    format!(
                        "budget exhausted origin={query_origin} insn={} path={:016x}",
                        origin::current_insn(),
                        origin::current_path_id()
                    )
                });
            }
        }
        self.stats.sat_core = self.blaster.sat_ref().stats();
        r
    }

    /// Like [`BvSolver::check`], returning a [`Model`] on satisfiability.
    pub fn check_with_model(&mut self, pool: &TermPool, assumptions: &[TermId]) -> Option<Model> {
        match self.check(pool, assumptions) {
            SatResult::Unsat | SatResult::Unknown => None,
            SatResult::Sat => {
                let mut model = Model::new();
                for i in 0..pool.num_vars() {
                    let v = VarId(i as u32);
                    if let Some(val) = self.blaster.model_value(v) {
                        model.set(v, val);
                    }
                }
                Some(model)
            }
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starved_query_degrades_to_unknown_then_recovers() {
        let mut pool = TermPool::new();
        let mut s = BvSolver::new();
        // x * x + x == 0x6FC2 over 16 bits: needs genuine search.
        let x = pool.var(16, "x");
        let sq = pool.mul(x, x);
        let sum = pool.add(sq, x);
        let k = pool.constant(16, 0x6FC2);
        let cond = pool.eq(sum, k);

        s.set_max_conflicts(Some(0));
        assert_eq!(s.check(&pool, &[cond]), SatResult::Unknown);
        assert_eq!(s.stats().unknown, 1);
        assert!(s.check_with_model(&pool, &[cond]).is_none());

        // Lifting the budget lets the same solver answer for real.
        s.set_max_conflicts(None);
        let r = s.check(&pool, &[cond]);
        assert_ne!(r, SatResult::Unknown);
        assert_eq!(s.stats().unknown, 2);
    }
}
