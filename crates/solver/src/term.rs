//! Hash-consed bit-vector terms with constant folding.
//!
//! Terms are the symbolic expressions manipulated by the symbolic execution
//! engine. They live in a [`TermPool`], an append-only arena that interns
//! structurally identical terms so equality of [`TermId`]s implies structural
//! equality. All constructors constant-fold eagerly and apply a small set of
//! local simplifications, which keeps formulas compact before bit-blasting.
//!
//! Semantics follow SMT-LIB's `QF_BV` theory for all operators, including the
//! `bvudiv`/`bvurem` division-by-zero conventions.

use std::collections::HashMap;
use std::fmt;

/// Width of a bit-vector term in bits. Valid widths are `1..=64`.
pub type Width = u8;

/// Maximum supported bit-vector width.
pub const MAX_WIDTH: Width = 64;

/// Identifier of an interned term inside a [`TermPool`].
///
/// Because the pool interns structurally, two equal `TermId`s denote the same
/// expression. Ids are only meaningful relative to the pool that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Raw index of this term in its pool.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a symbolic variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The operator of a term node.
///
/// Comparison operators produce width-1 terms (SMT-LIB booleans are modelled
/// as 1-bit vectors). All other operators preserve or explicitly change width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A free symbolic variable.
    Var(VarId),
    /// A constant, masked to the node width.
    Const(u64),
    /// Bitwise complement.
    Not(TermId),
    /// Two's-complement negation.
    Neg(TermId),
    /// Bitwise and.
    And(TermId, TermId),
    /// Bitwise or.
    Or(TermId, TermId),
    /// Bitwise xor.
    Xor(TermId, TermId),
    /// Modular addition.
    Add(TermId, TermId),
    /// Modular subtraction.
    Sub(TermId, TermId),
    /// Modular multiplication.
    Mul(TermId, TermId),
    /// Unsigned division (`bvudiv`): division by zero yields all-ones.
    UDiv(TermId, TermId),
    /// Unsigned remainder (`bvurem`): remainder by zero yields the dividend.
    URem(TermId, TermId),
    /// Logical shift left; shift amounts `>= width` yield zero.
    Shl(TermId, TermId),
    /// Logical shift right; shift amounts `>= width` yield zero.
    LShr(TermId, TermId),
    /// Arithmetic shift right; shift amounts `>= width` yield the sign fill.
    AShr(TermId, TermId),
    /// Equality; result has width 1.
    Eq(TermId, TermId),
    /// Unsigned less-than; result has width 1.
    Ult(TermId, TermId),
    /// Signed less-than; result has width 1.
    Slt(TermId, TermId),
    /// If-then-else; the condition has width 1.
    Ite(TermId, TermId, TermId),
    /// Bit-slice `[hi:lo]`, inclusive on both ends.
    Extract(TermId, u8, u8),
    /// Concatenation: the first operand forms the high bits.
    Concat(TermId, TermId),
    /// Zero extension to the node width.
    ZExt(TermId),
    /// Sign extension to the node width.
    SExt(TermId),
}

/// One interned node: an operator plus the width of its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    op: Op,
    width: Width,
}

/// Append-only arena of hash-consed bit-vector terms.
///
/// # Examples
///
/// ```
/// use pokemu_solver::{TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let a = pool.var(32, "a");
/// let k = pool.constant(32, 10);
/// let sum = pool.add(a, k);
/// // Constant folding: (a + 10) is only symbolic because `a` is.
/// assert!(pool.as_const(sum).is_none());
/// let twenty = pool.add(k, k);
/// assert_eq!(pool.as_const(twenty), Some(20));
/// ```
#[derive(Debug, Default)]
pub struct TermPool {
    nodes: Vec<Node>,
    interned: HashMap<Node, TermId>,
    var_names: Vec<String>,
    var_widths: Vec<Width>,
}

/// Masks `v` to the low `w` bits.
#[inline]
pub fn mask(w: Width, v: u64) -> u64 {
    debug_assert!(w >= 1 && w <= MAX_WIDTH);
    if w == 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

/// Sign-extends the `w`-bit value `v` to 64 bits (as `i64` reinterpreted).
#[inline]
pub fn sext64(w: Width, v: u64) -> i64 {
    debug_assert!(w >= 1 && w <= MAX_WIDTH);
    let shift = 64 - w as u32;
    ((v << shift) as i64) >> shift
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct variables created so far.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The result width of `t`.
    pub fn width(&self, t: TermId) -> Width {
        self.nodes[t.index()].width
    }

    /// The operator of `t`.
    pub fn op(&self, t: TermId) -> Op {
        self.nodes[t.index()].op
    }

    /// The debug name given to `v` at creation.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0 as usize]
    }

    /// The declared width of variable `v`.
    pub fn var_width(&self, v: VarId) -> Width {
        self.var_widths[v.0 as usize]
    }

    /// If `t` is a constant, its value.
    pub fn as_const(&self, t: TermId) -> Option<u64> {
        match self.nodes[t.index()].op {
            Op::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` when `t` is a constant.
    pub fn is_const(&self, t: TermId) -> bool {
        self.as_const(t).is_some()
    }

    fn intern(&mut self, node: Node) -> TermId {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.interned.insert(node, id);
        id
    }

    /// Creates a fresh symbolic variable of width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero or exceeds [`MAX_WIDTH`].
    pub fn var(&mut self, w: Width, name: &str) -> TermId {
        assert!(w >= 1 && w <= MAX_WIDTH, "invalid width {w}");
        let v = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        self.var_widths.push(w);
        self.intern(Node {
            op: Op::Var(v),
            width: w,
        })
    }

    /// Interns the constant `v` masked to width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero or exceeds [`MAX_WIDTH`].
    pub fn constant(&mut self, w: Width, v: u64) -> TermId {
        assert!(w >= 1 && w <= MAX_WIDTH, "invalid width {w}");
        let v = mask(w, v);
        self.intern(Node {
            op: Op::Const(v),
            width: w,
        })
    }

    /// The width-1 constant 1 ("true").
    pub fn true_(&mut self) -> TermId {
        self.constant(1, 1)
    }

    /// The width-1 constant 0 ("false").
    pub fn false_(&mut self) -> TermId {
        self.constant(1, 0)
    }

    fn width2(&self, a: TermId, b: TermId) -> Width {
        let wa = self.width(a);
        let wb = self.width(b);
        assert_eq!(wa, wb, "width mismatch: {wa} vs {wb}");
        wa
    }

    /// Bitwise complement of `a`.
    pub fn not(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        match self.nodes[a.index()].op {
            Op::Const(v) => self.constant(w, !v),
            // ~~x = x
            Op::Not(inner) => inner,
            _ => self.intern(Node {
                op: Op::Not(a),
                width: w,
            }),
        }
    }

    /// Two's-complement negation of `a`.
    pub fn neg(&mut self, a: TermId) -> TermId {
        let w = self.width(a);
        match self.nodes[a.index()].op {
            Op::Const(v) => self.constant(w, v.wrapping_neg()),
            Op::Neg(inner) => inner,
            _ => self.intern(Node {
                op: Op::Neg(a),
                width: w,
            }),
        }
    }

    /// Bitwise and.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x & y),
            (Some(0), _) | (_, Some(0)) => self.constant(w, 0),
            (Some(x), _) if x == mask(w, u64::MAX) => b,
            (_, Some(y)) if y == mask(w, u64::MAX) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::And(a, b),
                    width: w,
                })
            }
        }
    }

    /// Bitwise or.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x | y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(x), _) if x == mask(w, u64::MAX) => a,
            (_, Some(y)) if y == mask(w, u64::MAX) => b,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::Or(a, b),
                    width: w,
                })
            }
        }
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        if a == b {
            return self.constant(w, 0);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x ^ y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::Xor(a, b),
                    width: w,
                })
            }
        }
    }

    /// Modular addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_add(y)),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::Add(a, b),
                    width: w,
                })
            }
        }
    }

    /// Modular subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        if a == b {
            return self.constant(w, 0);
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_sub(y)),
            (_, Some(0)) => a,
            _ => self.intern(Node {
                op: Op::Sub(a, b),
                width: w,
            }),
        }
    }

    /// Modular multiplication.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(w, x.wrapping_mul(y)),
            (Some(0), _) | (_, Some(0)) => self.constant(w, 0),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::Mul(a, b),
                    width: w,
                })
            }
        }
    }

    /// Unsigned division with the SMT-LIB `bvudiv` zero convention.
    pub fn udiv(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(_), Some(0)) | (None, Some(0)) => self.constant(w, mask(w, u64::MAX)),
            (Some(x), Some(y)) => self.constant(w, x / y),
            (_, Some(1)) => a,
            _ => self.intern(Node {
                op: Op::UDiv(a, b),
                width: w,
            }),
        }
    }

    /// Unsigned remainder with the SMT-LIB `bvurem` zero convention.
    pub fn urem(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (_, Some(0)) => a,
            (Some(x), Some(y)) => self.constant(w, x % y),
            (_, Some(1)) => self.constant(w, 0),
            _ => self.intern(Node {
                op: Op::URem(a, b),
                width: w,
            }),
        }
    }

    /// Logical left shift; amounts `>= w` produce zero.
    pub fn shl(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(s)) => {
                let v = if s >= w as u64 { 0 } else { x << s };
                self.constant(w, v)
            }
            (_, Some(0)) => a,
            (Some(0), _) => self.constant(w, 0),
            _ => self.intern(Node {
                op: Op::Shl(a, b),
                width: w,
            }),
        }
    }

    /// Logical right shift; amounts `>= w` produce zero.
    pub fn lshr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(s)) => {
                let v = if s >= w as u64 { 0 } else { x >> s };
                self.constant(w, v)
            }
            (_, Some(0)) => a,
            (Some(0), _) => self.constant(w, 0),
            _ => self.intern(Node {
                op: Op::LShr(a, b),
                width: w,
            }),
        }
    }

    /// Arithmetic right shift; amounts `>= w` replicate the sign bit.
    pub fn ashr(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(s)) => {
                let sx = sext64(w, x);
                let v = if s >= w as u64 {
                    (sx >> 63) as u64
                } else {
                    (sx >> s) as u64
                };
                self.constant(w, v)
            }
            (_, Some(0)) => a,
            _ => self.intern(Node {
                op: Op::AShr(a, b),
                width: w,
            }),
        }
    }

    /// Equality test, producing a width-1 term.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.width2(a, b);
        if a == b {
            return self.true_();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(1, (x == y) as u64),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node {
                    op: Op::Eq(a, b),
                    width: 1,
                })
            }
        }
    }

    /// Disequality test, producing a width-1 term.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Unsigned less-than, producing a width-1 term.
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.width2(a, b);
        if a == b {
            return self.false_();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(1, (x < y) as u64),
            (_, Some(0)) => self.false_(),
            _ => self.intern(Node {
                op: Op::Ult(a, b),
                width: 1,
            }),
        }
    }

    /// Unsigned less-or-equal, producing a width-1 term.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let lt = self.ult(b, a);
        self.not(lt)
    }

    /// Signed less-than, producing a width-1 term.
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        let w = self.width2(a, b);
        if a == b {
            return self.false_();
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(x), Some(y)) => self.constant(1, (sext64(w, x) < sext64(w, y)) as u64),
            _ => self.intern(Node {
                op: Op::Slt(a, b),
                width: 1,
            }),
        }
    }

    /// Signed less-or-equal, producing a width-1 term.
    pub fn sle(&mut self, a: TermId, b: TermId) -> TermId {
        let lt = self.slt(b, a);
        self.not(lt)
    }

    /// If-then-else. `cond` must have width 1; arms must agree in width.
    pub fn ite(&mut self, cond: TermId, t: TermId, e: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must have width 1");
        let w = self.width2(t, e);
        if t == e {
            return t;
        }
        match self.as_const(cond) {
            Some(1) => t,
            Some(0) => e,
            _ => self.intern(Node {
                op: Op::Ite(cond, t, e),
                width: w,
            }),
        }
    }

    /// Extracts bits `hi..=lo` of `a` (a `hi - lo + 1`-bit result).
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < width(a)`.
    pub fn extract(&mut self, a: TermId, hi: u8, lo: u8) -> TermId {
        let w = self.width(a);
        assert!(lo <= hi && hi < w, "bad extract [{hi}:{lo}] of width {w}");
        let nw = hi - lo + 1;
        if nw == w {
            return a;
        }
        match self.nodes[a.index()].op {
            Op::Const(v) => self.constant(nw, v >> lo),
            // extract of extract composes
            Op::Extract(inner, _ihi, ilo) => {
                let (nhi, nlo) = (ilo + hi, ilo + lo);
                self.extract(inner, nhi, nlo)
            }
            // extract entirely inside one half of a concat
            Op::Concat(hi_t, lo_t) => {
                let lw = self.width(lo_t);
                if hi < lw {
                    self.extract(lo_t, hi, lo)
                } else if lo >= lw {
                    self.extract(hi_t, hi - lw, lo - lw)
                } else {
                    self.intern(Node {
                        op: Op::Extract(a, hi, lo),
                        width: nw,
                    })
                }
            }
            Op::ZExt(inner) => {
                let iw = self.width(inner);
                if hi < iw {
                    self.extract(inner, hi, lo)
                } else if lo >= iw {
                    self.constant(nw, 0)
                } else {
                    self.intern(Node {
                        op: Op::Extract(a, hi, lo),
                        width: nw,
                    })
                }
            }
            _ => self.intern(Node {
                op: Op::Extract(a, hi, lo),
                width: nw,
            }),
        }
    }

    /// Concatenates `hi` (high bits) with `lo` (low bits).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let wh = self.width(hi);
        let wl = self.width(lo);
        let w = wh
            .checked_add(wl)
            .filter(|&w| w <= MAX_WIDTH)
            .expect("concat too wide");
        match (self.as_const(hi), self.as_const(lo)) {
            (Some(h), Some(l)) => self.constant(w, (h << wl) | l),
            _ => self.intern(Node {
                op: Op::Concat(hi, lo),
                width: w,
            }),
        }
    }

    /// Zero-extends `a` to width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is narrower than `a`.
    pub fn zext(&mut self, a: TermId, w: Width) -> TermId {
        let aw = self.width(a);
        assert!(w >= aw && w <= MAX_WIDTH, "bad zext {aw} -> {w}");
        if w == aw {
            return a;
        }
        match self.nodes[a.index()].op {
            Op::Const(v) => self.constant(w, v),
            _ => self.intern(Node {
                op: Op::ZExt(a),
                width: w,
            }),
        }
    }

    /// Sign-extends `a` to width `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is narrower than `a`.
    pub fn sext(&mut self, a: TermId, w: Width) -> TermId {
        let aw = self.width(a);
        assert!(w >= aw && w <= MAX_WIDTH, "bad sext {aw} -> {w}");
        if w == aw {
            return a;
        }
        match self.nodes[a.index()].op {
            Op::Const(v) => self.constant(w, sext64(aw, v) as u64),
            _ => self.intern(Node {
                op: Op::SExt(a),
                width: w,
            }),
        }
    }

    /// Logical and of width-1 terms (alias of [`TermPool::and`] for clarity).
    pub fn bool_and(&mut self, a: TermId, b: TermId) -> TermId {
        self.and(a, b)
    }

    /// Logical or of width-1 terms.
    pub fn bool_or(&mut self, a: TermId, b: TermId) -> TermId {
        self.or(a, b)
    }

    /// Logical implication `a -> b` of width-1 terms.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(na, b)
    }

    /// Evaluates `t` under `env`, which must assign every variable reached.
    ///
    /// Evaluation is iterative over the term DAG (no recursion), so deeply
    /// nested formulas cannot overflow the stack.
    ///
    /// # Panics
    ///
    /// Panics if `env` lacks a variable appearing in `t`.
    pub fn eval(&self, t: TermId, env: &HashMap<VarId, u64>) -> u64 {
        let mut cache: HashMap<TermId, u64> = HashMap::new();
        self.eval_cached(t, env, &mut cache)
    }

    /// Like [`TermPool::eval`] but reuses `cache` across calls: useful when
    /// evaluating many terms under the same assignment (e.g. a whole path
    /// condition during state-difference minimization).
    pub fn eval_cached(
        &self,
        t: TermId,
        env: &HashMap<VarId, u64>,
        cache: &mut HashMap<TermId, u64>,
    ) -> u64 {
        // Explicit work stack: (term, children_ready).
        let mut stack: Vec<(TermId, bool)> = vec![(t, false)];
        while let Some((id, ready)) = stack.pop() {
            if cache.contains_key(&id) {
                continue;
            }
            let node = self.nodes[id.index()];
            if !ready {
                stack.push((id, true));
                match node.op {
                    Op::Var(_) | Op::Const(_) => {}
                    Op::Not(a) | Op::Neg(a) | Op::Extract(a, _, _) | Op::ZExt(a) | Op::SExt(a) => {
                        stack.push((a, false));
                    }
                    Op::And(a, b)
                    | Op::Or(a, b)
                    | Op::Xor(a, b)
                    | Op::Add(a, b)
                    | Op::Sub(a, b)
                    | Op::Mul(a, b)
                    | Op::UDiv(a, b)
                    | Op::URem(a, b)
                    | Op::Shl(a, b)
                    | Op::LShr(a, b)
                    | Op::AShr(a, b)
                    | Op::Eq(a, b)
                    | Op::Ult(a, b)
                    | Op::Slt(a, b)
                    | Op::Concat(a, b) => {
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                    Op::Ite(c, a, b) => {
                        stack.push((c, false));
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                }
                continue;
            }
            let w = node.width;
            let get = |x: TermId, cache: &HashMap<TermId, u64>| -> u64 { cache[&x] };
            let v = match node.op {
                Op::Var(v) => mask(
                    w,
                    *env.get(&v).unwrap_or_else(|| {
                        panic!("eval: unassigned variable {}", self.var_name(v))
                    }),
                ),
                Op::Const(c) => c,
                Op::Not(a) => mask(w, !get(a, cache)),
                Op::Neg(a) => mask(w, get(a, cache).wrapping_neg()),
                Op::And(a, b) => get(a, cache) & get(b, cache),
                Op::Or(a, b) => get(a, cache) | get(b, cache),
                Op::Xor(a, b) => get(a, cache) ^ get(b, cache),
                Op::Add(a, b) => mask(w, get(a, cache).wrapping_add(get(b, cache))),
                Op::Sub(a, b) => mask(w, get(a, cache).wrapping_sub(get(b, cache))),
                Op::Mul(a, b) => mask(w, get(a, cache).wrapping_mul(get(b, cache))),
                Op::UDiv(a, b) => {
                    let (x, y) = (get(a, cache), get(b, cache));
                    if y == 0 {
                        mask(w, u64::MAX)
                    } else {
                        x / y
                    }
                }
                Op::URem(a, b) => {
                    let (x, y) = (get(a, cache), get(b, cache));
                    if y == 0 {
                        x
                    } else {
                        x % y
                    }
                }
                Op::Shl(a, b) => {
                    let (x, s) = (get(a, cache), get(b, cache));
                    if s >= w as u64 {
                        0
                    } else {
                        mask(w, x << s)
                    }
                }
                Op::LShr(a, b) => {
                    let (x, s) = (get(a, cache), get(b, cache));
                    if s >= w as u64 {
                        0
                    } else {
                        x >> s
                    }
                }
                Op::AShr(a, b) => {
                    let (x, s) = (get(a, cache), get(b, cache));
                    let aw = self.width(a);
                    let sx = sext64(aw, x);
                    if s >= aw as u64 {
                        mask(w, (sx >> 63) as u64)
                    } else {
                        mask(w, (sx >> s) as u64)
                    }
                }
                Op::Eq(a, b) => (get(a, cache) == get(b, cache)) as u64,
                Op::Ult(a, b) => (get(a, cache) < get(b, cache)) as u64,
                Op::Slt(a, b) => {
                    let aw = self.width(a);
                    (sext64(aw, get(a, cache)) < sext64(aw, get(b, cache))) as u64
                }
                Op::Ite(c, a, b) => {
                    if get(c, cache) != 0 {
                        get(a, cache)
                    } else {
                        get(b, cache)
                    }
                }
                Op::Extract(a, hi, lo) => mask(hi - lo + 1, get(a, cache) >> lo),
                Op::Concat(a, b) => {
                    let wl = self.width(b);
                    (get(a, cache) << wl) | get(b, cache)
                }
                Op::ZExt(a) => get(a, cache),
                Op::SExt(a) => {
                    let aw = self.width(a);
                    mask(w, sext64(aw, get(a, cache)) as u64)
                }
            };
            cache.insert(id, v);
        }
        cache[&t]
    }

    /// Rebuilds `t` with every variable in `map` replaced by the mapped term.
    ///
    /// Replacement terms must match the variable widths. Used to instantiate
    /// path summaries (paper §3.3.2) at their call sites.
    pub fn substitute(&mut self, t: TermId, map: &HashMap<VarId, TermId>) -> TermId {
        let mut cache: HashMap<TermId, TermId> = HashMap::new();
        let mut stack: Vec<(TermId, bool)> = vec![(t, false)];
        while let Some((id, ready)) = stack.pop() {
            if cache.contains_key(&id) {
                continue;
            }
            let node = self.nodes[id.index()];
            if !ready {
                stack.push((id, true));
                match node.op {
                    Op::Var(_) | Op::Const(_) => {}
                    Op::Not(a) | Op::Neg(a) | Op::Extract(a, _, _) | Op::ZExt(a) | Op::SExt(a) => {
                        stack.push((a, false));
                    }
                    Op::And(a, b)
                    | Op::Or(a, b)
                    | Op::Xor(a, b)
                    | Op::Add(a, b)
                    | Op::Sub(a, b)
                    | Op::Mul(a, b)
                    | Op::UDiv(a, b)
                    | Op::URem(a, b)
                    | Op::Shl(a, b)
                    | Op::LShr(a, b)
                    | Op::AShr(a, b)
                    | Op::Eq(a, b)
                    | Op::Ult(a, b)
                    | Op::Slt(a, b)
                    | Op::Concat(a, b) => {
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                    Op::Ite(c, a, b) => {
                        stack.push((c, false));
                        stack.push((a, false));
                        stack.push((b, false));
                    }
                }
                continue;
            }
            let g = |x: TermId, cache: &HashMap<TermId, TermId>| -> TermId { cache[&x] };
            let new = match node.op {
                Op::Var(v) => match map.get(&v) {
                    Some(&rep) => {
                        assert_eq!(
                            self.width(rep),
                            node.width,
                            "substitute: width mismatch for {}",
                            self.var_name(v)
                        );
                        rep
                    }
                    None => id,
                },
                Op::Const(_) => id,
                Op::Not(a) => {
                    let a = g(a, &cache);
                    self.not(a)
                }
                Op::Neg(a) => {
                    let a = g(a, &cache);
                    self.neg(a)
                }
                Op::And(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.and(a, b)
                }
                Op::Or(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.or(a, b)
                }
                Op::Xor(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.xor(a, b)
                }
                Op::Add(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.add(a, b)
                }
                Op::Sub(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.sub(a, b)
                }
                Op::Mul(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.mul(a, b)
                }
                Op::UDiv(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.udiv(a, b)
                }
                Op::URem(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.urem(a, b)
                }
                Op::Shl(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.shl(a, b)
                }
                Op::LShr(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.lshr(a, b)
                }
                Op::AShr(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.ashr(a, b)
                }
                Op::Eq(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.eq(a, b)
                }
                Op::Ult(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.ult(a, b)
                }
                Op::Slt(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.slt(a, b)
                }
                Op::Ite(c, a, b) => {
                    let (c, a, b) = (g(c, &cache), g(a, &cache), g(b, &cache));
                    self.ite(c, a, b)
                }
                Op::Extract(a, hi, lo) => {
                    let a = g(a, &cache);
                    self.extract(a, hi, lo)
                }
                Op::Concat(a, b) => {
                    let (a, b) = (g(a, &cache), g(b, &cache));
                    self.concat(a, b)
                }
                Op::ZExt(a) => {
                    let a = g(a, &cache);
                    self.zext(a, node.width)
                }
                Op::SExt(a) => {
                    let a = g(a, &cache);
                    self.sext(a, node.width)
                }
            };
            cache.insert(id, new);
        }
        cache[&t]
    }

    /// Collects the set of variables appearing in `t`.
    pub fn variables_of(&self, t: TermId) -> Vec<VarId> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![t];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            match self.nodes[id.index()].op {
                Op::Var(v) => vars.push(v),
                Op::Const(_) => {}
                Op::Not(a) | Op::Neg(a) | Op::Extract(a, _, _) | Op::ZExt(a) | Op::SExt(a) => {
                    stack.push(a)
                }
                Op::And(a, b)
                | Op::Or(a, b)
                | Op::Xor(a, b)
                | Op::Add(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::UDiv(a, b)
                | Op::URem(a, b)
                | Op::Shl(a, b)
                | Op::LShr(a, b)
                | Op::AShr(a, b)
                | Op::Eq(a, b)
                | Op::Ult(a, b)
                | Op::Slt(a, b)
                | Op::Concat(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Op::Ite(c, a, b) => {
                    stack.push(c);
                    stack.push(a);
                    stack.push(b);
                }
            }
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Renders `t` as an S-expression, for debugging and golden tests.
    pub fn display(&self, t: TermId) -> String {
        let mut s = String::new();
        self.display_into(t, &mut s);
        s
    }

    fn display_into(&self, t: TermId, out: &mut String) {
        use std::fmt::Write;
        let node = self.nodes[t.index()];
        let bin = |op: &str, a: TermId, b: TermId, out: &mut String, me: &Self| {
            out.push('(');
            out.push_str(op);
            out.push(' ');
            me.display_into(a, out);
            out.push(' ');
            me.display_into(b, out);
            out.push(')');
        };
        match node.op {
            Op::Var(v) => {
                let _ = write!(out, "{}:{}", self.var_name(v), node.width);
            }
            Op::Const(c) => {
                let _ = write!(out, "{:#x}:{}", c, node.width);
            }
            Op::Not(a) => {
                out.push_str("(not ");
                self.display_into(a, out);
                out.push(')');
            }
            Op::Neg(a) => {
                out.push_str("(neg ");
                self.display_into(a, out);
                out.push(')');
            }
            Op::And(a, b) => bin("and", a, b, out, self),
            Op::Or(a, b) => bin("or", a, b, out, self),
            Op::Xor(a, b) => bin("xor", a, b, out, self),
            Op::Add(a, b) => bin("add", a, b, out, self),
            Op::Sub(a, b) => bin("sub", a, b, out, self),
            Op::Mul(a, b) => bin("mul", a, b, out, self),
            Op::UDiv(a, b) => bin("udiv", a, b, out, self),
            Op::URem(a, b) => bin("urem", a, b, out, self),
            Op::Shl(a, b) => bin("shl", a, b, out, self),
            Op::LShr(a, b) => bin("lshr", a, b, out, self),
            Op::AShr(a, b) => bin("ashr", a, b, out, self),
            Op::Eq(a, b) => bin("=", a, b, out, self),
            Op::Ult(a, b) => bin("ult", a, b, out, self),
            Op::Slt(a, b) => bin("slt", a, b, out, self),
            Op::Ite(c, a, b) => {
                out.push_str("(ite ");
                self.display_into(c, out);
                out.push(' ');
                self.display_into(a, out);
                out.push(' ');
                self.display_into(b, out);
                out.push(')');
            }
            Op::Extract(a, hi, lo) => {
                let _ = write!(out, "(extract[{hi}:{lo}] ");
                self.display_into(a, out);
                out.push(')');
            }
            Op::Concat(a, b) => bin("concat", a, b, out, self),
            Op::ZExt(a) => {
                let _ = write!(out, "(zext{} ", node.width);
                self.display_into(a, out);
                out.push(')');
            }
            Op::SExt(a) => {
                let _ = write!(out, "(sext{} ", node.width);
                self.display_into(a, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_masks_to_width() {
        let mut p = TermPool::new();
        let c = p.constant(8, 0x1ff);
        assert_eq!(p.as_const(c), Some(0xff));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.var(32, "a");
        let b = p.var(32, "b");
        let s1 = p.add(a, b);
        let s2 = p.add(b, a); // commutative normalization
        assert_eq!(s1, s2);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn folding_arith() {
        let mut p = TermPool::new();
        let x = p.constant(16, 0xfff0);
        let y = p.constant(16, 0x0020);
        let add = p.add(x, y);
        assert_eq!(p.as_const(add), Some(0x0010));
        let sub = p.sub(y, x);
        assert_eq!(p.as_const(sub), Some(0x0030));
        let mul = p.mul(x, y);
        assert_eq!(
            p.as_const(mul),
            Some(mask(16, 0xfff0u64.wrapping_mul(0x20)))
        );
    }

    #[test]
    fn division_by_zero_conventions() {
        let mut p = TermPool::new();
        let x = p.constant(8, 7);
        let z = p.constant(8, 0);
        let d = p.udiv(x, z);
        assert_eq!(p.as_const(d), Some(0xff));
        let r = p.urem(x, z);
        assert_eq!(p.as_const(r), Some(7));
    }

    #[test]
    fn shift_overflows_are_defined() {
        let mut p = TermPool::new();
        let x = p.constant(8, 0x81);
        let s = p.constant(8, 9);
        let shl = p.shl(x, s);
        assert_eq!(p.as_const(shl), Some(0));
        let lshr = p.lshr(x, s);
        assert_eq!(p.as_const(lshr), Some(0));
        let ashr = p.ashr(x, s);
        assert_eq!(p.as_const(ashr), Some(0xff));
    }

    #[test]
    fn extract_of_concat_simplifies() {
        let mut p = TermPool::new();
        let a = p.var(8, "a");
        let b = p.var(8, "b");
        let c = p.concat(a, b);
        assert_eq!(p.extract(c, 7, 0), b);
        assert_eq!(p.extract(c, 15, 8), a);
    }

    #[test]
    fn eval_matches_folding() {
        let mut p = TermPool::new();
        let a = p.var(32, "a");
        let k = p.constant(32, 100);
        let t = p.sub(a, k);
        let zero = p.constant(32, 0);
        let cond = p.slt(t, zero);
        let mut env = HashMap::new();
        env.insert(VarId(0), 5u64);
        assert_eq!(p.eval(t, &env), mask(32, 5u64.wrapping_sub(100)));
        assert_eq!(p.eval(cond, &env), 1);
        env.insert(VarId(0), 200u64);
        assert_eq!(p.eval(cond, &env), 0);
    }

    #[test]
    fn substitution_instantiates_summaries() {
        let mut p = TermPool::new();
        let x = p.var(32, "x");
        let one = p.constant(32, 1);
        let body = p.add(x, one); // x + 1
        let a = p.var(32, "a");
        let two = p.constant(32, 2);
        let arg = p.mul(a, two);
        let mut map = HashMap::new();
        map.insert(VarId(0), arg);
        let inst = p.substitute(body, &map);
        let mut env = HashMap::new();
        env.insert(VarId(1), 21u64);
        assert_eq!(p.eval(inst, &env), 43);
    }

    #[test]
    fn variables_of_collects_unique_sorted() {
        let mut p = TermPool::new();
        let a = p.var(8, "a");
        let b = p.var(8, "b");
        let t1 = p.add(a, b);
        let t = p.xor(t1, a);
        assert_eq!(p.variables_of(t), vec![VarId(0), VarId(1)]);
    }

    #[test]
    fn sext_fold() {
        let mut p = TermPool::new();
        let x = p.constant(8, 0x80);
        let s = p.sext(x, 32);
        assert_eq!(p.as_const(s), Some(0xffff_ff80));
        let z = p.zext(x, 32);
        assert_eq!(p.as_const(z), Some(0x80));
    }
}
