//! Per-query provenance: *which pipeline stage* issued a solver query, for
//! *which guest instruction*, on *which explored path*.
//!
//! The paper's cost story (§6, E6) is solver-dominated, and the repo's own
//! e7 inversion (summaries slower than no summaries) is invisible in a
//! single `solver.queries` counter. This module threads the attribution
//! through thread-locals so [`crate::BvSolver::check`] can bill every query
//! to its origin without changing any call signature:
//!
//! * **origin** — the issuing stage, one of [`ORIGINS`]. Scoped RAII
//!   ([`scoped`]): the symx engine marks feasibility checks, path-end model
//!   extraction, and pick-cache queries; the explore layer marks
//!   minimization; summary construction overrides whatever is beneath it.
//! * **instruction context** — the hex bytes of the instruction being
//!   explored ([`insn_scoped`]), set once per `explore_state_space` call.
//! * **path id** — the PR-3 FNV-1a path hash ([`set_path_id`]), updated by
//!   the engine as branch decisions accumulate.
//!
//! The billing itself is deterministic (counters keyed by a fixed label
//! set); per-origin *latency* lands in the nondeterministic timer
//! namespace, gated on `pokemu_rt::prof::timing_enabled()`.

use std::cell::{Cell, RefCell};

use pokemu_rt::metrics;

/// The closed set of query origins. `other` is the fallback for queries
/// issued outside any scope (unit tests, ad-hoc tooling).
pub const ORIGINS: [&str; 6] = [
    "feasibility",
    "model",
    "pick",
    "summary",
    "minimize",
    "other",
];

thread_local! {
    static ORIGIN: Cell<&'static str> = const { Cell::new("other") };
    static INSN: RefCell<String> = const { RefCell::new(String::new()) };
    static PATH_ID: Cell<u64> = const { Cell::new(0) };
}

/// Pre-resolved per-origin counter and timer handles. The counter is the
/// deterministic half (`solver.queries.<origin>`); the timer
/// (`solver.ns.<origin>`) accumulates wall time and is only fed when
/// timing is enabled.
pub(crate) fn handles(origin: &str) -> (metrics::Counter, metrics::Timer) {
    match origin {
        "feasibility" => (
            metrics::counter("solver.queries.feasibility"),
            metrics::timer("solver.ns.feasibility"),
        ),
        "model" => (
            metrics::counter("solver.queries.model"),
            metrics::timer("solver.ns.model"),
        ),
        "pick" => (
            metrics::counter("solver.queries.pick"),
            metrics::timer("solver.ns.pick"),
        ),
        "summary" => (
            metrics::counter("solver.queries.summary"),
            metrics::timer("solver.ns.summary"),
        ),
        "minimize" => (
            metrics::counter("solver.queries.minimize"),
            metrics::timer("solver.ns.minimize"),
        ),
        _ => (
            metrics::counter("solver.queries.other"),
            metrics::timer("solver.ns.other"),
        ),
    }
}

/// RAII guard restoring the previous origin label on drop.
#[derive(Debug)]
pub struct OriginScope {
    prev: &'static str,
}

/// Marks solver queries issued while the guard lives as coming from
/// `label` (use one of [`ORIGINS`]; unknown labels bill to `other`).
pub fn scoped(label: &'static str) -> OriginScope {
    let prev = ORIGIN.with(|o| o.replace(label));
    OriginScope { prev }
}

impl Drop for OriginScope {
    fn drop(&mut self) {
        ORIGIN.with(|o| o.set(self.prev));
    }
}

/// The current thread's origin label.
pub fn current() -> &'static str {
    ORIGIN.with(Cell::get)
}

/// RAII guard restoring the previous instruction context on drop.
#[derive(Debug)]
pub struct InsnScope {
    prev: String,
}

/// Sets the instruction-hex context for queries issued while the guard
/// lives (the explore layer wraps each `explore_state_space` call).
pub fn insn_scoped(hex: impl Into<String>) -> InsnScope {
    let prev = INSN.with(|i| std::mem::replace(&mut *i.borrow_mut(), hex.into()));
    InsnScope { prev }
}

impl Drop for InsnScope {
    fn drop(&mut self) {
        INSN.with(|i| *i.borrow_mut() = std::mem::take(&mut self.prev));
    }
}

/// The current thread's instruction-hex context (empty outside a scope).
pub fn current_insn() -> String {
    INSN.with(|i| i.borrow().clone())
}

/// Records the explored path the next queries belong to (the engine's
/// running FNV-1a path hash; 0 = no path).
pub fn set_path_id(id: u64) {
    PATH_ID.with(|p| p.set(id));
}

/// The current thread's path id.
pub fn current_path_id() -> u64 {
    PATH_ID.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current(), "other");
        {
            let _a = scoped("feasibility");
            assert_eq!(current(), "feasibility");
            {
                let _b = scoped("summary");
                assert_eq!(current(), "summary");
            }
            assert_eq!(current(), "feasibility");
        }
        assert_eq!(current(), "other");
    }

    #[test]
    fn insn_context_and_path_id_are_thread_local() {
        let _i = insn_scoped("8ed8");
        set_path_id(0xdead);
        assert_eq!(current_insn(), "8ed8");
        assert_eq!(current_path_id(), 0xdead);
        std::thread::spawn(|| {
            assert_eq!(current_insn(), "", "fresh thread has no context");
            assert_eq!(current_path_id(), 0);
        })
        .join()
        .unwrap();
        set_path_id(0);
    }

    #[test]
    fn every_origin_has_handles() {
        for o in ORIGINS {
            let (c, t) = handles(o);
            let _ = (c.get(), t.get_ns());
        }
    }
}
