//! A compact CDCL SAT solver.
//!
//! This is the decision-procedure core underneath the bit-vector layer: a
//! conflict-driven clause-learning solver with two-literal watching, 1UIP
//! conflict analysis, VSIDS-style variable activity, phase saving, and Luby
//! restarts. It supports incremental solving under *assumptions*, which is how
//! the symbolic execution engine asks "is this path condition still feasible?"
//! thousands of times while sharing all learned clauses across queries
//! (the paper's use of Z3's incremental mode, §3.1.2).
//!
//! The solver is deliberately small: PokeEMU's formulas are dominated by many
//! cheap queries rather than few hard ones ("most queries completing in a
//! fraction of a second", §3.1.2), so engineering effort goes into the
//! incremental interface rather than preprocessing.

/// A propositional variable, identified by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(pub u32);

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: SatVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: SatVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(v: SatVar, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// `true` when this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

/// Three-valued assignment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// Outcome of a [`Sat::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Sat::model_value`].
    Sat,
    /// Unsatisfiable under the given assumptions (or globally, if none).
    Unsat,
    /// The query was abandoned before an answer: its [`SolveBudget`] ran
    /// out (conflict fuel or wall deadline) or a fault was injected.
    /// Callers must treat this as "don't know", never as either verdict —
    /// the symbolic engine prunes the branch and counts it.
    Unknown,
}

/// Per-query resource budget for [`Sat::solve_budgeted`]: exceeding either
/// limit yields [`SatResult::Unknown`] instead of running unbounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveBudget {
    /// Wall-clock deadline; checked before the search starts and at every
    /// conflict, so an over-deadline query stops at the next conflict.
    pub deadline: Option<std::time::Instant>,
    /// Maximum conflicts for this query ("fuel").
    pub max_conflicts: Option<u64>,
}

impl SolveBudget {
    /// Whether any limit is actually set.
    pub fn is_bounded(&self) -> bool {
        self.deadline.is_some() || self.max_conflicts.is_some()
    }
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Max-heap over variable activities, used for branching decisions.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<SatVar>,
    pos: Vec<i32>, // -1 when absent
}

impl VarOrder {
    fn grow(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(-1);
        }
    }

    fn contains(&self, v: SatVar) -> bool {
        self.pos[v.0 as usize] >= 0
    }

    fn insert(&mut self, v: SatVar, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v.0 as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop_max(&mut self, act: &[f64]) -> Option<SatVar> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top.0 as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.0 as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: SatVar, act: &[f64]) {
        if let Ok(i) = usize::try_from(self.pos[v.0 as usize]) {
            self.sift_up(i, act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].0 as usize] <= act[self.heap[parent].0 as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].0 as usize] > act[self.heap[best].0 as usize]
            {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].0 as usize] > act[self.heap[best].0 as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].0 as usize] = i as i32;
        self.pos[self.heap[j].0 as usize] = j as i32;
    }
}

/// Statistics counters exposed for the cost-breakdown experiment (E6).
#[derive(Debug, Default, Clone, Copy)]
pub struct SatStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Total conflicts across all solves.
    pub conflicts: u64,
    /// Total decisions across all solves.
    pub decisions: u64,
    /// Total unit propagations across all solves.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use pokemu_solver::sat::{Lit, Sat, SatResult};
///
/// let mut s = Sat::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(&[]), SatResult::Sat);
/// assert!(s.model_value(b));
/// // Under the assumption ¬b the instance is unsatisfiable:
/// assert_eq!(s.solve(&[Lit::neg(b)]), SatResult::Unsat);
/// ```
#[derive(Debug, Default)]
pub struct Sat {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<i64>, // -1 = decision/none
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    seen: Vec<bool>,
    ok: bool,
    stats: SatStats,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;

impl Sat {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Sat {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(-1);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    fn value_var(&self, v: SatVar) -> LBool {
        self.assigns[v.0 as usize]
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.value_var(l.var()) {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_pos() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_pos() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the instance became trivially
    /// unsatisfiable (an empty clause at level 0).
    ///
    /// Adding a clause invalidates the model of a previous `solve` call.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedup, drop false literals, detect tautology.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut i = 0;
        while i < c.len() {
            if i + 1 < c.len() && c[i].var() == c[i + 1].var() {
                return true; // tautology x ∨ ¬x
            }
            match self.value_lit(c[i]) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {
                    c.remove(i);
                }
                LBool::Undef => i += 1,
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], -1);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(c);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>) -> u32 {
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watch {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watch {
            clause: cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause { lits });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: i64) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assigns[v] = if l.is_pos() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v] = l.is_pos();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negate();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause as usize;
                // Maintain invariant: the false literal sits at position 1.
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        let new_watch = self.clauses[cref].lits[1];
                        self.watches[new_watch.code()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    conflict = Some(w.clause);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, w.clause as i64);
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn bump(&mut self, v: SatVar) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > RESCALE_LIMIT {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// 1UIP conflict analysis. Returns the learned clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let cur_level = self.decision_level();
        loop {
            let start = usize::from(p.is_some());
            let lits_len = self.clauses[confl as usize].lits.len();
            for k in start..lits_len {
                let q = self.clauses[confl as usize].lits[k];
                let v = q.var();
                let vi = v.0 as usize;
                if !self.seen[vi] && self.level[vi] > 0 {
                    self.seen[vi] = true;
                    self.bump(v);
                    if self.level[vi] >= cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to expand.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var().0 as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            confl = u32::try_from(self.reason[v]).expect("implied literal must have a reason");
            p = Some(pl);
        }
        learnt[0] = p.expect("asserting literal").negate();
        // Clear seen flags for the remaining learned literals.
        for &l in &learnt[1..] {
            self.seen[l.var().0 as usize] = false;
        }
        // Backtrack level: highest level among learnt[1..]; watch that literal.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().0 as usize]
                    > self.level[learnt[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().0 as usize]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.assigns[v.0 as usize] = LBool::Undef;
            self.reason[v.0 as usize] = -1;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = lim;
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.value_var(v) == LBool::Undef {
                return Some(Lit::new(v, self.phase[v.0 as usize]));
            }
        }
        None
    }

    /// Luby sequence value for restart scheduling (0-indexed).
    fn luby(i: u64) -> u64 {
        let mut i = i + 1;
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Decides satisfiability under `assumptions`.
    ///
    /// Learned clauses persist across calls, making repeated feasibility
    /// queries on growing path conditions cheap. After [`SatResult::Sat`],
    /// [`Sat::model_value`] reads the satisfying assignment.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_budgeted(assumptions, None)
    }

    /// [`Sat::solve`] with an optional per-query [`SolveBudget`].
    ///
    /// When the budget's conflict fuel or wall deadline is exhausted the
    /// search backtracks to level 0 and returns [`SatResult::Unknown`]. The
    /// solver stays usable — learned clauses are kept and later (possibly
    /// better-funded) queries run normally.
    pub fn solve_budgeted(
        &mut self,
        assumptions: &[Lit],
        budget: Option<&SolveBudget>,
    ) -> SatResult {
        self.stats.solves += 1;
        self.backtrack(0);
        if !self.ok {
            return SatResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        // An already-expired deadline gives up before searching, so a
        // latency fault upstream degrades even trivially easy queries.
        if let Some(b) = budget {
            if b.max_conflicts == Some(0)
                || b.deadline.is_some_and(|d| std::time::Instant::now() >= d)
            {
                return SatResult::Unknown;
            }
        }
        let mut conflicts_this_solve = 0u64;
        let mut conflicts_this_restart = 0u64;
        let mut restart_no = 0u64;
        let mut restart_budget = 100 * Self::luby(restart_no);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_solve += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    // A root-level conflict is a definite Unsat; report it
                    // even when the budget ran out on this very conflict.
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if let Some(b) = budget {
                    if b.max_conflicts.is_some_and(|m| conflicts_this_solve > m)
                        || b.deadline.is_some_and(|d| std::time::Instant::now() >= d)
                    {
                        self.backtrack(0);
                        return SatResult::Unknown;
                    }
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], -1);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach(learnt);
                    self.enqueue(asserting, cref as i64);
                }
                self.var_inc *= VAR_DECAY;
                if conflicts_this_restart >= restart_budget {
                    self.stats.restarts += 1;
                    restart_no += 1;
                    restart_budget = 100 * Self::luby(restart_no);
                    conflicts_this_restart = 0;
                    self.backtrack(0);
                }
            } else {
                // Assumption decisions first.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            // Conflicts with previous assumptions/clauses.
                            self.backtrack(0);
                            return SatResult::Unsat;
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                if next.is_none() {
                    next = self.pick_branch();
                }
                match next {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.new_decision_level();
                        self.enqueue(l, -1);
                    }
                }
            }
        }
    }

    /// The value of `v` in the most recent satisfying assignment.
    ///
    /// Unassigned variables (possible after `Sat` when a variable is not
    /// constrained) read as `false`.
    pub fn model_value(&self, v: SatVar) -> bool {
        matches!(self.value_var(v), LBool::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Sat, i: usize, pos: bool, vars: &mut Vec<SatVar>) -> Lit {
        while vars.len() <= i {
            vars.push(s.new_var());
        }
        Lit::new(vars[i], pos)
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Sat::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert!(s.model_value(a));
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_pollute() {
        let mut s = Sat::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        assert_eq!(s.solve(&[Lit::neg(a), Lit::neg(b)]), SatResult::Unsat);
        // Still satisfiable without the assumptions.
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.solve(&[Lit::neg(a)]), SatResult::Sat);
        assert!(s.model_value(b));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Classic small UNSAT instance that
        // requires real conflict analysis.
        let mut s = Sat::new();
        let mut p = [[SatVar(0); 2]; 3];
        for row in &mut p {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn exhausted_fuel_returns_unknown_and_solver_stays_usable() {
        // Pigeonhole 4-into-3 needs plenty of conflicts; zero fuel must give
        // up as Unknown without poisoning the solver for later queries.
        let mut s = Sat::new();
        let mut p = [[SatVar(0); 3]; 4];
        for row in &mut p {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1]), Lit::pos(row[2])]);
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        let starved = SolveBudget {
            deadline: None,
            max_conflicts: Some(0),
        };
        assert_eq!(s.solve_budgeted(&[], Some(&starved)), SatResult::Unknown);
        // Unbudgeted retry still reaches the definite answer.
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn expired_deadline_returns_unknown_on_easy_queries() {
        let mut s = Sat::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        let expired = SolveBudget {
            deadline: Some(std::time::Instant::now()),
            max_conflicts: None,
        };
        assert_eq!(s.solve_budgeted(&[], Some(&expired)), SatResult::Unknown);
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn chain_implications_propagate() {
        let mut s = Sat::new();
        let mut vars = Vec::new();
        let n = 50;
        for i in 0..n - 1 {
            let a = lit(&mut s, i, false, &mut vars);
            let b = lit(&mut s, i + 1, true, &mut vars);
            s.add_clause(&[a, b]); // v_i -> v_{i+1}
        }
        let first = Lit::pos(vars[0]);
        assert_eq!(s.solve(&[first]), SatResult::Sat);
        for v in &vars {
            assert!(s.model_value(*v));
        }
        let last_neg = Lit::neg(vars[n - 2]);
        assert_eq!(s.solve(&[first, last_neg]), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        let mut rng = pokemu_rt::Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..60 {
            let nvars = rng.gen_range(3..=8usize);
            let nclauses = rng.gen_range(1..=24usize);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..nvars);
                    let p: bool = rng.gen();
                    c.push((v, p));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'assign: for m in 0u32..(1 << nvars) {
                for c in &clauses {
                    if !c.iter().any(|&(v, p)| ((m >> v) & 1 == 1) == p) {
                        continue 'assign;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Sat::new();
            let vars: Vec<SatVar> = (0..nvars).map(|_| s.new_var()).collect();
            let mut ok = true;
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&(v, p)| Lit::new(vars[v], p)).collect();
                ok &= s.add_clause(&lits);
            }
            let got = if !ok { SatResult::Unsat } else { s.solve(&[]) };
            assert_eq!(got == SatResult::Sat, brute_sat, "mismatch on {clauses:?}");
            if got == SatResult::Sat {
                // Verify the model actually satisfies all clauses.
                for c in &clauses {
                    assert!(c.iter().any(|&(v, p)| s.model_value(vars[v]) == p));
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Sat::luby(i as u64), e, "luby({i})");
        }
    }
}
