//! # pokemu-solver
//!
//! A from-scratch quantifier-free bit-vector decision procedure, standing in
//! for STP and Z3 in the PokeEMU-rs reproduction of *"Path-Exploration
//! Lifting: Hi-Fi Tests for Lo-Fi Emulators"* (ASPLOS 2012).
//!
//! The crate has three layers:
//!
//! * [`term`] — hash-consed, constant-folding bit-vector terms ([`TermPool`]).
//! * [`blast`] — incremental bit-blasting of terms to CNF ([`blast::Blaster`]).
//! * [`sat`] — a CDCL SAT core with assumptions ([`sat::Sat`]).
//!
//! [`BvSolver`] ties them together into the interface the symbolic execution
//! engine consumes: incremental satisfiability of path conditions plus model
//! extraction.
//!
//! ## Example
//!
//! ```
//! use pokemu_solver::{BvSolver, TermPool};
//!
//! let mut pool = TermPool::new();
//! let mut solver = BvSolver::new();
//!
//! // "x - 15 == 0" — the running example from the paper's §3.1.2.
//! let x = pool.var(32, "x");
//! let k = pool.constant(32, 15);
//! let diff = pool.sub(x, k);
//! let zero = pool.constant(32, 0);
//! let cond = pool.eq(diff, zero);
//!
//! let model = solver.check_with_model(&pool, &[cond]).expect("feasible");
//! assert_eq!(model.value_or(pool.variables_of(x)[0], 0), 15);
//!
//! // The negated branch is feasible too, with any other value.
//! let ncond = pool.not(cond);
//! let model = solver.check_with_model(&pool, &[ncond]).expect("feasible");
//! assert_ne!(model.value_or(pool.variables_of(x)[0], 15), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod origin;
pub mod sat;
pub mod solver;
pub mod term;

pub use sat::{SatResult, SolveBudget};
pub use solver::{BvSolver, Model, SolverStats, SOLVER_DEADLINE_ENV, SOLVER_FUEL_ENV};
pub use term::{mask, sext64, Op, TermId, TermPool, VarId, Width, MAX_WIDTH};
