//! # pokemu-hifi
//!
//! The **Hi-Fi emulator** — the Bochs analogue of the PokeEMU-rs
//! reproduction: a straightforward, complete interpreter for the VX86 guest
//! ISA. Its instruction semantics are the reference interpreter from
//! `pokemu-isa` instantiated at the concrete domain with
//! [`pokemu_isa::Quirks::HIFI`]: complete like Bochs, with Bochs's two
//! documented benign deviations (cleared undefined flags, and far-pointer
//! operands fetched selector-first — the `lfs` fetch-order difference of
//! paper §6.2).
//!
//! Because the same interpreter code also runs under symbolic execution,
//! this emulator *is* the artifact that path-exploration lifting explores
//! (paper §3): exploration in `pokemu-explore` symbolically executes exactly
//! the semantics this crate executes concretely.
//!
//! Mirroring the paper's instrumentation needs (§5.1), the run loop
//! intercepts halts and exceptions (the baseline IDT routes everything to
//! halting handlers), suppresses hardware interrupts after baseline
//! initialization, and snapshots CPU + memory state through the emulator's
//! own state access API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pokemu_isa::interp::{self, Quirks, StepOutcome};
use pokemu_isa::snapshot::{Outcome, Snapshot};
use pokemu_isa::state::Machine;
use pokemu_isa::Exception;
use pokemu_symx::{CVal, Concrete};

/// Why a [`HiFi::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `hlt` retired.
    Halted,
    /// An exception was intercepted (would dispatch to a halting handler).
    Exception(Exception),
    /// The step budget was exhausted.
    StepLimit,
}

impl RunExit {
    /// Converts to the snapshot outcome encoding.
    pub fn outcome(self) -> Outcome {
        match self {
            RunExit::Halted => Outcome::Halted,
            RunExit::Exception(e) => Outcome::Exception {
                vector: e.vector(),
                error: e.error_code(),
            },
            RunExit::StepLimit => Outcome::Timeout,
        }
    }
}

/// The Hi-Fi interpreter-based emulator.
///
/// # Examples
///
/// ```
/// use pokemu_hifi::HiFi;
///
/// let mut emu = HiFi::new();
/// // mov eax, 5; hlt — on a machine that is not yet configured this fetch
/// // faults; real use goes through the pokemu-testgen baseline image.
/// let exit = emu.run(16);
/// let snap = emu.snapshot(exit);
/// assert_eq!(snap.eip, 0);
/// ```
#[derive(Debug)]
pub struct HiFi {
    dom: Concrete,
    machine: Machine<CVal>,
    quirks: Quirks,
    steps_executed: u64,
}

impl Default for HiFi {
    fn default() -> Self {
        Self::new()
    }
}

impl HiFi {
    /// Creates an emulator with a zeroed machine.
    pub fn new() -> Self {
        let mut dom = Concrete::new();
        let machine = Machine::zeroed(&mut dom);
        HiFi {
            dom,
            machine,
            quirks: Quirks::HIFI,
            steps_executed: 0,
        }
    }

    /// Overrides the quirk profile (tests use this to make the Hi-Fi
    /// emulator behave exactly like hardware).
    pub fn with_quirks(mut self, quirks: Quirks) -> Self {
        self.quirks = quirks;
        self
    }

    /// The guest machine (the emulator's state-access API, used by the
    /// baseline initializer and instrumentation).
    pub fn machine(&self) -> &Machine<CVal> {
        &self.machine
    }

    /// Mutable access to the guest machine.
    pub fn machine_mut(&mut self) -> &mut Machine<CVal> {
        &mut self.machine
    }

    /// The concrete domain paired with the machine.
    pub fn dom_mut(&mut self) -> &mut Concrete {
        &mut self.dom
    }

    /// Splits mutable access to domain and machine (for state setup code
    /// that needs both).
    pub fn parts_mut(&mut self) -> (&mut Concrete, &mut Machine<CVal>) {
        (&mut self.dom, &mut self.machine)
    }

    /// Loads raw bytes into physical memory.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) {
        self.machine.mem.load_bytes(&mut self.dom, addr, bytes);
    }

    /// Sets the instruction pointer.
    pub fn set_eip(&mut self, eip: u32) {
        self.machine.eip = eip;
    }

    /// Instructions retired so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> StepOutcome {
        self.steps_executed += 1;
        interp::step(&mut self.dom, &mut self.machine, &self.quirks)
    }

    /// Runs until halt, exception, or the step budget expires.
    ///
    /// Hardware interrupts are never delivered — the harness disables them
    /// after baseline initialization (paper §5.1), and this machine model
    /// has no interrupt sources.
    pub fn run(&mut self, max_steps: u64) -> RunExit {
        for _ in 0..max_steps {
            match self.step() {
                StepOutcome::Normal => {}
                StepOutcome::Halt => return RunExit::Halted,
                StepOutcome::Exception(e) => return RunExit::Exception(e),
            }
        }
        RunExit::StepLimit
    }

    /// Snapshots the CPU and physical memory (paper §5.1).
    pub fn snapshot(&mut self, exit: RunExit) -> Snapshot {
        Snapshot::capture(&mut self.dom, &self.machine, exit.outcome())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_machine_faults_on_fetch() {
        // Zeroed machine: CS descriptor cache is not present -> #GP on fetch.
        let mut emu = HiFi::new();
        let exit = emu.run(4);
        assert!(matches!(exit, RunExit::Exception(Exception::Gp(0))));
    }

    #[test]
    fn snapshot_reflects_memory_writes() {
        let mut emu = HiFi::new();
        emu.load_image(0x100, &[0xaa, 0x00, 0xbb]);
        let snap = emu.snapshot(RunExit::Halted);
        assert_eq!(snap.mem.get(&0x100), Some(&0xaa));
        assert_eq!(snap.mem.get(&0x101), None, "zero bytes are omitted");
        assert_eq!(snap.mem.get(&0x102), Some(&0xbb));
        assert_eq!(snap.outcome, Outcome::Halted);
    }
}
