//! # pokemu-lofi
//!
//! The **Lo-Fi emulator** — the QEMU analogue of the PokeEMU-rs
//! reproduction: a dynamic binary translator for the VX86 guest ISA.
//!
//! Architecture (mirroring QEMU 0.14's, the version the paper tests):
//!
//! * a translator lowers guest instructions to a micro-op IR
//!   ([`uop`], [`translate`]);
//! * translated blocks are cached and invalidated on self-modifying writes
//!   ([`Lofi`]);
//! * a softmmu with a TLB serves memory accesses through a *fast path that
//!   skips segmentation checks* ([`mmu`]);
//! * EFLAGS are lazy ([`state::CcState`]), materialized on demand;
//! * complex instructions run as out-of-line helpers ([`exec`]).
//!
//! The fidelity gaps the paper's evaluation finds in QEMU (§6.2) are
//! *consequences of this architecture*, reproduced here structurally:
//! missing segment limit/rights enforcement (fast path), non-atomic `leave`
//! and `cmpxchg` (eager micro-op commit), `rdmsr` without the invalid-MSR
//! #GP, reversed `iret` pop order, missing descriptor accessed-bit updates,
//! rejected undocumented encodings, and lazy-flag values for
//! architecturally-undefined flags. Each gap has a fix switch in
//! [`Fidelity`] so the ablation experiment can validate the generated tests
//! against a repaired emulator ("the test programs we have generated can be
//! used again in the future to validate the implementation", §6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod mmu;
pub mod state;
pub mod translate;
pub mod uop;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use pokemu_isa::snapshot::{Outcome, SegSnapshot, Snapshot};
use pokemu_isa::state::Exception;
use pokemu_rt::metrics;

pub use exec::{Core, TbExit};
pub use state::{Fidelity, LofiMachine};
pub use translate::Tb;

/// Why a [`Lofi::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// `hlt` retired.
    Halted,
    /// An exception was intercepted.
    Exception(Exception),
    /// The step budget was exhausted.
    StepLimit,
}

impl RunExit {
    /// Converts to the snapshot outcome encoding.
    pub fn outcome(self) -> Outcome {
        match self {
            RunExit::Halted => Outcome::Halted,
            RunExit::Exception(e) => Outcome::Exception {
                vector: e.vector(),
                error: e.error_code(),
            },
            RunExit::StepLimit => Outcome::Timeout,
        }
    }
}

/// Execution statistics (translation-block behavior, for the performance
/// benches).
#[derive(Debug, Default, Clone, Copy)]
pub struct LofiStats {
    /// Blocks translated.
    pub translations: u64,
    /// Block executions served from the cache.
    pub cache_hits: u64,
    /// Blocks invalidated by guest writes.
    pub invalidations: u64,
    /// Guest instructions executed (approximate: per-block counts).
    pub insns: u64,
}

/// Pre-resolved metric handles for the dispatch loop: one relaxed atomic
/// add per event, resolved once at construction (the hot-path idiom the
/// solver and symx engine use). All of these are *counters* — pure
/// functions of the executed programs — so they stay inside the
/// deterministic-replay byte-identity contract.
#[derive(Debug, Clone, Copy)]
struct LofiMetrics {
    /// Dispatches served from the TB cache.
    tb_hits: metrics::Counter,
    /// Dispatches that had to translate (cache miss).
    tb_misses: metrics::Counter,
    /// TBs invalidated by guest writes.
    invalidations: metrics::Counter,
    /// Guest instructions executed (per-block counts).
    insns: metrics::Counter,
    /// Block exits that chained to the next TB.
    exit_next: metrics::Counter,
    /// Block exits via `hlt`.
    exit_halt: metrics::Counter,
    /// Block exits via guest exception.
    exit_fault: metrics::Counter,
    /// `run` calls that returned [`RunExit::Halted`].
    run_halted: metrics::Counter,
    /// `run` calls that returned [`RunExit::Exception`].
    run_exception: metrics::Counter,
    /// `run` calls that exhausted the block budget.
    run_step_limit: metrics::Counter,
}

impl LofiMetrics {
    fn new() -> Self {
        LofiMetrics {
            tb_hits: metrics::counter("lofi.tb_lookup.hits"),
            tb_misses: metrics::counter("lofi.tb_lookup.misses"),
            invalidations: metrics::counter("lofi.tb.invalidations"),
            insns: metrics::counter("lofi.insns"),
            exit_next: metrics::counter("lofi.tb_exit.next"),
            exit_halt: metrics::counter("lofi.tb_exit.halt"),
            exit_fault: metrics::counter("lofi.tb_exit.fault"),
            run_halted: metrics::counter("lofi.run_exit.halted"),
            run_exception: metrics::counter("lofi.run_exit.exception"),
            run_step_limit: metrics::counter("lofi.run_exit.step_limit"),
        }
    }
}

/// Process-global per-TB execution counts, merged from each [`Lofi`]
/// instance when it drops. Keyed by TB entry `eip`; the pipeline dumps the
/// top entries next to the trace export so `pokemu-report perf` can rank
/// hot translation blocks.
fn hot_registry() -> &'static Mutex<HashMap<u32, u64>> {
    static HOT: OnceLock<Mutex<HashMap<u32, u64>>> = OnceLock::new();
    HOT.get_or_init(Mutex::default)
}

/// Per-TB execution counts accumulated so far, hottest first (count
/// descending, entry `eip` ascending on ties, so the order is
/// deterministic for deterministic workloads). Instances still alive have
/// not merged yet — [`Lofi::run`] data lands here on drop.
pub fn hot_tbs() -> Vec<(u32, u64)> {
    let reg = hot_registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut v: Vec<(u32, u64)> = reg.iter().map(|(&eip, &n)| (eip, n)).collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Clears the hot-TB table (bench/test hook for delta measurements).
pub fn reset_hot_tbs() {
    hot_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// The Lo-Fi dynamic binary translator.
///
/// # Examples
///
/// ```
/// use pokemu_lofi::{Fidelity, Lofi};
///
/// let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
/// // Zero-filled RAM decodes as `add [eax], al`; with no segment checks on
/// // the fast path, the Lo-Fi emulator happily churns through it until the
/// // block budget runs out — the Hi-Fi emulator would fault the fetch.
/// let exit = emu.run(16);
/// assert_eq!(exit, pokemu_lofi::RunExit::StepLimit);
/// ```
#[derive(Debug)]
pub struct Lofi {
    core: Core,
    tbs: HashMap<u32, Tb>,
    tbs_by_page: HashMap<u32, Vec<u32>>,
    stats: LofiStats,
    metrics: LofiMetrics,
    /// Executions per TB entry point for this instance; merged into the
    /// process-global [`hot_tbs`] table on drop.
    tb_execs: HashMap<u32, u64>,
    /// Maximum guest instructions per translation block.
    pub max_tb_insns: u32,
}

impl Drop for Lofi {
    fn drop(&mut self) {
        if self.tb_execs.is_empty() {
            return;
        }
        let mut reg = hot_registry().lock().unwrap_or_else(|e| e.into_inner());
        for (&eip, &n) in &self.tb_execs {
            *reg.entry(eip).or_default() += n;
        }
    }
}

impl Default for Lofi {
    fn default() -> Self {
        Self::new(Fidelity::QEMU_LIKE)
    }
}

impl Lofi {
    /// Creates an emulator with the given fidelity profile.
    pub fn new(fid: Fidelity) -> Self {
        Lofi {
            core: Core::new(fid),
            tbs: HashMap::new(),
            tbs_by_page: HashMap::new(),
            stats: LofiStats::default(),
            metrics: LofiMetrics::new(),
            tb_execs: HashMap::new(),
            max_tb_insns: 8,
        }
    }

    /// The guest machine state.
    pub fn machine(&self) -> &LofiMachine {
        &self.core.m
    }

    /// Mutable guest machine state (baseline initialization).
    pub fn machine_mut(&mut self) -> &mut LofiMachine {
        &mut self.core.m
    }

    /// Loads raw bytes into guest RAM.
    pub fn load_image(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let a = (addr as usize + i) % self.core.m.ram.len();
            self.core.m.ram[a] = b;
        }
    }

    /// Sets the instruction pointer.
    pub fn set_eip(&mut self, eip: u32) {
        self.core.m.eip = eip;
    }

    /// Execution statistics.
    pub fn stats(&self) -> LofiStats {
        self.stats
    }

    fn invalidate_dirty(&mut self) {
        if self.core.dirty_pages.is_empty() {
            return;
        }
        let pages = std::mem::take(&mut self.core.dirty_pages);
        for p in pages {
            if let Some(eips) = self.tbs_by_page.remove(&p) {
                for e in eips {
                    if self.tbs.remove(&e).is_some() {
                        self.stats.invalidations += 1;
                    }
                }
            }
        }
    }

    /// Runs until halt, exception, or the block budget expires.
    pub fn run(&mut self, max_blocks: u64) -> RunExit {
        for _ in 0..max_blocks {
            let eip = self.core.m.eip;
            if !self.tbs.contains_key(&eip) {
                self.metrics.tb_misses.inc();
                let tb = match translate::translate_block(
                    &mut self.core.m,
                    &mut self.core.tlb,
                    &self.core.fid,
                    eip,
                    self.max_tb_insns,
                ) {
                    Ok(tb) => tb,
                    Err(e) => {
                        self.metrics.run_exception.inc();
                        return RunExit::Exception(e);
                    }
                };
                self.stats.translations += 1;
                for page in (tb.start >> 12)..=(tb.end.wrapping_sub(1) >> 12) {
                    self.tbs_by_page.entry(page).or_default().push(eip);
                }
                self.tbs.insert(eip, tb);
            } else {
                self.stats.cache_hits += 1;
                self.metrics.tb_hits.inc();
            }
            let tb = self.tbs.get(&eip).expect("just inserted").clone();
            self.stats.insns += tb.insns as u64;
            self.metrics.insns.add(tb.insns as u64);
            *self.tb_execs.entry(eip).or_default() += 1;
            let exit = exec::exec_tb(&mut self.core, &tb);
            let invalidated_before = self.stats.invalidations;
            self.invalidate_dirty();
            self.metrics
                .invalidations
                .add(self.stats.invalidations - invalidated_before);
            match exit {
                TbExit::Next(next) => {
                    self.metrics.exit_next.inc();
                    self.core.m.eip = next;
                }
                TbExit::Halt => {
                    self.metrics.exit_halt.inc();
                    self.metrics.run_halted.inc();
                    return RunExit::Halted;
                }
                TbExit::Fault(e) => {
                    self.metrics.exit_fault.inc();
                    self.metrics.run_exception.inc();
                    return RunExit::Exception(e);
                }
            }
        }
        self.metrics.run_step_limit.inc();
        RunExit::StepLimit
    }

    /// Snapshots the guest into the common comparison format (§5.1).
    pub fn snapshot(&self, exit: RunExit) -> Snapshot {
        let m = &self.core.m;
        let mut segs = [SegSnapshot {
            selector: 0,
            base: 0,
            limit: 0,
            attrs: 0,
        }; 6];
        for (i, s) in m.segs.iter().enumerate() {
            segs[i] = SegSnapshot {
                selector: s.selector,
                base: s.base,
                limit: s.limit,
                attrs: s.attrs,
            };
        }
        let mut mem = std::collections::BTreeMap::new();
        for (addr, &b) in m.ram.iter().enumerate() {
            if b != 0 {
                mem.insert(addr as u32, b);
            }
        }
        Snapshot {
            gpr: m.gpr,
            eip: m.eip,
            eflags: m.eflags(),
            segs,
            cr0: m.cr0,
            cr2: m.cr2,
            cr3: m.cr3,
            cr4: m.cr4,
            gdtr: m.gdtr,
            idtr: m.idtr,
            mem,
            outcome: exit.outcome(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pokemu_isa::state::{attrs, cr0};

    fn flat(emu: &mut Lofi) {
        let m = emu.machine_mut();
        m.cr0 = 1 << cr0::PE;
        for i in 0..6 {
            let typ: u16 = if i == 1 { 0xb } else { 0x3 };
            m.segs[i] = state::LofiSeg {
                selector: ((i as u16) + 1) << 3,
                base: 0,
                limit: 0xffff_ffff,
                attrs: typ
                    | (1 << attrs::S as u16)
                    | (1 << attrs::P as u16)
                    | (1 << attrs::DB as u16),
            };
        }
        m.gpr[4] = 0x7000;
        m.eip = 0x1000;
    }

    #[test]
    fn basic_arithmetic_runs() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // mov eax, 41; add eax, 1; hlt
        emu.load_image(0x1000, &[0xb8, 41, 0, 0, 0, 0x83, 0xc0, 0x01, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.machine().gpr[0], 42);
    }

    #[test]
    fn tb_cache_hits_on_reexecution() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // A small loop: mov ecx, 5; L: dec ecx; jnz L; hlt
        emu.load_image(0x1000, &[0xb9, 5, 0, 0, 0, 0x49, 0x75, 0xfd, 0xf4]);
        let exit = emu.run(64);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(emu.machine().gpr[1], 0);
        assert!(emu.stats().cache_hits >= 3, "loop body must be cached");
    }

    #[test]
    fn dispatch_loop_attribution_counters_and_hot_tbs() {
        let before = pokemu_rt::metrics::snapshot();
        let loop_head = 0x1005u32;
        {
            let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
            flat(&mut emu);
            // mov ecx, 5; L: dec ecx; jnz L; hlt — the loop body re-enters
            // the same TB, so lookups hit and the TB gets hot.
            emu.load_image(0x1000, &[0xb9, 5, 0, 0, 0, 0x49, 0x75, 0xfd, 0xf4]);
            assert_eq!(emu.run(64), RunExit::Halted);
            let local = emu.tb_execs.clone();
            assert!(
                local.get(&loop_head).copied().unwrap_or(0) >= 4,
                "loop TB must dominate execution: {local:?}"
            );
        } // drop merges into the global hot table
        let delta = pokemu_rt::metrics::snapshot().since(&before);
        // Other tests run concurrently against the same process-global
        // counters, so these are floors, not exact counts.
        assert!(delta.counter("lofi.tb_lookup.hits") >= 3);
        assert!(delta.counter("lofi.tb_lookup.misses") >= 2);
        assert!(delta.counter("lofi.tb_exit.halt") >= 1);
        assert!(delta.counter("lofi.run_exit.halted") >= 1);
        assert!(delta.counter("lofi.insns") >= 10);
        let hot = hot_tbs();
        let loop_count = hot
            .iter()
            .find(|&&(eip, _)| eip == loop_head)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        assert!(
            loop_count >= 4,
            "dropped instance must merge its TB counts: {hot:?}"
        );
    }

    #[test]
    fn self_modifying_code_invalidates() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        // mov byte [0x1100], 0x42 ; jmp 0x1100 — the target page was
        // translated already by the first block, then written.
        // At 0x1100: initially hlt (0xf4); overwritten with inc edx (0x42).
        emu.load_image(
            0x1000,
            &[
                0xc6, 0x05, 0x00, 0x11, 0x00, 0x00, 0x42, 0xe9, 0xf4, 0x00, 0x00, 0x00,
            ],
        );
        emu.load_image(0x1100, &[0xf4, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(exit, RunExit::Halted);
        assert_eq!(
            emu.machine().gpr[2],
            1,
            "must execute the rewritten inc edx"
        );
    }

    #[test]
    fn segment_limit_not_enforced_by_default() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        emu.machine_mut().segs[3].limit = 0x10; // tiny DS
                                                // mov [0x2000], al ; hlt — far beyond the DS limit.
        emu.load_image(0x1000, &[0xa2, 0x00, 0x20, 0x00, 0x00, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(
            exit,
            RunExit::Halted,
            "Lo-Fi fast path skips the limit check"
        );

        let mut emu = Lofi::new(Fidelity {
            enforce_segment_checks: true,
            ..Fidelity::QEMU_LIKE
        });
        flat(&mut emu);
        emu.machine_mut().segs[3].limit = 0x10;
        emu.load_image(0x1000, &[0xa2, 0x00, 0x20, 0x00, 0x00, 0xf4]);
        let exit = emu.run(16);
        assert_eq!(
            exit,
            RunExit::Exception(Exception::Gp(0)),
            "fixed build enforces it"
        );
    }

    #[test]
    fn undocumented_encodings_rejected() {
        let mut emu = Lofi::new(Fidelity::QEMU_LIKE);
        flat(&mut emu);
        emu.load_image(0x1000, &[0xd6, 0xf4]); // salc
        assert_eq!(emu.run(4), RunExit::Exception(Exception::Ud));

        let mut emu = Lofi::new(Fidelity {
            accept_undocumented: true,
            ..Fidelity::QEMU_LIKE
        });
        flat(&mut emu);
        // stc; salc; hlt — with acceptance on, salc runs: AL = CF ? 0xff : 0.
        emu.load_image(0x1000, &[0xf9, 0xd6, 0xf4]);
        let exit = emu.run(4);
        assert_eq!(exit, RunExit::Halted, "accepted salc must execute");
        assert_eq!(emu.machine().gpr[0] & 0xff, 0xff, "salc sets AL from CF");
    }
}
